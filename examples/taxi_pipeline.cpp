// The paper's appendix pipeline, end to end: the three-node DAG
// (trips -> trips_expectation, trips -> pickups) extracted purely from
// SQL references and naming conventions, executed with the
// transform-audit-write pattern on a feature branch, then promoted to
// main. Also demonstrates the fused vs. naive execution modes of
// section 4.4.2 side by side.

#include <cstdio>

#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "pipeline/dag.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

using bauplan::FormatDurationMicros;
using bauplan::SimClock;
using bauplan::core::Bauplan;
using bauplan::core::PipelineRunOptions;

int main() {
  bauplan::storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  bauplan::core::BauplanOptions options;
  // Model S3-class storage so the naive/fused difference is visible.
  options.lake_latency = bauplan::storage::LatencyModel();
  auto platform = Bauplan::Open(&store, &clock, options);
  if (!platform.ok()) return 1;
  Bauplan& bp = **platform;

  // Seed the data lake with a synthetic month of NYC taxi trips.
  bauplan::workload::TaxiGenOptions gen;
  gen.rows = 50000;
  gen.start_date = "2019-03-15";
  gen.days = 45;  // straddles the pipeline's 2019-04-01 cutoff
  auto taxi = bauplan::workload::GenerateTaxiTable(gen);
  if (!taxi.ok()) return 1;
  (void)bp.CreateTable("main", "taxi_table", taxi->schema());
  (void)bp.WriteTable("main", "taxi_table", *taxi);
  std::printf("lake seeded: taxi_table with %lld rows\n\n",
              static_cast<long long>(taxi->num_rows()));

  // The pipeline is just code; the DAG comes from parsing it.
  auto project = bauplan::pipeline::MakePaperTaxiPipeline(1.0);
  auto dag = bauplan::pipeline::Dag::Build(project, {"taxi_table"});
  std::printf("-- extracted DAG --\n%s\n", dag->ToString().c_str());

  // Development happens on a branch (Fig. 4).
  (void)bp.CreateBranch("feat_1", "main");

  // Fused execution (the production default). The first run pays the
  // container cold start; the second shows the steady-state feedback
  // loop a developer actually iterates in.
  auto fused = bp.Run(project, "feat_1");
  if (!fused.ok()) {
    std::fprintf(stderr, "%s\n", fused.status().ToString().c_str());
    return 1;
  }
  auto fused_warm = bp.Run(project, "feat_1");
  std::printf("fused run %lld: %s; cold %s, warm iteration %s "
              "(spill: %lld object-store ops)\n",
              static_cast<long long>(fused->run_id),
              fused->status.c_str(),
              FormatDurationMicros(fused->total_micros).c_str(),
              FormatDurationMicros(
                  fused_warm->total_micros).c_str(),
              static_cast<long long>(
                  fused->spill_metrics.TotalRequests()));

  // Naive execution of the same DAG: one function per node, object-store
  // spill between them (the paper's first implementation).
  PipelineRunOptions naive_options;
  naive_options.fused = false;
  auto naive = bp.Run(project, "feat_1", naive_options);
  auto naive_warm = bp.Run(project, "feat_1", naive_options);
  std::printf("naive run %lld: %s; cold %s, warm iteration %s "
              "(spill: %lld object-store ops)\n",
              static_cast<long long>(naive->run_id),
              naive->status.c_str(),
              FormatDurationMicros(naive->total_micros).c_str(),
              FormatDurationMicros(
                  naive_warm->total_micros).c_str(),
              static_cast<long long>(
                  naive->spill_metrics.TotalRequests()));
  double speedup =
      static_cast<double>(naive_warm->total_micros) /
      static_cast<double>(fused_warm->total_micros);
  std::printf("=> fused iteration is %.1fx faster feedback "
              "(paper claims ~5x)\n\n",
              speedup);

  // The audited artifacts exist on feat_1 only; promote them.
  auto preview = bp.Query(
      "SELECT * FROM pickups ORDER BY counts DESC LIMIT 5", "feat_1");
  std::printf("-- pickups (top 5, feat_1) --\n%s\n",
              preview->table.ToString().c_str());
  (void)bp.MergeBranch("feat_1", "main");
  std::printf("merged feat_1 into main; dashboards now read pickups\n");

  // Reproducibility: replay run 1 on its recorded data, sandboxed.
  auto replay = bp.ReplayRun(fused->run_id, "pickups+");
  std::printf("replay of run %lld (-m pickups+): %s, %lld node(s)\n",
              static_cast<long long>(fused->run_id),
              replay->status.c_str(),
              static_cast<long long>(replay->nodes.size()));
  return 0;
}
