// A tour of the serverless substrate (paper section 4.5): container
// lifecycle (cold / frozen-resume / warm), the power-law package cache,
// data-locality scheduling, vertical memory elasticity, and the
// synchronous vs. asynchronous interaction modes of Table 1.

#include <cstdio>

#include "common/clock.h"
#include "common/strings.h"
#include "runtime/container_manager.h"
#include "runtime/executor.h"
#include "runtime/package.h"
#include "runtime/package_cache.h"
#include "runtime/scheduler.h"
#include "runtime/spark_model.h"

using bauplan::FormatDurationMicros;
using bauplan::Rng;
using bauplan::SimClock;
using namespace bauplan::runtime;  // example code; library code never does this

int main() {
  SimClock clock;
  PackageCache cache(&clock, PackageCache::Options{});
  ContainerManager containers(&clock, &cache);
  Scheduler scheduler(&clock, Scheduler::Options{});
  ServerlessExecutor executor(&clock, &containers, &scheduler);

  // --- container lifecycle ------------------------------------------
  ContainerSpec pandas_env;
  pandas_env.packages = {{"pandas==2.0.0", 45ull << 20},
                         {"numpy==1.26", 28ull << 20}};

  auto cold = containers.Acquire(pandas_env);
  (void)containers.Release(cold->container_id);  // freeze it
  auto resume = containers.Acquire(pandas_env);
  (void)containers.Release(resume->container_id, /*freeze=*/false);
  auto warm = containers.Acquire(pandas_env);
  (void)containers.Release(warm->container_id);

  std::printf("-- container starts for the same environment --\n");
  std::printf("cold start:     %s (image + packages + interpreter)\n",
              FormatDurationMicros(cold->startup_micros).c_str());
  std::printf("frozen resume:  %s (the paper's 300 ms)\n",
              FormatDurationMicros(resume->startup_micros).c_str());
  std::printf("warm dispatch:  %s\n\n",
              FormatDurationMicros(warm->startup_micros).c_str());

  // Versus the Spark baseline the paper departs from.
  SparkSessionModel spark(&clock);
  uint64_t spark_first = spark.SubmitJob();
  uint64_t spark_next = spark.SubmitJob();
  std::printf("Spark cluster first job: %s; next job: %s\n\n",
              FormatDurationMicros(spark_first).c_str(),
              FormatDurationMicros(spark_next).c_str());

  // --- package cache under a power-law workload ---------------------
  PackageRegistry registry(5000, 1.1, 42);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    (void)cache.Fetch(registry.SampleByPopularity(rng));
  }
  const auto& pm = cache.metrics();
  std::printf("-- package cache after 2000 Zipf fetches --\n");
  std::printf("hit rate %.1f%%, downloaded %s, cache holds %s\n\n",
              100.0 * pm.HitRate(),
              bauplan::FormatBytes(pm.bytes_downloaded).c_str(),
              bauplan::FormatBytes(cache.used_bytes()).c_str());

  // --- locality-aware scheduling ------------------------------------
  FunctionRequest producer;
  producer.name = "build_trips";
  producer.spec = pandas_env;
  producer.memory_bytes = 10ull << 30;  // vertical elasticity: 10 GB
  producer.output_artifact = "trips";
  producer.output_bytes = 2ull << 30;
  producer.body = [&] {
    clock.AdvanceMicros(500000);  // pretend to compute for 500 ms
    return bauplan::Status::OK();
  };
  auto p = executor.Invoke(producer);

  FunctionRequest consumer;
  consumer.name = "audit_trips";
  consumer.spec = pandas_env;
  consumer.memory_bytes = 20ull << 30;  // bigger artifact, bigger slot
  consumer.input_artifact = "trips";
  consumer.input_bytes = 2ull << 30;
  consumer.body = [&] {
    clock.AdvanceMicros(200000);
    return bauplan::Status::OK();
  };
  auto c = executor.Invoke(consumer);

  std::printf("-- locality --\n");
  std::printf("producer on worker %d; consumer on worker %d "
              "(locality hit: %s, transfer %s)\n\n",
              p->worker, c->worker, c->locality_hit ? "yes" : "no",
              FormatDurationMicros(c->transfer_micros).c_str());

  // --- sync vs async (Table 1) ---------------------------------------
  // Synchronous: the developer waits for the answer (QW / dev TD).
  FunctionRequest sync_query;
  sync_query.name = "interactive_query";
  sync_query.memory_bytes = 1ull << 30;
  sync_query.body = [&] {
    clock.AdvanceMicros(150000);
    return bauplan::Status::OK();
  };
  auto sync_report = executor.Invoke(sync_query);
  std::printf("-- interaction modes --\n");
  std::printf("sync query end-to-end: %s\n",
              FormatDurationMicros(sync_report->total_micros).c_str());

  // Asynchronous: an orchestrator submits and checks back later
  // (prod TD).
  for (int i = 0; i < 3; ++i) {
    FunctionRequest job;
    job.name = bauplan::StrCat("nightly_job_", i);
    job.memory_bytes = 1ull << 30;
    job.body = [&] {
      clock.AdvanceMicros(400000);
      return bauplan::Status::OK();
    };
    executor.Submit(std::move(job));
  }
  clock.AdvanceMicros(3600ull * 1000000);  // the orchestrator comes back
  auto reports = executor.Drain();
  for (const auto& report : *reports) {
    std::printf("async %s: queued %s, ran %s\n", report.name.c_str(),
                FormatDurationMicros(report.queue_micros).c_str(),
                FormatDurationMicros(report.total_micros -
                                     report.queue_micros)
                    .c_str());
  }

  const auto& cm = containers.metrics();
  std::printf("\ncontainer metrics: %lld cold, %lld resumes, %lld warm\n",
              static_cast<long long>(cm.cold_starts),
              static_cast<long long>(cm.frozen_resumes),
              static_cast<long long>(cm.warm_reuses));
  return 0;
}
