SELECT pickup_location_id, passenger_count AS count, dropoff_location_id FROM taxi_table WHERE pickup_at >= '2019-04-01'
