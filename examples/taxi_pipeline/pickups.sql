SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS counts FROM trips GROUP BY pickup_location_id, dropoff_location_id ORDER BY counts DESC
