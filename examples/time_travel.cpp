// Git-for-data in action: branches, commit-level time travel,
// snapshot-level time travel inside one table, merge conflicts, and
// schema evolution — everything the catalog (Nessie stand-in) and table
// format (Iceberg stand-in) give the platform.

#include <cstdio>

#include "columnar/builder.h"
#include "common/clock.h"
#include "core/bauplan.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

using bauplan::SimClock;
using bauplan::core::Bauplan;

int main() {
  bauplan::storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  auto platform = Bauplan::Open(&store, &clock);
  if (!platform.ok()) return 1;
  Bauplan& bp = **platform;

  auto count_on = [&](const std::string& ref) -> long long {
    auto r = bp.Query("SELECT COUNT(*) AS n FROM taxi_table", ref);
    return r.ok() ? r->table.GetValue(0, 0).int64_value() : -1;
  };

  // Day 1: 1000 trips land.
  bauplan::workload::TaxiGenOptions gen;
  gen.rows = 1000;
  auto day1 = bauplan::workload::GenerateTaxiTable(gen);
  (void)bp.CreateTable("main", "taxi_table", day1->schema());
  (void)bp.WriteTable("main", "taxi_table", *day1);
  auto day1_commit = bp.mutable_catalog()->ResolveRef("main");
  std::printf("day 1: %lld rows at commit %s\n", count_on("main"),
              day1_commit->c_str());

  // Day 2: another 500 trips.
  gen.rows = 500;
  gen.seed = 2;
  clock.AdvanceMicros(86400ull * 1000000);
  (void)bp.WriteTable("main", "taxi_table", *bauplan::workload::GenerateTaxiTable(gen));
  std::printf("day 2: %lld rows on main\n", count_on("main"));

  // Commit-level time travel: query yesterday's whole catalog.
  std::printf("time travel to day-1 commit: %lld rows\n\n",
              count_on(*day1_commit));

  // Snapshot-level time travel inside the table (Iceberg semantics).
  bauplan::table::ScanOptions as_of;
  as_of.snapshot_id = 1;
  auto snap1 = bp.ReadTable("main", "taxi_table", as_of);
  std::printf("table snapshot 1 still readable: %lld rows\n\n",
              static_cast<long long>(snap1->num_rows()));

  // Two branches change the same table -> merge conflict, caught.
  (void)bp.CreateBranch("team_a", "main");
  (void)bp.CreateBranch("team_b", "main");
  gen.seed = 3;
  (void)bp.WriteTable("team_a", "taxi_table",
                      *bauplan::workload::GenerateTaxiTable(gen));
  (void)bp.WriteTable("team_b", "taxi_table",
                      *bauplan::workload::GenerateTaxiTable(gen));
  (void)bp.MergeBranch("team_a", "main");
  auto conflict = bp.MergeBranch("team_b", "main");
  std::printf("merging team_a: ok; merging team_b: %s\n\n",
              conflict.ok() ? "ok (unexpected!)"
                            : conflict.status().ToString().c_str());

  // Disjoint changes merge cleanly three-way.
  (void)bp.CreateBranch("team_c", "main");
  bauplan::columnar::Int64Builder ids;
  ids.Append(1);
  auto aux = bauplan::columnar::Table::Make(
      bauplan::columnar::Schema(
          {{"id", bauplan::columnar::TypeId::kInt64, false}}),
      {ids.Finish()});
  (void)bp.CreateTable("team_c", "aux_table", aux->schema());
  (void)bp.WriteTable("team_c", "aux_table", *aux);
  auto merged = bp.MergeBranch("team_c", "main");
  std::printf("disjoint merge of team_c: %s (fast_forward=%s)\n\n",
              merged.ok() ? "ok" : merged.status().ToString().c_str(),
              merged.ok() && merged->fast_forward ? "yes" : "no");

  std::printf("-- catalog log (main) --\n");
  auto history = bp.Log("main", 6);
  for (const auto& commit : *history) {
    std::printf("%s  %s\n", commit.id.c_str(), commit.message.c_str());
  }
  return 0;
}
