// Operating a lakehouse day to day: CSV ingestion, background table
// maintenance (compaction + snapshot expiry), the audit trail, and the
// commit-keyed query result cache — the operational features a platform
// needs around the paper's core ideas.

#include <cstdio>

#include "columnar/csv.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "storage/object_store.h"
#include "table/maintenance.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

using bauplan::FormatBytes;
using bauplan::SimClock;
using bauplan::core::Bauplan;

int main() {
  bauplan::storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  auto platform = Bauplan::Open(&store, &clock);
  if (!platform.ok()) return 1;
  Bauplan& bp = **platform;

  // --- CSV ingestion -------------------------------------------------
  const char* csv =
      "station,bikes,docked_at\n"
      "\"W 52 St & 11 Ave\",12,2019-04-01 08:00:00\n"
      "\"Franklin St & W Broadway\",3,2019-04-01 08:05:00\n"
      "\"St James Pl & Pearl St\",0,2019-04-01 08:07:00\n";
  auto stations = bauplan::columnar::ReadCsv(csv);
  if (!stations.ok()) return 1;
  (void)bp.CreateTable("main", "bike_stations", stations->schema());
  (void)bp.WriteTable("main", "bike_stations", *stations);
  std::printf("ingested CSV: %lld rows, inferred schema %s\n\n",
              static_cast<long long>(stations->num_rows()),
              stations->schema().ToString().c_str());

  // --- streaming appends fragment the table --------------------------
  bauplan::workload::TaxiGenOptions gen;
  gen.rows = 2000;
  auto first = bauplan::workload::GenerateTaxiTable(gen);
  (void)bp.CreateTable("main", "taxi_table", first->schema());
  for (int day = 0; day < 8; ++day) {
    gen.seed = static_cast<uint64_t>(day + 1);
    clock.AdvanceMicros(86400ull * 1000000);
    (void)bp.WriteTable("main", "taxi_table",
                        *bauplan::workload::GenerateTaxiTable(gen));
  }

  // --- maintenance: compact + expire ---------------------------------
  bauplan::table::TableOps ops(&store, &clock);
  bauplan::table::TableMaintenance maintenance(&ops, &store);
  auto metadata_key = bp.mutable_catalog()->GetTable("main", "taxi_table");
  auto compacted = maintenance.CompactFiles(*metadata_key);
  std::printf("compaction: %lld files -> %lld (%s rewritten)\n",
              static_cast<long long>(compacted->files_before),
              static_cast<long long>(compacted->files_after),
              FormatBytes(static_cast<uint64_t>(
                  compacted->bytes_rewritten)).c_str());
  uint64_t before = store.total_bytes();
  auto expired = maintenance.ExpireSnapshots(compacted->metadata_key);
  std::printf("expiry: dropped %lld snapshots, reclaimed %s "
              "(lake %s -> %s)\n",
              static_cast<long long>(expired->snapshots_removed),
              FormatBytes(expired->bytes_reclaimed).c_str(),
              FormatBytes(before).c_str(),
              FormatBytes(store.total_bytes()).c_str());
  // Point the catalog at the maintained table.
  bauplan::catalog::TableChanges changes;
  changes.puts["taxi_table"] = expired->metadata_key;
  (void)bp.mutable_catalog()->CommitChanges("main", "maintenance",
                                            "ops-bot", changes);

  // --- result cache ---------------------------------------------------
  const char* q = "SELECT COUNT(*) AS n FROM taxi_table";
  auto cold = bp.Query(q);
  auto warm = bp.Query(q);
  std::printf("\nquery twice: first from_cache=%s, second from_cache=%s "
              "(rows=%s)\n",
              cold->from_cache ? "yes" : "no",
              warm->from_cache ? "yes" : "no",
              warm->table.GetValue(0, 0).ToString().c_str());

  // --- audit trail -----------------------------------------------------
  std::printf("\n-- audit trail (most recent first) --\n");
  auto audit_entries = bp.audit_log().Tail(6);
  for (const auto& entry : *audit_entries) {
    std::printf("%3lld %-13s %-6s %s\n",
                static_cast<long long>(entry.sequence),
                entry.operation.c_str(),
                entry.outcome == "ok" ? "ok" : "FAIL",
                entry.detail.substr(0, 52).c_str());
  }
  return 0;
}
