// Quickstart: open a lakehouse, create a table, load rows, and query it
// synchronously — the Query-and-Wrangle (QW) use case of the paper's
// Table 1, in ~50 lines of user code.

#include <cstdio>

#include "columnar/builder.h"
#include "common/clock.h"
#include "core/bauplan.h"
#include "storage/object_store.h"

using bauplan::SimClock;
using bauplan::columnar::DoubleBuilder;
using bauplan::columnar::Int64Builder;
using bauplan::columnar::Schema;
using bauplan::columnar::StringBuilder;
using bauplan::columnar::Table;
using bauplan::columnar::TypeId;

int main() {
  // Everything lives in an object store; here an in-memory one.
  bauplan::storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  auto platform = bauplan::core::Bauplan::Open(&store, &clock);
  if (!platform.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 platform.status().ToString().c_str());
    return 1;
  }
  bauplan::core::Bauplan& bp = **platform;

  // 1. Create a table on main (a catalog commit).
  Schema schema({{"city", TypeId::kString, false},
                 {"population", TypeId::kInt64, false},
                 {"median_fare", TypeId::kDouble, false}});
  if (auto st = bp.CreateTable("main", "cities", schema); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Load a few rows (another commit; the table format writes files).
  StringBuilder city;
  Int64Builder population;
  DoubleBuilder fare;
  struct Row {
    const char* city;
    int64_t pop;
    double fare;
  };
  for (const Row& r : {Row{"new_york", 8468000, 15.5},
                       Row{"chicago", 2746000, 12.0},
                       Row{"boston", 675000, 14.25},
                       Row{"austin", 974000, 11.0}}) {
    city.Append(r.city);
    population.Append(r.pop);
    fare.Append(r.fare);
  }
  Table rows = *Table::Make(
      schema, {city.Finish(), population.Finish(), fare.Finish()});
  if (auto st = bp.WriteTable("main", "cities", rows); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Query it. This is `bauplan query -q "..."`.
  auto result = bp.Query(
      "SELECT city, population / 1000000.0 AS millions, median_fare "
      "FROM cities WHERE population > 900000 ORDER BY population DESC");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->table.ToString().c_str());

  // 4. Branches are free: experiment without touching main.
  (void)bp.CreateBranch("scratch", "main");
  (void)bp.WriteTable("scratch", "cities", rows);  // double the data
  auto main_count = bp.Query("SELECT COUNT(*) AS n FROM cities", "main");
  auto scratch_count =
      bp.Query("SELECT COUNT(*) AS n FROM cities", "scratch");
  std::printf("\nrows on main: %s | rows on scratch: %s\n",
              main_count->table.GetValue(0, 0).ToString().c_str(),
              scratch_count->table.GetValue(0, 0).ToString().c_str());
  return 0;
}
