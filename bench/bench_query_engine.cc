// Streaming / vectorized / morsel-parallel SQL execution vs the seed
// scalar engine.
//
// The paper's thesis is that at Reasonable Scale one beefy function
// running a decent columnar engine beats a distributed framework. This
// bench quantifies the "decent engine" part: the same logical plans run
// through (a) the row-at-a-time scalar operators the repo seeded with,
// (b) the typed vectorized kernels, (c) vectorized + morsel-parallel
// execution on 8 threads, and (d) the push-based streaming engine on 8
// threads (pipelines instead of materialize-per-operator; peak
// intermediate bytes reported next to the materialized baseline).
// Workloads are ~1M-row filter / group-by aggregate / hash join / top-N
// sort over the synthetic taxi table.
//
// Invariants enforced (exit 1 on violation):
//   - every mode returns the same row count per workload
//   - the 8-thread run is BIT-IDENTICAL to the 1-thread vectorized run
//     (serialized table bytes compared), and the streaming run is
//     bit-identical to both
//   - the streaming aggregate's peak intermediate stays a small
//     fraction of the materialized engine's (the O(morsel) claim)
//   - the join/sort/aggregate workloads rerun under a 32 MiB memory
//     budget must spill (nonzero exec.spill.* counters) and stay
//     bit-identical to the unlimited in-memory results
//   - lineage-driven dead-column trimming (required_output_columns)
//     must cut the wide workload's materialized bytes by more than
//     half without changing its row count
//
// `--smoke` runs a small dataset once (wired into ctest so tier-1
// exercises the bench cheaply); the full run writes BENCH_query.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "common/strings.h"
#include "format/writer.h"
#include "sql/engine.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::Result;
using bauplan::columnar::Table;
using bauplan::sql::ExecOptions;
using bauplan::sql::MemoryTableProvider;
using bauplan::sql::QueryOptions;
using bauplan::sql::QueryResult;

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    {"filter",
     "SELECT trip_id, fare FROM taxi "
     "WHERE fare > 12.5 AND passenger_count >= 1 AND trip_distance < 40.0"},
    {"aggregate",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue, "
     "AVG(trip_distance) AS avg_distance FROM taxi "
     "GROUP BY pickup_location_id"},
    // The streaming engine's showcase: the filter output is a large
    // materialized intermediate for the vectorized engine but streams
    // morsel-by-morsel into the aggregate under the streaming engine.
    {"filter_agg",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue "
     "FROM taxi WHERE passenger_count >= 1 AND fare > 5.0 "
     "GROUP BY pickup_location_id"},
    {"join",
     "SELECT t.trip_id, z.zone_name FROM taxi t "
     "JOIN zones z ON t.pickup_location_id = z.location_id "
     "WHERE z.location_id % 2 = 0"},
    {"sort",
     "SELECT trip_id, fare FROM taxi ORDER BY fare DESC, trip_id "
     "LIMIT 1000"},
};

// Budget-mode variants carry wide payloads so the operator inputs exceed
// the 32 MiB full-size budget (the headline workloads are pruned to 2-3
// columns, ~16-24 MB at 1M rows, and would never spill). Six referenced
// taxi columns put the join/sort/aggregate inputs at ~48 MB.
constexpr Workload kBudgetWorkloads[] = {
    {"aggregate",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue, "
     "AVG(trip_distance) AS avg_distance, SUM(passenger_count) AS pax, "
     "MAX(pickup_at) AS latest, MIN(trip_id) AS first_trip FROM taxi "
     "GROUP BY pickup_location_id"},
    {"join",
     "SELECT t.trip_id, t.pickup_at, t.fare, t.trip_distance, "
     "t.passenger_count, z.zone_name FROM taxi t "
     "JOIN zones z ON t.pickup_location_id = z.location_id "
     "WHERE z.location_id % 2 = 0"},
    {"sort",
     "SELECT trip_id, fare, trip_distance, pickup_at, dropoff_location_id "
     "FROM taxi ORDER BY fare DESC, trip_id LIMIT 1000"},
};

struct ModeTiming {
  double seconds = 0;
  int64_t rows = 0;
  int64_t peak_bytes = 0;  // largest intermediate the engine held
  int64_t spill_partitions = 0;
  int64_t spill_bytes_written = 0;
  std::vector<uint8_t> bytes;  // serialized result (determinism checks)
};

/// Runs one workload in one engine mode, best-of-`iters` wall time.
/// `memory_budget` > 0 caps operator working sets (spilling engaged).
Result<ModeTiming> RunMode(MemoryTableProvider& provider, const char* sql,
                           ExecOptions::Engine engine, int threads,
                           int iters, int64_t memory_budget = 0,
                           const std::vector<std::string>&
                               required_output_columns = {}) {
  ModeTiming timing;
  timing.seconds = 1e100;
  for (int i = 0; i < iters; ++i) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.memory_budget_bytes = memory_budget;
    options.optimizer.required_output_columns = required_output_columns;
    if (engine == ExecOptions::Engine::kScalar) {
      // The scalar mode reproduces the seed engine end-to-end:
      // row-at-a-time operators AND the seed optimizer, which had no
      // filter-through-join rewrite (that rewrite ships with the
      // vectorized engine).
      options.optimizer.pushdown_filters = false;
    }
    auto start = std::chrono::steady_clock::now();
    BAUPLAN_ASSIGN_OR_RETURN(
        QueryResult result,
        bauplan::sql::RunQuery(sql, provider, &provider, options));
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    timing.seconds = std::min(timing.seconds, elapsed.count());
    timing.rows = result.table.num_rows();
    timing.peak_bytes = result.stats.peak_bytes;
    timing.spill_partitions = result.stats.spill_partitions;
    timing.spill_bytes_written = result.stats.spill_bytes_written;
    if (i == 0) {
      BAUPLAN_ASSIGN_OR_RETURN(bauplan::Bytes image,
                               bauplan::format::WriteBpfFile(result.table));
      timing.bytes.assign(image.data(), image.data() + image.size());
    }
  }
  return timing;
}

Result<Table> MakeZonesTable(int64_t num_locations) {
  bauplan::columnar::Int64Builder ids;
  bauplan::columnar::StringBuilder names;
  for (int64_t i = 0; i < num_locations; ++i) {
    ids.Append(i);
    names.Append(bauplan::StrCat("zone_", i));
  }
  return Table::Make(
      bauplan::columnar::Schema(
          {{"location_id", bauplan::columnar::TypeId::kInt64, false},
           {"zone_name", bauplan::columnar::TypeId::kString, false}}),
      {ids.Finish(), names.Finish()});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t rows = smoke ? 20000 : 1000000;
  const int iters = smoke ? 1 : 3;
  const int parallel_threads = 8;

  std::printf("=== Vectorized, morsel-parallel SQL engine vs scalar "
              "baseline (%lld rows) ===\n\n",
              static_cast<long long>(rows));

  bauplan::workload::TaxiGenOptions gen;
  gen.rows = rows;
  gen.start_date = "2019-03-15";
  gen.days = 45;
  auto taxi = bauplan::workload::GenerateTaxiTable(gen);
  if (!taxi.ok()) {
    std::fprintf(stderr, "taxi gen failed: %s\n",
                 taxi.status().ToString().c_str());
    return 1;
  }
  auto zones = MakeZonesTable(gen.num_locations);
  if (!zones.ok()) return 1;
  MemoryTableProvider provider;
  provider.AddTable("taxi", *taxi);
  provider.AddTable("zones", *zones);

  std::printf("%10s | %10s %10s %11s %11s | %8s %8s | %s\n", "workload",
              "scalar", "vector", "parallel(8)", "streaming", "par_x",
              "str_x", "peak str/mat");

  std::vector<std::string> json_rows;
  bool ok = true;
  for (const Workload& w : kWorkloads) {
    auto scalar = RunMode(provider, w.sql, ExecOptions::Engine::kScalar, 1,
                          iters);
    auto vectorized = RunMode(provider, w.sql,
                              ExecOptions::Engine::kVectorized, 1, iters);
    auto parallel = RunMode(provider, w.sql,
                            ExecOptions::Engine::kVectorized,
                            parallel_threads, iters);
    auto streaming = RunMode(provider, w.sql,
                             ExecOptions::Engine::kStreaming,
                             parallel_threads, iters);
    if (!scalar.ok() || !vectorized.ok() || !parallel.ok() ||
        !streaming.ok()) {
      std::fprintf(stderr, "%s failed: %s%s%s%s\n", w.name,
                   scalar.status().ToString().c_str(),
                   vectorized.status().ToString().c_str(),
                   parallel.status().ToString().c_str(),
                   streaming.status().ToString().c_str());
      return 1;
    }
    if (scalar->rows != vectorized->rows ||
        vectorized->rows != parallel->rows ||
        parallel->rows != streaming->rows) {
      std::fprintf(stderr,
                   "FAIL: %s row counts diverge (%lld/%lld/%lld/%lld)\n",
                   w.name, static_cast<long long>(scalar->rows),
                   static_cast<long long>(vectorized->rows),
                   static_cast<long long>(parallel->rows),
                   static_cast<long long>(streaming->rows));
      ok = false;
    }
    if (vectorized->bytes != parallel->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s parallel result not bit-identical to serial\n",
                   w.name);
      ok = false;
    }
    if (vectorized->bytes != streaming->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s streaming result not bit-identical to "
                   "materialized\n",
                   w.name);
      ok = false;
    }
    // The O(morsel) peak claim: the filter->project->aggregate chain's
    // streaming intermediates (morsel chunks + cuts + the ~250-row
    // result) must be a small fraction of the materialized engine's
    // full filter output. Skipped in smoke mode, where the whole input
    // fits in one morsel and the two peaks degenerate to the same
    // table-sized chunk.
    if (std::strcmp(w.name, "filter_agg") == 0 && !smoke &&
        streaming->peak_bytes * 4 >= parallel->peak_bytes) {
      std::fprintf(stderr,
                   "FAIL: %s streaming peak %lld not << materialized "
                   "peak %lld\n",
                   w.name, static_cast<long long>(streaming->peak_bytes),
                   static_cast<long long>(parallel->peak_bytes));
      ok = false;
    }
    double par_x = scalar->seconds / parallel->seconds;
    double str_x = scalar->seconds / streaming->seconds;
    double scalar_rps = static_cast<double>(rows) / scalar->seconds;
    double parallel_rps = static_cast<double>(rows) / parallel->seconds;
    std::printf(
        "%10s | %9.1fms %9.1fms %10.1fms %10.1fms | %7.1fx %7.1fx | "
        "%s / %s\n",
        w.name, scalar->seconds * 1e3, vectorized->seconds * 1e3,
        parallel->seconds * 1e3, streaming->seconds * 1e3, par_x, str_x,
        bauplan::FormatBytes(static_cast<uint64_t>(streaming->peak_bytes))
            .c_str(),
        bauplan::FormatBytes(static_cast<uint64_t>(parallel->peak_bytes))
            .c_str());
    std::ostringstream j;
    j << "{\"workload\": \"" << w.name << "\", \"rows_in\": " << rows
      << ", \"rows_out\": " << parallel->rows
      << ", \"scalar_seconds\": " << scalar->seconds
      << ", \"vectorized_seconds\": " << vectorized->seconds
      << ", \"parallel_seconds\": " << parallel->seconds
      << ", \"streaming_seconds\": " << streaming->seconds
      << ", \"scalar_rows_per_sec\": " << scalar_rps
      << ", \"parallel_rows_per_sec\": " << parallel_rps
      << ", \"vectorized_speedup\": " << (scalar->seconds /
                                          vectorized->seconds)
      << ", \"parallel_speedup\": " << par_x
      << ", \"streaming_speedup\": " << str_x
      << ", \"streaming_peak_bytes\": " << streaming->peak_bytes
      << ", \"materialized_peak_bytes\": " << parallel->peak_bytes
      << ", \"bit_identical\": "
      << (vectorized->bytes == parallel->bytes &&
                  vectorized->bytes == streaming->bytes
              ? "true"
              : "false")
      << "}";
    json_rows.push_back(j.str());
  }

  // Budgeted spill mode: wide-payload variants of the memory-hungry
  // workloads, under a budget far below their working set (32 MiB
  // full-size — the 1M-row operator inputs are ~48 MB). Verifies the
  // paper-motivated claim: a memory-constrained worker completes the
  // same queries, bit-identically, by spilling through the object
  // store.
  const int64_t budget = smoke ? 64 * 1024 : 32 * 1024 * 1024;
  std::printf("\n--- memory budget %s (spill-to-store execution) ---\n",
              bauplan::FormatBytes(static_cast<uint64_t>(budget)).c_str());
  for (const Workload& w : kBudgetWorkloads) {
    auto unlimited = RunMode(provider, w.sql,
                             ExecOptions::Engine::kVectorized, 1, iters);
    auto spilled = RunMode(provider, w.sql,
                           ExecOptions::Engine::kVectorized,
                           parallel_threads, iters, budget);
    if (!unlimited.ok() || !spilled.ok()) {
      std::fprintf(stderr, "%s budgeted run failed: %s%s\n", w.name,
                   unlimited.status().ToString().c_str(),
                   spilled.status().ToString().c_str());
      return 1;
    }
    if (spilled->spill_partitions <= 0) {
      std::fprintf(stderr,
                   "FAIL: %s under %lld-byte budget did not spill\n",
                   w.name, static_cast<long long>(budget));
      ok = false;
    }
    if (unlimited->bytes != spilled->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s spilled result not bit-identical to "
                   "in-memory\n",
                   w.name);
      ok = false;
    }
    double slowdown = spilled->seconds / unlimited->seconds;
    std::printf("%10s | in-mem %9.1fms  spilled %9.1fms (%4.1fx) | "
                "%lld partitions, %s spilled | %lld rows\n",
                w.name, unlimited->seconds * 1e3, spilled->seconds * 1e3,
                slowdown,
                static_cast<long long>(spilled->spill_partitions),
                bauplan::FormatBytes(static_cast<uint64_t>(
                    spilled->spill_bytes_written)).c_str(),
                static_cast<long long>(spilled->rows));
    std::ostringstream j;
    j << "{\"workload\": \"" << w.name << "_budget\", \"rows_in\": "
      << rows << ", \"rows_out\": " << spilled->rows
      << ", \"memory_budget_bytes\": " << budget
      << ", \"in_memory_seconds\": " << unlimited->seconds
      << ", \"spilled_seconds\": " << spilled->seconds
      << ", \"spill_slowdown\": " << slowdown
      << ", \"spill_partitions\": " << spilled->spill_partitions
      << ", \"spill_bytes_written\": " << spilled->spill_bytes_written
      << ", \"bit_identical\": "
      << (unlimited->bytes == spilled->bytes ? "true" : "false") << "}";
    json_rows.push_back(j.str());
  }

  // Dead-column trimming: a wide producer node whose downstream (per
  // the lineage graph) reads only two of its seven columns. With
  // required_output_columns set, the optimizer trims the plan's output
  // and projection pushdown narrows the scans — materialized bytes must
  // drop by more than half (enforced at any row count, smoke included).
  {
    const char* wide_sql =
        "SELECT trip_id, pickup_at, pickup_location_id, "
        "dropoff_location_id, passenger_count, trip_distance, fare "
        "FROM taxi WHERE fare > 5.0";
    auto untrimmed = RunMode(provider, wide_sql,
                             ExecOptions::Engine::kStreaming,
                             parallel_threads, iters);
    auto trimmed = RunMode(provider, wide_sql,
                           ExecOptions::Engine::kStreaming,
                           parallel_threads, iters, /*memory_budget=*/0,
                           {"trip_id", "fare"});
    if (!untrimmed.ok() || !trimmed.ok()) {
      std::fprintf(stderr, "dead_columns run failed: %s%s\n",
                   untrimmed.status().ToString().c_str(),
                   trimmed.status().ToString().c_str());
      return 1;
    }
    int64_t untrimmed_bytes =
        static_cast<int64_t>(untrimmed->bytes.size());
    int64_t trimmed_bytes = static_cast<int64_t>(trimmed->bytes.size());
    if (trimmed->rows != untrimmed->rows) {
      std::fprintf(stderr,
                   "FAIL: dead_columns trimming changed row count "
                   "(%lld vs %lld)\n",
                   static_cast<long long>(trimmed->rows),
                   static_cast<long long>(untrimmed->rows));
      ok = false;
    }
    if (trimmed_bytes * 2 >= untrimmed_bytes) {
      std::fprintf(stderr,
                   "FAIL: dead_columns trimmed bytes %lld not < half of "
                   "untrimmed %lld\n",
                   static_cast<long long>(trimmed_bytes),
                   static_cast<long long>(untrimmed_bytes));
      ok = false;
    }
    double reduction =
        1.0 - static_cast<double>(trimmed_bytes) /
                  static_cast<double>(untrimmed_bytes);
    std::printf(
        "\n--- dead-column trimming (lineage-driven projection) ---\n"
        "%10s | full %s -> trimmed %s (%.0f%% fewer bytes "
        "materialized) | %lld rows\n",
        "dead_cols",
        bauplan::FormatBytes(static_cast<uint64_t>(untrimmed_bytes))
            .c_str(),
        bauplan::FormatBytes(static_cast<uint64_t>(trimmed_bytes))
            .c_str(),
        reduction * 100.0, static_cast<long long>(trimmed->rows));
    std::ostringstream j;
    j << "{\"workload\": \"dead_columns\", \"rows_in\": " << rows
      << ", \"rows_out\": " << trimmed->rows
      << ", \"untrimmed_bytes\": " << untrimmed_bytes
      << ", \"trimmed_bytes\": " << trimmed_bytes
      << ", \"bytes_reduction\": " << reduction
      << ", \"untrimmed_seconds\": " << untrimmed->seconds
      << ", \"trimmed_seconds\": " << trimmed->seconds << "}";
    json_rows.push_back(j.str());
  }

  if (!ok) return 1;

  std::printf("\nvectorized: typed kernels replace boxed per-row Values; "
              "parallel adds\nmorsel-driven execution (64K-row morsels, "
              "deterministic merge order —\n8-thread output is "
              "bit-identical to 1-thread). streaming pushes morsels\n"
              "through operator pipelines instead of materializing every "
              "intermediate\n(peak str/mat compares the largest "
              "intermediate each engine held).\n");

  std::ofstream json_out("BENCH_query.json");
  if (json_out) {
    json_out << "{\n  \"bench\": \"query_engine\",\n  \"rows\": " << rows
             << ",\n  \"threads\": " << parallel_threads
             << ",\n  \"smoke\": " << (smoke ? "true" : "false")
             << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < json_rows.size(); ++i) {
      json_out << "    " << json_rows[i]
               << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json_out << "  ]\n}\n";
    std::printf("results written to BENCH_query.json\n");
  }
  return 0;
}
