// Streaming / vectorized / morsel-parallel SQL execution vs the seed
// scalar engine.
//
// The paper's thesis is that at Reasonable Scale one beefy function
// running a decent columnar engine beats a distributed framework. This
// bench quantifies the "decent engine" part: the same logical plans run
// through (a) the row-at-a-time scalar operators the repo seeded with,
// (b) the typed vectorized kernels, (c) vectorized + morsel-parallel
// execution on 8 threads, and (d) the push-based streaming engine on 8
// threads (pipelines instead of materialize-per-operator; peak
// intermediate bytes reported next to the materialized baseline).
// Workloads are ~1M-row filter / group-by aggregate / hash join / top-N
// sort over the synthetic taxi table.
//
// Invariants enforced (exit 1 on violation):
//   - every mode returns the same row count per workload
//   - the 8-thread run is BIT-IDENTICAL to the 1-thread vectorized run
//     (serialized table bytes compared), and the streaming run is
//     bit-identical to both
//   - the streaming aggregate's peak intermediate stays a small
//     fraction of the materialized engine's (the O(morsel) claim)
//   - the join/sort/aggregate workloads rerun under a 32 MiB memory
//     budget must spill (nonzero exec.spill.* counters) and stay
//     bit-identical to the unlimited in-memory results
//   - lineage-driven dead-column trimming (required_output_columns)
//     must cut the wide workload's materialized bytes by more than
//     half without changing its row count
//
//   - (full runs) every per-workload speedup over the scalar baseline
//     must be >= 1.0 unless the (workload, mode) pair is explicitly
//     allowlisted with a reason — a regression cannot hide in the JSON
//   - `--threads-sweep 1,2,4,8` reruns the breaker workloads on the
//     streaming engine with an external pool per thread count (external
//     pools are never clamped to the core count, so the partitioned
//     breakers engage even on a 1-core runner), emits one JSON row per
//     (workload, threads), and fails on any bit-identity or engagement
//     (exec.breaker.*) violation; the 8-vs-1-thread >= 2x timing gate
//     applies only when the host actually has 8 hardware threads and is
//     recorded as skipped otherwise
//
// `--smoke` runs a small dataset once (wired into ctest so tier-1
// exercises the bench cheaply); the full run writes BENCH_query.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "columnar/builder.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "format/writer.h"
#include "sql/engine.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::Result;
using bauplan::columnar::Table;
using bauplan::sql::ExecOptions;
using bauplan::sql::MemoryTableProvider;
using bauplan::sql::QueryOptions;
using bauplan::sql::QueryResult;

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    {"filter",
     "SELECT trip_id, fare FROM taxi "
     "WHERE fare > 12.5 AND passenger_count >= 1 AND trip_distance < 40.0"},
    {"aggregate",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue, "
     "AVG(trip_distance) AS avg_distance FROM taxi "
     "GROUP BY pickup_location_id"},
    // The streaming engine's showcase: the filter output is a large
    // materialized intermediate for the vectorized engine but streams
    // morsel-by-morsel into the aggregate under the streaming engine.
    {"filter_agg",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue "
     "FROM taxi WHERE passenger_count >= 1 AND fare > 5.0 "
     "GROUP BY pickup_location_id"},
    {"join",
     "SELECT t.trip_id, z.zone_name FROM taxi t "
     "JOIN zones z ON t.pickup_location_id = z.location_id "
     "WHERE z.location_id % 2 = 0"},
    {"sort",
     "SELECT trip_id, fare FROM taxi ORDER BY fare DESC, trip_id "
     "LIMIT 1000"},
};

// Budget-mode variants carry wide payloads so the operator inputs exceed
// the 32 MiB full-size budget (the headline workloads are pruned to 2-3
// columns, ~16-24 MB at 1M rows, and would never spill). Six referenced
// taxi columns put the join/sort/aggregate inputs at ~48 MB.
constexpr Workload kBudgetWorkloads[] = {
    {"aggregate",
     "SELECT pickup_location_id, COUNT(*) AS trips, SUM(fare) AS revenue, "
     "AVG(trip_distance) AS avg_distance, SUM(passenger_count) AS pax, "
     "MAX(pickup_at) AS latest, MIN(trip_id) AS first_trip FROM taxi "
     "GROUP BY pickup_location_id"},
    {"join",
     "SELECT t.trip_id, t.pickup_at, t.fare, t.trip_distance, "
     "t.passenger_count, z.zone_name FROM taxi t "
     "JOIN zones z ON t.pickup_location_id = z.location_id "
     "WHERE z.location_id % 2 = 0"},
    {"sort",
     "SELECT trip_id, fare, trip_distance, pickup_at, dropoff_location_id "
     "FROM taxi ORDER BY fare DESC, trip_id LIMIT 1000"},
};

struct ModeTiming {
  double seconds = 0;
  int64_t rows = 0;
  int64_t peak_bytes = 0;  // largest intermediate the engine held
  int64_t spill_partitions = 0;
  int64_t spill_bytes_written = 0;
  int64_t breaker_partitions = 0;  // parallel join-build/agg partitions
  int64_t sort_runs = 0;           // parallel sort runs
  std::vector<uint8_t> bytes;  // serialized result (determinism checks)
};

/// Runs one workload in one engine mode, best-of-`iters` wall time.
/// `memory_budget` > 0 caps operator working sets (spilling engaged).
/// `pool` (optional, with `morsel_rows`) drives execution through an
/// external worker pool — the threads-sweep path, where the thread count
/// must not be clamped to the host's core count.
Result<ModeTiming> RunMode(MemoryTableProvider& provider, const char* sql,
                           ExecOptions::Engine engine, int threads,
                           int iters, int64_t memory_budget = 0,
                           const std::vector<std::string>&
                               required_output_columns = {},
                           bauplan::ThreadPool* pool = nullptr,
                           int64_t morsel_rows = 0) {
  ModeTiming timing;
  timing.seconds = 1e100;
  for (int i = 0; i < iters; ++i) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.memory_budget_bytes = memory_budget;
    options.exec.pool = pool;
    if (morsel_rows > 0) options.exec.morsel_rows = morsel_rows;
    options.optimizer.required_output_columns = required_output_columns;
    if (engine == ExecOptions::Engine::kScalar) {
      // The scalar mode reproduces the seed engine end-to-end:
      // row-at-a-time operators AND the seed optimizer, which had no
      // filter-through-join rewrite (that rewrite ships with the
      // vectorized engine).
      options.optimizer.pushdown_filters = false;
    }
    auto start = std::chrono::steady_clock::now();
    BAUPLAN_ASSIGN_OR_RETURN(
        QueryResult result,
        bauplan::sql::RunQuery(sql, provider, &provider, options));
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    timing.seconds = std::min(timing.seconds, elapsed.count());
    timing.rows = result.table.num_rows();
    timing.peak_bytes = result.stats.peak_bytes;
    timing.spill_partitions = result.stats.spill_partitions;
    timing.spill_bytes_written = result.stats.spill_bytes_written;
    timing.breaker_partitions = result.stats.breaker_partitions;
    timing.sort_runs = result.stats.sort_runs;
    if (i == 0) {
      BAUPLAN_ASSIGN_OR_RETURN(bauplan::Bytes image,
                               bauplan::format::WriteBpfFile(result.table));
      timing.bytes.assign(image.data(), image.data() + image.size());
    }
  }
  return timing;
}

Result<Table> MakeZonesTable(int64_t num_locations) {
  bauplan::columnar::Int64Builder ids;
  bauplan::columnar::StringBuilder names;
  for (int64_t i = 0; i < num_locations; ++i) {
    ids.Append(i);
    names.Append(bauplan::StrCat("zone_", i));
  }
  return Table::Make(
      bauplan::columnar::Schema(
          {{"location_id", bauplan::columnar::TypeId::kInt64, false},
           {"zone_name", bauplan::columnar::TypeId::kString, false}}),
      {ids.Finish(), names.Finish()});
}

/// Build side for the threads-sweep join: large enough (>= 4096 rows)
/// that the partitioned hash build engages, keyed to match trip_id.
Result<Table> MakeDetailsTable(int64_t num_rows) {
  bauplan::columnar::Int64Builder keys;
  bauplan::columnar::StringBuilder payloads;
  for (int64_t i = 0; i < num_rows; ++i) {
    keys.Append(i);
    payloads.Append(bauplan::StrCat("detail_", i % 1000));
  }
  return Table::Make(
      bauplan::columnar::Schema(
          {{"key", bauplan::columnar::TypeId::kInt64, false},
           {"payload", bauplan::columnar::TypeId::kString, false}}),
      {keys.Finish(), payloads.Finish()});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<int> sweep_threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    std::string arg = argv[i];
    std::string list;
    if (arg.rfind("--threads-sweep=", 0) == 0) {
      list = arg.substr(std::strlen("--threads-sweep="));
    } else if (arg == "--threads-sweep" && i + 1 < argc) {
      list = argv[++i];
    }
    if (!list.empty()) {
      std::stringstream ss(list);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        int t = std::atoi(tok.c_str());
        if (t >= 1) sweep_threads.push_back(t);
      }
    }
  }
  const int64_t rows = smoke ? 20000 : 1000000;
  const int iters = smoke ? 1 : 3;
  const int parallel_threads = 8;

  std::printf("=== Vectorized, morsel-parallel SQL engine vs scalar "
              "baseline (%lld rows) ===\n\n",
              static_cast<long long>(rows));

  bauplan::workload::TaxiGenOptions gen;
  gen.rows = rows;
  gen.start_date = "2019-03-15";
  gen.days = 45;
  auto taxi = bauplan::workload::GenerateTaxiTable(gen);
  if (!taxi.ok()) {
    std::fprintf(stderr, "taxi gen failed: %s\n",
                 taxi.status().ToString().c_str());
    return 1;
  }
  auto zones = MakeZonesTable(gen.num_locations);
  if (!zones.ok()) return 1;
  auto details =
      MakeDetailsTable(std::min<int64_t>(rows / 2, 100000));
  if (!details.ok()) return 1;
  MemoryTableProvider provider;
  provider.AddTable("taxi", *taxi);
  provider.AddTable("zones", *zones);
  provider.AddTable("details", *details);

  std::printf("%10s | %10s %10s %11s %11s | %8s %8s | %s\n", "workload",
              "scalar", "vector", "parallel(8)", "streaming", "par_x",
              "str_x", "peak str/mat");

  std::vector<std::string> json_rows;
  bool ok = true;
  for (const Workload& w : kWorkloads) {
    auto scalar = RunMode(provider, w.sql, ExecOptions::Engine::kScalar, 1,
                          iters);
    auto vectorized = RunMode(provider, w.sql,
                              ExecOptions::Engine::kVectorized, 1, iters);
    auto parallel = RunMode(provider, w.sql,
                            ExecOptions::Engine::kVectorized,
                            parallel_threads, iters);
    auto streaming = RunMode(provider, w.sql,
                             ExecOptions::Engine::kStreaming,
                             parallel_threads, iters);
    if (!scalar.ok() || !vectorized.ok() || !parallel.ok() ||
        !streaming.ok()) {
      std::fprintf(stderr, "%s failed: %s%s%s%s\n", w.name,
                   scalar.status().ToString().c_str(),
                   vectorized.status().ToString().c_str(),
                   parallel.status().ToString().c_str(),
                   streaming.status().ToString().c_str());
      return 1;
    }
    if (scalar->rows != vectorized->rows ||
        vectorized->rows != parallel->rows ||
        parallel->rows != streaming->rows) {
      std::fprintf(stderr,
                   "FAIL: %s row counts diverge (%lld/%lld/%lld/%lld)\n",
                   w.name, static_cast<long long>(scalar->rows),
                   static_cast<long long>(vectorized->rows),
                   static_cast<long long>(parallel->rows),
                   static_cast<long long>(streaming->rows));
      ok = false;
    }
    if (vectorized->bytes != parallel->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s parallel result not bit-identical to serial\n",
                   w.name);
      ok = false;
    }
    if (vectorized->bytes != streaming->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s streaming result not bit-identical to "
                   "materialized\n",
                   w.name);
      ok = false;
    }
    // The O(morsel) peak claim: the filter->project->aggregate chain's
    // streaming intermediates (morsel chunks + cuts + the ~250-row
    // result) must be a small fraction of the materialized engine's
    // full filter output. Skipped in smoke mode, where the whole input
    // fits in one morsel and the two peaks degenerate to the same
    // table-sized chunk.
    if (std::strcmp(w.name, "filter_agg") == 0 && !smoke &&
        streaming->peak_bytes * 4 >= parallel->peak_bytes) {
      std::fprintf(stderr,
                   "FAIL: %s streaming peak %lld not << materialized "
                   "peak %lld\n",
                   w.name, static_cast<long long>(streaming->peak_bytes),
                   static_cast<long long>(parallel->peak_bytes));
      ok = false;
    }
    double vec_x = scalar->seconds / vectorized->seconds;
    double par_x = scalar->seconds / parallel->seconds;
    double str_x = scalar->seconds / streaming->seconds;
    // Regression gate (full runs only; smoke timings are noise): every
    // speedup over the scalar baseline must clear 1.0, or the
    // (workload, mode) pair must be allowlisted here with a reason.
    // The parallel mode is gated only when the host has spare cores:
    // with hw_threads == 1 the owned pool clamps to one thread and
    // "parallel" is the vectorized run plus scheduling noise.
    struct AllowedRegression {
      const char* workload;
      const char* mode;
      const char* reason;
    };
    constexpr AllowedRegression kAllowedRegressions[] = {
        {"filter", "vectorized",
         "a bare 3-conjunct filter materializes one boolean array per "
         "conjunct while the scalar engine fuses the whole predicate "
         "into its row loop; at 1M rows the extra passes offset the "
         "typed-kernel win (~0.93x). Predicate-column pruning recovered "
         "most of the former 0.91x gap; the streaming engine (the "
         "default) clears 1.0 on this workload."}};
    if (!smoke) {
      const int hw =
          static_cast<int>(std::thread::hardware_concurrency());
      const struct {
        const char* mode;
        double speedup;
        bool gated;
      } kGated[] = {{"vectorized", vec_x, true},
                    {"parallel", par_x, hw > 1},
                    {"streaming", str_x, true}};
      for (const auto& g : kGated) {
        if (g.speedup >= 1.0) continue;
        if (!g.gated) {
          std::printf("  (gate skipped: %s/%s %.2fx — hw_threads=%d "
                      "leaves no room for parallel speedup)\n",
                      w.name, g.mode, g.speedup, hw);
          continue;
        }
        bool allowed = false;
        for (const AllowedRegression& a : kAllowedRegressions) {
          if (a.workload != nullptr &&
              std::strcmp(a.workload, w.name) == 0 &&
              std::strcmp(a.mode, g.mode) == 0) {
            std::printf("  (allowlisted regression: %s/%s — %s)\n",
                        w.name, g.mode, a.reason);
            allowed = true;
          }
        }
        if (!allowed) {
          std::fprintf(stderr,
                       "FAIL: %s %s speedup %.2fx < 1.0 over scalar "
                       "(not allowlisted)\n",
                       w.name, g.mode, g.speedup);
          ok = false;
        }
      }
    }
    double scalar_rps = static_cast<double>(rows) / scalar->seconds;
    double parallel_rps = static_cast<double>(rows) / parallel->seconds;
    std::printf(
        "%10s | %9.1fms %9.1fms %10.1fms %10.1fms | %7.1fx %7.1fx | "
        "%s / %s\n",
        w.name, scalar->seconds * 1e3, vectorized->seconds * 1e3,
        parallel->seconds * 1e3, streaming->seconds * 1e3, par_x, str_x,
        bauplan::FormatBytes(static_cast<uint64_t>(streaming->peak_bytes))
            .c_str(),
        bauplan::FormatBytes(static_cast<uint64_t>(parallel->peak_bytes))
            .c_str());
    std::ostringstream j;
    j << "{\"workload\": \"" << w.name << "\", \"rows_in\": " << rows
      << ", \"rows_out\": " << parallel->rows
      << ", \"scalar_seconds\": " << scalar->seconds
      << ", \"vectorized_seconds\": " << vectorized->seconds
      << ", \"parallel_seconds\": " << parallel->seconds
      << ", \"streaming_seconds\": " << streaming->seconds
      << ", \"scalar_rows_per_sec\": " << scalar_rps
      << ", \"parallel_rows_per_sec\": " << parallel_rps
      << ", \"vectorized_speedup\": " << (scalar->seconds /
                                          vectorized->seconds)
      << ", \"parallel_speedup\": " << par_x
      << ", \"streaming_speedup\": " << str_x
      << ", \"streaming_peak_bytes\": " << streaming->peak_bytes
      << ", \"materialized_peak_bytes\": " << parallel->peak_bytes
      << ", \"bit_identical\": "
      << (vectorized->bytes == parallel->bytes &&
                  vectorized->bytes == streaming->bytes
              ? "true"
              : "false")
      << "}";
    json_rows.push_back(j.str());
  }

  // Budgeted spill mode: wide-payload variants of the memory-hungry
  // workloads, under a budget far below their working set (32 MiB
  // full-size — the 1M-row operator inputs are ~48 MB). Verifies the
  // paper-motivated claim: a memory-constrained worker completes the
  // same queries, bit-identically, by spilling through the object
  // store.
  const int64_t budget = smoke ? 64 * 1024 : 32 * 1024 * 1024;
  std::printf("\n--- memory budget %s (spill-to-store execution) ---\n",
              bauplan::FormatBytes(static_cast<uint64_t>(budget)).c_str());
  for (const Workload& w : kBudgetWorkloads) {
    auto unlimited = RunMode(provider, w.sql,
                             ExecOptions::Engine::kVectorized, 1, iters);
    auto spilled = RunMode(provider, w.sql,
                           ExecOptions::Engine::kVectorized,
                           parallel_threads, iters, budget);
    if (!unlimited.ok() || !spilled.ok()) {
      std::fprintf(stderr, "%s budgeted run failed: %s%s\n", w.name,
                   unlimited.status().ToString().c_str(),
                   spilled.status().ToString().c_str());
      return 1;
    }
    if (spilled->spill_partitions <= 0) {
      std::fprintf(stderr,
                   "FAIL: %s under %lld-byte budget did not spill\n",
                   w.name, static_cast<long long>(budget));
      ok = false;
    }
    if (unlimited->bytes != spilled->bytes) {
      std::fprintf(stderr,
                   "FAIL: %s spilled result not bit-identical to "
                   "in-memory\n",
                   w.name);
      ok = false;
    }
    double slowdown = spilled->seconds / unlimited->seconds;
    std::printf("%10s | in-mem %9.1fms  spilled %9.1fms (%4.1fx) | "
                "%lld partitions, %s spilled | %lld rows\n",
                w.name, unlimited->seconds * 1e3, spilled->seconds * 1e3,
                slowdown,
                static_cast<long long>(spilled->spill_partitions),
                bauplan::FormatBytes(static_cast<uint64_t>(
                    spilled->spill_bytes_written)).c_str(),
                static_cast<long long>(spilled->rows));
    std::ostringstream j;
    j << "{\"workload\": \"" << w.name << "_budget\", \"rows_in\": "
      << rows << ", \"rows_out\": " << spilled->rows
      << ", \"memory_budget_bytes\": " << budget
      << ", \"in_memory_seconds\": " << unlimited->seconds
      << ", \"spilled_seconds\": " << spilled->seconds
      << ", \"spill_slowdown\": " << slowdown
      << ", \"spill_partitions\": " << spilled->spill_partitions
      << ", \"spill_bytes_written\": " << spilled->spill_bytes_written
      << ", \"bit_identical\": "
      << (unlimited->bytes == spilled->bytes ? "true" : "false") << "}";
    json_rows.push_back(j.str());
  }

  // Dead-column trimming: a wide producer node whose downstream (per
  // the lineage graph) reads only two of its seven columns. With
  // required_output_columns set, the optimizer trims the plan's output
  // and projection pushdown narrows the scans — materialized bytes must
  // drop by more than half (enforced at any row count, smoke included).
  {
    const char* wide_sql =
        "SELECT trip_id, pickup_at, pickup_location_id, "
        "dropoff_location_id, passenger_count, trip_distance, fare "
        "FROM taxi WHERE fare > 5.0";
    auto untrimmed = RunMode(provider, wide_sql,
                             ExecOptions::Engine::kStreaming,
                             parallel_threads, iters);
    auto trimmed = RunMode(provider, wide_sql,
                           ExecOptions::Engine::kStreaming,
                           parallel_threads, iters, /*memory_budget=*/0,
                           {"trip_id", "fare"});
    if (!untrimmed.ok() || !trimmed.ok()) {
      std::fprintf(stderr, "dead_columns run failed: %s%s\n",
                   untrimmed.status().ToString().c_str(),
                   trimmed.status().ToString().c_str());
      return 1;
    }
    int64_t untrimmed_bytes =
        static_cast<int64_t>(untrimmed->bytes.size());
    int64_t trimmed_bytes = static_cast<int64_t>(trimmed->bytes.size());
    if (trimmed->rows != untrimmed->rows) {
      std::fprintf(stderr,
                   "FAIL: dead_columns trimming changed row count "
                   "(%lld vs %lld)\n",
                   static_cast<long long>(trimmed->rows),
                   static_cast<long long>(untrimmed->rows));
      ok = false;
    }
    if (trimmed_bytes * 2 >= untrimmed_bytes) {
      std::fprintf(stderr,
                   "FAIL: dead_columns trimmed bytes %lld not < half of "
                   "untrimmed %lld\n",
                   static_cast<long long>(trimmed_bytes),
                   static_cast<long long>(untrimmed_bytes));
      ok = false;
    }
    double reduction =
        1.0 - static_cast<double>(trimmed_bytes) /
                  static_cast<double>(untrimmed_bytes);
    std::printf(
        "\n--- dead-column trimming (lineage-driven projection) ---\n"
        "%10s | full %s -> trimmed %s (%.0f%% fewer bytes "
        "materialized) | %lld rows\n",
        "dead_cols",
        bauplan::FormatBytes(static_cast<uint64_t>(untrimmed_bytes))
            .c_str(),
        bauplan::FormatBytes(static_cast<uint64_t>(trimmed_bytes))
            .c_str(),
        reduction * 100.0, static_cast<long long>(trimmed->rows));
    std::ostringstream j;
    j << "{\"workload\": \"dead_columns\", \"rows_in\": " << rows
      << ", \"rows_out\": " << trimmed->rows
      << ", \"untrimmed_bytes\": " << untrimmed_bytes
      << ", \"trimmed_bytes\": " << trimmed_bytes
      << ", \"bytes_reduction\": " << reduction
      << ", \"untrimmed_seconds\": " << untrimmed->seconds
      << ", \"trimmed_seconds\": " << trimmed->seconds << "}";
    json_rows.push_back(j.str());
  }

  // Threads sweep: the breaker workloads on the streaming engine, one
  // run per requested thread count, through an external pool so the
  // partitioned breakers engage regardless of the host's core count.
  // Morsels are fixed at 4096 rows so the run/partial decomposition is
  // identical across thread counts (and fine-grained enough that the
  // aggregate merge crosses its 1024-group partitioning floor even in
  // smoke mode). Hard failures: any thread count's bytes diverging from
  // the 1-thread run, or a multi-thread run whose exec.breaker.*
  // engagement counters stay at the serial values. The 8-vs-1 >= 2x
  // timing gate needs real cores; it records itself as skipped when the
  // host has fewer than 8 hardware threads.
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::string sweep_gate = "not_run";
  if (!sweep_threads.empty()) {
    struct SweepWorkload {
      const char* name;
      const char* sql;
      bool expect_partitions;  // join build / aggregate merge partitions
      bool expect_runs;        // parallel sort runs
    };
    const SweepWorkload kSweep[] = {
        {"join",
         "SELECT t.trip_id, d.payload FROM taxi t "
         "JOIN details d ON t.trip_id = d.key",
         true, false},
        {"aggregate", kWorkloads[1].sql, true, false},
        {"sort", "SELECT trip_id, fare FROM taxi ORDER BY fare DESC, "
                 "trip_id",
         false, true},
    };
    const int64_t kSweepMorselRows = 4096;
    std::printf("\n--- streaming threads sweep (hw_threads=%d) ---\n",
                hw_threads);
    sweep_gate = hw_threads >= 8
                     ? "passed"
                     : bauplan::StrCat("skipped (hw_threads=", hw_threads,
                                       " < 8)");
    for (const SweepWorkload& w : kSweep) {
      double t1_seconds = 0;
      std::vector<uint8_t> t1_bytes;
      for (int threads : sweep_threads) {
        bauplan::ThreadPool pool(threads > 1 ? threads - 1 : 0);
        auto r = RunMode(provider, w.sql, ExecOptions::Engine::kStreaming,
                         threads, iters, /*memory_budget=*/0, {},
                         threads > 1 ? &pool : nullptr, kSweepMorselRows);
        if (!r.ok()) {
          std::fprintf(stderr, "%s sweep threads=%d failed: %s\n", w.name,
                       threads, r.status().ToString().c_str());
          return 1;
        }
        if (threads == 1) {
          t1_seconds = r->seconds;
          t1_bytes = r->bytes;
        }
        bool identical = t1_bytes.empty() || r->bytes == t1_bytes;
        if (!identical) {
          std::fprintf(stderr,
                       "FAIL: %s sweep threads=%d not bit-identical to "
                       "1-thread\n",
                       w.name, threads);
          ok = false;
        }
        bool engaged = (!w.expect_partitions || r->breaker_partitions > 1) &&
                       (!w.expect_runs || r->sort_runs > 1);
        if (threads > 1 && !engaged) {
          std::fprintf(stderr,
                       "FAIL: %s sweep threads=%d did not engage the "
                       "parallel breaker (partitions=%lld runs=%lld)\n",
                       w.name, threads,
                       static_cast<long long>(r->breaker_partitions),
                       static_cast<long long>(r->sort_runs));
          ok = false;
        }
        double speedup = t1_seconds > 0 ? t1_seconds / r->seconds : 1.0;
        if (!smoke && hw_threads >= 8 && threads == 8 &&
            w.expect_partitions && speedup < 2.0) {
          std::fprintf(stderr,
                       "FAIL: %s sweep 8-thread speedup %.2fx < 2.0x over "
                       "1-thread streaming\n",
                       w.name, speedup);
          sweep_gate = "failed";
          ok = false;
        }
        std::printf("%10s | threads=%d %9.1fms (%.2fx vs 1t) | "
                    "partitions=%lld runs=%lld | %s\n",
                    w.name, threads, r->seconds * 1e3, speedup,
                    static_cast<long long>(r->breaker_partitions),
                    static_cast<long long>(r->sort_runs),
                    identical ? "bit-identical" : "DIVERGED");
        std::ostringstream j;
        j << "{\"workload\": \"" << w.name << "_sweep\", \"threads\": "
          << threads << ", \"rows_in\": " << rows
          << ", \"rows_out\": " << r->rows
          << ", \"seconds\": " << r->seconds
          << ", \"speedup_vs_1thread\": " << speedup
          << ", \"breaker_partitions\": " << r->breaker_partitions
          << ", \"sort_runs\": " << r->sort_runs
          << ", \"bit_identical\": " << (identical ? "true" : "false")
          << "}";
        json_rows.push_back(j.str());
      }
    }
  }

  if (!ok) return 1;

  std::printf("\nvectorized: typed kernels replace boxed per-row Values; "
              "parallel adds\nmorsel-driven execution (64K-row morsels, "
              "deterministic merge order —\n8-thread output is "
              "bit-identical to 1-thread). streaming pushes morsels\n"
              "through operator pipelines instead of materializing every "
              "intermediate\n(peak str/mat compares the largest "
              "intermediate each engine held).\n");

  std::ofstream json_out("BENCH_query.json");
  if (json_out) {
    json_out << "{\n  \"bench\": \"query_engine\",\n  \"rows\": " << rows
             << ",\n  \"threads\": " << parallel_threads
             << ",\n  \"hw_threads\": " << hw_threads
             << ",\n  \"smoke\": " << (smoke ? "true" : "false")
             << ",\n  \"sweep_timing_gate\": \"" << sweep_gate
             << "\",\n  \"workloads\": [\n";
    for (size_t i = 0; i < json_rows.size(); ++i) {
      json_out << "    " << json_rows[i]
               << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    json_out << "  ]\n}\n";
    std::printf("results written to BENCH_query.json\n");
  }
  return 0;
}
