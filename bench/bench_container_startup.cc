// Sections 4.2 and 4.5: container start latencies. The paper's claims:
//   - frozen-container resume in ~300 ms ("fast startup time (300ms)"),
//   - Spark commands start in 300 ms on pre-warmed custom containers,
//     versus waiting for a Spark cluster to launch,
//   - cold starts are dominated by package install, which the shared
//     package cache amortizes across containers.
//
// The bench prints the start-latency ladder (cold with cold cache, cold
// with warm cache, frozen resume, warm dispatch, Spark cluster, Spark
// job on live cluster) and a cold-start sweep over requirement-set size.

#include <cstdio>

#include "common/clock.h"
#include "common/strings.h"
#include "runtime/container_manager.h"
#include "runtime/package.h"
#include "runtime/package_cache.h"
#include "runtime/spark_model.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::Rng;
using bauplan::SimClock;
using namespace bauplan::runtime;

}  // namespace

int main() {
  SimClock clock;
  PackageCache cache(&clock, PackageCache::Options{});
  ContainerManager manager(&clock, &cache);
  PackageRegistry registry(5000, 1.1, 99);
  Rng rng(7);

  ContainerSpec spec;
  spec.packages = registry.SampleRequirementSet(rng, 4);

  std::printf("=== Sections 4.2/4.5: container start latency ladder "
              "===\n\n");
  std::printf("environment: python3.11 + %zu packages (%s)\n\n",
              spec.packages.size(),
              bauplan::FormatBytes(spec.PackageBytes()).c_str());

  // 1. Cold start, cold package cache.
  auto cold_cold = manager.Acquire(spec);
  (void)manager.Release(cold_cold->container_id);
  // 2. Cold start, warm package cache (fresh host, same cache).
  manager.Clear();
  auto cold_warm = manager.Acquire(spec);
  (void)manager.Release(cold_warm->container_id);
  // 3. Frozen resume.
  auto resume = manager.Acquire(spec);
  (void)manager.Release(resume->container_id, /*freeze=*/false);
  // 4. Warm dispatch.
  auto warm = manager.Acquire(spec);
  (void)manager.Release(warm->container_id);

  // 5-6. The Spark baseline.
  SparkSessionModel spark(&clock);
  uint64_t spark_cold = spark.SubmitJob();
  uint64_t spark_live = spark.SubmitJob();

  std::printf("%-38s %12s\n", "start kind", "latency(sim)");
  std::printf("%-38s %12s\n", "cold start (cold package cache)",
              FormatDurationMicros(cold_cold->startup_micros).c_str());
  std::printf("%-38s %12s\n", "cold start (warm package cache)",
              FormatDurationMicros(cold_warm->startup_micros).c_str());
  std::printf("%-38s %12s   <-- the paper's 300 ms\n",
              "frozen-container resume",
              FormatDurationMicros(resume->startup_micros).c_str());
  std::printf("%-38s %12s\n", "warm dispatch (same DAG)",
              FormatDurationMicros(warm->startup_micros).c_str());
  std::printf("%-38s %12s\n", "Spark: cluster + session + job",
              FormatDurationMicros(spark_cold).c_str());
  std::printf("%-38s %12s\n", "Spark: job on live session",
              FormatDurationMicros(spark_live).c_str());

  double vs_spark = static_cast<double>(spark_cold) /
                    static_cast<double>(resume->startup_micros);
  std::printf("\nfrozen resume vs Spark cluster launch: %.0fx faster; a "
              "materialization step\n\"looks no slower than running any "
              "other Python function\" (section 4.2).\n\n",
              vs_spark);

  // Cold-start sweep over requirement-set size (cold cache each time).
  std::printf("--- cold start vs requirement-set size (cold cache) ---\n");
  std::printf("%10s %14s %14s\n", "packages", "payload", "cold_start");
  for (size_t k : {0u, 1u, 2u, 4u, 8u, 16u}) {
    cache.Clear();
    manager.Clear();
    ContainerSpec sweep_spec;
    sweep_spec.packages = registry.SampleRequirementSet(rng, k);
    auto acq = manager.Acquire(sweep_spec);
    (void)manager.Release(acq->container_id);
    std::printf("%10zu %14s %14s\n", k,
                bauplan::FormatBytes(sweep_spec.PackageBytes()).c_str(),
                FormatDurationMicros(acq->startup_micros).c_str());
  }
  std::printf("\npaper:    300 ms startup via freeze/pause; cold starts "
              "dominated by packages\nmeasured: resume is exactly 300 ms; "
              "cold start grows with payload and shrinks\n          with "
              "a warm package cache.\n");
  return 0;
}
