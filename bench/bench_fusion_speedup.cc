// Section 4.4.2's headline claim: mapping the logical plan isomorphically
// to one serverless function per node (with every intermediate spilled
// through object storage) versus fusing the whole DAG into one in-memory
// execution with WHERE pushdown "results in 5x faster feedback loop even
// with small datasets".
//
// The bench runs the paper's appendix pipeline at several dataset sizes.
// For each size it measures the steady-state (warm) iteration latency of
// both modes — the feedback loop a developer actually sits in — plus the
// cold first run and the object-store traffic each mode causes.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "observability/trace.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::SimClock;
using bauplan::core::Bauplan;
using bauplan::core::PipelineRunOptions;
namespace span_kind = bauplan::observability::span_kind;

struct ModeResult {
  uint64_t cold_micros = 0;
  uint64_t warm_micros = 0;
  int64_t spill_requests = 0;
  int64_t spill_bytes = 0;
  /// Where the warm run's simulated time went, summed from the span
  /// trace: SQL bodies, spill traffic, source scans, expectations.
  uint64_t span_sql_micros = 0;
  uint64_t span_spill_micros = 0;
  uint64_t span_scan_micros = 0;
  uint64_t span_expectation_micros = 0;
  size_t span_count = 0;
};

ModeResult RunMode(Bauplan& bp, const std::string& branch,
                   const bauplan::pipeline::PipelineProject& project,
                   const PipelineRunOptions& options) {
  ModeResult result;
  auto cold = bp.Run(project, branch, options);
  if (!cold.ok() || !cold->merged) return result;
  result.cold_micros = cold->total_micros;
  auto warm = bp.Run(project, branch, options);
  if (!warm.ok()) return result;
  result.warm_micros = warm->total_micros;
  result.spill_requests = warm->spill_metrics.TotalRequests();
  result.spill_bytes = warm->spill_metrics.bytes_read +
                       warm->spill_metrics.bytes_written;
  const bauplan::observability::Trace& trace = warm->trace;
  result.span_sql_micros = trace.SumByKind(span_kind::kSql);
  result.span_spill_micros = trace.SumByKind(span_kind::kSpill);
  result.span_scan_micros = trace.SumByKind(span_kind::kScan);
  result.span_expectation_micros = trace.SumByKind(span_kind::kExpectation);
  result.span_count = trace.spans.size();
  return result;
}

std::string ModeJson(const ModeResult& mode) {
  std::ostringstream out;
  out << "{\"cold_micros\": " << mode.cold_micros
      << ", \"warm_micros\": " << mode.warm_micros
      << ", \"spill_requests\": " << mode.spill_requests
      << ", \"spill_bytes\": " << mode.spill_bytes
      << ", \"spans\": {\"count\": " << mode.span_count
      << ", \"sql_micros\": " << mode.span_sql_micros
      << ", \"spill_micros\": " << mode.span_spill_micros
      << ", \"scan_micros\": " << mode.span_scan_micros
      << ", \"expectation_micros\": " << mode.span_expectation_micros
      << "}}";
  return out.str();
}

}  // namespace

int main() {
  std::printf("=== Section 4.4.2: fused vs naive pipeline execution ===\n");
  std::printf("(paper: pushing down filters and fusing SQL + expectation "
              "into one in-memory\n execution is ~5x faster than one "
              "function per node with object-store spill)\n\n");
  std::printf("%9s | %10s %10s %17s | %10s %10s | %8s\n", "rows",
              "naive_cold", "naive_warm", "naive_spill", "fused_cold",
              "fused_warm", "speedup");

  std::vector<std::string> fusion_json;
  std::vector<std::string> wavefront_json;
  for (int64_t rows : {10000, 50000, 100000, 250000}) {
    bauplan::storage::MemoryObjectStore store;
    SimClock clock(1700000000000000ull);
    bauplan::core::BauplanOptions options;
    options.lake_latency = bauplan::storage::LatencyModel();
    auto platform = Bauplan::Open(&store, &clock, options);
    if (!platform.ok()) return 1;
    Bauplan& bp = **platform;

    bauplan::workload::TaxiGenOptions gen;
    gen.rows = rows;
    gen.start_date = "2019-03-15";
    gen.days = 45;
    auto taxi = bauplan::workload::GenerateTaxiTable(gen);
    (void)bp.CreateTable("main", "taxi_table", taxi->schema());
    (void)bp.WriteTable("main", "taxi_table", *taxi);

    (void)bp.CreateBranch("naive_branch", "main");
    (void)bp.CreateBranch("fused_branch", "main");
    auto project = bauplan::pipeline::MakePaperTaxiPipeline(1.0);
    PipelineRunOptions naive_options;
    naive_options.fused = false;
    ModeResult naive = RunMode(bp, "naive_branch", project, naive_options);
    ModeResult fused = RunMode(bp, "fused_branch", project, {});
    if (naive.warm_micros == 0 || fused.warm_micros == 0) {
      std::fprintf(stderr, "run failed at %lld rows\n",
                   static_cast<long long>(rows));
      return 1;
    }
    double speedup = static_cast<double>(naive.warm_micros) /
                     static_cast<double>(fused.warm_micros);
    fusion_json.push_back(bauplan::StrCat(
        "{\"rows\": ", rows, ", \"naive\": ", ModeJson(naive),
        ", \"fused\": ", ModeJson(fused), "}"));
    std::printf("%9lld | %10s %10s %7lld ops %s | %10s %10s | %6.1fx\n",
                static_cast<long long>(rows),
                FormatDurationMicros(naive.cold_micros).c_str(),
                FormatDurationMicros(naive.warm_micros).c_str(),
                static_cast<long long>(naive.spill_requests),
                bauplan::FormatBytes(
                    static_cast<uint64_t>(naive.spill_bytes)).c_str(),
                FormatDurationMicros(fused.cold_micros).c_str(),
                FormatDurationMicros(fused.warm_micros).c_str(), speedup);
  }

  std::printf("\npaper:    ~5x faster feedback loop, avoided spillover to "
              "object storage\nmeasured: fused wins by the same order "
              "(startup amortization + no spill +\n          scan "
              "pushdown); fused spill traffic is exactly zero.\n");

  // ---- wavefront scheduling on a wide DAG -----------------------------
  // The naive one-function-per-node mapping leaves parallelism on the
  // table: a sequential walk pays the sum of all nodes even when most of
  // them are independent. The wavefront executor dispatches every ready
  // node together, so the naive run's latency collapses toward the DAG's
  // critical path — while fused execution still wins outright (no spill,
  // no per-node startup).
  std::printf("\n=== Wavefront scheduling: wide DAG (diamond + 6-way "
              "fan-out, 11 nodes) ===\n\n");
  std::printf("%9s | %10s %10s %10s | %9s %9s\n", "rows", "naive_seq",
              "naive_par", "fused", "par_gain", "fused_gain");

  bool parallel_ok = true;
  for (int64_t rows : {10000, 50000, 100000}) {
    bauplan::storage::MemoryObjectStore store;
    SimClock clock(1700000000000000ull);
    bauplan::core::BauplanOptions options;
    options.lake_latency = bauplan::storage::LatencyModel();
    // Enough workers for the widest wave (base + 6 fans) to spread out.
    options.scheduler.num_workers = 8;
    auto platform = Bauplan::Open(&store, &clock, options);
    if (!platform.ok()) return 1;
    Bauplan& bp = **platform;

    bauplan::workload::TaxiGenOptions gen;
    gen.rows = rows;
    gen.start_date = "2019-03-15";
    gen.days = 45;
    auto taxi = bauplan::workload::GenerateTaxiTable(gen);
    (void)bp.CreateTable("main", "taxi_table", taxi->schema());
    (void)bp.WriteTable("main", "taxi_table", *taxi);

    auto project = bauplan::pipeline::MakeWideTaxiPipeline(6);
    (void)bp.CreateBranch("seq_branch", "main");
    (void)bp.CreateBranch("par_branch", "main");
    (void)bp.CreateBranch("fused_branch", "main");
    PipelineRunOptions seq_options;
    seq_options.fused = false;
    PipelineRunOptions par_options;
    par_options.fused = false;
    par_options.parallelism = 8;
    ModeResult seq = RunMode(bp, "seq_branch", project, seq_options);
    ModeResult par = RunMode(bp, "par_branch", project, par_options);
    ModeResult fused = RunMode(bp, "fused_branch", project, {});
    if (seq.warm_micros == 0 || par.warm_micros == 0 ||
        fused.warm_micros == 0) {
      std::fprintf(stderr, "wide run failed at %lld rows\n",
                   static_cast<long long>(rows));
      return 1;
    }
    double par_gain = static_cast<double>(seq.warm_micros) /
                      static_cast<double>(par.warm_micros);
    double fused_gain = static_cast<double>(seq.warm_micros) /
                        static_cast<double>(fused.warm_micros);
    if (par_gain < 2.0 || fused.warm_micros >= par.warm_micros) {
      parallel_ok = false;
    }
    wavefront_json.push_back(bauplan::StrCat(
        "{\"rows\": ", rows, ", \"naive_sequential\": ", ModeJson(seq),
        ", \"naive_parallel\": ", ModeJson(par),
        ", \"fused\": ", ModeJson(fused), "}"));
    std::printf("%9lld | %10s %10s %10s | %8.1fx %8.1fx\n",
                static_cast<long long>(rows),
                FormatDurationMicros(seq.warm_micros).c_str(),
                FormatDurationMicros(par.warm_micros).c_str(),
                FormatDurationMicros(fused.warm_micros).c_str(), par_gain,
                fused_gain);
  }

  std::printf("\nwavefront: >= 2x over the sequential naive walk on a "
              "6-wide DAG; fused stays\n           the fastest mode "
              "(parallelism cannot buy back spill + startup).\n");
  if (!parallel_ok) {
    std::fprintf(stderr,
                 "FAIL: wavefront speedup below 2x or fused not fastest\n");
    return 1;
  }

  // Machine-readable record of the run, including where the simulated
  // time went per mode (from the span trace).
  std::ofstream json_out("BENCH_fusion.json");
  if (json_out) {
    json_out << "{\n  \"bench\": \"fusion_speedup\",\n  \"fusion\": [\n";
    for (size_t i = 0; i < fusion_json.size(); ++i) {
      json_out << "    " << fusion_json[i]
               << (i + 1 < fusion_json.size() ? ",\n" : "\n");
    }
    json_out << "  ],\n  \"wavefront\": [\n";
    for (size_t i = 0; i < wavefront_json.size(); ++i) {
      json_out << "    " << wavefront_json[i]
               << (i + 1 < wavefront_json.size() ? ",\n" : "\n");
    }
    json_out << "  ]\n}\n";
    std::printf("\nspan breakdown written to BENCH_fusion.json\n");
  }
  return 0;
}
