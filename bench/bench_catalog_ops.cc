// Section 4.3 (Fig. 4): the transform-audit-write pattern is only viable
// if git-for-data operations are cheap next to compute. The bench
// measures the full branch lifecycle (create ephemeral branch, commit
// artifacts into it, merge back, delete) against catalogs of growing
// size, on both the simulated S3 clock and real wall time.

#include <chrono>
#include <cstdio>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "common/strings.h"
#include "storage/metered_store.h"
#include "storage/object_store.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::SimClock;
using bauplan::catalog::Catalog;
using bauplan::catalog::TableChanges;

uint64_t WallMicrosNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  std::printf("=== Section 4.3: transform-audit-write cycle cost ===\n\n");
  std::printf("%10s | %14s %14s | %12s\n", "tables", "cycle(sim S3)",
              "commit(sim)", "cycle(wall)");

  for (int tables : {10, 100, 1000, 5000}) {
    bauplan::storage::MemoryObjectStore backing;
    SimClock clock(1700000000000000ull);
    bauplan::storage::MeteredObjectStore store(
        &backing, &clock, bauplan::storage::LatencyModel());
    auto catalog = Catalog::Open(&store, &clock);
    if (!catalog.ok()) return 1;

    // Populate the catalog.
    TableChanges seed;
    for (int i = 0; i < tables; ++i) {
      seed.puts[bauplan::StrCat("table_", i)] =
          bauplan::StrCat("meta/table_", i, "/v1");
    }
    if (!catalog->CommitChanges("main", "seed", "bench", seed).ok()) {
      return 1;
    }

    // One transform-audit-write cycle: ephemeral branch, two artifact
    // commits, merge, delete (exactly the Fig. 4 flow).
    uint64_t sim_start = clock.NowMicros();
    uint64_t wall_start = WallMicrosNow();
    auto run_branch = catalog->CreateEphemeralBranch("main", "run");
    if (!run_branch.ok()) return 1;
    TableChanges artifact1;
    artifact1.puts["trips"] = "meta/trips/v1";
    uint64_t commit_start = clock.NowMicros();
    if (!catalog->CommitChanges(*run_branch, "trips", "bench", artifact1)
             .ok()) {
      return 1;
    }
    uint64_t commit_sim = clock.NowMicros() - commit_start;
    TableChanges artifact2;
    artifact2.puts["pickups"] = "meta/pickups/v1";
    (void)catalog->CommitChanges(*run_branch, "pickups", "bench",
                                 artifact2);
    if (!catalog->Merge(*run_branch, "main", "bench").ok()) return 1;
    if (!catalog->DeleteBranch(*run_branch).ok()) return 1;
    uint64_t sim_cycle = clock.NowMicros() - sim_start;
    uint64_t wall_cycle = WallMicrosNow() - wall_start;

    std::printf("%10d | %14s %14s | %12s\n", tables,
                FormatDurationMicros(sim_cycle).c_str(),
                FormatDurationMicros(commit_sim).c_str(),
                FormatDurationMicros(wall_cycle).c_str());
  }

  std::printf("\npaper:    every run lives in an ephemeral branch; the "
              "versioning machinery\n          must be negligible next "
              "to compute\nmeasured: a full cycle costs a handful of "
              "object-store round trips (sub-second\n          even on "
              "S3 latencies) and is flat-ish in catalog size.\n");
  return 0;
}
