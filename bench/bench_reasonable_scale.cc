// Section 3.1: the Reasonable Scale hypothesis — most real workloads
// (P80 scan ~750 MB) fit comfortably on a single node, so an embedded
// engine beats a distributed cluster on the feedback loop. This is the
// one wall-clock benchmark in the suite (google-benchmark): the actual
// C++ engine executing the paper's queries over growing taxi tables,
// in-process, on one core.

#include <benchmark/benchmark.h>

#include "columnar/table.h"
#include "common/clock.h"
#include "sql/engine.h"
#include "storage/object_store.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::columnar::Table;
using bauplan::sql::MemoryTableProvider;
using bauplan::sql::RunQuery;

MemoryTableProvider MakeProvider(int64_t rows) {
  bauplan::workload::TaxiGenOptions options;
  options.rows = rows;
  options.start_date = "2019-03-15";
  options.days = 45;
  MemoryTableProvider provider;
  provider.AddTable("taxi_table",
                    *bauplan::workload::GenerateTaxiTable(options));
  return provider;
}

// The paper's Step 1: filter + project.
void BM_PaperStep1Filter(benchmark::State& state) {
  MemoryTableProvider provider = MakeProvider(state.range(0));
  for (auto _ : state) {
    auto result = RunQuery(
        "SELECT pickup_location_id, passenger_count AS count, "
        "dropoff_location_id FROM taxi_table "
        "WHERE pickup_at >= '2019-04-01'",
        provider, &provider);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaperStep1Filter)->Arg(10000)->Arg(100000)->Arg(1000000);

// The paper's Step 3: group-by aggregation + sort.
void BM_PaperStep3GroupBy(benchmark::State& state) {
  MemoryTableProvider provider = MakeProvider(state.range(0));
  for (auto _ : state) {
    auto result = RunQuery(
        "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS "
        "counts FROM taxi_table GROUP BY pickup_location_id, "
        "dropoff_location_id ORDER BY counts DESC",
        provider, &provider);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaperStep3GroupBy)->Arg(10000)->Arg(100000)->Arg(1000000);

// A wider analytical query: filter + arithmetic + aggregate.
void BM_AnalyticsAggregate(benchmark::State& state) {
  MemoryTableProvider provider = MakeProvider(state.range(0));
  for (auto _ : state) {
    auto result = RunQuery(
        "SELECT zone, COUNT(*) AS n, AVG(fare) AS avg_fare, "
        "SUM(trip_distance * 1.6) AS km FROM taxi_table "
        "WHERE passenger_count IS NOT NULL AND fare BETWEEN 3 AND 200 "
        "GROUP BY zone HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 25",
        provider, &provider);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyticsAggregate)->Arg(10000)->Arg(100000)->Arg(1000000);

// Optimizer ablation: the same query with scan pushdown disabled.
void BM_AggregateNoPushdown(benchmark::State& state) {
  MemoryTableProvider provider = MakeProvider(state.range(0));
  bauplan::sql::QueryOptions options;
  options.optimizer.pushdown_predicates = false;
  options.optimizer.pushdown_projections = false;
  for (auto _ : state) {
    auto result = RunQuery(
        "SELECT zone, COUNT(*) AS n FROM taxi_table "
        "WHERE pickup_at >= '2019-04-01' GROUP BY zone",
        provider, &provider, options);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateNoPushdown)->Arg(100000);

void BM_AggregateWithPushdown(benchmark::State& state) {
  MemoryTableProvider provider = MakeProvider(state.range(0));
  for (auto _ : state) {
    auto result = RunQuery(
        "SELECT zone, COUNT(*) AS n FROM taxi_table "
        "WHERE pickup_at >= '2019-04-01' GROUP BY zone",
        provider, &provider);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateWithPushdown)->Arg(100000);

// Parallel file decode (section 5 future work): scan a fragmented table
// with 1 vs 4 decode threads; wall time shows the CPU-bound decode
// parallelizing.
void BM_ScanDecode(benchmark::State& state) {
  static bauplan::storage::MemoryObjectStore store;
  static bauplan::SimClock clock(0);
  static bauplan::table::TableOps ops(&store, &clock);
  static std::string metadata_key = [] {
    bauplan::workload::TaxiGenOptions gen;
    gen.rows = 50000;
    auto schema = bauplan::workload::GenerateTaxiTable(gen)->schema();
    std::string key = *ops.CreateTable("frag_table", schema);
    for (int i = 0; i < 8; ++i) {
      gen.seed = static_cast<uint64_t>(i + 1);
      key = *ops.Append(key, *bauplan::workload::GenerateTaxiTable(gen));
    }
    return key;
  }();
  bauplan::table::ScanOptions options;
  options.decode_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = ops.ScanTable(metadata_key, options);
    if (!result.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 400000);
}
BENCHMARK(BM_ScanDecode)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
