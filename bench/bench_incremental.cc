// Differential re-execution via the content-addressed artifact cache.
//
// The platform memoizes every post-audit node output under a Merkle key
// of (code, input content ids, env, audit specs). This bench quantifies
// the payoff on the dev-loop the paper's section 4.6 cares about: run a
// wide taxi pipeline, change ONE node, run again — only the changed
// node's cone may re-execute, everything else must be served from cache,
// and the results must be indistinguishable from a cold run.
//
// Phases (each gated; exit 1 on violation):
//   cold        first run fills the cache: zero hits, one insert per node
//   warm        identical re-run: every node a hit, zero functions
//               dispatched (cache.skipped_invocations == node count),
//               artifacts bit-identical to cold, simulated makespan
//               strictly smaller
//   incremental one fan-out node's SQL mutated: exactly that node
//               re-executes (its cone is itself — it has no consumers),
//               and every artifact is bit-identical to a cold --no-cache
//               run of the mutated project on a pristine platform
//   fault       every "cache/" store op fails: the run must still
//               succeed (degradation contract — zero hits, zero
//               failures), and the next healed run re-inserts
//
// `--smoke` shrinks the dataset and skips the wall-clock gate (wired
// into ctest); the full run writes BENCH_incremental.json either way.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/serialize.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "pipeline/project.h"
#include "storage/fault_injection_store.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::StrCat;

[[noreturn]] void Gate(const std::string& why) {
  std::fprintf(stderr, "GATE FAILED: %s\n", why.c_str());
  std::exit(1);
}

void Check(bool ok, const std::string& why) {
  if (!ok) Gate(why);
}

/// Rebuilds `in` with `node`'s SQL swapped for `new_sql` — the
/// "developer edited one model" step of the incremental loop.
bauplan::pipeline::PipelineProject MutateNode(
    const bauplan::pipeline::PipelineProject& in, const std::string& node,
    const std::string& new_sql) {
  bauplan::pipeline::PipelineProject out(in.name());
  for (const auto& n : in.nodes()) {
    bauplan::Status st =
        n.kind == bauplan::pipeline::NodeKind::kSqlModel
            ? out.AddSqlNode(n.name, n.name == node ? new_sql : n.code,
                             n.requirements)
            : out.AddExpectationNode(n.name, n.code, n.requirements);
    if (!st.ok()) Gate(StrCat("mutate failed: ", st.ToString()));
  }
  return out;
}

/// Serialized bytes of every artifact a run produced, keyed by node.
std::map<std::string, bauplan::Bytes> ArtifactBytes(
    const bauplan::core::RunReport& report) {
  std::map<std::string, bauplan::Bytes> bytes;
  for (const auto& [name, table] : report.artifacts) {
    bytes[name] = bauplan::columnar::SerializeTable(table);
  }
  return bytes;
}

void CheckBitIdentical(const std::map<std::string, bauplan::Bytes>& a,
                       const std::map<std::string, bauplan::Bytes>& b,
                       const std::string& label) {
  Check(a.size() == b.size(),
        StrCat(label, ": artifact count ", a.size(), " vs ", b.size()));
  for (const auto& [name, bytes] : a) {
    auto it = b.find(name);
    Check(it != b.end(), StrCat(label, ": artifact '", name, "' missing"));
    Check(bytes == it->second,
          StrCat(label, ": artifact '", name, "' bytes diverge"));
  }
}

struct PhaseRow {
  std::string phase;
  uint64_t simulated_micros = 0;
  double wall_ms = 0;
  int64_t hits = 0;
  int64_t skipped = 0;
  size_t executed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t rows = smoke ? 20000 : 500000;
  const int kFanOut = 6;

  // A fault-injection wrapper between the platform and its (in-memory)
  // lake lets the fault phase break exactly the "cache/" prefix.
  bauplan::storage::MemoryObjectStore base;
  bauplan::storage::FaultInjectionStore store(&base);
  bauplan::SimClock clock(1700000000000000ull);
  auto platform = bauplan::core::Bauplan::Open(&store, &clock);
  if (!platform.ok()) Gate(platform.status().ToString());
  bauplan::core::Bauplan& bp = **platform;

  bauplan::workload::TaxiGenOptions gen;
  gen.rows = rows;
  gen.start_date = "2019-03-01";
  auto taxi = bauplan::workload::GenerateTaxiTable(gen);
  if (!taxi.ok()) Gate(taxi.status().ToString());
  Check(bp.CreateTable("main", "taxi_table", taxi->schema()).ok() &&
            bp.WriteTable("main", "taxi_table", *taxi).ok(),
        "seeding taxi_table");

  auto project = bauplan::pipeline::MakeWideTaxiPipeline(kFanOut);
  const size_t node_count = project.nodes().size();

  bauplan::core::PipelineRunOptions options;
  options.fused = false;  // per-node functions: skipped dispatches count
  options.parallelism = 4;

  auto* skipped_counter =
      bp.metrics_registry()->GetCounter("cache.skipped_invocations");
  std::vector<PhaseRow> rows_out;

  auto run_phase = [&](const std::string& phase,
                       const bauplan::pipeline::PipelineProject& proj,
                       const bauplan::core::PipelineRunOptions& opts)
      -> bauplan::core::RunReport {
    int64_t hits_before = bp.artifact_cache_stats().hits;
    int64_t skipped_before = skipped_counter->Value();
    auto wall_start = std::chrono::steady_clock::now();
    auto report = bp.Run(proj, "main", opts);
    double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!report.ok()) {
      Gate(StrCat(phase, " run failed: ", report.status().ToString()));
    }
    Check(report->merged, StrCat(phase, " run did not merge: ",
                                 report->status));
    PhaseRow row;
    row.phase = phase;
    row.simulated_micros = report->total_micros;
    row.wall_ms = wall_ms;
    row.hits = bp.artifact_cache_stats().hits - hits_before;
    row.skipped = skipped_counter->Value() - skipped_before;
    for (const auto& node : report->nodes) {
      if (!node.cache_hit) ++row.executed;
    }
    rows_out.push_back(row);
    std::printf(
        "%-12s simulated=%-10s wall=%7.1f ms  hits=%-3lld "
        "skipped=%-3lld executed=%zu/%zu\n",
        phase.c_str(),
        bauplan::FormatDurationMicros(report->total_micros).c_str(),
        wall_ms, static_cast<long long>(row.hits),
        static_cast<long long>(row.skipped), row.executed, node_count);
    return std::move(*report);
  };

  // ---- cold: fill the cache ------------------------------------------
  auto cold = run_phase("cold", project, options);
  Check(rows_out.back().hits == 0, "cold run must not hit");
  Check(bp.artifact_cache_stats().inserts ==
            static_cast<int64_t>(node_count),
        StrCat("cold run must insert every node (",
               bp.artifact_cache_stats().inserts, " of ", node_count,
               ")"));
  auto cold_bytes = ArtifactBytes(cold);

  // ---- warm: identical re-run, nothing may execute -------------------
  auto warm = run_phase("warm", project, options);
  Check(rows_out.back().hits == static_cast<int64_t>(node_count),
        StrCat("warm run must hit every node, hit ",
               rows_out.back().hits));
  Check(rows_out.back().skipped == static_cast<int64_t>(node_count),
        StrCat("warm run must skip every invocation, skipped ",
               rows_out.back().skipped));
  Check(rows_out.back().executed == 0, "warm run executed a node");
  CheckBitIdentical(cold_bytes, ArtifactBytes(warm), "warm-vs-cold");
  Check(warm.total_micros < cold.total_micros,
        "warm run must beat the cold run on the simulated clock");

  // ---- incremental: mutate one leaf, only its cone re-executes -------
  const std::string mutated_sql =
      StrCat("SELECT dropoff_location_id, COUNT(*) AS rides_1 ",
             "FROM taxi_table WHERE passenger_count >= ", kFanOut + 1,
             " GROUP BY dropoff_location_id ORDER BY "
             "dropoff_location_id");
  auto mutated = MutateNode(project, "fan_1", mutated_sql);
  auto incremental = run_phase("incremental", mutated, options);
  Check(rows_out.back().hits == static_cast<int64_t>(node_count) - 1,
        StrCat("incremental run must hit all but fan_1, hit ",
               rows_out.back().hits));
  Check(rows_out.back().executed == 1,
        StrCat("incremental run must execute exactly fan_1, executed ",
               rows_out.back().executed));
  const auto* fan1 = incremental.FindNode("fan_1");
  Check(fan1 != nullptr && !fan1->cache_hit,
        "fan_1 must have executed fresh");
  Check(incremental.total_micros < cold.total_micros,
        "incremental run must beat the cold run on the simulated clock");

  // Reference: the same mutated project, cold, cache off, on a pristine
  // platform over the same seed data. Incremental must be
  // bit-identical — the cache may never change what a run produces.
  {
    bauplan::storage::MemoryObjectStore ref_base;
    bauplan::SimClock ref_clock(1700000000000000ull);
    auto ref_platform =
        bauplan::core::Bauplan::Open(&ref_base, &ref_clock);
    if (!ref_platform.ok()) Gate(ref_platform.status().ToString());
    bauplan::core::Bauplan& ref_bp = **ref_platform;
    Check(ref_bp.CreateTable("main", "taxi_table", taxi->schema()).ok() &&
              ref_bp.WriteTable("main", "taxi_table", *taxi).ok(),
          "seeding reference platform");
    bauplan::core::PipelineRunOptions no_cache = options;
    no_cache.use_cache = false;
    auto wall_start = std::chrono::steady_clock::now();
    auto reference = ref_bp.Run(mutated, "main", no_cache);
    double ref_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!reference.ok()) {
      Gate(StrCat("reference run failed: ",
                  reference.status().ToString()));
    }
    CheckBitIdentical(ArtifactBytes(*reference),
                      ArtifactBytes(incremental),
                      "incremental-vs-cold-reference");
    Check(incremental.total_micros < reference->total_micros,
          "incremental run must beat a cold run of the mutated project");
    std::printf(
        "%-12s simulated=%-10s wall=%7.1f ms  (no cache, pristine "
        "platform)\n",
        "reference",
        bauplan::FormatDurationMicros(reference->total_micros).c_str(),
        ref_wall_ms);
    // Simulated gates above are deterministic; the wall-clock gate only
    // runs on full datasets where the executed work dominates noise.
    if (!smoke) {
      double incr_wall = rows_out.back().wall_ms;
      Check(incr_wall < ref_wall_ms,
            StrCat("incremental wall time ", incr_wall,
                   " ms must beat the cold mutated run's ", ref_wall_ms,
                   " ms"));
    }
  }

  // ---- fault: cache store errors must never fail a run ---------------
  store.FailOnlyPrefix("cache/");
  store.FailAfter(0);
  auto faulted = run_phase("fault", mutated, options);
  Check(rows_out.back().hits == 0,
        "faulted probes must degrade to misses");
  Check(rows_out.back().executed == node_count,
        "faulted run must execute every node");
  CheckBitIdentical(ArtifactBytes(incremental), ArtifactBytes(faulted),
                    "fault-vs-incremental");
  store.Heal();

  // Healed: the degraded run dropped the unreachable entries from the
  // index, so the next clean run re-executes and re-inserts.
  int64_t inserts_before = bp.artifact_cache_stats().inserts;
  (void)run_phase("healed", mutated, options);
  Check(bp.artifact_cache_stats().inserts > inserts_before,
        "healed run must insert again");

  std::ofstream json_out("BENCH_incremental.json");
  if (json_out) {
    json_out << "{\n  \"bench\": \"incremental\",\n  \"rows\": " << rows
             << ",\n  \"nodes\": " << node_count
             << ",\n  \"fan_out\": " << kFanOut
             << ",\n  \"smoke\": " << (smoke ? "true" : "false")
             << ",\n  \"phases\": [\n";
    for (size_t i = 0; i < rows_out.size(); ++i) {
      const PhaseRow& r = rows_out[i];
      json_out << "    {\"phase\": \"" << r.phase
               << "\", \"simulated_micros\": " << r.simulated_micros
               << ", \"wall_ms\": " << r.wall_ms
               << ", \"cache_hits\": " << r.hits
               << ", \"skipped_invocations\": " << r.skipped
               << ", \"executed_nodes\": " << r.executed << "}"
               << (i + 1 < rows_out.size() ? ",\n" : "\n");
    }
    json_out << "  ]\n}\n";
    std::printf("results written to BENCH_incremental.json\n");
  }
  std::printf("all incremental-cache gates passed\n");
  return 0;
}
