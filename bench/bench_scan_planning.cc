// Section 4.2: the table format's job is to turn WHERE clauses into
// skipped I/O. The bench builds a month-partitioned taxi table from
// several appends (many files with partition values and column stats)
// and sweeps predicates of decreasing selectivity, reporting files
// pruned, bytes skipped, and the simulated scan latency against S3-class
// storage with and without pruning.

#include <cstdio>

#include "columnar/datetime.h"
#include "common/clock.h"
#include "common/strings.h"
#include "format/predicate.h"
#include "storage/metered_store.h"
#include "storage/object_store.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::SimClock;
using bauplan::columnar::ParseTimestampString;
using bauplan::columnar::Value;
using bauplan::format::ColumnPredicate;
using bauplan::format::CompareOp;
using bauplan::table::ScanOptions;
using bauplan::table::ScanPlan;
using bauplan::table::TableOps;

}  // namespace

int main() {
  bauplan::storage::MemoryObjectStore backing;
  SimClock clock(1700000000000000ull);
  bauplan::storage::MeteredObjectStore store(
      &backing, &clock, bauplan::storage::LatencyModel());
  TableOps ops(&store, &clock);

  // A table partitioned by month(pickup_at), loaded with six monthly
  // appends of 50k rows each.
  bauplan::table::PartitionSpec spec(
      {{"pickup_at", bauplan::table::Transform::kMonth, 0}});
  bauplan::workload::TaxiGenOptions gen;
  gen.rows = 50000;
  gen.days = 30;
  auto schema = bauplan::workload::GenerateTaxiTable(gen)->schema();
  auto key = ops.CreateTable("taxi_table", schema, spec);
  if (!key.ok()) return 1;
  std::string metadata_key = *key;
  const char* months[] = {"2019-01-01", "2019-02-01", "2019-03-01",
                          "2019-04-01", "2019-05-01", "2019-06-01"};
  uint64_t seed = 1;
  for (const char* month : months) {
    gen.start_date = month;
    gen.seed = seed++;
    auto data = bauplan::workload::GenerateTaxiTable(gen);
    auto next = ops.Append(metadata_key, *data);
    if (!next.ok()) return 1;
    metadata_key = *next;
  }
  auto metadata = ops.LoadMetadata(metadata_key);
  if (!metadata.ok()) return 1;

  std::printf("=== Section 4.2: partition pruning + zone-map skipping "
              "===\n\n");
  std::printf("table: 300k rows over 6 monthly partitions, spec = %s\n\n",
              spec.ToString().c_str());
  std::printf("%-44s | %5s %6s %6s | %10s %12s\n", "predicate", "files",
              "pruned", "rows", "bytes read", "latency(sim)");

  struct Case {
    const char* label;
    std::vector<ColumnPredicate> predicates;
  };
  int64_t june_bucket =
      (2019 - 1970) * 12 + 5;  // transformed value of June 2019
  (void)june_bucket;
  std::vector<Case> cases;
  cases.push_back({"(none: full scan)", {}});
  cases.push_back(
      {"pickup_at >= '2019-06-01'",
       {{"pickup_at", CompareOp::kGe,
         Value::Timestamp(*ParseTimestampString("2019-06-01"))}}});
  cases.push_back(
      {"pickup_at >= '2019-04-01'",
       {{"pickup_at", CompareOp::kGe,
         Value::Timestamp(*ParseTimestampString("2019-04-01"))}}});
  cases.push_back(
      {"'2019-03-01' <= pickup_at < '2019-04-01'",
       {{"pickup_at", CompareOp::kGe,
         Value::Timestamp(*ParseTimestampString("2019-03-01"))},
        {"pickup_at", CompareOp::kLt,
         Value::Timestamp(*ParseTimestampString("2019-04-01"))}}});
  cases.push_back(
      {"pickup_at >= '2020-01-01' (empty)",
       {{"pickup_at", CompareOp::kGe,
         Value::Timestamp(*ParseTimestampString("2020-01-01"))}}});
  cases.push_back(
      {"trip_id <= 1000 (ranges overlap: no pruning)",
       {{"trip_id", CompareOp::kLe, Value::Int64(1000)}}});

  for (const auto& test_case : cases) {
    ScanOptions options;
    options.predicates = test_case.predicates;
    ScanPlan plan;
    store.ResetMetrics();
    uint64_t start = clock.NowMicros();
    auto result = ops.ScanTable(metadata_key, options, &plan);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    uint64_t elapsed = clock.NowMicros() - start;
    std::printf("%-44s | %5lld %6lld %6lld | %10s %12s\n",
                test_case.label,
                static_cast<long long>(plan.files_total),
                static_cast<long long>(plan.files_pruned_by_partition +
                                       plan.files_pruned_by_stats),
                static_cast<long long>(result->num_rows()),
                bauplan::FormatBytes(static_cast<uint64_t>(
                    store.metrics().bytes_read)).c_str(),
                FormatDurationMicros(elapsed).c_str());
  }

  std::printf("\npaper:    every command over taxi_table resolves through "
              "table metadata; the\n          WHERE pushdown of 4.4.2 "
              "rides on exactly this pruning\nmeasured: selective "
              "predicates skip most files without opening them; the\n"
              "          empty-range scan touches no data objects at "
              "all.\n");
  return 0;
}
