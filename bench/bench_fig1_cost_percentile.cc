// Figure 1 (right): cumulative cost (credits) of running queries up to a
// given bytes-scanned percentile. The paper's design partner reported the
// 80th percentile of bytes scanned at ~750 MB, with queries up to that
// percentile responsible for ~80% of all credit usage.
//
// Two ingredients reproduce that point:
//   1. a log-normal bytes-scanned distribution calibrated so P80 = 750 MB
//      (log-normal body + power tail is what query logs look like), and
//   2. warehouse-style time billing: credits = rate * max(60 s, scan
//      time). Because even a multi-GB scan finishes inside the billing
//      minimum, cost is ~proportional to query count — the bottom 80% of
//      queries are ~80% of the credits. Billing minimums, not byte
//      volume, drive warehouse bills at Reasonable Scale.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "workload/cost_curve.h"
#include "workload/powerlaw.h"

int main() {
  using bauplan::Rng;

  const double kTargetP80Bytes = 750e6;  // the paper's 750 MB
  const double kSigma = 1.2;             // log-normal spread
  const int kQueries = 200000;
  // Warehouse billing: a credit-per-second rate with a 60 s minimum, and
  // an effective scan throughput for the billed duration.
  const double kMinBilledSeconds = 60.0;
  const double kScanBytesPerSecond = 250e6;
  const double kCreditsPerSecond = 0.0003;

  // Calibrate mu so the 80th percentile is exactly the target:
  // P80 = exp(mu + sigma * z80) with z80 = 0.8416.
  const double kMu = std::log(kTargetP80Bytes) - kSigma * 0.8416;

  Rng rng(424242);
  std::vector<uint64_t> bytes_scanned;
  std::vector<double> as_double;
  bytes_scanned.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    double b = std::exp(rng.Normal(kMu, kSigma));
    bytes_scanned.push_back(static_cast<uint64_t>(b));
    as_double.push_back(b);
  }

  auto billed_credits = [&](uint64_t bytes) {
    double scan_seconds =
        static_cast<double>(bytes) / kScanBytesPerSecond;
    return kCreditsPerSecond * std::max(kMinBilledSeconds, scan_seconds);
  };
  auto curve =
      bauplan::workload::ComputeCostCurve(bytes_scanned, billed_credits);
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 1 (right): cumulative cost vs bytes-scanned "
              "percentile ===\n\n");
  std::printf("workload: log-normal(sigma=%.1f) calibrated to P80 = %s; "
              "%d queries\n",
              kSigma,
              bauplan::FormatBytes(
                  static_cast<uint64_t>(kTargetP80Bytes)).c_str(),
              kQueries);
  std::printf("billing:  credits = rate * max(60 s, bytes / 250 MB/s)\n\n");
  std::printf("%10s %16s %18s\n", "percentile", "bytes_at_pct",
              "cum_cost_share");
  for (int p : {10, 20, 30, 40, 50, 60, 70, 75, 80, 85, 90, 95, 99, 100}) {
    const auto& point = (*curve)[static_cast<size_t>(p - 1)];
    std::printf("%9d%% %16s %17.1f%%%s\n", p,
                bauplan::FormatBytes(
                    static_cast<uint64_t>(point.bytes_at_percentile))
                    .c_str(),
                100.0 * point.cumulative_cost_share,
                p == 80 ? "   <-- paper's 80/80 point" : "");
  }

  double p80_bytes = *bauplan::workload::Percentile(as_double, 80.0);
  double p80_share = (*curve)[79].cumulative_cost_share;
  std::printf("\npaper:    P80 bytes ~ 750 MB; queries up to P80 ~ 80%% of "
              "credits\nmeasured: P80 bytes = %s; cost share = %.1f%%\n",
              bauplan::FormatBytes(static_cast<uint64_t>(p80_bytes))
                  .c_str(),
              100.0 * p80_share);
  return 0;
}
