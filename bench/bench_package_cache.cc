// Section 4.5: "we were able to exploit the power-law in package
// utilization to limit overall download times with an efficient local,
// disk-based cache" (following SOCK). The bench drives 10k requirement
// sets sampled from a Zipf popularity law through the cache at several
// disk capacities and reports hit rate, bytes downloaded, and mean
// per-environment provisioning time — including the no-cache ablation.

#include <cstdio>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "runtime/package.h"
#include "runtime/package_cache.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::Rng;
using bauplan::SimClock;
using bauplan::runtime::Package;
using bauplan::runtime::PackageCache;
using bauplan::runtime::PackageRegistry;

struct SweepResult {
  double hit_rate = 0;
  uint64_t bytes_downloaded = 0;
  uint64_t mean_env_micros = 0;
};

SweepResult RunSweep(const PackageRegistry& registry,
                     uint64_t capacity_bytes, int environments,
                     uint64_t seed) {
  SimClock clock;
  PackageCache::Options options;
  options.capacity_bytes = capacity_bytes;
  PackageCache cache(&clock, options);
  Rng rng(seed);
  uint64_t total_micros = 0;
  for (int i = 0; i < environments; ++i) {
    // A node's requirement set: 1-6 packages, popularity-sampled.
    size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    uint64_t start = clock.NowMicros();
    for (const Package& pkg : registry.SampleRequirementSet(rng, k)) {
      cache.Fetch(pkg);
    }
    total_micros += clock.NowMicros() - start;
  }
  SweepResult result;
  result.hit_rate = cache.metrics().HitRate();
  result.bytes_downloaded = cache.metrics().bytes_downloaded;
  result.mean_env_micros =
      total_micros / static_cast<uint64_t>(environments);
  return result;
}

}  // namespace

int main() {
  const int kEnvironments = 10000;
  PackageRegistry registry(5000, 1.1, 2024);

  std::printf("=== Section 4.5: power-law package utilization + disk "
              "cache ===\n\n");
  std::printf("universe: %zu packages (%s total), Zipf(s=1.1) "
              "popularity,\n%d environments of 1-6 packages each\n\n",
              registry.size(),
              bauplan::FormatBytes(registry.total_bytes()).c_str(),
              kEnvironments);

  std::printf("%14s %10s %16s %18s\n", "cache size", "hit rate",
              "bytes downloaded", "mean env provision");
  struct Config {
    const char* label;
    uint64_t bytes;
  };
  const Config configs[] = {
      {"disabled", 0},
      {"1 GiB", 1ull << 30},
      {"5 GiB", 5ull << 30},
      {"10 GiB", 10ull << 30},
      {"50 GiB", 50ull << 30},
  };
  SweepResult disabled;
  SweepResult best;
  for (const auto& config : configs) {
    SweepResult result =
        RunSweep(registry, config.bytes, kEnvironments, 7);
    if (config.bytes == 0) disabled = result;
    best = result;
    std::printf("%14s %9.1f%% %16s %18s\n", config.label,
                100.0 * result.hit_rate,
                bauplan::FormatBytes(result.bytes_downloaded).c_str(),
                FormatDurationMicros(result.mean_env_micros).c_str());
  }

  double saved = 1.0 - static_cast<double>(best.bytes_downloaded) /
                           static_cast<double>(disabled.bytes_downloaded);
  std::printf("\npaper:    the Zipf head makes a small disk cache remove "
              "most download time\nmeasured: the largest cache removes "
              "%.0f%% of download bytes and cuts mean\n          "
              "environment provisioning from %s to %s.\n",
              100.0 * saved,
              FormatDurationMicros(disabled.mean_env_micros).c_str(),
              FormatDurationMicros(best.mean_env_micros).c_str());
  return 0;
}
