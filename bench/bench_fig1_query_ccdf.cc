// Figure 1 (left): log-log CCDF of SQL query times for three companies,
// empirical and fitted. The paper anonymized real query-history logs by
// fitting the `powerlaw` package and re-sampling; we do the same from
// fitted company profiles, then re-fit with our own MLE estimator and
// print both series. Expected shape: straight lines in log-log space, a
// good chunk of queries in the 10^0-10^1 s range, heavier tails for
// bigger companies.

#include <cstdio>

#include "common/rng.h"
#include "workload/powerlaw.h"
#include "workload/query_log.h"

namespace {

using bauplan::Rng;
using bauplan::workload::ComputeCcdf;
using bauplan::workload::FitPowerLaw;
using bauplan::workload::GenerateQueryLog;
using bauplan::workload::PaperCompanyProfiles;
using bauplan::workload::Percentile;
using bauplan::workload::PowerLawCcdf;

}  // namespace

int main() {
  std::printf("=== Figure 1 (left): CCDF of SQL query times, 3 companies "
              "===\n\n");
  Rng rng(20230828);  // the workshop date as seed

  for (const auto& profile : PaperCompanyProfiles()) {
    auto log = GenerateQueryLog(profile, rng);
    auto fit = FitPowerLaw(log.durations_seconds, profile.xmin_seconds);
    if (!fit.ok()) {
      std::fprintf(stderr, "fit failed: %s\n",
                   fit.status().ToString().c_str());
      return 1;
    }

    std::printf("company: %s  (n=%lld queries/month)\n",
                log.company.c_str(),
                static_cast<long long>(log.durations_seconds.size()));
    std::printf("  generating alpha=%.2f xmin=%.2fs | refit alpha=%.3f "
                "(KS=%.4f)\n",
                profile.alpha, profile.xmin_seconds, fit->alpha,
                fit->ks_distance);
    double p50 = *Percentile(log.durations_seconds, 50);
    double p80 = *Percentile(log.durations_seconds, 80);
    double p99 = *Percentile(log.durations_seconds, 99);
    std::printf("  P50=%.2fs P80=%.2fs P99=%.2fs\n", p50, p80, p99);

    std::printf("  %12s %14s %14s\n", "seconds", "empirical_ccdf",
                "fitted_ccdf");
    auto ccdf = ComputeCcdf(log.durations_seconds, 12);
    for (const auto& point : ccdf) {
      std::printf("  %12.3f %14.6f %14.6f\n", point.x, point.ccdf,
                  PowerLawCcdf(*fit, point.x));
    }
    // Share of queries in the paper's highlighted 1-10 s band.
    int64_t in_band = 0;
    for (double d : log.durations_seconds) {
      if (d >= 1.0 && d <= 10.0) ++in_band;
    }
    std::printf("  queries in the 10^0-10^1 s range: %.1f%%\n\n",
                100.0 * static_cast<double>(in_band) /
                    static_cast<double>(log.durations_seconds.size()));
  }
  std::printf("paper: power-law-like behaviour holds for all companies "
              "(straight log-log lines);\nmeasured: refit alphas match the "
              "generating exponents and KS distances are small.\n");
  return 0;
}
