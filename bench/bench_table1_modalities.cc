// Table 1: use cases and interaction modalities in the data life cycle.
// Each cell of the paper's table is exercised against the platform:
//
//   | Use case                 | Env  | Mode           |
//   | Querying + Wrangling     | Dev  | Synch          |
//   | Querying + Wrangling     | Prod | Synch          |
//   | Transforming + Deploying | Dev  | Synch + Asynch |
//   | Transforming + Deploying | Prod | Asynch         |
//
// Dev = a feature branch, Prod = main. Sync = the caller blocks and the
// latency is the feedback loop; Async = an orchestrator submits and
// drains later. The bench reports the measured (simulated) end-to-end
// latency of each cell, demonstrating every modality the paper requires.

#include <cstdio>

#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "pipeline/project.h"
#include "runtime/executor.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace {

using bauplan::FormatDurationMicros;
using bauplan::SimClock;
using bauplan::core::Bauplan;

uint64_t Elapsed(SimClock& clock, uint64_t start) {
  return clock.NowMicros() - start;
}

}  // namespace

int main() {
  bauplan::storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  bauplan::core::BauplanOptions options;
  options.lake_latency = bauplan::storage::LatencyModel();  // S3-class
  auto platform = Bauplan::Open(&store, &clock, options);
  if (!platform.ok()) return 1;
  Bauplan& bp = **platform;

  bauplan::workload::TaxiGenOptions gen;
  gen.rows = 100000;
  gen.start_date = "2019-03-15";
  gen.days = 45;
  auto taxi = bauplan::workload::GenerateTaxiTable(gen);
  (void)bp.CreateTable("main", "taxi_table", taxi->schema());
  (void)bp.WriteTable("main", "taxi_table", *taxi);
  (void)bp.CreateBranch("dev", "main");
  auto project = bauplan::pipeline::MakePaperTaxiPipeline(1.0);

  std::printf("=== Table 1: use cases x environments x modalities ===\n\n");
  std::printf("%-26s %-5s %-14s %14s\n", "use case", "env", "mode",
              "latency(sim)");

  // QW / Dev / Sync: an analyst explores on a branch.
  uint64_t start = clock.NowMicros();
  auto q_dev = bp.Query(
      "SELECT zone, COUNT(*) AS trips, AVG(fare) AS avg_fare "
      "FROM taxi_table WHERE pickup_at >= '2019-04-01' "
      "GROUP BY zone ORDER BY trips DESC LIMIT 10",
      "dev");
  if (!q_dev.ok()) return 1;
  std::printf("%-26s %-5s %-14s %14s\n", "Querying + Wrangling", "Dev",
              "Synch", FormatDurationMicros(Elapsed(clock, start)).c_str());

  // QW / Prod / Sync: a dashboard reads main.
  start = clock.NowMicros();
  auto q_prod = bp.Query(
      "SELECT COUNT(*) AS trips FROM taxi_table", "main");
  if (!q_prod.ok()) return 1;
  std::printf("%-26s %-5s %-14s %14s\n", "Querying + Wrangling", "Prod",
              "Synch", FormatDurationMicros(Elapsed(clock, start)).c_str());

  // TD / Dev / Sync: the developer iterates on the pipeline and waits.
  start = clock.NowMicros();
  auto run_dev = bp.Run(project, "dev");
  if (!run_dev.ok() || !run_dev->merged) return 1;
  uint64_t dev_cold = Elapsed(clock, start);
  start = clock.NowMicros();
  (void)bp.Run(project, "dev");  // second iteration: warm feedback loop
  uint64_t dev_warm = Elapsed(clock, start);
  std::printf("%-26s %-5s %-14s %14s (warm iter %s)\n",
              "Transforming + Deploying", "Dev", "Synch",
              FormatDurationMicros(dev_cold).c_str(),
              FormatDurationMicros(dev_warm).c_str());

  // TD / Dev / Async: the same run submitted to the background executor.
  start = clock.NowMicros();
  bauplan::runtime::FunctionRequest dev_async;
  dev_async.name = "dev_pipeline_async";
  dev_async.memory_bytes = 1ull << 30;
  dev_async.body = [&] { return bp.Run(project, "dev").status(); };
  bp.executor()->Submit(std::move(dev_async));
  auto dev_reports = bp.executor()->Drain();
  if (!dev_reports.ok()) return 1;
  std::printf("%-26s %-5s %-14s %14s\n", "Transforming + Deploying",
              "Dev", "Asynch",
              FormatDurationMicros(Elapsed(clock, start)).c_str());

  // TD / Prod / Async: the orchestrator fires the nightly run on main
  // and checks back later.
  start = clock.NowMicros();
  bauplan::runtime::FunctionRequest prod_async;
  prod_async.name = "nightly_pipeline";
  prod_async.memory_bytes = 1ull << 30;
  prod_async.body = [&] { return bp.Run(project, "main").status(); };
  bp.executor()->Submit(std::move(prod_async));
  clock.AdvanceMicros(30ull * 60 * 1000000);  // orchestrator polls later
  auto prod_reports = bp.executor()->Drain();
  if (!prod_reports.ok()) return 1;
  std::printf("%-26s %-5s %-14s %14s (incl. 30 min queue)\n",
              "Transforming + Deploying", "Prod", "Asynch",
              FormatDurationMicros(Elapsed(clock, start)).c_str());

  std::printf("\npaper: a coherent experience must support all four "
              "cells;\nmeasured: every cell executes, sync latencies sit "
              "in the interactive range\nand async latency is dominated "
              "by orchestrator cadence, not the platform.\n");
  return 0;
}
