
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/container.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/container.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/container.cc.o.d"
  "/root/repo/src/runtime/container_manager.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/container_manager.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/container_manager.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/package.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/package.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/package.cc.o.d"
  "/root/repo/src/runtime/package_cache.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/package_cache.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/package_cache.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/bauplan_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/bauplan_runtime.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
