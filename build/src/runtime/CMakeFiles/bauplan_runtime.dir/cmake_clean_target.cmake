file(REMOVE_RECURSE
  "libbauplan_runtime.a"
)
