file(REMOVE_RECURSE
  "CMakeFiles/bauplan_runtime.dir/container.cc.o"
  "CMakeFiles/bauplan_runtime.dir/container.cc.o.d"
  "CMakeFiles/bauplan_runtime.dir/container_manager.cc.o"
  "CMakeFiles/bauplan_runtime.dir/container_manager.cc.o.d"
  "CMakeFiles/bauplan_runtime.dir/executor.cc.o"
  "CMakeFiles/bauplan_runtime.dir/executor.cc.o.d"
  "CMakeFiles/bauplan_runtime.dir/package.cc.o"
  "CMakeFiles/bauplan_runtime.dir/package.cc.o.d"
  "CMakeFiles/bauplan_runtime.dir/package_cache.cc.o"
  "CMakeFiles/bauplan_runtime.dir/package_cache.cc.o.d"
  "CMakeFiles/bauplan_runtime.dir/scheduler.cc.o"
  "CMakeFiles/bauplan_runtime.dir/scheduler.cc.o.d"
  "libbauplan_runtime.a"
  "libbauplan_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
