# Empty compiler generated dependencies file for bauplan_runtime.
# This may be replaced when dependencies are built.
