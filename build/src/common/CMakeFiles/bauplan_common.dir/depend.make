# Empty dependencies file for bauplan_common.
# This may be replaced when dependencies are built.
