file(REMOVE_RECURSE
  "libbauplan_common.a"
)
