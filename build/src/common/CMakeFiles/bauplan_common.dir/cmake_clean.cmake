file(REMOVE_RECURSE
  "CMakeFiles/bauplan_common.dir/clock.cc.o"
  "CMakeFiles/bauplan_common.dir/clock.cc.o.d"
  "CMakeFiles/bauplan_common.dir/hash.cc.o"
  "CMakeFiles/bauplan_common.dir/hash.cc.o.d"
  "CMakeFiles/bauplan_common.dir/logging.cc.o"
  "CMakeFiles/bauplan_common.dir/logging.cc.o.d"
  "CMakeFiles/bauplan_common.dir/rng.cc.o"
  "CMakeFiles/bauplan_common.dir/rng.cc.o.d"
  "CMakeFiles/bauplan_common.dir/status.cc.o"
  "CMakeFiles/bauplan_common.dir/status.cc.o.d"
  "CMakeFiles/bauplan_common.dir/strings.cc.o"
  "CMakeFiles/bauplan_common.dir/strings.cc.o.d"
  "libbauplan_common.a"
  "libbauplan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
