# Empty compiler generated dependencies file for bauplan_pipeline.
# This may be replaced when dependencies are built.
