file(REMOVE_RECURSE
  "libbauplan_pipeline.a"
)
