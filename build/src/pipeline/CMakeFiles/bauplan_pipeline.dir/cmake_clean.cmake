file(REMOVE_RECURSE
  "CMakeFiles/bauplan_pipeline.dir/dag.cc.o"
  "CMakeFiles/bauplan_pipeline.dir/dag.cc.o.d"
  "CMakeFiles/bauplan_pipeline.dir/project.cc.o"
  "CMakeFiles/bauplan_pipeline.dir/project.cc.o.d"
  "CMakeFiles/bauplan_pipeline.dir/run_registry.cc.o"
  "CMakeFiles/bauplan_pipeline.dir/run_registry.cc.o.d"
  "libbauplan_pipeline.a"
  "libbauplan_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
