file(REMOVE_RECURSE
  "CMakeFiles/bauplan.dir/main.cc.o"
  "CMakeFiles/bauplan.dir/main.cc.o.d"
  "bauplan"
  "bauplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
