# Empty dependencies file for bauplan.
# This may be replaced when dependencies are built.
