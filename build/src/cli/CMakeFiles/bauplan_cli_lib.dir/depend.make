# Empty dependencies file for bauplan_cli_lib.
# This may be replaced when dependencies are built.
