file(REMOVE_RECURSE
  "CMakeFiles/bauplan_cli_lib.dir/project_loader.cc.o"
  "CMakeFiles/bauplan_cli_lib.dir/project_loader.cc.o.d"
  "libbauplan_cli_lib.a"
  "libbauplan_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
