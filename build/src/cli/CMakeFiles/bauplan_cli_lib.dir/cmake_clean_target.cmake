file(REMOVE_RECURSE
  "libbauplan_cli_lib.a"
)
