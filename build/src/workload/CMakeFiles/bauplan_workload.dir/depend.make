# Empty dependencies file for bauplan_workload.
# This may be replaced when dependencies are built.
