file(REMOVE_RECURSE
  "libbauplan_workload.a"
)
