file(REMOVE_RECURSE
  "CMakeFiles/bauplan_workload.dir/cost_curve.cc.o"
  "CMakeFiles/bauplan_workload.dir/cost_curve.cc.o.d"
  "CMakeFiles/bauplan_workload.dir/powerlaw.cc.o"
  "CMakeFiles/bauplan_workload.dir/powerlaw.cc.o.d"
  "CMakeFiles/bauplan_workload.dir/query_log.cc.o"
  "CMakeFiles/bauplan_workload.dir/query_log.cc.o.d"
  "CMakeFiles/bauplan_workload.dir/taxi_gen.cc.o"
  "CMakeFiles/bauplan_workload.dir/taxi_gen.cc.o.d"
  "libbauplan_workload.a"
  "libbauplan_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
