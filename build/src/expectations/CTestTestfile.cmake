# CMake generated Testfile for 
# Source directory: /root/repo/src/expectations
# Build directory: /root/repo/build/src/expectations
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
