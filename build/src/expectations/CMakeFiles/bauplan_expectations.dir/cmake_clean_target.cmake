file(REMOVE_RECURSE
  "libbauplan_expectations.a"
)
