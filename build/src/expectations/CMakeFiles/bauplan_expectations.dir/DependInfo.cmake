
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expectations/expectation.cc" "src/expectations/CMakeFiles/bauplan_expectations.dir/expectation.cc.o" "gcc" "src/expectations/CMakeFiles/bauplan_expectations.dir/expectation.cc.o.d"
  "/root/repo/src/expectations/requirements.cc" "src/expectations/CMakeFiles/bauplan_expectations.dir/requirements.cc.o" "gcc" "src/expectations/CMakeFiles/bauplan_expectations.dir/requirements.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/bauplan_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
