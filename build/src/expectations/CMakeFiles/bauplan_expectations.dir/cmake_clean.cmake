file(REMOVE_RECURSE
  "CMakeFiles/bauplan_expectations.dir/expectation.cc.o"
  "CMakeFiles/bauplan_expectations.dir/expectation.cc.o.d"
  "CMakeFiles/bauplan_expectations.dir/requirements.cc.o"
  "CMakeFiles/bauplan_expectations.dir/requirements.cc.o.d"
  "libbauplan_expectations.a"
  "libbauplan_expectations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_expectations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
