# Empty compiler generated dependencies file for bauplan_expectations.
# This may be replaced when dependencies are built.
