file(REMOVE_RECURSE
  "libbauplan_catalog.a"
)
