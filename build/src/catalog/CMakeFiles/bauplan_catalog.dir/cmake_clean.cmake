file(REMOVE_RECURSE
  "CMakeFiles/bauplan_catalog.dir/catalog.cc.o"
  "CMakeFiles/bauplan_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/bauplan_catalog.dir/commit.cc.o"
  "CMakeFiles/bauplan_catalog.dir/commit.cc.o.d"
  "CMakeFiles/bauplan_catalog.dir/transaction.cc.o"
  "CMakeFiles/bauplan_catalog.dir/transaction.cc.o.d"
  "libbauplan_catalog.a"
  "libbauplan_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
