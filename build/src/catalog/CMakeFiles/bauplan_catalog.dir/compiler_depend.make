# Empty compiler generated dependencies file for bauplan_catalog.
# This may be replaced when dependencies are built.
