
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/encoding.cc" "src/format/CMakeFiles/bauplan_format.dir/encoding.cc.o" "gcc" "src/format/CMakeFiles/bauplan_format.dir/encoding.cc.o.d"
  "/root/repo/src/format/metadata.cc" "src/format/CMakeFiles/bauplan_format.dir/metadata.cc.o" "gcc" "src/format/CMakeFiles/bauplan_format.dir/metadata.cc.o.d"
  "/root/repo/src/format/predicate.cc" "src/format/CMakeFiles/bauplan_format.dir/predicate.cc.o" "gcc" "src/format/CMakeFiles/bauplan_format.dir/predicate.cc.o.d"
  "/root/repo/src/format/reader.cc" "src/format/CMakeFiles/bauplan_format.dir/reader.cc.o" "gcc" "src/format/CMakeFiles/bauplan_format.dir/reader.cc.o.d"
  "/root/repo/src/format/writer.cc" "src/format/CMakeFiles/bauplan_format.dir/writer.cc.o" "gcc" "src/format/CMakeFiles/bauplan_format.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/bauplan_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
