file(REMOVE_RECURSE
  "libbauplan_format.a"
)
