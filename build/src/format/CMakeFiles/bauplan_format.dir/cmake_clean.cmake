file(REMOVE_RECURSE
  "CMakeFiles/bauplan_format.dir/encoding.cc.o"
  "CMakeFiles/bauplan_format.dir/encoding.cc.o.d"
  "CMakeFiles/bauplan_format.dir/metadata.cc.o"
  "CMakeFiles/bauplan_format.dir/metadata.cc.o.d"
  "CMakeFiles/bauplan_format.dir/predicate.cc.o"
  "CMakeFiles/bauplan_format.dir/predicate.cc.o.d"
  "CMakeFiles/bauplan_format.dir/reader.cc.o"
  "CMakeFiles/bauplan_format.dir/reader.cc.o.d"
  "CMakeFiles/bauplan_format.dir/writer.cc.o"
  "CMakeFiles/bauplan_format.dir/writer.cc.o.d"
  "libbauplan_format.a"
  "libbauplan_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
