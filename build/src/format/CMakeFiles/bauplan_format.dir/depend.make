# Empty dependencies file for bauplan_format.
# This may be replaced when dependencies are built.
