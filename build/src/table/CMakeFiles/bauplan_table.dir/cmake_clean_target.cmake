file(REMOVE_RECURSE
  "libbauplan_table.a"
)
