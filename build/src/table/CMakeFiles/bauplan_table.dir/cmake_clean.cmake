file(REMOVE_RECURSE
  "CMakeFiles/bauplan_table.dir/maintenance.cc.o"
  "CMakeFiles/bauplan_table.dir/maintenance.cc.o.d"
  "CMakeFiles/bauplan_table.dir/metadata.cc.o"
  "CMakeFiles/bauplan_table.dir/metadata.cc.o.d"
  "CMakeFiles/bauplan_table.dir/partition.cc.o"
  "CMakeFiles/bauplan_table.dir/partition.cc.o.d"
  "CMakeFiles/bauplan_table.dir/table_ops.cc.o"
  "CMakeFiles/bauplan_table.dir/table_ops.cc.o.d"
  "libbauplan_table.a"
  "libbauplan_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
