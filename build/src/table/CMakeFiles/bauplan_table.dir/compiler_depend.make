# Empty compiler generated dependencies file for bauplan_table.
# This may be replaced when dependencies are built.
