# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("columnar")
subdirs("format")
subdirs("storage")
subdirs("catalog")
subdirs("table")
subdirs("sql")
subdirs("expectations")
subdirs("pipeline")
subdirs("runtime")
subdirs("workload")
subdirs("core")
subdirs("cli")
