file(REMOVE_RECURSE
  "libbauplan_columnar.a"
)
