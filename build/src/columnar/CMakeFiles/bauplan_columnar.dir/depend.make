# Empty dependencies file for bauplan_columnar.
# This may be replaced when dependencies are built.
