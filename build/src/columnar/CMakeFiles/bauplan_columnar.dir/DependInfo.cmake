
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/builder.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/builder.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/builder.cc.o.d"
  "/root/repo/src/columnar/compute.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/compute.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/compute.cc.o.d"
  "/root/repo/src/columnar/csv.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/csv.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/csv.cc.o.d"
  "/root/repo/src/columnar/datetime.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/datetime.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/datetime.cc.o.d"
  "/root/repo/src/columnar/serialize.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/serialize.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/serialize.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/table.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/table.cc.o.d"
  "/root/repo/src/columnar/type.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/type.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/type.cc.o.d"
  "/root/repo/src/columnar/value.cc" "src/columnar/CMakeFiles/bauplan_columnar.dir/value.cc.o" "gcc" "src/columnar/CMakeFiles/bauplan_columnar.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
