file(REMOVE_RECURSE
  "CMakeFiles/bauplan_columnar.dir/builder.cc.o"
  "CMakeFiles/bauplan_columnar.dir/builder.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/compute.cc.o"
  "CMakeFiles/bauplan_columnar.dir/compute.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/csv.cc.o"
  "CMakeFiles/bauplan_columnar.dir/csv.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/datetime.cc.o"
  "CMakeFiles/bauplan_columnar.dir/datetime.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/serialize.cc.o"
  "CMakeFiles/bauplan_columnar.dir/serialize.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/table.cc.o"
  "CMakeFiles/bauplan_columnar.dir/table.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/type.cc.o"
  "CMakeFiles/bauplan_columnar.dir/type.cc.o.d"
  "CMakeFiles/bauplan_columnar.dir/value.cc.o"
  "CMakeFiles/bauplan_columnar.dir/value.cc.o.d"
  "libbauplan_columnar.a"
  "libbauplan_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
