file(REMOVE_RECURSE
  "libbauplan_sql.a"
)
