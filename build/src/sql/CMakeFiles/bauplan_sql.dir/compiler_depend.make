# Empty compiler generated dependencies file for bauplan_sql.
# This may be replaced when dependencies are built.
