file(REMOVE_RECURSE
  "CMakeFiles/bauplan_sql.dir/ast.cc.o"
  "CMakeFiles/bauplan_sql.dir/ast.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/engine.cc.o"
  "CMakeFiles/bauplan_sql.dir/engine.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/executor.cc.o"
  "CMakeFiles/bauplan_sql.dir/executor.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/expr_eval.cc.o"
  "CMakeFiles/bauplan_sql.dir/expr_eval.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/lexer.cc.o"
  "CMakeFiles/bauplan_sql.dir/lexer.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/logical_plan.cc.o"
  "CMakeFiles/bauplan_sql.dir/logical_plan.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/optimizer.cc.o"
  "CMakeFiles/bauplan_sql.dir/optimizer.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/parser.cc.o"
  "CMakeFiles/bauplan_sql.dir/parser.cc.o.d"
  "CMakeFiles/bauplan_sql.dir/planner.cc.o"
  "CMakeFiles/bauplan_sql.dir/planner.cc.o.d"
  "libbauplan_sql.a"
  "libbauplan_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
