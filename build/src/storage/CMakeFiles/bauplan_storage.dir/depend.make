# Empty dependencies file for bauplan_storage.
# This may be replaced when dependencies are built.
