file(REMOVE_RECURSE
  "libbauplan_storage.a"
)
