file(REMOVE_RECURSE
  "CMakeFiles/bauplan_storage.dir/metered_store.cc.o"
  "CMakeFiles/bauplan_storage.dir/metered_store.cc.o.d"
  "CMakeFiles/bauplan_storage.dir/object_store.cc.o"
  "CMakeFiles/bauplan_storage.dir/object_store.cc.o.d"
  "libbauplan_storage.a"
  "libbauplan_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
