
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/metered_store.cc" "src/storage/CMakeFiles/bauplan_storage.dir/metered_store.cc.o" "gcc" "src/storage/CMakeFiles/bauplan_storage.dir/metered_store.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/bauplan_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/bauplan_storage.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
