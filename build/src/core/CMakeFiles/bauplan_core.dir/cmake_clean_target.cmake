file(REMOVE_RECURSE
  "libbauplan_core.a"
)
