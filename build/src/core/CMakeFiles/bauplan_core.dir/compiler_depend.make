# Empty compiler generated dependencies file for bauplan_core.
# This may be replaced when dependencies are built.
