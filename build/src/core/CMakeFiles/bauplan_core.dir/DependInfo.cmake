
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit_log.cc" "src/core/CMakeFiles/bauplan_core.dir/audit_log.cc.o" "gcc" "src/core/CMakeFiles/bauplan_core.dir/audit_log.cc.o.d"
  "/root/repo/src/core/bauplan.cc" "src/core/CMakeFiles/bauplan_core.dir/bauplan.cc.o" "gcc" "src/core/CMakeFiles/bauplan_core.dir/bauplan.cc.o.d"
  "/root/repo/src/core/lakehouse_source.cc" "src/core/CMakeFiles/bauplan_core.dir/lakehouse_source.cc.o" "gcc" "src/core/CMakeFiles/bauplan_core.dir/lakehouse_source.cc.o.d"
  "/root/repo/src/core/pipeline_runner.cc" "src/core/CMakeFiles/bauplan_core.dir/pipeline_runner.cc.o" "gcc" "src/core/CMakeFiles/bauplan_core.dir/pipeline_runner.cc.o.d"
  "/root/repo/src/core/query_cache.cc" "src/core/CMakeFiles/bauplan_core.dir/query_cache.cc.o" "gcc" "src/core/CMakeFiles/bauplan_core.dir/query_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/bauplan_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expectations/CMakeFiles/bauplan_expectations.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bauplan_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bauplan_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/bauplan_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bauplan_table.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bauplan_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/bauplan_format.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bauplan_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
