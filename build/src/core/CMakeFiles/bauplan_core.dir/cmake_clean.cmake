file(REMOVE_RECURSE
  "CMakeFiles/bauplan_core.dir/audit_log.cc.o"
  "CMakeFiles/bauplan_core.dir/audit_log.cc.o.d"
  "CMakeFiles/bauplan_core.dir/bauplan.cc.o"
  "CMakeFiles/bauplan_core.dir/bauplan.cc.o.d"
  "CMakeFiles/bauplan_core.dir/lakehouse_source.cc.o"
  "CMakeFiles/bauplan_core.dir/lakehouse_source.cc.o.d"
  "CMakeFiles/bauplan_core.dir/pipeline_runner.cc.o"
  "CMakeFiles/bauplan_core.dir/pipeline_runner.cc.o.d"
  "CMakeFiles/bauplan_core.dir/query_cache.cc.o"
  "CMakeFiles/bauplan_core.dir/query_cache.cc.o.d"
  "libbauplan_core.a"
  "libbauplan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bauplan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
