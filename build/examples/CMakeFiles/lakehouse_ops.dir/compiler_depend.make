# Empty compiler generated dependencies file for lakehouse_ops.
# This may be replaced when dependencies are built.
