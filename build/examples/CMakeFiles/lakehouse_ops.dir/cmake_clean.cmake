file(REMOVE_RECURSE
  "CMakeFiles/lakehouse_ops.dir/lakehouse_ops.cpp.o"
  "CMakeFiles/lakehouse_ops.dir/lakehouse_ops.cpp.o.d"
  "lakehouse_ops"
  "lakehouse_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakehouse_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
