file(REMOVE_RECURSE
  "CMakeFiles/taxi_pipeline.dir/taxi_pipeline.cpp.o"
  "CMakeFiles/taxi_pipeline.dir/taxi_pipeline.cpp.o.d"
  "taxi_pipeline"
  "taxi_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
