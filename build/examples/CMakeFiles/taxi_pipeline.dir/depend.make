# Empty dependencies file for taxi_pipeline.
# This may be replaced when dependencies are built.
