# Empty dependencies file for serverless_analytics.
# This may be replaced when dependencies are built.
