file(REMOVE_RECURSE
  "CMakeFiles/serverless_analytics.dir/serverless_analytics.cpp.o"
  "CMakeFiles/serverless_analytics.dir/serverless_analytics.cpp.o.d"
  "serverless_analytics"
  "serverless_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
