file(REMOVE_RECURSE
  "CMakeFiles/platform_extensions_test.dir/platform_extensions_test.cc.o"
  "CMakeFiles/platform_extensions_test.dir/platform_extensions_test.cc.o.d"
  "platform_extensions_test"
  "platform_extensions_test.pdb"
  "platform_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
