# Empty compiler generated dependencies file for platform_extensions_test.
# This may be replaced when dependencies are built.
