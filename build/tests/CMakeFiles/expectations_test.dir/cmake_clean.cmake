file(REMOVE_RECURSE
  "CMakeFiles/expectations_test.dir/expectations_test.cc.o"
  "CMakeFiles/expectations_test.dir/expectations_test.cc.o.d"
  "expectations_test"
  "expectations_test.pdb"
  "expectations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expectations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
