# Empty compiler generated dependencies file for expectations_test.
# This may be replaced when dependencies are built.
