
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/maintenance_test.cc" "tests/CMakeFiles/maintenance_test.dir/maintenance_test.cc.o" "gcc" "tests/CMakeFiles/maintenance_test.dir/maintenance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/bauplan_table.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bauplan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/bauplan_format.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bauplan_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bauplan_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
