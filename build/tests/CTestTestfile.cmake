# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/expectations_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/platform_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
