# Empty compiler generated dependencies file for bench_scan_planning.
# This may be replaced when dependencies are built.
