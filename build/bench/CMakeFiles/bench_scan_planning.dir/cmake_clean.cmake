file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_planning.dir/bench_scan_planning.cc.o"
  "CMakeFiles/bench_scan_planning.dir/bench_scan_planning.cc.o.d"
  "bench_scan_planning"
  "bench_scan_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
