# Empty compiler generated dependencies file for bench_package_cache.
# This may be replaced when dependencies are built.
