file(REMOVE_RECURSE
  "CMakeFiles/bench_package_cache.dir/bench_package_cache.cc.o"
  "CMakeFiles/bench_package_cache.dir/bench_package_cache.cc.o.d"
  "bench_package_cache"
  "bench_package_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_package_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
