# Empty dependencies file for bench_table1_modalities.
# This may be replaced when dependencies are built.
