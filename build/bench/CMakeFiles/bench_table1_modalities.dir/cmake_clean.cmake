file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_modalities.dir/bench_table1_modalities.cc.o"
  "CMakeFiles/bench_table1_modalities.dir/bench_table1_modalities.cc.o.d"
  "bench_table1_modalities"
  "bench_table1_modalities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_modalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
