file(REMOVE_RECURSE
  "CMakeFiles/bench_container_startup.dir/bench_container_startup.cc.o"
  "CMakeFiles/bench_container_startup.dir/bench_container_startup.cc.o.d"
  "bench_container_startup"
  "bench_container_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_container_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
