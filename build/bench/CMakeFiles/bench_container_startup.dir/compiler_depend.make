# Empty compiler generated dependencies file for bench_container_startup.
# This may be replaced when dependencies are built.
