# Empty compiler generated dependencies file for bench_fig1_cost_percentile.
# This may be replaced when dependencies are built.
