file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cost_percentile.dir/bench_fig1_cost_percentile.cc.o"
  "CMakeFiles/bench_fig1_cost_percentile.dir/bench_fig1_cost_percentile.cc.o.d"
  "bench_fig1_cost_percentile"
  "bench_fig1_cost_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cost_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
