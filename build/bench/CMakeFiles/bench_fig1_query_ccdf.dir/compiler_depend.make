# Empty compiler generated dependencies file for bench_fig1_query_ccdf.
# This may be replaced when dependencies are built.
