file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_query_ccdf.dir/bench_fig1_query_ccdf.cc.o"
  "CMakeFiles/bench_fig1_query_ccdf.dir/bench_fig1_query_ccdf.cc.o.d"
  "bench_fig1_query_ccdf"
  "bench_fig1_query_ccdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_query_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
