file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_speedup.dir/bench_fusion_speedup.cc.o"
  "CMakeFiles/bench_fusion_speedup.dir/bench_fusion_speedup.cc.o.d"
  "bench_fusion_speedup"
  "bench_fusion_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
