
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fusion_speedup.cc" "bench/CMakeFiles/bench_fusion_speedup.dir/bench_fusion_speedup.cc.o" "gcc" "bench/CMakeFiles/bench_fusion_speedup.dir/bench_fusion_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bauplan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bauplan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/bauplan_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bauplan_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/expectations/CMakeFiles/bauplan_expectations.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bauplan_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/bauplan_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/bauplan_table.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/bauplan_format.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bauplan_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bauplan_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bauplan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
