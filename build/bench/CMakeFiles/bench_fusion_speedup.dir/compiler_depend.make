# Empty compiler generated dependencies file for bench_fusion_speedup.
# This may be replaced when dependencies are built.
