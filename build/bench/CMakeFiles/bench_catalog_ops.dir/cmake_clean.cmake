file(REMOVE_RECURSE
  "CMakeFiles/bench_catalog_ops.dir/bench_catalog_ops.cc.o"
  "CMakeFiles/bench_catalog_ops.dir/bench_catalog_ops.cc.o.d"
  "bench_catalog_ops"
  "bench_catalog_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_catalog_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
