# Empty compiler generated dependencies file for bench_catalog_ops.
# This may be replaced when dependencies are built.
