file(REMOVE_RECURSE
  "CMakeFiles/bench_reasonable_scale.dir/bench_reasonable_scale.cc.o"
  "CMakeFiles/bench_reasonable_scale.dir/bench_reasonable_scale.cc.o.d"
  "bench_reasonable_scale"
  "bench_reasonable_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reasonable_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
