#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/transaction.h"
#include "common/clock.h"
#include "storage/object_store.h"

namespace bauplan::catalog {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opened = Catalog::Open(&store_, &clock_);
    ASSERT_TRUE(opened.ok());
    catalog_ = std::make_unique<Catalog>(*opened);
  }

  Result<std::string> Commit(const std::string& branch,
                             const std::string& table,
                             const std::string& key,
                             const std::string& expected_head = "") {
    TableChanges changes;
    changes.puts[table] = key;
    return catalog_->CommitChanges(branch, "set " + table, "tester",
                                   changes, expected_head);
  }

  storage::MemoryObjectStore store_;
  SimClock clock_{1000};
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, FreshCatalogHasMainWithRootCommit) {
  EXPECT_TRUE(catalog_->HasBranch("main"));
  auto log = catalog_->Log("main");
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
  EXPECT_EQ((*log)[0].parent_id, "");
  auto tables = catalog_->GetTables("main");
  ASSERT_TRUE(tables.ok());
  EXPECT_TRUE(tables->empty());
}

TEST_F(CatalogTest, ReopenSeesExistingState) {
  ASSERT_TRUE(Commit("main", "taxi", "meta/v1").ok());
  auto reopened = Catalog::Open(&store_, &clock_);
  ASSERT_TRUE(reopened.ok());
  auto key = reopened->GetTable("main", "taxi");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, "meta/v1");
}

TEST_F(CatalogTest, CommitAdvancesBranchAndKeepsHistory) {
  auto c1 = Commit("main", "taxi", "meta/v1");
  ASSERT_TRUE(c1.ok());
  auto c2 = Commit("main", "taxi", "meta/v2");
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);

  EXPECT_EQ(*catalog_->GetTable("main", "taxi"), "meta/v2");
  // Old commit still readable by id (time travel).
  EXPECT_EQ(*catalog_->GetTable(*c1, "taxi"), "meta/v1");

  auto log = catalog_->Log("main");
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].id, *c2);
  EXPECT_EQ((*log)[1].id, *c1);
}

TEST_F(CatalogTest, CommitDeletesTable) {
  ASSERT_TRUE(Commit("main", "taxi", "meta/v1").ok());
  TableChanges changes;
  changes.deletes.push_back("taxi");
  ASSERT_TRUE(
      catalog_->CommitChanges("main", "drop taxi", "tester", changes).ok());
  EXPECT_TRUE(catalog_->GetTable("main", "taxi").status().IsNotFound());
  // Deleting a missing table fails.
  EXPECT_FALSE(
      catalog_->CommitChanges("main", "drop again", "tester", changes).ok());
}

TEST_F(CatalogTest, OptimisticConcurrencyConflict) {
  auto head = catalog_->ResolveRef("main");
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(Commit("main", "a", "k1").ok());  // branch moves
  auto stale = Commit("main", "b", "k2", *head);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsConflict());
  // With the right head it succeeds.
  auto fresh_head = catalog_->ResolveRef("main");
  EXPECT_TRUE(Commit("main", "b", "k2", *fresh_head).ok());
}

TEST_F(CatalogTest, BranchesAreIsolated) {
  ASSERT_TRUE(Commit("main", "taxi", "meta/v1").ok());
  ASSERT_TRUE(catalog_->CreateBranch("feat_1", "main").ok());
  ASSERT_TRUE(Commit("feat_1", "taxi", "meta/v2").ok());
  EXPECT_EQ(*catalog_->GetTable("main", "taxi"), "meta/v1");
  EXPECT_EQ(*catalog_->GetTable("feat_1", "taxi"), "meta/v2");
}

TEST_F(CatalogTest, BranchRules) {
  EXPECT_FALSE(catalog_->CreateBranch("", "main").ok());
  ASSERT_TRUE(catalog_->CreateBranch("dev", "main").ok());
  EXPECT_TRUE(catalog_->CreateBranch("dev", "main").IsAlreadyExists());
  EXPECT_TRUE(catalog_->CreateBranch("x", "no_such_ref").IsNotFound());
  EXPECT_TRUE(catalog_->DeleteBranch("main").IsFailedPrecondition());
  EXPECT_TRUE(catalog_->DeleteBranch("dev").ok());
  EXPECT_TRUE(catalog_->DeleteBranch("dev").IsNotFound());

  auto branches = catalog_->ListBranches();
  ASSERT_TRUE(branches.ok());
  ASSERT_EQ(branches->size(), 1u);
  EXPECT_EQ((*branches)[0], "main");
}

TEST_F(CatalogTest, TagsResolveButAreImmutableRefs) {
  auto c1 = Commit("main", "taxi", "meta/v1");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(catalog_->CreateTag("release-1", "main").ok());
  ASSERT_TRUE(Commit("main", "taxi", "meta/v2").ok());
  // Tag still points at v1.
  EXPECT_EQ(*catalog_->GetTable("release-1", "taxi"), "meta/v1");
  EXPECT_TRUE(catalog_->CreateTag("release-1", "main").IsAlreadyExists());
}

TEST_F(CatalogTest, ResolveRefKinds) {
  auto c1 = Commit("main", "t", "k");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*catalog_->ResolveRef("main"), *c1);
  EXPECT_EQ(*catalog_->ResolveRef(*c1), *c1);
  EXPECT_TRUE(catalog_->ResolveRef("bogus").status().IsNotFound());
}

TEST_F(CatalogTest, FastForwardMerge) {
  ASSERT_TRUE(catalog_->CreateBranch("feat", "main").ok());
  auto c = Commit("feat", "taxi", "meta/v1");
  ASSERT_TRUE(c.ok());
  auto merged = catalog_->Merge("feat", "main", "tester");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->fast_forward);
  EXPECT_EQ(merged->commit_id, *c);
  EXPECT_EQ(*catalog_->GetTable("main", "taxi"), "meta/v1");
}

TEST_F(CatalogTest, MergeAlreadyMergedIsNoop) {
  ASSERT_TRUE(catalog_->CreateBranch("feat", "main").ok());
  auto head = catalog_->ResolveRef("main");
  auto merged = catalog_->Merge("feat", "main", "tester");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->fast_forward);
  EXPECT_EQ(merged->commit_id, *head);
}

TEST_F(CatalogTest, ThreeWayMergeDisjointChanges) {
  ASSERT_TRUE(Commit("main", "base_table", "base/v1").ok());
  ASSERT_TRUE(catalog_->CreateBranch("feat", "main").ok());
  ASSERT_TRUE(Commit("feat", "feat_table", "feat/v1").ok());
  ASSERT_TRUE(Commit("main", "main_table", "main/v1").ok());

  auto merged = catalog_->Merge("feat", "main", "tester");
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(merged->fast_forward);
  EXPECT_EQ(*catalog_->GetTable("main", "base_table"), "base/v1");
  EXPECT_EQ(*catalog_->GetTable("main", "feat_table"), "feat/v1");
  EXPECT_EQ(*catalog_->GetTable("main", "main_table"), "main/v1");
  // Merge commit records both parents.
  auto log = catalog_->Log("main", 1);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)[0].merge_parent_id.empty());
}

TEST_F(CatalogTest, ThreeWayMergeConflict) {
  ASSERT_TRUE(Commit("main", "taxi", "base").ok());
  ASSERT_TRUE(catalog_->CreateBranch("feat", "main").ok());
  ASSERT_TRUE(Commit("feat", "taxi", "theirs").ok());
  ASSERT_TRUE(Commit("main", "taxi", "ours").ok());
  auto merged = catalog_->Merge("feat", "main", "tester");
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsConflict());
  // Target branch unchanged after a failed merge.
  EXPECT_EQ(*catalog_->GetTable("main", "taxi"), "ours");
}

TEST_F(CatalogTest, ThreeWayMergeDeletionPropagates) {
  ASSERT_TRUE(Commit("main", "taxi", "base").ok());
  ASSERT_TRUE(catalog_->CreateBranch("feat", "main").ok());
  TableChanges del;
  del.deletes.push_back("taxi");
  ASSERT_TRUE(
      catalog_->CommitChanges("feat", "drop", "tester", del).ok());
  ASSERT_TRUE(Commit("main", "other", "o/v1").ok());
  auto merged = catalog_->Merge("feat", "main", "tester");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(catalog_->GetTable("main", "taxi").status().IsNotFound());
  EXPECT_EQ(*catalog_->GetTable("main", "other"), "o/v1");
}

TEST_F(CatalogTest, EphemeralBranchNamesAreUnique) {
  auto b1 = catalog_->CreateEphemeralBranch("main", "run");
  auto b2 = catalog_->CreateEphemeralBranch("main", "run");
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_NE(*b1, *b2);
  EXPECT_TRUE(catalog_->HasBranch(*b1));
}

// ------------------------------------------------- transform-audit-write

TEST_F(CatalogTest, TransformAuditWriteCommitsOnSuccess) {
  auto result = RunTransformAuditWrite(
      catalog_.get(), "main", "tester",
      [](Catalog* cat, const std::string& branch) -> Status {
        TableChanges changes;
        changes.puts["pickups"] = "pickups/v1";
        return cat->CommitChanges(branch, "build pickups", "tester",
                                  changes).status();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*catalog_->GetTable("main", "pickups"), "pickups/v1");
  // Ephemeral branch is gone.
  EXPECT_FALSE(catalog_->HasBranch(result->ephemeral_branch));
}

TEST_F(CatalogTest, TransformAuditWriteRollsBackOnFailure) {
  std::string eph_name;
  auto result = RunTransformAuditWrite(
      catalog_.get(), "main", "tester",
      [&eph_name](Catalog* cat, const std::string& branch) -> Status {
        eph_name = branch;
        TableChanges changes;
        changes.puts["dirty"] = "dirty/v1";
        BAUPLAN_RETURN_NOT_OK(cat->CommitChanges(branch, "dirty write",
                                                 "tester", changes)
                                  .status());
        return Status::FailedPrecondition("expectation failed: mean <= 10");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  // Main never saw the dirty table; ephemeral branch is deleted.
  EXPECT_TRUE(catalog_->GetTable("main", "dirty").status().IsNotFound());
  EXPECT_FALSE(catalog_->HasBranch(eph_name));
}

TEST_F(CatalogTest, TransformAuditWriteOnMissingBranchFails) {
  auto result = RunTransformAuditWrite(
      catalog_.get(), "nope", "tester",
      [](Catalog*, const std::string&) { return Status::OK(); });
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(CatalogTest, CommitTimestampsComeFromClock) {
  clock_.AdvanceMicros(5000);
  auto c = Commit("main", "t", "k");
  ASSERT_TRUE(c.ok());
  auto commit = catalog_->GetCommit(*c);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->timestamp_micros, clock_.NowMicros());
}

TEST_F(CatalogTest, LogLimit) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Commit("main", "t", "k" + std::to_string(i)).ok());
  }
  auto log = catalog_->Log("main", 3);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 3u);
}


// ---------------------------------------------------------------- RefSpec

TEST(RefSpecTest, ParsePlainNameAndDefaults) {
  EXPECT_EQ(RefSpec().name(), "main");
  EXPECT_FALSE(RefSpec().has_timestamp());

  auto spec = RefSpec::Parse("feat_1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name(), "feat_1");
  EXPECT_FALSE(spec->has_timestamp());
  EXPECT_EQ(spec->ToString(), "feat_1");
}

TEST(RefSpecTest, ParseEpochMicrosSuffix) {
  auto spec = RefSpec::Parse("main@1680000000000000");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name(), "main");
  ASSERT_TRUE(spec->has_timestamp());
  EXPECT_EQ(spec->timestamp_micros(), 1680000000000000ull);
  // Round trip through ToString and back.
  auto again = RefSpec::Parse(spec->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *spec);
}

TEST(RefSpecTest, ParseIso8601Suffix) {
  // 2023-04-01T00:00:00 UTC = 1680307200 seconds.
  auto day = RefSpec::Parse("main@2023-04-01");
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(day->timestamp_micros(), 1680307200000000ull);

  auto second = RefSpec::Parse("main@2023-04-01T12:30:05");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->timestamp_micros(),
            1680307200000000ull + (12ull * 3600 + 30 * 60 + 5) * 1000000);
}

TEST(RefSpecTest, ParseErrors) {
  EXPECT_FALSE(RefSpec::Parse("").ok());
  EXPECT_FALSE(RefSpec::Parse("@123").ok());
  EXPECT_FALSE(RefSpec::Parse("main@").ok());
  EXPECT_FALSE(RefSpec::Parse("main@not-a-time").ok());
  EXPECT_FALSE(RefSpec::Parse("main@2023-13-01").ok());
}

TEST(RefSpecTest, LenientConversionRecordsBadTimestampSuffix) {
  // The implicit constructor is the migration path for call sites that
  // pass raw strings. A malformed "@timestamp" suffix keeps the raw
  // string as the name but records the parse error with a fix-it hint:
  // `main@2026-13-99` is a time-travel typo, not a branch name, and
  // resolving it as one produced a baffling unknown-ref message.
  RefSpec bad("main@oops");
  EXPECT_EQ(bad.name(), "main@oops");
  EXPECT_FALSE(bad.has_timestamp());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("epoch micros"), std::string::npos);

  RefSpec typo("main@2026-13-99");
  EXPECT_FALSE(typo.ok());

  // '@'-free strings never carry an error, however odd the name.
  RefSpec plain("feat/weird-name");
  EXPECT_TRUE(plain.ok());

  RefSpec good(std::string("main@1680000000000000"));
  EXPECT_EQ(good.name(), "main");
  EXPECT_TRUE(good.has_timestamp());
  EXPECT_TRUE(good.ok());
}

TEST_F(CatalogTest, ResolveRefSpecWithoutTimestampMatchesResolveRef) {
  ASSERT_TRUE(Commit("main", "t", "k1").ok());
  auto by_name = catalog_->ResolveRef("main");
  auto by_spec = catalog_->Resolve(RefSpec("main"));
  ASSERT_TRUE(by_spec.ok());
  EXPECT_EQ(*by_spec, *by_name);
}

TEST_F(CatalogTest, ResolveAsOfWalksToNewestCommitAtOrBefore) {
  ASSERT_TRUE(Commit("main", "t", "k1").ok());
  uint64_t after_first = clock_.NowMicros();
  clock_.AdvanceMicros(1000000);
  ASSERT_TRUE(Commit("main", "t", "k2").ok());
  auto head = catalog_->ResolveRef("main");
  ASSERT_TRUE(head.ok());

  // As-of the first commit's time: sees k1, not k2.
  auto pinned = catalog_->Resolve(RefSpec("main", after_first));
  ASSERT_TRUE(pinned.ok());
  EXPECT_NE(*pinned, *head);
  auto tables = catalog_->GetTables(*pinned);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->at("t"), "k1");

  // As-of now (or later): the head commit.
  auto at_head = catalog_->Resolve(RefSpec("main", clock_.NowMicros()));
  ASSERT_TRUE(at_head.ok());
  EXPECT_EQ(*at_head, *head);

  // As-of before the root commit: nothing to resolve.
  EXPECT_TRUE(
      catalog_->Resolve(RefSpec("main", 1)).status().IsNotFound());

  // Unknown ref still errors the usual way.
  EXPECT_TRUE(catalog_->Resolve(RefSpec("nope", after_first))
                  .status()
                  .IsNotFound());
}

TEST_F(CatalogTest, ResolveRejectsMalformedTimestampSuffix) {
  ASSERT_TRUE(Commit("main", "t", "k1").ok());
  // The swallowed parse error surfaces at resolution instead of a
  // misleading "'main@2026-13-99' is not a branch" message.
  auto resolved = catalog_->Resolve(RefSpec("main@2026-13-99"));
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsInvalidArgument());
  EXPECT_NE(resolved.status().message().find("YYYY-MM-DD"),
            std::string::npos);
}

}  // namespace
}  // namespace bauplan::catalog
