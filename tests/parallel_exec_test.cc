#include <gtest/gtest.h>

#include "core/bauplan.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace bauplan::core {
namespace {

using columnar::Table;

// End-to-end checks that the parallel naive (wavefront) execution mode is
// an observationally pure speedup: identical artifacts, expectations and
// spill traffic as the sequential walk, with a strictly lower makespan on
// a DAG that has independent branches.
class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opened = Bauplan::Open(&store_, &clock_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    platform_ = std::move(*opened);
    workload::TaxiGenOptions gen;
    gen.rows = 2000;
    gen.start_date = "2019-03-01";
    gen.days = 90;
    auto taxi = workload::GenerateTaxiTable(gen);
    ASSERT_TRUE(taxi.ok());
    ASSERT_TRUE(
        platform_->CreateTable("main", "taxi_table", taxi->schema()).ok());
    ASSERT_TRUE(platform_->WriteTable("main", "taxi_table", *taxi).ok());
  }

  Result<RunReport> RunWide(int parallelism) {
    PipelineRunOptions options;
    options.fused = false;
    options.parallelism = parallelism;
    // This suite compares *fresh* execution schedules; with the artifact
    // cache on, the second run would serve hits instead of executing.
    options.use_cache = false;
    return platform_->Run(pipeline::MakeWideTaxiPipeline(4), "main",
                          options);
  }

  void ExpectWorkersDrained() {
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(platform_->scheduler()->used_memory(w), 0u)
          << "worker " << w;
    }
  }

  storage::MemoryObjectStore store_;
  SimClock clock_{1700000000000000ull};
  std::unique_ptr<Bauplan> platform_;
};

void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& name) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << name;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << name;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.GetValue(r, c), b.GetValue(r, c))
          << name << " row " << r << " col " << c;
    }
  }
}

TEST_F(ParallelExecTest, ParallelMatchesSequentialAndIsFaster) {
  auto sequential = RunWide(/*parallelism=*/1);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  auto parallel = RunWide(/*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  const RunReport& seq = *sequential;
  const RunReport& par = *parallel;

  // Same artifacts, cell for cell.
  ASSERT_EQ(seq.artifacts.size(), par.artifacts.size());
  for (const auto& [name, table] : seq.artifacts) {
    auto it = par.artifacts.find(name);
    ASSERT_NE(it, par.artifacts.end()) << name;
    ExpectTablesIdentical(table, it->second, name);
  }

  // Same expectation outcomes and node set.
  EXPECT_EQ(seq.all_expectations_passed, par.all_expectations_passed);
  ASSERT_EQ(seq.nodes.size(), par.nodes.size());
  for (size_t i = 0; i < seq.nodes.size(); ++i) {
    EXPECT_EQ(seq.nodes[i].name, par.nodes[i].name);
    EXPECT_EQ(seq.nodes[i].output_rows, par.nodes[i].output_rows);
    EXPECT_EQ(seq.nodes[i].expectation_passed,
              par.nodes[i].expectation_passed);
  }

  // Same spill traffic: the bodies are identical, only the schedule
  // differs, so every byte through the spill store matches.
  EXPECT_EQ(seq.spill_metrics.puts, par.spill_metrics.puts);
  EXPECT_EQ(seq.spill_metrics.gets, par.spill_metrics.gets);
  EXPECT_EQ(seq.spill_metrics.bytes_written,
            par.spill_metrics.bytes_written);
  EXPECT_EQ(seq.spill_metrics.bytes_read, par.spill_metrics.bytes_read);
  EXPECT_EQ(seq.spill_metrics.simulated_micros,
            par.spill_metrics.simulated_micros);

  // The wide DAG has >= 4 independent nodes, so the wavefront makespan
  // beats the sequential sum.
  EXPECT_LT(par.total_micros, seq.total_micros);

  ExpectWorkersDrained();
}

TEST_F(ParallelExecTest, ParallelRunsAreDeterministic) {
  // Two fresh platforms, same seed: wavefront execution must not let
  // thread scheduling leak into results or simulated timings.
  auto run_fresh = [] {
    storage::MemoryObjectStore store;
    SimClock clock{1700000000000000ull};
    auto platform = Bauplan::Open(&store, &clock).ValueOrDie();
    workload::TaxiGenOptions gen;
    gen.rows = 2000;
    gen.start_date = "2019-03-01";
    gen.days = 90;
    auto taxi = workload::GenerateTaxiTable(gen);
    EXPECT_TRUE(
        platform->CreateTable("main", "taxi_table", taxi->schema()).ok());
    EXPECT_TRUE(platform->WriteTable("main", "taxi_table", *taxi).ok());
    PipelineRunOptions options;
    options.fused = false;
    options.parallelism = 4;
    return platform->Run(pipeline::MakeWideTaxiPipeline(4), "main",
                         options);
  };
  auto first = run_fresh();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = run_fresh();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->total_micros,
            second->total_micros);
  EXPECT_EQ(first->spill_metrics.simulated_micros,
            second->spill_metrics.simulated_micros);
  for (const auto& [name, table] : first->artifacts) {
    ExpectTablesIdentical(table, second->artifacts.at(name),
                          name);
  }
  // The span trace is canonicalized after extraction, so the full JSON
  // rendering — ids, ordering, timestamps — is bit-identical too, even
  // though wave bodies raced on real threads.
  EXPECT_EQ(first->trace.ToJson(), second->trace.ToJson());
}

TEST_F(ParallelExecTest, TraceCoversWavesNodesAndStorage) {
  auto run = RunWide(/*parallelism=*/4);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const observability::Trace& trace = run->trace;

  // Root span: the run, whose duration is exactly the reported makespan.
  const observability::Span* root = trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, observability::span_kind::kRun);
  EXPECT_EQ(root->DurationMicros(), run->total_micros);

  // Its children are waves, in schedule order.
  auto waves = trace.ChildrenOf(root->id);
  ASSERT_GE(waves.size(), 2u);  // wide DAG: base wave then fan-out wave
  for (const observability::Span* wave : waves) {
    EXPECT_EQ(wave->kind, observability::span_kind::kWave);
  }

  // Every executed node appears as a node span under some wave, with the
  // interval the report attributes to it, contained in its wave.
  for (const auto& node : run->nodes) {
    const observability::Span* node_span = nullptr;
    for (const observability::Span& span : trace.spans) {
      if (span.kind == observability::span_kind::kNode &&
          span.name == node.name) {
        node_span = &span;
        break;
      }
    }
    ASSERT_NE(node_span, nullptr) << node.name;
    // The node span covers placement + body; queue wait is reported
    // separately (the span starts when the worker picked the node up).
    EXPECT_EQ(node_span->DurationMicros(),
              node.total_micros - node.queue_micros)
        << node.name;
    const observability::Span* wave = trace.Find(node_span->parent_id);
    ASSERT_NE(wave, nullptr) << node.name;
    EXPECT_EQ(wave->kind, observability::span_kind::kWave);
    EXPECT_GE(node_span->start_micros, wave->start_micros) << node.name;
    EXPECT_LE(node_span->end_micros, wave->end_micros) << node.name;
  }

  // Storage and SQL work is visible as leaf spans: the naive mapping
  // scans sources, runs the query, and spills every intermediate. (The
  // test platform's instant storage model makes them zero-width, so
  // count presence, not duration.)
  auto count_kind = [&trace](const char* kind) {
    size_t count = 0;
    for (const observability::Span& span : trace.spans) {
      if (span.kind == kind) ++count;
    }
    return count;
  };
  EXPECT_GT(count_kind(observability::span_kind::kSql), 0u);
  EXPECT_GT(count_kind(observability::span_kind::kScan), 0u);
  EXPECT_GT(count_kind(observability::span_kind::kSpill), 0u);

  // Leaf spans sit inside their node's reported interval.
  for (const observability::Span& span : trace.spans) {
    if (span.kind != observability::span_kind::kSql) continue;
    const observability::Span* parent = trace.Find(span.parent_id);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->kind, observability::span_kind::kNode);
    EXPECT_GE(span.start_micros, parent->start_micros);
    EXPECT_LE(span.end_micros, parent->end_micros);
  }
}

TEST_F(ParallelExecTest, FailedNodeLeavesNoArtifactOrReservation) {
  pipeline::PipelineProject project("broken");
  ASSERT_TRUE(project
                  .AddSqlNode("ok_node",
                              "SELECT pickup_location_id FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("bad_node",
                              "SELECT no_such_column FROM taxi_table")
                  .ok());

  PipelineRunOptions options;
  options.fused = false;
  options.parallelism = 2;
  // The static pre-flight would refuse this project outright; skip it —
  // this test exercises how the *runtime* unwinds a mid-wave failure.
  options.verify = false;
  // Infrastructure failures are reported in-band: the run record says
  // failed and nothing merges.
  auto run = platform_->Run(project, "main", options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->merged);
  EXPECT_NE(run->status.find("failed"), std::string::npos);

  // The failed function registered no artifact location (a phantom entry
  // would fake locality for a spill that never happened) and every
  // memory reservation was unwound.
  EXPECT_EQ(platform_->scheduler()->WorkerOf("spill/bad_node.tbl"), -1);
  ExpectWorkersDrained();

  // The platform is still healthy: a clean run succeeds afterwards.
  auto retry = RunWide(/*parallelism=*/4);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry->all_expectations_passed);
}

}  // namespace
}  // namespace bauplan::core
