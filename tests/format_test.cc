#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "columnar/table.h"
#include "format/encoding.h"
#include "format/predicate.h"
#include "format/reader.h"
#include "format/writer.h"

namespace bauplan::format {
namespace {

using columnar::BoolBuilder;
using columnar::ColumnStats;
using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

/// n rows: id ascending, bucket = id / 100 (long runs), zone cycling over
/// 4 city names, fare = id * 0.5.
Table MakeTaxiTable(int64_t n) {
  Int64Builder id, bucket;
  StringBuilder zone;
  DoubleBuilder fare;
  const char* zones[] = {"JFK", "LGA", "SoHo", "Harlem"};
  for (int64_t i = 0; i < n; ++i) {
    id.Append(i);
    bucket.Append(i / 100);
    zone.Append(zones[i % 4]);
    fare.Append(static_cast<double>(i) * 0.5);
  }
  return *Table::Make(Schema({{"id", TypeId::kInt64, false},
                              {"bucket", TypeId::kInt64, false},
                              {"zone", TypeId::kString, false},
                              {"fare", TypeId::kDouble, false}}),
                      {id.Finish(), bucket.Finish(), zone.Finish(),
                       fare.Finish()});
}

// ---------------------------------------------------------------- Encoding

TEST(EncodingTest, ChoosesDictionaryForLowCardinalityStrings) {
  StringBuilder b;
  for (int i = 0; i < 1000; ++i) b.Append(i % 2 == 0 ? "alpha" : "beta");
  EXPECT_EQ(ChooseEncoding(*b.Finish()), Encoding::kDictionary);
}

TEST(EncodingTest, ChoosesPlainForUniqueStrings) {
  StringBuilder b;
  for (int i = 0; i < 1000; ++i) b.Append("value_" + std::to_string(i));
  EXPECT_EQ(ChooseEncoding(*b.Finish()), Encoding::kPlain);
}

TEST(EncodingTest, ChoosesRunLengthForRunHeavyInts) {
  Int64Builder b;
  for (int i = 0; i < 1000; ++i) b.Append(i / 250);  // 4 long runs
  EXPECT_EQ(ChooseEncoding(*b.Finish()), Encoding::kRunLength);
}

TEST(EncodingTest, ChoosesPlainForRandomInts) {
  Int64Builder b;
  for (int i = 0; i < 1000; ++i) b.Append(i * 2654435761LL % 997);
  EXPECT_EQ(ChooseEncoding(*b.Finish()), Encoding::kPlain);
}

TEST(EncodingTest, DictionaryRoundTripWithNulls) {
  StringBuilder b;
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 0) {
      b.AppendNull();
    } else {
      b.Append(i % 3 == 0 ? "x" : "yy");
    }
  }
  auto arr = b.Finish();
  BinaryWriter w;
  ASSERT_TRUE(EncodeArray(*arr, Encoding::kDictionary, &w).ok());
  BinaryReader r(w.buffer());
  auto back = DecodeArray(Encoding::kDictionary, &r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->length(), arr->length());
  for (int64_t i = 0; i < arr->length(); ++i) {
    EXPECT_EQ((*back)->IsNull(i), arr->IsNull(i));
    if (!arr->IsNull(i)) {
      EXPECT_EQ((*back)->GetValue(i), arr->GetValue(i));
    }
  }
}

TEST(EncodingTest, RunLengthRoundTripWithNulls) {
  Int64Builder b;
  for (int i = 0; i < 60; ++i) b.Append(7);
  for (int i = 0; i < 30; ++i) b.AppendNull();
  for (int i = 0; i < 10; ++i) b.Append(-1);
  auto arr = b.Finish();
  BinaryWriter w;
  ASSERT_TRUE(EncodeArray(*arr, Encoding::kRunLength, &w).ok());
  BinaryReader r(w.buffer());
  auto back = DecodeArray(Encoding::kRunLength, &r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->length(), 100);
  EXPECT_EQ((*back)->null_count(), 30);
  EXPECT_EQ((*back)->GetValue(0), Value::Int64(7));
  EXPECT_TRUE((*back)->IsNull(75));
  EXPECT_EQ((*back)->GetValue(95), Value::Int64(-1));
}

TEST(EncodingTest, RunLengthPreservesTimestampType) {
  Int64Builder b(TypeId::kTimestamp);
  for (int i = 0; i < 50; ++i) b.Append(1000000);
  BinaryWriter w;
  ASSERT_TRUE(EncodeArray(*b.Finish(), Encoding::kRunLength, &w).ok());
  BinaryReader r(w.buffer());
  auto back = DecodeArray(Encoding::kRunLength, &r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->type(), TypeId::kTimestamp);
}

TEST(EncodingTest, MismatchedEncodingRejected) {
  Int64Builder ints;
  ints.Append(1);
  BinaryWriter w;
  EXPECT_FALSE(EncodeArray(*ints.Finish(), Encoding::kDictionary, &w).ok());
  StringBuilder strs;
  strs.Append("x");
  EXPECT_FALSE(EncodeArray(*strs.Finish(), Encoding::kRunLength, &w).ok());
}

// ---------------------------------------------------------------- Predicate

ColumnStats StatsOf(int64_t min, int64_t max, int64_t nulls = 0,
                    int64_t count = 100) {
  ColumnStats s;
  s.min = Value::Int64(min);
  s.max = Value::Int64(max);
  s.null_count = nulls;
  s.value_count = count;
  return s;
}

TEST(PredicateTest, MightMatchRanges) {
  ColumnStats stats = StatsOf(10, 20);
  EXPECT_TRUE((ColumnPredicate{"c", CompareOp::kEq, Value::Int64(15)})
                  .MightMatch(stats));
  EXPECT_FALSE((ColumnPredicate{"c", CompareOp::kEq, Value::Int64(25)})
                   .MightMatch(stats));
  EXPECT_FALSE((ColumnPredicate{"c", CompareOp::kLt, Value::Int64(10)})
                   .MightMatch(stats));
  EXPECT_TRUE((ColumnPredicate{"c", CompareOp::kLe, Value::Int64(10)})
                  .MightMatch(stats));
  EXPECT_FALSE((ColumnPredicate{"c", CompareOp::kGt, Value::Int64(20)})
                   .MightMatch(stats));
  EXPECT_TRUE((ColumnPredicate{"c", CompareOp::kGe, Value::Int64(20)})
                  .MightMatch(stats));
}

TEST(PredicateTest, NeOnlyPrunesConstantChunks) {
  EXPECT_FALSE((ColumnPredicate{"c", CompareOp::kNe, Value::Int64(5)})
                   .MightMatch(StatsOf(5, 5)));
  EXPECT_TRUE((ColumnPredicate{"c", CompareOp::kNe, Value::Int64(5)})
                  .MightMatch(StatsOf(5, 6)));
}

TEST(PredicateTest, AllNullChunkNeverMatches) {
  ColumnStats s;
  s.null_count = 10;
  s.value_count = 10;
  EXPECT_FALSE((ColumnPredicate{"c", CompareOp::kGe, Value::Int64(0)})
                   .MightMatch(s));
}

TEST(PredicateTest, MatchesConcreteValues) {
  ColumnPredicate p{"c", CompareOp::kGe, Value::Int64(10)};
  EXPECT_TRUE(p.Matches(Value::Int64(10)));
  EXPECT_FALSE(p.Matches(Value::Int64(9)));
  EXPECT_FALSE(p.Matches(Value::Null()));
}

TEST(PredicateTest, MightMatchAllConjunction) {
  std::vector<ColumnPredicate> preds = {
      {"a", CompareOp::kGe, Value::Int64(0)},
      {"a", CompareOp::kLt, Value::Int64(100)},
      {"b", CompareOp::kEq, Value::Int64(5)}};
  EXPECT_TRUE(MightMatchAll(preds, "a", StatsOf(50, 60)));
  EXPECT_FALSE(MightMatchAll(preds, "a", StatsOf(200, 300)));
  // Predicates on other columns do not veto this column's stats.
  EXPECT_TRUE(MightMatchAll(preds, "b", StatsOf(5, 5)));
  EXPECT_FALSE(MightMatchAll(preds, "b", StatsOf(6, 9)));
}

// ---------------------------------------------------------------- File IO

TEST(BpfFileTest, RoundTripSingleRowGroup) {
  Table t = MakeTaxiTable(500);
  auto file = WriteBpfFile(t);
  ASSERT_TRUE(file.ok());
  auto reader = BpfReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_rows(), 500);
  EXPECT_EQ(reader->metadata().row_groups.size(), 1u);
  auto back = reader->ReadTable();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 500);
  for (int64_t i : {0, 123, 499}) {
    EXPECT_EQ(back->GetValue(i, 0), t.GetValue(i, 0));
    EXPECT_EQ(back->GetValue(i, 2), t.GetValue(i, 2));
    EXPECT_EQ(back->GetValue(i, 3), t.GetValue(i, 3));
  }
}

TEST(BpfFileTest, MultipleRowGroups) {
  Table t = MakeTaxiTable(1000);
  WriteOptions opts;
  opts.row_group_size = 100;
  auto file = WriteBpfFile(t, opts);
  ASSERT_TRUE(file.ok());
  auto reader = BpfReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->metadata().row_groups.size(), 10u);
  auto back = reader->ReadTable();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1000);
  EXPECT_EQ(back->GetValue(999, 0), Value::Int64(999));
}

TEST(BpfFileTest, ProjectionReadsOnlyRequestedColumns) {
  Table t = MakeTaxiTable(200);
  auto file = WriteBpfFile(t);
  auto reader = BpfReader::Open(*file);
  ReadOptions opts;
  opts.columns = {"fare", "id"};
  auto back = reader->ReadTable(opts);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_columns(), 2);
  EXPECT_EQ(back->schema().field(0).name, "fare");
  EXPECT_EQ(back->schema().field(1).name, "id");
  EXPECT_EQ(back->GetValue(10, 1), Value::Int64(10));

  ReadOptions bad;
  bad.columns = {"nope"};
  EXPECT_FALSE(reader->ReadTable(bad).ok());
}

TEST(BpfFileTest, ZoneMapSkipsRowGroups) {
  Table t = MakeTaxiTable(1000);  // id 0..999
  WriteOptions wopts;
  wopts.row_group_size = 100;
  auto file = WriteBpfFile(t, wopts);
  auto reader = BpfReader::Open(*file);

  ReadOptions ropts;
  ropts.predicates = {{"id", CompareOp::kGe, Value::Int64(850)}};
  ReadStats stats;
  auto back = reader->ReadTable(ropts, &stats);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(stats.row_groups_total, 10);
  EXPECT_EQ(stats.row_groups_read, 2);  // groups [800,899] and [900,999]
  EXPECT_GT(stats.bytes_skipped, 0);
  // Skipping is conservative: surviving groups keep all their rows.
  EXPECT_EQ(back->num_rows(), 200);
}

TEST(BpfFileTest, PredicateOnUnprojectedColumnStillSkips) {
  Table t = MakeTaxiTable(1000);
  WriteOptions wopts;
  wopts.row_group_size = 100;
  auto file = WriteBpfFile(t, wopts);
  auto reader = BpfReader::Open(*file);
  ReadOptions ropts;
  ropts.columns = {"zone"};
  ropts.predicates = {{"id", CompareOp::kLt, Value::Int64(100)}};
  ReadStats stats;
  auto back = reader->ReadTable(ropts, &stats);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(stats.row_groups_read, 1);
  EXPECT_EQ(back->num_rows(), 100);
  EXPECT_EQ(back->num_columns(), 1);
}

TEST(BpfFileTest, ContradictoryPredicateReadsNothing) {
  Table t = MakeTaxiTable(100);
  auto file = WriteBpfFile(t);
  auto reader = BpfReader::Open(*file);
  ReadOptions ropts;
  ropts.predicates = {{"id", CompareOp::kGt, Value::Int64(10000)}};
  ReadStats stats;
  auto back = reader->ReadTable(ropts, &stats);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0);
  EXPECT_EQ(stats.row_groups_read, 0);
  EXPECT_TRUE(back->schema() == t.schema());
}

TEST(BpfFileTest, EmptyTableRoundTrip) {
  Table t = MakeTaxiTable(0);
  auto file = WriteBpfFile(t);
  ASSERT_TRUE(file.ok());
  auto reader = BpfReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_rows(), 0);
  auto back = reader->ReadTable();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0);
  EXPECT_TRUE(back->schema() == t.schema());
}

TEST(BpfFileTest, CorruptFileRejected) {
  Table t = MakeTaxiTable(100);
  auto file = WriteBpfFile(t);
  Bytes corrupt = *file;
  corrupt[corrupt.size() - 1] ^= 0xFF;  // trailing magic
  EXPECT_FALSE(BpfReader::Open(corrupt).ok());

  Bytes truncated(file->begin(), file->begin() + 8);
  EXPECT_FALSE(BpfReader::Open(truncated).ok());

  Bytes head_corrupt = *file;
  head_corrupt[0] ^= 0xFF;
  EXPECT_FALSE(BpfReader::Open(head_corrupt).ok());
}

TEST(BpfFileTest, EncodingsShrinkFileVsPlain) {
  Table t = MakeTaxiTable(10000);  // bucket has runs, zone is dict-friendly
  WriteOptions plain;
  plain.enable_encodings = false;
  WriteOptions encoded;
  encoded.enable_encodings = true;
  auto plain_file = WriteBpfFile(t, plain);
  auto encoded_file = WriteBpfFile(t, encoded);
  ASSERT_TRUE(plain_file.ok());
  ASSERT_TRUE(encoded_file.ok());
  EXPECT_LT(encoded_file->size(), plain_file->size());
  // And both decode to the same data.
  auto a = BpfReader::Open(*plain_file)->ReadTable();
  auto b = BpfReader::Open(*encoded_file)->ReadTable();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->GetValue(9999, 2), b->GetValue(9999, 2));
}

TEST(BpfFileTest, StatsStoredPerRowGroup) {
  Table t = MakeTaxiTable(300);
  WriteOptions opts;
  opts.row_group_size = 100;
  auto reader = BpfReader::Open(*WriteBpfFile(t, opts));
  const auto& rgs = reader->metadata().row_groups;
  ASSERT_EQ(rgs.size(), 3u);
  // id column stats of the middle group are [100, 199].
  EXPECT_EQ(rgs[1].columns[0].stats.min, Value::Int64(100));
  EXPECT_EQ(rgs[1].columns[0].stats.max, Value::Int64(199));
}

// Robustness: single-byte corruption anywhere in the file must never
// crash the reader — it either fails cleanly (usually) or decodes
// something structurally valid (when the flipped byte is benign, e.g.
// inside a value payload).
TEST(BpfFileTest, SingleByteCorruptionNeverCrashes) {
  Table t = MakeTaxiTable(200);
  WriteOptions opts;
  opts.row_group_size = 50;
  Bytes original = *WriteBpfFile(t, opts);
  int clean_failures = 0;
  for (size_t i = 0; i < original.size(); i += 7) {  // sample positions
    Bytes corrupt = original;
    corrupt[i] ^= 0xA5;
    auto reader = BpfReader::Open(corrupt);
    if (!reader.ok()) {
      ++clean_failures;
      continue;
    }
    auto table = reader->ReadTable();
    if (!table.ok()) {
      ++clean_failures;
      continue;
    }
    // Decoded: must be structurally sound.
    ASSERT_GE(table->num_rows(), 0);
    ASSERT_EQ(table->num_columns(), t.num_columns());
  }
  // Most flips hit structure and must be detected.
  EXPECT_GT(clean_failures, 0);
}

// Truncation at every sampled length must fail cleanly, never crash.
TEST(BpfFileTest, TruncationNeverCrashes) {
  Table t = MakeTaxiTable(100);
  Bytes original = *WriteBpfFile(t);
  for (size_t len = 0; len < original.size(); len += 11) {
    Bytes truncated(original.begin(),
                    original.begin() + static_cast<long>(len));
    auto reader = BpfReader::Open(truncated);
    if (reader.ok()) {
      (void)reader->ReadTable();  // must not crash
    }
  }
  SUCCEED();
}

// Property sweep: round trip across row-group sizes and row counts.
class BpfRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BpfRoundTrip, PreservesData) {
  int64_t rows = std::get<0>(GetParam());
  int64_t group = std::get<1>(GetParam());
  Table t = MakeTaxiTable(rows);
  WriteOptions opts;
  opts.row_group_size = group;
  auto file = WriteBpfFile(t, opts);
  ASSERT_TRUE(file.ok());
  auto reader = BpfReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  auto back = reader->ReadTable();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), rows);
  for (int64_t i = 0; i < rows; i += std::max<int64_t>(1, rows / 7)) {
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(back->GetValue(i, c), t.GetValue(i, c))
          << "row " << i << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BpfRoundTrip,
    ::testing::Combine(::testing::Values(1, 99, 100, 101, 1000),
                       ::testing::Values(1, 64, 100, 1 << 20)));

}  // namespace
}  // namespace bauplan::format
