// Vectorized engine coverage: kernel edge cases (empty/all-null columns,
// NaN ordering, null keys), the ThreadPool, LIKE hardening against
// backtracking blowup, scalar-vs-vectorized agreement over a query
// battery, and the parallel-equals-serial bit-identity guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "common/clock.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "format/writer.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "sql/engine.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

using columnar::ArrayPtr;
using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::SelectionVector;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;
using sql::ExecOptions;
using sql::QueryOptions;
using sql::QueryResult;

// ------------------------------------------------------------ kernel edges

TEST(ComputeKernelTest, TakeOnEmptyArrayAndEmptySelection) {
  ArrayPtr empty = Int64Builder().Finish();
  auto taken = columnar::Take(empty, {});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*taken)->length(), 0);
  EXPECT_EQ((*taken)->type(), TypeId::kInt64);

  Int64Builder b;
  b.Append(7);
  auto none = columnar::Take(b.Finish(), {});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ((*none)->length(), 0);

  EXPECT_FALSE(columnar::Take(empty, {0}).ok());  // out of range
}

TEST(ComputeKernelTest, CompareWithAllNullColumnYieldsAllNull) {
  Int64Builder lhs, rhs;
  for (int i = 0; i < 4; ++i) {
    lhs.Append(i);
    rhs.AppendNull();
  }
  ArrayPtr left = lhs.Finish(), right = rhs.Finish();
  auto cmp = columnar::CompareArrays(columnar::CompareOp::kLt, *left, *right);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ((*cmp)->null_count(), 4);
}

TEST(ComputeKernelTest, ArithmeticDivisionSemantics) {
  Int64Builder lhs, rhs;
  lhs.Append(10);
  lhs.Append(9);
  rhs.Append(4);
  rhs.Append(0);
  ArrayPtr left = lhs.Finish(), right = rhs.Finish();
  // Division always yields double; division by zero yields null.
  auto div =
      columnar::ArithmeticArrays(columnar::ArithOp::kDiv, *left, *right);
  ASSERT_TRUE(div.ok());
  EXPECT_EQ((*div)->type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ((*div)->GetValue(0).double_value(), 2.5);
  EXPECT_TRUE((*div)->IsNull(1));
  // Modulo by zero is null too, but stays integer.
  auto mod =
      columnar::ArithmeticArrays(columnar::ArithOp::kMod, *left, *right);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->type(), TypeId::kInt64);
  EXPECT_EQ((*mod)->GetValue(0).int64_value(), 2);
  EXPECT_TRUE((*mod)->IsNull(1));
}

TEST(ComputeKernelTest, SortIndicesNaNOrdersAfterEveryNumber) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  DoubleBuilder b;
  b.Append(nan);
  b.Append(1.5);
  b.AppendNull();
  b.Append(-3.0);
  b.Append(nan);
  ArrayPtr arr = b.Finish();
  auto asc = columnar::SortIndices({{arr, true}});
  ASSERT_TRUE(asc.ok());
  // Nulls first, then numbers ascending, then NaNs (stable: row 0 before
  // row 4).
  EXPECT_EQ(*asc, (SelectionVector{2, 3, 1, 0, 4}));
  auto desc = columnar::SortIndices({{arr, false}});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(*desc, (SelectionVector{0, 4, 1, 3, 2}));
}

TEST(ComputeKernelTest, SortIndicesLimitMatchesFullSortPrefix) {
  Int64Builder b;
  for (int64_t v : {5, 1, 4, 1, 3, 2, 5, 0}) b.Append(v);
  ArrayPtr arr = b.Finish();
  auto full = columnar::SortIndices({{arr, true}});
  ASSERT_TRUE(full.ok());
  for (int64_t limit = 0; limit <= 8; ++limit) {
    auto top = columnar::SortIndices({{arr, true}}, limit);
    ASSERT_TRUE(top.ok());
    SelectionVector expect(full->begin(),
                           full->begin() + static_cast<size_t>(limit));
    EXPECT_EQ(*top, expect) << "limit=" << limit;
  }
}

TEST(ComputeKernelTest, HashArrayNormalizesZeroAndGroupsNulls) {
  DoubleBuilder a, b;
  a.Append(0.0);
  a.AppendNull();
  b.Append(-0.0);
  b.AppendNull();
  std::vector<uint64_t> ha, hb;
  columnar::HashArray(*a.Finish(), false, &ha);
  columnar::HashArray(*b.Finish(), false, &hb);
  EXPECT_EQ(ha[0], hb[0]);  // -0.0 hashes like 0.0 (they compare equal)
  EXPECT_EQ(ha[1], hb[1]);  // nulls share one hash tag
  EXPECT_NE(ha[0], ha[1]);
}

TEST(ComputeKernelTest, RowsEqualTreatsNullsAsEqual) {
  Int64Builder a, b;
  a.AppendNull();
  a.Append(3);
  b.AppendNull();
  b.Append(4);
  std::vector<ArrayPtr> left = {a.Finish()}, right = {b.Finish()};
  EXPECT_TRUE(columnar::RowsEqual(left, 0, right, 0));
  EXPECT_FALSE(columnar::RowsEqual(left, 1, right, 1));
  EXPECT_FALSE(columnar::RowsEqual(left, 0, right, 1));
}

TEST(ComputeKernelTest, ConcatArraysRejectsMixedTypes) {
  Int64Builder ints;
  ints.Append(1);
  StringBuilder strs;
  strs.Append("x");
  EXPECT_FALSE(columnar::ConcatArrays({ints.Finish(), strs.Finish()}).ok());
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineInOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------- engine fixture

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() {
    workload::TaxiGenOptions gen;
    gen.rows = 5000;
    gen.start_date = "2019-03-01";
    gen.days = 20;
    provider_.AddTable("taxi", *workload::GenerateTaxiTable(gen));

    // Dim table covering only some locations, with a null key row.
    Int64Builder ids;
    StringBuilder names;
    for (int64_t i = 0; i < 100; ++i) {
      ids.Append(i);
      names.Append(StrCat("zone_", i));
    }
    ids.AppendNull();
    names.Append("null_zone");
    provider_.AddTable(
        "zones",
        *Table::Make(Schema({{"location_id", TypeId::kInt64, true},
                             {"zone_name", TypeId::kString, false}}),
                     {ids.Finish(), names.Finish()}));

    // Small table with null group keys and NaN fares.
    Int64Builder key;
    DoubleBuilder fare;
    double nan = std::numeric_limits<double>::quiet_NaN();
    int64_t keys[] = {1, 2, -1, 1, -1, 3};
    double fares[] = {1.0, nan, 2.0, 3.0, 4.0, nan};
    for (int i = 0; i < 6; ++i) {
      if (keys[i] < 0) {
        key.AppendNull();
      } else {
        key.Append(keys[i]);
      }
      fare.Append(fares[i]);
    }
    provider_.AddTable(
        "oddball",
        *Table::Make(Schema({{"k", TypeId::kInt64, true},
                             {"fare", TypeId::kDouble, true}}),
                     {key.Finish(), fare.Finish()}));
  }

  Result<QueryResult> Run(std::string_view sql, QueryOptions options = {}) {
    return sql::RunQuery(sql, provider_, &provider_, options);
  }

  Result<QueryResult> RunWith(std::string_view sql,
                              ExecOptions::Engine engine, int threads = 1,
                              ThreadPool* pool = nullptr) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.pool = pool;
    // Small morsels so multi-morsel merge paths run even on 5k rows.
    options.exec.morsel_rows = 512;
    return Run(sql, options);
  }

  // Order-insensitive (or -sensitive) row-level equality between engines.
  static void ExpectSameTable(const Table& a, const Table& b,
                              bool ordered) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    auto rows_of = [](const Table& t) {
      std::vector<std::vector<Value>> rows;
      rows.reserve(static_cast<size_t>(t.num_rows()));
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        std::vector<Value> row;
        for (int c = 0; c < t.num_columns(); ++c) {
          row.push_back(t.GetValue(r, c));
        }
        rows.push_back(std::move(row));
      }
      return rows;
    };
    auto row_less = [](const std::vector<Value>& x,
                       const std::vector<Value>& y) {
      for (size_t i = 0; i < x.size(); ++i) {
        if (x[i].is_null() != y[i].is_null()) return x[i].is_null();
        if (x[i].is_null()) continue;
        int c = x[i].Compare(y[i]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    auto ra = rows_of(a), rb = rows_of(b);
    if (!ordered) {
      std::sort(ra.begin(), ra.end(), row_less);
      std::sort(rb.begin(), rb.end(), row_less);
    }
    for (size_t r = 0; r < ra.size(); ++r) {
      for (size_t c = 0; c < ra[r].size(); ++c) {
        const Value& va = ra[r][c];
        const Value& vb = rb[r][c];
        ASSERT_EQ(va.is_null(), vb.is_null()) << "row " << r << " col " << c;
        if (va.is_null()) continue;
        if (va.type() == TypeId::kDouble && vb.type() == TypeId::kDouble) {
          // Scalar sums row-at-a-time; vectorized merges per-morsel
          // partials. Double addition isn't associative, so aggregates
          // may differ in the last ulps across engines (each engine is
          // still exactly deterministic with itself).
          double x = va.double_value(), y = vb.double_value();
          if (std::isnan(x) || std::isnan(y)) {
            ASSERT_EQ(std::isnan(x), std::isnan(y))
                << "row " << r << " col " << c;
            continue;
          }
          double tol = 1e-9 * std::max(1.0, std::max(std::abs(x),
                                                     std::abs(y)));
          ASSERT_NEAR(x, y, tol) << "row " << r << " col " << c;
        } else {
          ASSERT_EQ(va.Compare(vb), 0)
              << "row " << r << " col " << c << ": " << va.ToString()
              << " vs " << vb.ToString();
        }
      }
    }
  }

  sql::MemoryTableProvider provider_;
};

// ------------------------------------------- scalar/vectorized agreement

TEST_F(QueryEngineTest, EnginesAgreeAcrossQueryBattery) {
  struct Case {
    const char* sql;
    bool ordered;
  };
  const Case kCases[] = {
      {"SELECT * FROM taxi WHERE fare > 20 AND trip_distance < 30", true},
      {"SELECT trip_id, fare * 2 AS f2 FROM taxi "
       "WHERE passenger_count IS NULL",
       true},
      {"SELECT pickup_location_id, COUNT(*) AS n, SUM(fare) AS s, "
       "AVG(trip_distance) AS a, MIN(fare) AS lo, MAX(fare) AS hi "
       "FROM taxi GROUP BY pickup_location_id",
       false},
      {"SELECT COUNT(DISTINCT pickup_location_id) AS u FROM taxi", false},
      {"SELECT DISTINCT passenger_count FROM taxi", false},
      {"SELECT t.trip_id, z.zone_name FROM taxi t "
       "JOIN zones z ON t.pickup_location_id = z.location_id "
       "WHERE z.location_id % 2 = 0",
       true},
      {"SELECT t.trip_id, z.zone_name FROM taxi t "
       "LEFT JOIN zones z ON t.pickup_location_id = z.location_id",
       true},
      {"SELECT trip_id, fare FROM taxi ORDER BY fare DESC, trip_id "
       "LIMIT 37",
       true},
      {"SELECT zone FROM taxi WHERE zone LIKE '%a%' LIMIT 10", true},
      {"SELECT trip_id, CASE WHEN fare > 30 THEN 'high' ELSE 'low' END "
       "AS bucket FROM taxi WHERE trip_id < 50",
       true},
      {"SELECT k, COUNT(*) AS n, SUM(fare) AS s FROM oddball GROUP BY k",
       false},
      {"SELECT a.k FROM oddball a JOIN oddball b ON a.k = b.k", false},
  };
  for (const Case& c : kCases) {
    auto scalar = RunWith(c.sql, ExecOptions::Engine::kScalar);
    auto vectorized = RunWith(c.sql, ExecOptions::Engine::kVectorized);
    ASSERT_TRUE(scalar.ok()) << c.sql << ": " << scalar.status().ToString();
    ASSERT_TRUE(vectorized.ok())
        << c.sql << ": " << vectorized.status().ToString();
    ExpectSameTable(scalar->table, vectorized->table, c.ordered);
  }
}

// NaN sorts after every number in the vectorized engine (a strict weak
// order; the scalar baseline's boxed compare leaves NaN unordered, so the
// guarantee is engine-specific).
TEST_F(QueryEngineTest, VectorizedSortOrdersNaNLast) {
  auto r = RunWith("SELECT fare FROM oddball ORDER BY fare",
                   ExecOptions::Engine::kVectorized);
  ASSERT_TRUE(r.ok());
  const Table& t = r->table;
  ASSERT_EQ(t.num_rows(), 6);
  EXPECT_DOUBLE_EQ(t.GetValue(0, 0).double_value(), 1.0);
  EXPECT_DOUBLE_EQ(t.GetValue(3, 0).double_value(), 4.0);
  EXPECT_TRUE(std::isnan(t.GetValue(4, 0).double_value()));
  EXPECT_TRUE(std::isnan(t.GetValue(5, 0).double_value()));
}

// ------------------------------------------------- null key semantics

TEST_F(QueryEngineTest, NullJoinKeysNeverMatch) {
  // zones has a null-key row; oddball has two null-key rows. An inner
  // self-join on k must not pair nulls with nulls.
  auto inner = Run("SELECT a.fare FROM oddball a JOIN oddball b ON "
                   "a.k = b.k");
  ASSERT_TRUE(inner.ok());
  // Non-null keys: 1 appears twice (4 pairs), 2 once, 3 once -> 6 rows.
  EXPECT_EQ(inner->table.num_rows(), 6);

  auto left = Run("SELECT a.k, b.k FROM oddball a LEFT JOIN oddball b ON "
                  "a.k = b.k");
  ASSERT_TRUE(left.ok());
  // 6 matched pairs + 2 null-key rows kept unmatched.
  EXPECT_EQ(left->table.num_rows(), 8);
  int64_t null_extended = 0;
  for (int64_t r = 0; r < left->table.num_rows(); ++r) {
    if (left->table.GetValue(r, 1).is_null()) ++null_extended;
  }
  EXPECT_EQ(null_extended, 2);
}

TEST_F(QueryEngineTest, NullGroupKeysGroupTogether) {
  auto r = Run("SELECT k, COUNT(*) AS n FROM oddball GROUP BY k");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 4);  // 1, 2, 3 and the null group
  bool saw_null_group = false;
  for (int64_t row = 0; row < r->table.num_rows(); ++row) {
    if (r->table.GetValue(row, 0).is_null()) {
      saw_null_group = true;
      EXPECT_EQ(r->table.GetValue(row, 1).int64_value(), 2);
    }
  }
  EXPECT_TRUE(saw_null_group);
}

// -------------------------------------------------- LIKE hardening

TEST_F(QueryEngineTest, LikeSemantics) {
  Int64Builder id;
  StringBuilder s;
  const char* vals[] = {"abc", "aXc", "ab", "xxaxxaxxb", "", "a%c"};
  for (int i = 0; i < 6; ++i) {
    id.Append(i);
    s.Append(vals[i]);
  }
  provider_.AddTable(
      "strs", *Table::Make(Schema({{"id", TypeId::kInt64, false},
                                   {"s", TypeId::kString, false}}),
                           {id.Finish(), s.Finish()}));
  auto rows = [&](const char* sql) {
    auto r = Run(sql);
    EXPECT_TRUE(r.ok()) << sql;
    return r.ok() ? r->table.num_rows() : -1;
  };
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s LIKE 'a_c'"), 3);
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s LIKE 'a%'"), 4);
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s LIKE '%b'"), 2);
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s LIKE '%a%a%b'"), 1);
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s LIKE '%'"), 6);
  EXPECT_EQ(rows("SELECT id FROM strs WHERE s NOT LIKE '%c'"), 3);
}

TEST_F(QueryEngineTest, LikeAdversarialPatternStaysLinear) {
  // A backtracking matcher blows up exponentially (or O(n^k)) on
  // '%a%a%a%a%b' against a long all-'a' text; the segment matcher scans
  // each '%'-separated segment once.
  Int64Builder id;
  StringBuilder s;
  id.Append(1);
  s.Append(std::string(20000, 'a'));
  id.Append(2);
  s.Append(std::string(20000, 'a') + "b");
  provider_.AddTable(
      "adversarial",
      *Table::Make(Schema({{"id", TypeId::kInt64, false},
                           {"s", TypeId::kString, false}}),
                   {id.Finish(), s.Finish()}));
  auto r = Run("SELECT id FROM adversarial WHERE s LIKE '%a%a%a%a%b'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 1);
  EXPECT_EQ(r->table.GetValue(0, 0).int64_value(), 2);
}

// --------------------------------------- determinism: parallel == serial

TEST_F(QueryEngineTest, ParallelIsBitIdenticalToSerial) {
  const char* kQueries[] = {
      "SELECT * FROM taxi WHERE fare > 15",
      "SELECT pickup_location_id, COUNT(*) AS n, SUM(fare) AS s "
      "FROM taxi GROUP BY pickup_location_id",
      "SELECT t.trip_id, z.zone_name FROM taxi t "
      "JOIN zones z ON t.pickup_location_id = z.location_id",
      "SELECT t.trip_id, z.zone_name FROM taxi t "
      "LEFT JOIN zones z ON t.pickup_location_id = z.location_id",
      "SELECT trip_id, fare FROM taxi ORDER BY fare DESC LIMIT 99",
      "SELECT DISTINCT passenger_count, pickup_location_id FROM taxi",
  };
  // An external pool sidesteps the hardware-concurrency clamp so real
  // worker threads race even on single-core CI.
  ThreadPool pool(7);
  for (const char* sql : kQueries) {
    auto serial = RunWith(sql, ExecOptions::Engine::kVectorized, 1);
    auto parallel =
        RunWith(sql, ExecOptions::Engine::kVectorized, 8, &pool);
    ASSERT_TRUE(serial.ok()) << sql;
    ASSERT_TRUE(parallel.ok()) << sql;
    auto serial_bytes = format::WriteBpfFile(serial->table);
    auto parallel_bytes = format::WriteBpfFile(parallel->table);
    ASSERT_TRUE(serial_bytes.ok() && parallel_bytes.ok()) << sql;
    EXPECT_EQ(*serial_bytes, *parallel_bytes)
        << sql << ": parallel result not bit-identical to serial";
  }
}

// ------------------------------------------------ empty-input operators

TEST_F(QueryEngineTest, VectorizedOperatorsHandleEmptyInput) {
  provider_.AddTable(
      "empty", *Table::Make(Schema({{"a", TypeId::kInt64, true},
                                    {"b", TypeId::kString, true}}),
                            {Int64Builder().Finish(),
                             StringBuilder().Finish()}));
  ThreadPool pool(3);
  for (int threads : {1, 4}) {
    ThreadPool* p = threads > 1 ? &pool : nullptr;
    auto run = [&](const char* sql) {
      auto r = RunWith(sql, ExecOptions::Engine::kVectorized, threads, p);
      EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      return r.ok() ? r->table.num_rows() : -1;
    };
    EXPECT_EQ(run("SELECT * FROM empty WHERE a > 1"), 0);
    EXPECT_EQ(run("SELECT a + 1 AS x FROM empty"), 0);
    EXPECT_EQ(run("SELECT a, COUNT(*) AS n FROM empty GROUP BY a"), 0);
    EXPECT_EQ(run("SELECT COUNT(*) AS n FROM empty"), 1);
    EXPECT_EQ(run("SELECT a FROM empty ORDER BY a DESC LIMIT 3"), 0);
    EXPECT_EQ(run("SELECT DISTINCT a FROM empty"), 0);
    EXPECT_EQ(run("SELECT e.a FROM empty e JOIN taxi t "
                  "ON e.a = t.trip_id"),
              0);
  }
}

// ------------------------------------------------- stats, metrics, spans

TEST_F(QueryEngineTest, ExecStatsAndMetricsCounters) {
  observability::MetricsRegistry metrics;
  QueryOptions options;
  options.exec.metrics = &metrics;
  options.exec.morsel_rows = 512;
  auto r = Run(
      "SELECT t.pickup_location_id, COUNT(*) AS n FROM taxi t "
      "JOIN zones z ON t.pickup_location_id = z.location_id "
      "WHERE t.fare > 5 GROUP BY t.pickup_location_id",
      options);
  ASSERT_TRUE(r.ok());
  const sql::ExecStats& stats = r->stats;
  EXPECT_GE(stats.rows_scanned, 5000);
  EXPECT_GT(stats.rows_filtered, 0);
  EXPECT_GT(stats.groups, 0);
  EXPECT_GT(stats.join_probe_rows, 0);
  EXPECT_GT(stats.morsels, 0);
  EXPECT_EQ(stats.rows_output, r->table.num_rows());

  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.Get("exec.rows_scanned"), stats.rows_scanned);
  EXPECT_EQ(snap.Get("exec.rows_filtered"), stats.rows_filtered);
  EXPECT_EQ(snap.Get("exec.groups"), stats.groups);
  EXPECT_EQ(snap.Get("exec.join_probe_rows"), stats.join_probe_rows);
  EXPECT_EQ(snap.Get("exec.morsels"), stats.morsels);
}

TEST_F(QueryEngineTest, OperatorSpansNestUnderExecute) {
  SimClock clock(0);
  observability::Tracer tracer(&clock);
  uint64_t root = tracer.StartSpan("query", "query");
  QueryOptions options;
  options.tracer = &tracer;
  options.parent_span = root;
  auto r = Run(
      "SELECT pickup_location_id, COUNT(*) AS n FROM taxi "
      "WHERE fare > 10 GROUP BY pickup_location_id ORDER BY n DESC "
      "LIMIT 5",
      options);
  ASSERT_TRUE(r.ok());
  tracer.EndSpan(root);
  observability::Trace trace = tracer.ExtractTrace(root);
  std::vector<std::string> op_names;
  for (const auto& span : trace.spans) {
    if (span.kind == observability::span_kind::kOperator) {
      op_names.push_back(span.name);
    }
  }
  // scan -> filter -> aggregate -> sort(fused top-N under limit).
  EXPECT_NE(std::find(op_names.begin(), op_names.end(), "op.scan"),
            op_names.end());
  EXPECT_NE(std::find(op_names.begin(), op_names.end(), "op.filter"),
            op_names.end());
  EXPECT_NE(std::find(op_names.begin(), op_names.end(), "op.aggregate"),
            op_names.end());
  EXPECT_NE(std::find(op_names.begin(), op_names.end(), "op.sort"),
            op_names.end());
}

// -------------------------------------------------- top-N fusion

TEST_F(QueryEngineTest, TopNFusionMatchesFullSortPrefix) {
  auto full = RunWith("SELECT trip_id, fare FROM taxi ORDER BY fare, "
                      "trip_id",
                      ExecOptions::Engine::kVectorized);
  auto topn = RunWith("SELECT trip_id, fare FROM taxi ORDER BY fare, "
                      "trip_id LIMIT 25",
                      ExecOptions::Engine::kVectorized);
  ASSERT_TRUE(full.ok() && topn.ok());
  ASSERT_EQ(topn->table.num_rows(), 25);
  for (int64_t r = 0; r < 25; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(full->table.GetValue(r, c).Compare(
                    topn->table.GetValue(r, c)),
                0);
    }
  }
}

}  // namespace
}  // namespace bauplan
