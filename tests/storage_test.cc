#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "storage/latency_model.h"
#include "storage/metered_store.h"
#include "storage/object_store.h"

namespace bauplan::storage {
namespace {

Bytes Blob(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Shared contract tests run against both backends.
class ObjectStoreContract
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      store_ = std::make_unique<MemoryObjectStore>();
    } else {
      tmp_ = std::filesystem::temp_directory_path() /
             ("bauplan_store_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(tmp_);
      auto opened = FileSystemObjectStore::Open(tmp_.string());
      ASSERT_TRUE(opened.ok());
      store_ = std::move(*opened);
    }
  }

  void TearDown() override {
    store_.reset();
    if (!tmp_.empty()) std::filesystem::remove_all(tmp_);
  }

  std::unique_ptr<ObjectStore> store_;
  std::filesystem::path tmp_;
};

TEST_P(ObjectStoreContract, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("a/b/data.bpf", Blob("hello")).ok());
  auto got = store_->Get("a/b/data.bpf");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "hello");
}

TEST_P(ObjectStoreContract, GetMissingIsNotFound) {
  auto got = store_->Get("nope");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST_P(ObjectStoreContract, PutOverwrites) {
  ASSERT_TRUE(store_->Put("k", Blob("one")).ok());
  ASSERT_TRUE(store_->Put("k", Blob("twotwo")).ok());
  EXPECT_EQ(*store_->Head("k"), 6u);
}

TEST_P(ObjectStoreContract, HeadReportsSizeWithoutData) {
  ASSERT_TRUE(store_->Put("k", Blob("12345")).ok());
  EXPECT_EQ(*store_->Head("k"), 5u);
  EXPECT_FALSE(store_->Head("missing").ok());
  EXPECT_TRUE(store_->Exists("k"));
  EXPECT_FALSE(store_->Exists("missing"));
}

TEST_P(ObjectStoreContract, DeleteRemoves) {
  ASSERT_TRUE(store_->Put("k", Blob("x")).ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(store_->Exists("k"));
  EXPECT_TRUE(store_->Delete("k").IsNotFound());
}

TEST_P(ObjectStoreContract, ListByPrefixSorted) {
  ASSERT_TRUE(store_->Put("t/one", Blob("1")).ok());
  ASSERT_TRUE(store_->Put("t/two", Blob("22")).ok());
  ASSERT_TRUE(store_->Put("other/x", Blob("3")).ok());
  auto listed = store_->List("t/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ((*listed)[0].key, "t/one");
  EXPECT_EQ((*listed)[1].key, "t/two");
  EXPECT_EQ((*listed)[1].size, 2u);

  auto all = store_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_P(ObjectStoreContract, EmptyKeyRejected) {
  EXPECT_FALSE(store_->Put("", Blob("x")).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, ObjectStoreContract,
                         ::testing::Values("memory", "filesystem"));

TEST(FileSystemStoreTest, RejectsTraversalKeys) {
  auto tmp = std::filesystem::temp_directory_path() / "bauplan_trav_test";
  auto store = FileSystemObjectStore::Open(tmp.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Put("../escape", Blob("x")).ok());
  std::filesystem::remove_all(tmp);
}

TEST(MemoryStoreTest, Accounting) {
  MemoryObjectStore store;
  ASSERT_TRUE(store.Put("a", Blob("xx")).ok());
  ASSERT_TRUE(store.Put("b", Blob("yyy")).ok());
  EXPECT_EQ(store.object_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 5u);
}

// ---------------------------------------------------------------- Latency

TEST(LatencyModelTest, GetLatencyIsFirstBytePlusTransfer) {
  LatencyModel model;  // defaults: 15 ms first byte, 90 MB/s
  EXPECT_EQ(model.MicrosFor(StoreOp::kGet, 0), 15000u);
  // 90 MB at 90 MB/s = 1 s of transfer.
  EXPECT_EQ(model.MicrosFor(StoreOp::kGet, 90ull * 1000 * 1000),
            15000u + 1000000u);
}

TEST(LatencyModelTest, InstantModelChargesNothing) {
  LatencyModel model = LatencyModel::Instant();
  for (StoreOp op : {StoreOp::kGet, StoreOp::kPut, StoreOp::kHead,
                     StoreOp::kList, StoreOp::kDelete}) {
    EXPECT_EQ(model.MicrosFor(op, 12345), 0u);
  }
}

TEST(LatencyModelTest, LocalDiskOrdersOfMagnitudeFasterThanS3) {
  LatencyModel s3;
  LatencyModel disk = LatencyModel::LocalDisk();
  uint64_t mb = 1000 * 1000;
  EXPECT_LT(disk.MicrosFor(StoreOp::kGet, mb) * 10,
            s3.MicrosFor(StoreOp::kGet, mb));
}

TEST(CostModelTest, CreditsScaleWithBytes) {
  CostModel cost;
  double small = cost.CreditsFor(1000);
  double large = cost.CreditsFor(1000ull * 1000 * 1000);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

// ---------------------------------------------------------------- Metered

TEST(MeteredStoreTest, ChargesClockAndCountsOps) {
  MemoryObjectStore base;
  SimClock clock;
  LatencyModel model;
  MeteredObjectStore store(&base, &clock, model);

  ASSERT_TRUE(store.Put("k", Bytes(1000, 7)).ok());
  uint64_t after_put = clock.NowMicros();
  EXPECT_GE(after_put, model.put_first_byte_micros);

  auto got = store.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(clock.NowMicros(), after_put);

  const StoreMetrics& m = store.metrics();
  EXPECT_EQ(m.puts, 1);
  EXPECT_EQ(m.gets, 1);
  EXPECT_EQ(m.bytes_written, 1000);
  EXPECT_EQ(m.bytes_read, 1000);
  EXPECT_EQ(m.TotalRequests(), 2);
  EXPECT_GT(m.credits, 0.0);
  EXPECT_EQ(m.simulated_micros, clock.NowMicros());
}

TEST(MeteredStoreTest, PassesThroughErrors) {
  MemoryObjectStore base;
  SimClock clock;
  MeteredObjectStore store(&base, &clock, LatencyModel::Instant());
  EXPECT_TRUE(store.Get("missing").status().IsNotFound());
  EXPECT_TRUE(store.Delete("missing").IsNotFound());
  EXPECT_EQ(store.metrics().gets, 1);
}

TEST(MeteredStoreTest, ResetMetrics) {
  MemoryObjectStore base;
  SimClock clock;
  MeteredObjectStore store(&base, &clock, LatencyModel::Instant());
  ASSERT_TRUE(store.Put("k", Blob("x")).ok());
  store.ResetMetrics();
  EXPECT_EQ(store.metrics().TotalRequests(), 0);
}

TEST(MeteredStoreTest, ListAndHeadCharged) {
  MemoryObjectStore base;
  SimClock clock;
  LatencyModel model;
  MeteredObjectStore store(&base, &clock, model);
  ASSERT_TRUE(store.Put("p/x", Blob("1")).ok());
  ASSERT_TRUE(store.List("p/").ok());
  ASSERT_TRUE(store.Head("p/x").ok());
  EXPECT_EQ(store.metrics().lists, 1);
  EXPECT_EQ(store.metrics().heads, 1);
  EXPECT_GE(clock.NowMicros(),
            model.put_first_byte_micros + model.list_micros +
                model.head_micros);
}

}  // namespace
}  // namespace bauplan::storage
