// Parallel partitioned breakers: morsel-parallel hash-join build,
// partitioned aggregation merge, and run-merge sort inside the
// streaming engine. These tests drive the parallel paths through an
// external ThreadPool (the executor never clamps an external pool to
// the hardware concurrency, so the partitioned code runs even on a
// single-core CI box) and assert two things everywhere: engagement —
// the exec.breaker.* counters prove the partitioned path actually ran
// — and bit-identity against the serial streaming run, the
// materialized engine and the scalar oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "columnar/serialize.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "observability/metrics.h"
#include "sql/engine.h"

namespace bauplan {
namespace {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using sql::ExecOptions;
using sql::QueryOptions;
using sql::QueryResult;

class ParallelBreakerTest : public ::testing::Test {
 protected:
  ParallelBreakerTest() {
    // Probe side: 20000 rows with a nullable int64 key, a string key
    // (tag) and dyadic-rational amounts whose partial sums are exact in
    // double for any association, so the scalar oracle stays
    // byte-comparable.
    Int64Builder id, key, qty;
    DoubleBuilder amount;
    StringBuilder tag;
    for (int64_t i = 0; i < 20000; ++i) {
      id.Append(i);
      if (i % 97 == 0) {
        key.AppendNull();
      } else {
        key.Append(i % 211);
      }
      qty.Append((i * 7) % 13);
      amount.Append(static_cast<double>((i * 31) % 997) / 4.0);
      tag.Append(StrCat("tag_", i % 401));
    }
    provider_.AddTable(
        "facts",
        *Table::Make(Schema({{"id", TypeId::kInt64, false},
                             {"key", TypeId::kInt64, true},
                             {"qty", TypeId::kInt64, false},
                             {"amount", TypeId::kDouble, false},
                             {"tag", TypeId::kString, false}}),
                     {id.Finish(), key.Finish(), qty.Finish(),
                      amount.Finish(), tag.Finish()}));

    // Build side: 6000 rows — above the 4096-row partitioning floor —
    // with a string key matching `tag` values, an int64 key matching
    // `key` values, and a double column for the bucket-fallback probe.
    Int64Builder sk2, sval;
    StringBuilder skey, sname;
    DoubleBuilder dval;
    for (int64_t i = 0; i < 6000; ++i) {
      skey.Append(StrCat("tag_", i % 401));
      sk2.Append(i % 211);
      sval.Append(i);
      dval.Append(static_cast<double>((i * 31) % 997) / 4.0);
      sname.Append(StrCat("dim_", i));
    }
    provider_.AddTable(
        "sdim",
        *Table::Make(Schema({{"skey", TypeId::kString, false},
                             {"sk2", TypeId::kInt64, false},
                             {"sval", TypeId::kInt64, false},
                             {"dval", TypeId::kDouble, false},
                             {"sname", TypeId::kString, false}}),
                     {skey.Finish(), sk2.Finish(), sval.Finish(),
                      dval.Finish(), sname.Finish()}));

    // Skewed build side: one key owns half of 8192 rows, the rest
    // spread across ~200 keys. Every row of one hash partition landing
    // on a single chain must neither starve the other partitions nor
    // recurse anywhere.
    Int64Builder kk, kv;
    for (int64_t i = 0; i < 8192; ++i) {
      kk.Append(i < 4096 ? 7 : (i % 200) + 1);
      kv.Append(i);
    }
    provider_.AddTable(
        "skew", *Table::Make(Schema({{"kk", TypeId::kInt64, false},
                                     {"kv", TypeId::kInt64, false}}),
                             {kk.Finish(), kv.Finish()}));
  }

  // Runs `sql` on the streaming engine through an external pool so
  // threads > 1 engages the partitioned breakers regardless of the
  // host's core count. threads == 1 runs serial (no pool).
  Result<QueryResult> RunParallel(
      std::string_view sql, int threads, int64_t budget = 0,
      observability::MetricsRegistry* metrics = nullptr,
      ExecOptions::Engine engine = ExecOptions::Engine::kStreaming) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.morsel_rows = 1024;
    options.exec.memory_budget_bytes = budget;
    options.exec.metrics = metrics;
    ThreadPool pool(threads > 1 ? threads - 1 : 0);
    if (threads > 1) options.exec.pool = &pool;
    return sql::RunQuery(sql, provider_, &provider_, options);
  }

  void ExpectBitIdentical(const Table& a, const Table& b,
                          const std::string& context) {
    Bytes ba = columnar::SerializeTable(a);
    Bytes bb = columnar::SerializeTable(b);
    ASSERT_EQ(ba.size(), bb.size()) << context;
    ASSERT_TRUE(ba == bb) << context;
  }

  sql::MemoryTableProvider provider_;
};

// ------------------------------- string / mixed-key join bit-identity

// String-key and mixed-type-key joins across parallel breakers x
// threads {1,4,8} x budgets {0, 64K}, against the scalar oracle.
TEST_F(ParallelBreakerTest, StringAndMixedKeyJoinsBitIdentical) {
  const char* kQueries[] = {
      // Single string key: the canonical-bytes fast path.
      "SELECT f.id, s.sname FROM facts f JOIN sdim s "
      "ON f.tag = s.skey AND s.sval < 401 ORDER BY f.id, s.sname",
      // Mixed (string, int64) composite key, nullable probe column.
      "SELECT f.id, s.sname FROM facts f JOIN sdim s "
      "ON f.tag = s.skey AND f.key = s.sk2 ORDER BY f.id, s.sname",
      // LEFT join over the mixed key: null-key and unmatched probe
      // rows survive through the partitioned build.
      "SELECT f.id, s.sval FROM facts f LEFT JOIN sdim s "
      "ON f.key = s.sk2 AND f.tag = s.skey ORDER BY f.id, s.sval",
  };
  for (const char* sql : kQueries) {
    auto baseline = RunParallel(sql, 1, 0, nullptr,
                                ExecOptions::Engine::kVectorized);
    ASSERT_TRUE(baseline.ok()) << sql << ": "
                               << baseline.status().ToString();
    ASSERT_GT(baseline->table.num_rows(), 0) << sql;
    auto scalar =
        RunParallel(sql, 1, 0, nullptr, ExecOptions::Engine::kScalar);
    ASSERT_TRUE(scalar.ok()) << sql;
    ExpectBitIdentical(baseline->table, scalar->table,
                       StrCat(sql, " [scalar oracle]"));
    for (int64_t budget : {int64_t{0}, int64_t{64 * 1024}}) {
      for (int threads : {1, 4, 8}) {
        auto r = RunParallel(sql, threads, budget);
        ASSERT_TRUE(r.ok())
            << sql << " threads=" << threads << " budget=" << budget
            << ": " << r.status().ToString();
        ExpectBitIdentical(
            baseline->table, r->table,
            StrCat(sql, " threads=", threads, " budget=", budget));
      }
    }
  }
}

// ------------------------------------- canonical fast path engagement

// A string-key join must take the canonical-bytes build, not the
// hashed-bucket fallback — and with 8 threads the build must actually
// partition (exec.breaker.join_partitions > 1).
TEST_F(ParallelBreakerTest, StringKeyJoinTakesCanonicalFastPath) {
  observability::MetricsRegistry metrics;
  const char* sql =
      "SELECT f.id, s.sname FROM facts f JOIN sdim s "
      "ON f.tag = s.skey ORDER BY f.id, s.sname";
  auto r = RunParallel(sql, 8, 0, &metrics);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->stats.join_build_canonical, 1);
  EXPECT_EQ(r->stats.join_build_buckets, 0)
      << "string keys must not fall back to hashed buckets";
  EXPECT_EQ(metrics.GetCounter("exec.breaker.join_build_canonical")->Value(),
            r->stats.join_build_canonical);
  EXPECT_GT(r->stats.breaker_partitions, 1);
  EXPECT_GT(metrics.GetCounter("exec.breaker.join_partitions")->Value(), 1);

  // Mixed (string, int64) composite keys take the same fast path.
  observability::MetricsRegistry m2;
  auto mixed = RunParallel(
      "SELECT f.id, s.sname FROM facts f JOIN sdim s "
      "ON f.tag = s.skey AND f.key = s.sk2 ORDER BY f.id, s.sname",
      8, 0, &m2);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_GE(mixed->stats.join_build_canonical, 1);
  EXPECT_EQ(mixed->stats.join_build_buckets, 0);

  // Double keys have no faithful byte encoding (NaN, int64/double
  // cross-equality); they keep the bucket fallback.
  observability::MetricsRegistry m3;
  auto dbl = RunParallel(
      "SELECT f.id, s.sname FROM facts f JOIN sdim s "
      "ON f.amount = s.dval ORDER BY f.id, s.sname",
      8, 0, &m3);
  ASSERT_TRUE(dbl.ok()) << dbl.status().ToString();
  EXPECT_GE(dbl->stats.join_build_buckets, 1);
  EXPECT_EQ(dbl->stats.join_build_canonical, 0);
}

// --------------------------------------- parallel aggregation / sort

// >= 1024 groups with an 8-thread pool: the merge partitions (counter
// proof) and the group output order is byte-for-byte the serial one.
TEST_F(ParallelBreakerTest, ParallelAggregationPartitionsBitIdentically) {
  const char* sql =
      "SELECT id % 1600 AS g, COUNT(*) AS n, SUM(qty) AS sq, "
      "SUM(amount) AS sa, MIN(tag) AS lo, COUNT(DISTINCT qty) AS dq "
      "FROM facts GROUP BY id % 1600";
  auto baseline =
      RunParallel(sql, 1, 0, nullptr, ExecOptions::Engine::kVectorized);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->table.num_rows(), 1600);
  auto scalar =
      RunParallel(sql, 1, 0, nullptr, ExecOptions::Engine::kScalar);
  ASSERT_TRUE(scalar.ok());
  ExpectBitIdentical(baseline->table, scalar->table, "[scalar oracle]");
  for (int threads : {4, 8}) {
    observability::MetricsRegistry metrics;
    auto r = RunParallel(sql, threads, 0, &metrics);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(baseline->table, r->table,
                       StrCat("threads=", threads));
    EXPECT_GT(metrics.GetCounter("exec.breaker.agg_partitions")->Value(), 1)
        << "threads=" << threads;
    EXPECT_GT(r->stats.breaker_partitions, 1);
  }
  // Under a budget the spilling merge path owns the work; it stays
  // bit-identical with the pool attached.
  auto budgeted = RunParallel(sql, 8, 64 * 1024);
  ASSERT_TRUE(budgeted.ok());
  ExpectBitIdentical(baseline->table, budgeted->table, "[budgeted]");
}

// Parallel sort: per-morsel runs sorted concurrently, k-way merged.
// The run count lands in exec.breaker.sort_runs and the merged order
// equals the serial SortIndices order for multi-key, mixed-direction
// sorts.
TEST_F(ParallelBreakerTest, ParallelSortRunsMergeBitIdentically) {
  const char* sql =
      "SELECT id, qty, tag FROM facts ORDER BY qty DESC, tag, id";
  auto baseline =
      RunParallel(sql, 1, 0, nullptr, ExecOptions::Engine::kVectorized);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto scalar =
      RunParallel(sql, 1, 0, nullptr, ExecOptions::Engine::kScalar);
  ASSERT_TRUE(scalar.ok());
  ExpectBitIdentical(baseline->table, scalar->table, "[scalar oracle]");
  for (int threads : {4, 8}) {
    observability::MetricsRegistry metrics;
    auto r = RunParallel(sql, threads, 0, &metrics);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBitIdentical(baseline->table, r->table,
                       StrCat("threads=", threads));
    EXPECT_GT(metrics.GetCounter("exec.breaker.sort_runs")->Value(), 1);
    EXPECT_GT(r->stats.sort_runs, 1);
  }
}

// ------------------------------------------------------- skewed keys

// One key owning 50% of the build rows: the partitioned build puts the
// whole hot chain in one partition while the others proceed; no
// recursion, no starvation, identical bytes — in memory and under a
// Grace-spilling budget.
TEST_F(ParallelBreakerTest, SkewedKeyJoinAndAggregateNoStarvation) {
  const char* kJoin =
      "SELECT f.id, s.kv FROM facts f JOIN skew s ON f.key = s.kk "
      "WHERE f.id < 2000 ORDER BY f.id, s.kv";
  const char* kAgg =
      "SELECT kk, COUNT(*) AS n, SUM(kv) AS sv FROM skew GROUP BY kk";
  for (const char* sql : {kJoin, kAgg}) {
    auto baseline = RunParallel(sql, 1, 0, nullptr,
                                ExecOptions::Engine::kVectorized);
    ASSERT_TRUE(baseline.ok()) << sql << ": "
                               << baseline.status().ToString();
    ASSERT_GT(baseline->table.num_rows(), 0) << sql;
    for (int64_t budget : {int64_t{0}, int64_t{64 * 1024}}) {
      observability::MetricsRegistry metrics;
      auto r = RunParallel(sql, 8, budget, &metrics);
      ASSERT_TRUE(r.ok()) << sql << " budget=" << budget << ": "
                          << r.status().ToString();
      ExpectBitIdentical(baseline->table, r->table,
                         StrCat(sql, " budget=", budget));
    }
  }
  // Engagement proof for the unbudgeted skewed join build.
  observability::MetricsRegistry metrics;
  auto r = RunParallel(kJoin, 8, 0, &metrics);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(metrics.GetCounter("exec.breaker.join_partitions")->Value(), 1);
}

// --------------------------------------------- top-N short-circuit

// A LIMIT under an ORDER BY breaker stops dispatching upstream morsels
// once the candidate set provably contains the top N: completed
// morsels stay under the scheduled count and the skips are counted.
TEST_F(ParallelBreakerTest, TopNSortShortCircuitsUpstreamMorsels) {
  observability::MetricsRegistry metrics;
  QueryOptions options;
  options.exec.engine = ExecOptions::Engine::kStreaming;
  options.exec.morsel_rows = 256;
  options.exec.metrics = &metrics;
  const char* sql =
      "SELECT id, qty FROM facts WHERE qty >= 0 ORDER BY id LIMIT 64";
  auto r = sql::RunQuery(sql, provider_, &provider_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.num_rows(), 64);
  // 20000 rows / 256-row morsels = 79 scheduled; `id` ascends through
  // the table, so every morsel after the first batch is provably out.
  EXPECT_EQ(r->stats.morsels_scheduled, (20000 + 255) / 256);
  EXPECT_LT(r->stats.morsels, r->stats.morsels_scheduled);
  EXPECT_GT(r->stats.topn_morsels_skipped, 0);
  EXPECT_EQ(metrics.GetCounter("exec.breaker.topn_skipped")->Value(),
            r->stats.topn_morsels_skipped);
  EXPECT_EQ(r->stats.morsels + r->stats.topn_morsels_skipped,
            r->stats.morsels_scheduled);

  QueryOptions mat;
  mat.exec.engine = ExecOptions::Engine::kVectorized;
  mat.exec.morsel_rows = 256;
  auto baseline = sql::RunQuery(sql, provider_, &provider_, mat);
  ASSERT_TRUE(baseline.ok());
  ExpectBitIdentical(baseline->table, r->table, sql);

  // A descending sort keeps the *last* morsels: the bound still prunes
  // (the skip test is direction-aware), and ties on the single key
  // resolve to earlier global rows, so undispatched rows lose safely.
  QueryOptions desc;
  desc.exec.engine = ExecOptions::Engine::kStreaming;
  desc.exec.morsel_rows = 256;
  const char* dsql = "SELECT id FROM facts ORDER BY id DESC LIMIT 64";
  auto dr = sql::RunQuery(dsql, provider_, &provider_, desc);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  QueryOptions dmat;
  dmat.exec.engine = ExecOptions::Engine::kVectorized;
  dmat.exec.morsel_rows = 256;
  auto dbase = sql::RunQuery(dsql, provider_, &provider_, dmat);
  ASSERT_TRUE(dbase.ok());
  ExpectBitIdentical(dbase->table, dr->table, dsql);

  // Budgeted sorts take the external-merge path: the short-circuit
  // steps aside and the result is still identical.
  QueryOptions budgeted;
  budgeted.exec.engine = ExecOptions::Engine::kStreaming;
  budgeted.exec.morsel_rows = 256;
  budgeted.exec.memory_budget_bytes = 64 * 1024;
  auto br = sql::RunQuery(sql, provider_, &provider_, budgeted);
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  ExpectBitIdentical(baseline->table, br->table, StrCat(sql, " [budgeted]"));
}

}  // namespace
}  // namespace bauplan
