// Edge-case coverage for the SQL engine and the lakehouse-backed source:
// empty inputs through every operator, sort stability, expression corner
// cases, and the overlay semantics the fused pipeline executor relies on.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "columnar/builder.h"
#include "common/clock.h"
#include "core/lakehouse_source.h"
#include "sql/engine.h"
#include "storage/object_store.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

class EngineEdgeTest : public ::testing::Test {
 protected:
  EngineEdgeTest() {
    // An empty table and a tiny one.
    provider_.AddTable(
        "empty", *Table::Make(Schema({{"a", TypeId::kInt64, true},
                                      {"b", TypeId::kString, true}}),
                              {Int64Builder().Finish(),
                               StringBuilder().Finish()}));
    Int64Builder a;
    StringBuilder b;
    for (int i = 0; i < 4; ++i) {
      a.Append(i % 2);  // duplicate sort keys: 0 1 0 1
      b.Append(std::string(1, static_cast<char>('w' + i)));  // w x y z
    }
    provider_.AddTable("tiny",
                       *Table::Make(Schema({{"a", TypeId::kInt64, true},
                                            {"b", TypeId::kString, true}}),
                                    {a.Finish(), b.Finish()}));
  }

  Result<sql::QueryResult> Run(std::string_view sql) {
    return sql::RunQuery(sql, provider_, &provider_);
  }

  sql::MemoryTableProvider provider_;
};

TEST_F(EngineEdgeTest, EveryOperatorHandlesEmptyInput) {
  EXPECT_EQ(Run("SELECT * FROM empty")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT * FROM empty WHERE a > 1")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT a + 1 AS x FROM empty")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT a FROM empty ORDER BY a DESC")->table.num_rows(),
            0);
  EXPECT_EQ(Run("SELECT DISTINCT a FROM empty")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT a FROM empty LIMIT 5")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT a, COUNT(*) AS n FROM empty GROUP BY a")
                ->table.num_rows(),
            0);
  EXPECT_EQ(Run("SELECT e.a FROM empty e JOIN tiny t ON e.a = t.a")
                ->table.num_rows(),
            0);
  // LEFT JOIN with empty right keeps left rows, nulls on the right.
  auto left = Run("SELECT t.b, e.b FROM tiny t LEFT JOIN empty e "
                  "ON t.a = e.a");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->table.num_rows(), 4);
  EXPECT_TRUE(left->table.GetValue(0, 1).is_null());
  // UNION ALL with one empty side.
  EXPECT_EQ(Run("SELECT a FROM tiny UNION ALL SELECT a FROM empty")
                ->table.num_rows(),
            4);
}

TEST_F(EngineEdgeTest, SortIsStable) {
  // Equal keys keep their input order: w,y (a=0) then x,z (a=1).
  auto result = Run("SELECT b FROM tiny ORDER BY a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.GetValue(0, 0), Value::String("w"));
  EXPECT_EQ(result->table.GetValue(1, 0), Value::String("y"));
  EXPECT_EQ(result->table.GetValue(2, 0), Value::String("x"));
  EXPECT_EQ(result->table.GetValue(3, 0), Value::String("z"));
}

TEST_F(EngineEdgeTest, NullsSortFirstAscLastDesc) {
  Int64Builder a;
  a.Append(2);
  a.AppendNull();
  a.Append(1);
  provider_.AddTable("with_null",
                     *Table::Make(Schema({{"a", TypeId::kInt64, true}}),
                                  {a.Finish()}));
  auto asc = Run("SELECT a FROM with_null ORDER BY a");
  EXPECT_TRUE(asc->table.GetValue(0, 0).is_null());
  auto desc = Run("SELECT a FROM with_null ORDER BY a DESC");
  EXPECT_TRUE(desc->table.GetValue(2, 0).is_null());
}

TEST_F(EngineEdgeTest, ExpressionCornerCases) {
  // Deep nesting, unary minus stacking, CASE without ELSE -> null.
  auto r = Run("SELECT -(-(a + 1)) AS x, "
               "CASE WHEN a > 100 THEN 1 END AS c FROM tiny LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.GetValue(0, 0), Value::Int64(1));
  EXPECT_TRUE(r->table.GetValue(0, 1).is_null());
  // Integer overflow-ish arithmetic still evaluates (wraps, no crash).
  EXPECT_TRUE(Run("SELECT a * 1000000000 * 1000000000 AS big FROM tiny")
                  .ok());
  // LIKE on non-strings is an error, not a crash.
  EXPECT_FALSE(Run("SELECT * FROM tiny WHERE a LIKE 'x%'").ok());
  // NOT of non-boolean is an error.
  EXPECT_FALSE(Run("SELECT * FROM tiny WHERE NOT a").ok());
}

TEST_F(EngineEdgeTest, LimitZeroAndHugeLimit) {
  EXPECT_EQ(Run("SELECT * FROM tiny LIMIT 0")->table.num_rows(), 0);
  EXPECT_EQ(Run("SELECT * FROM tiny LIMIT 9999999")->table.num_rows(), 4);
}

// ----------------------------------------------------- LakehouseSource

class LakehouseSourceTest : public ::testing::Test {
 protected:
  LakehouseSourceTest() : ops_(&store_, &clock_) {
    auto catalog = catalog::Catalog::Open(&store_, &clock_);
    catalog_ = std::make_unique<catalog::Catalog>(*catalog);
    workload::TaxiGenOptions gen;
    gen.rows = 500;
    auto taxi = workload::GenerateTaxiTable(gen);
    std::string key = *ops_.CreateTable("taxi_table", taxi->schema());
    key = *ops_.Append(key, *taxi);
    catalog::TableChanges changes;
    changes.puts["taxi_table"] = key;
    (void)catalog_->CommitChanges("main", "seed", "t", changes);
  }

  storage::MemoryObjectStore store_;
  SimClock clock_{1000};
  table::TableOps ops_;
  std::unique_ptr<catalog::Catalog> catalog_;
};

TEST_F(LakehouseSourceTest, ResolvesSchemaAndScans) {
  core::LakehouseSource source(catalog_.get(), &ops_, "main");
  auto schema = source.GetTableSchema("taxi_table");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->HasField("fare"));
  auto table = source.ScanTable("taxi_table", {"fare", "zone"}, {});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_columns(), 2);
  EXPECT_EQ(table->num_rows(), 500);
  EXPECT_TRUE(
      source.GetTableSchema("nope").status().IsNotFound());
}

TEST_F(LakehouseSourceTest, OverlayShadowsCatalog) {
  core::LakehouseSource source(catalog_.get(), &ops_, "main");
  Int64Builder n;
  n.Append(7);
  source.AddOverlayTable(
      "taxi_table", *Table::Make(Schema({{"n", TypeId::kInt64, false}}),
                                 {n.Finish()}));
  // The overlay wins for both schema and scan (the fused executor's
  // in-memory intermediates shadow materialized tables).
  auto schema = source.GetTableSchema("taxi_table");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->HasField("n"));
  auto table = source.ScanTable("taxi_table", {}, {});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1);
}

TEST_F(LakehouseSourceTest, UnknownRefErrors) {
  core::LakehouseSource source(catalog_.get(), &ops_, "no_such_branch");
  EXPECT_FALSE(source.GetTableSchema("taxi_table").ok());
  EXPECT_FALSE(source.ScanTable("taxi_table", {}, {}).ok());
}

}  // namespace
}  // namespace bauplan
