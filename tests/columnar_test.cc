#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "columnar/datetime.h"
#include "columnar/serialize.h"
#include "columnar/table.h"
#include "columnar/type.h"
#include "columnar/value.h"

namespace bauplan::columnar {
namespace {

Schema TaxiSchema() {
  return Schema({{"pickup_location_id", TypeId::kInt64, false},
                 {"passenger_count", TypeId::kInt64, true},
                 {"fare", TypeId::kDouble, true},
                 {"zone", TypeId::kString, true}});
}

Table SmallTable() {
  Int64Builder ids;
  for (int64_t v : {1, 2, 3, 4}) ids.Append(v);
  Int64Builder counts;
  counts.Append(2);
  counts.AppendNull();
  counts.Append(5);
  counts.Append(1);
  DoubleBuilder fares;
  fares.Append(10.5);
  fares.Append(7.25);
  fares.AppendNull();
  fares.Append(33.0);
  StringBuilder zones;
  zones.Append("JFK");
  zones.Append("SoHo");
  zones.Append("JFK");
  zones.AppendNull();
  auto table = Table::Make(
      TaxiSchema(), {ids.Finish(), counts.Finish(), fares.Finish(),
                     zones.Finish()});
  return *table;
}

// ---------------------------------------------------------------- Types

TEST(TypeTest, NamesRoundTrip) {
  for (TypeId id : {TypeId::kBool, TypeId::kInt64, TypeId::kDouble,
                    TypeId::kString, TypeId::kTimestamp}) {
    auto parsed = TypeIdFromString(TypeIdToString(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(TypeIdFromString("decimal").ok());
}

TEST(TypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(TypeId::kInt64));
  EXPECT_TRUE(IsNumeric(TypeId::kDouble));
  EXPECT_TRUE(IsNumeric(TypeId::kTimestamp));
  EXPECT_FALSE(IsNumeric(TypeId::kString));
  EXPECT_FALSE(IsNumeric(TypeId::kBool));
}

TEST(SchemaTest, FieldLookup) {
  Schema s = TaxiSchema();
  EXPECT_EQ(s.num_fields(), 4);
  EXPECT_EQ(s.GetFieldIndex("fare"), 2);
  EXPECT_EQ(s.GetFieldIndex("nope"), -1);
  EXPECT_TRUE(s.HasField("zone"));
  auto f = s.GetFieldByName("passenger_count");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->type, TypeId::kInt64);
  EXPECT_FALSE(s.GetFieldByName("nope").ok());
}

TEST(SchemaTest, AddRemoveSelect) {
  Schema s = TaxiSchema();
  auto added = s.AddField({"tip", TypeId::kDouble, true});
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added->num_fields(), 5);
  EXPECT_FALSE(s.AddField({"fare", TypeId::kDouble, true}).ok());

  auto removed = added->RemoveField("zone");
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(removed->HasField("zone"));
  EXPECT_FALSE(s.RemoveField("nope").ok());

  auto selected = s.Select({"zone", "fare"});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->field(0).name, "zone");
  EXPECT_EQ(selected->field(1).name, "fare");
  EXPECT_FALSE(s.Select({"nope"}).ok());
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema s = TaxiSchema();
  BinaryWriter w;
  s.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Schema::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == s);
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, NullBehaviour) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.ToString(), "NULL");
  EXPECT_EQ(null.Compare(Value::Int64(0)), -1);  // nulls sort first
  EXPECT_EQ(Value::Int64(0).Compare(null), 1);
  EXPECT_EQ(null.Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(10.0).Compare(Value::Int64(9)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, TimestampTypeAndFormat) {
  auto ts = ParseTimestampString("2019-04-01");
  ASSERT_TRUE(ts.ok());
  Value v = Value::Timestamp(*ts);
  EXPECT_EQ(v.type(), TypeId::kTimestamp);
  EXPECT_EQ(v.ToString(), "2019-04-01");
  EXPECT_EQ(v.int64_value(), *ts);
}

TEST(ValueTest, HashEqualValuesEqualHashes) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::String("jfk").Hash(), Value::String("jfk").Hash());
  EXPECT_NE(Value::String("jfk").Hash(), Value::String("lga").Hash());
}

TEST(ValueTest, SerializationRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),         Value::Bool(true),
      Value::Int64(-42),     Value::Double(2.75),
      Value::String("зона"), Value::Timestamp(1554076800000000)};
  BinaryWriter w;
  for (const auto& v : values) v.Serialize(&w);
  BinaryReader r(w.buffer());
  for (const auto& expected : values) {
    auto back = Value::Deserialize(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->is_null(), expected.is_null());
    if (!expected.is_null()) {
      EXPECT_EQ(back->type(), expected.type());
      EXPECT_EQ(*back, expected);
    }
  }
}

TEST(ValueTest, AsDouble) {
  EXPECT_EQ(*Value::Int64(4).AsDouble(), 4.0);
  EXPECT_EQ(*Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

// ---------------------------------------------------------------- Datetime

TEST(DatetimeTest, ParseDateAndDateTime) {
  auto date = ParseTimestampString("2019-04-01");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(*date, 1554076800000000LL);

  auto dt = ParseTimestampString("2019-04-01 12:30:45");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(*dt, 1554076800000000LL +
                     (12LL * 3600 + 30 * 60 + 45) * 1000000);

  auto iso = ParseTimestampString("2019-04-01T12:30:45");
  ASSERT_TRUE(iso.ok());
  EXPECT_EQ(*iso, *dt);
}

TEST(DatetimeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTimestampString("not a date").ok());
  EXPECT_FALSE(ParseTimestampString("2019-13-01").ok());
  EXPECT_FALSE(ParseTimestampString("2019-04-45").ok());
}

TEST(DatetimeTest, FormatRoundTrip) {
  EXPECT_EQ(FormatTimestampString(*ParseTimestampString("2021-06-15")),
            "2021-06-15");
  EXPECT_EQ(
      FormatTimestampString(*ParseTimestampString("2021-06-15 08:09:10")),
      "2021-06-15 08:09:10");
}

// ---------------------------------------------------------------- Arrays

TEST(ArrayTest, Int64BasicAndNulls) {
  Int64Builder b;
  b.Append(10);
  b.AppendNull();
  b.Append(30);
  auto arr = b.Finish();
  EXPECT_EQ(arr->length(), 3);
  EXPECT_EQ(arr->null_count(), 1);
  EXPECT_FALSE(arr->IsNull(0));
  EXPECT_TRUE(arr->IsNull(1));
  const auto* typed = AsInt64(*arr);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->Value(0), 10);
  EXPECT_EQ(typed->Value(2), 30);
  EXPECT_TRUE(arr->GetValue(1).is_null());
  EXPECT_EQ(arr->GetValue(2), Value::Int64(30));
}

TEST(ArrayTest, NoNullsMeansNoValidityAllocation) {
  Int64Builder b;
  for (int i = 0; i < 100; ++i) b.Append(i);
  auto arr = b.Finish();
  EXPECT_EQ(arr->null_count(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(arr->IsNull(i));
}

TEST(ArrayTest, StringViewsAndNulls) {
  StringBuilder b;
  b.Append("hello");
  b.AppendNull();
  b.Append("");
  b.Append("world");
  auto arr = b.Finish();
  const auto* s = AsString(*arr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Value(0), "hello");
  EXPECT_TRUE(s->IsNull(1));
  EXPECT_EQ(s->Value(2), "");
  EXPECT_EQ(s->Value(3), "world");
}

TEST(ArrayTest, TimestampArrayReportsTimestampType) {
  Int64Builder b(TypeId::kTimestamp);
  b.Append(1554076800000000LL);
  auto arr = b.Finish();
  EXPECT_EQ(arr->type(), TypeId::kTimestamp);
  EXPECT_EQ(arr->GetValue(0).type(), TypeId::kTimestamp);
  EXPECT_NE(AsInt64(*arr), nullptr);  // int64 storage is shared
}

TEST(ArrayTest, BoolArray) {
  BoolBuilder b;
  b.Append(true);
  b.Append(false);
  b.AppendNull();
  auto arr = b.Finish();
  const auto* typed = AsBool(*arr);
  EXPECT_TRUE(typed->Value(0));
  EXPECT_FALSE(typed->Value(1));
  EXPECT_TRUE(typed->IsNull(2));
}

TEST(ArrayTest, DowncastMismatchedTypeIsNull) {
  Int64Builder b;
  b.Append(1);
  auto arr = b.Finish();
  EXPECT_EQ(AsString(*arr), nullptr);
  EXPECT_EQ(AsBool(*arr), nullptr);
  EXPECT_EQ(AsDouble(*arr), nullptr);
}

TEST(BuilderTest, AppendValueTypeChecks) {
  Int64Builder b;
  EXPECT_TRUE(b.AppendValue(Value::Int64(1)).ok());
  EXPECT_TRUE(b.AppendValue(Value::Null()).ok());
  EXPECT_FALSE(b.AppendValue(Value::String("x")).ok());
  DoubleBuilder d;
  EXPECT_TRUE(d.AppendValue(Value::Int64(2)).ok());  // widening allowed
  EXPECT_TRUE(d.AppendValue(Value::Double(2.5)).ok());
  EXPECT_FALSE(d.AppendValue(Value::Bool(true)).ok());
}

TEST(BuilderTest, MakeBuilderCoversAllTypes) {
  for (TypeId id : {TypeId::kBool, TypeId::kInt64, TypeId::kDouble,
                    TypeId::kString, TypeId::kTimestamp}) {
    auto b = MakeBuilder(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->type(), id);
    b->AppendNull();
    auto arr = b->Finish();
    EXPECT_EQ(arr->length(), 1);
    EXPECT_TRUE(arr->IsNull(0));
  }
}

// ---------------------------------------------------------------- Table

TEST(TableTest, MakeValidatesShape) {
  Int64Builder ids;
  ids.Append(1);
  auto ok = Table::Make(Schema({{"id", TypeId::kInt64, false}}),
                        {ids.Finish()});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_rows(), 1);

  Int64Builder a, bb;
  a.Append(1);
  bb.Append(1);
  bb.Append(2);
  auto mismatch = Table::Make(Schema({{"a", TypeId::kInt64, false},
                                      {"b", TypeId::kInt64, false}}),
                              {a.Finish(), bb.Finish()});
  EXPECT_FALSE(mismatch.ok());

  Int64Builder c;
  c.Append(1);
  auto wrong_type = Table::Make(Schema({{"c", TypeId::kString, false}}),
                                {c.Finish()});
  EXPECT_FALSE(wrong_type.ok());

  auto arity = Table::Make(Schema({{"a", TypeId::kInt64, false}}), {});
  EXPECT_FALSE(arity.ok());
}

TEST(TableTest, ColumnAccessAndSelect) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_columns(), 4);
  auto col = t.GetColumnByName("fare");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), TypeId::kDouble);
  EXPECT_FALSE(t.GetColumnByName("nope").ok());

  auto proj = t.SelectColumns({"zone", "pickup_location_id"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 2);
  EXPECT_EQ(proj->schema().field(0).name, "zone");
  EXPECT_EQ(proj->num_rows(), 4);
}

TEST(TableTest, AddColumn) {
  Table t = SmallTable();
  DoubleBuilder tips;
  for (int i = 0; i < 4; ++i) tips.Append(i * 0.5);
  auto with_tip = t.AddColumn({"tip", TypeId::kDouble, true}, tips.Finish());
  ASSERT_TRUE(with_tip.ok());
  EXPECT_EQ(with_tip->num_columns(), 5);

  DoubleBuilder wrong;
  wrong.Append(1.0);
  EXPECT_FALSE(
      t.AddColumn({"bad", TypeId::kDouble, true}, wrong.Finish()).ok());
}

TEST(TableTest, ToStringShowsHeaderAndTruncation) {
  Table t = SmallTable();
  std::string text = t.ToString(2);
  EXPECT_NE(text.find("pickup_location_id"), std::string::npos);
  EXPECT_NE(text.find("2 more rows"), std::string::npos);
}

TEST(TableTest, EstimatedBytesPositive) {
  EXPECT_GT(SmallTable().EstimatedBytes(), 0);
}

// ---------------------------------------------------------------- Compute

TEST(ComputeTest, TakeReordersAndRepeats) {
  Table t = SmallTable();
  auto taken = TakeTable(t, {3, 0, 0});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->num_rows(), 3);
  EXPECT_EQ(taken->GetValue(0, 0), Value::Int64(4));
  EXPECT_EQ(taken->GetValue(1, 0), Value::Int64(1));
  EXPECT_EQ(taken->GetValue(2, 0), Value::Int64(1));
  // Null propagates through take.
  EXPECT_TRUE(taken->GetValue(0, 3).is_null());  // zone of row 3 was null
}

TEST(ComputeTest, TakeOutOfRangeFails) {
  Table t = SmallTable();
  EXPECT_FALSE(TakeTable(t, {4}).ok());
  EXPECT_FALSE(TakeTable(t, {-1}).ok());
}

TEST(ComputeTest, FilterKeepsTrueRowsDropsNullMask) {
  Table t = SmallTable();
  BoolBuilder mask;
  mask.Append(true);
  mask.Append(false);
  mask.AppendNull();
  mask.Append(true);
  auto arr = mask.Finish();
  auto filtered = FilterTable(t, *AsBool(*arr));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 2);
  EXPECT_EQ(filtered->GetValue(0, 0), Value::Int64(1));
  EXPECT_EQ(filtered->GetValue(1, 0), Value::Int64(4));
}

TEST(ComputeTest, FilterLengthMismatchFails) {
  Table t = SmallTable();
  BoolBuilder mask;
  mask.Append(true);
  auto arr = mask.Finish();
  EXPECT_FALSE(FilterTable(t, *AsBool(*arr)).ok());
}

TEST(ComputeTest, ConcatStacksRows) {
  Table t = SmallTable();
  auto twice = ConcatTables({t, t});
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->num_rows(), 8);
  EXPECT_EQ(twice->GetValue(4, 0), Value::Int64(1));
  EXPECT_FALSE(ConcatTables({}).ok());

  Int64Builder other;
  other.Append(9);
  Table different =
      *Table::Make(Schema({{"x", TypeId::kInt64, false}}), {other.Finish()});
  EXPECT_FALSE(ConcatTables({t, different}).ok());
}

TEST(ComputeTest, SliceClampsAtEnd) {
  Table t = SmallTable();
  auto s = SliceTable(t, 2, 10);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 2);
  EXPECT_EQ(s->GetValue(0, 0), Value::Int64(3));
  EXPECT_FALSE(SliceTable(t, 5, 1).ok());
}

TEST(ComputeTest, StatsMinMaxNulls) {
  Table t = SmallTable();
  ColumnStats fare = ComputeStats(**t.GetColumnByName("fare"));
  EXPECT_EQ(fare.min, Value::Double(7.25));
  EXPECT_EQ(fare.max, Value::Double(33.0));
  EXPECT_EQ(fare.null_count, 1);
  EXPECT_EQ(fare.value_count, 4);

  ColumnStats zone = ComputeStats(**t.GetColumnByName("zone"));
  EXPECT_EQ(zone.min, Value::String("JFK"));
  EXPECT_EQ(zone.max, Value::String("SoHo"));
}

TEST(ComputeTest, StatsAllNull) {
  Int64Builder b;
  b.AppendNull();
  b.AppendNull();
  auto arr = b.Finish();
  ColumnStats stats = ComputeStats(*arr);
  EXPECT_TRUE(stats.min.is_null());
  EXPECT_TRUE(stats.max.is_null());
  EXPECT_EQ(stats.null_count, 2);
}

// ---------------------------------------------------------------- Serialize

TEST(SerializeTest, TableRoundTrip) {
  Table t = SmallTable();
  Bytes bytes = SerializeTable(t);
  auto back = DeserializeTable(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->schema() == t.schema());
  EXPECT_EQ(back->num_rows(), t.num_rows());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_columns(); ++c) {
      Value a = t.GetValue(r, c);
      Value b = back->GetValue(r, c);
      EXPECT_EQ(a.is_null(), b.is_null());
      if (!a.is_null()) { EXPECT_EQ(a, b); }
    }
  }
}

TEST(SerializeTest, EmptyTableRoundTrip) {
  Table t = *Table::Make(Schema({{"x", TypeId::kInt64, true}}),
                         {Int64Builder().Finish()});
  Bytes bytes = SerializeTable(t);
  auto back = DeserializeTable(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0);
}

TEST(SerializeTest, CorruptMagicFails) {
  Table t = SmallTable();
  Bytes bytes = SerializeTable(t);
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeTable(bytes).ok());
}

TEST(SerializeTest, TruncatedPayloadFails) {
  Table t = SmallTable();
  Bytes bytes = SerializeTable(t);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeTable(bytes).ok());
}

// Property-style sweep: round trip tables of varying sizes and null rates.
class SerializeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SerializeRoundTrip, PreservesEveryCell) {
  int rows = std::get<0>(GetParam());
  int null_every = std::get<1>(GetParam());
  Int64Builder ints;
  DoubleBuilder doubles;
  StringBuilder strings;
  for (int i = 0; i < rows; ++i) {
    if (null_every > 0 && i % null_every == 0) {
      ints.AppendNull();
      doubles.AppendNull();
      strings.AppendNull();
    } else {
      ints.Append(i * 7 - 3);
      doubles.Append(i * 0.25);
      strings.Append(std::string(static_cast<size_t>(i % 13), 'x'));
    }
  }
  Table t = *Table::Make(Schema({{"i", TypeId::kInt64, true},
                                 {"d", TypeId::kDouble, true},
                                 {"s", TypeId::kString, true}}),
                         {ints.Finish(), doubles.Finish(), strings.Finish()});
  auto back = DeserializeTable(SerializeTable(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), rows);
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < 3; ++c) {
      Value a = t.GetValue(r, c);
      Value b = back->GetValue(r, c);
      ASSERT_EQ(a.is_null(), b.is_null()) << "row " << r << " col " << c;
      if (!a.is_null()) { ASSERT_EQ(a, b) << "row " << r << " col " << c; }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SerializeRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 17, 256, 4096),
                       ::testing::Values(0, 1, 3)));

}  // namespace
}  // namespace bauplan::columnar
