// The differential artifact cache, end to end: bit-identity of cached
// runs across execution modes and budgets, cross-branch reuse through
// content ids, the degradation contract under fault injection, LRU
// accounting, index persistence across platform processes, the run
// registry's cached-node record (with back-compat for pre-cache
// records), and the query result cache's payload-identity contract.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cache/artifact_cache.h"
#include "cache/fingerprint.h"
#include "columnar/builder.h"
#include "columnar/serialize.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "core/bauplan.h"
#include "core/query_cache.h"
#include "pipeline/project.h"
#include "pipeline/run_registry.h"
#include "storage/fault_injection_store.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

columnar::Table SmallTaxi() {
  workload::TaxiGenOptions gen;
  gen.rows = 2000;
  gen.start_date = "2019-03-01";
  auto table = workload::GenerateTaxiTable(gen);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return *table;
}

pipeline::PipelineProject SmallPipeline() {
  pipeline::PipelineProject project("cache_proj");
  auto reqs =
      expectations::RequirementSet::Parse("pandas==2.0.0").ValueOrDie();
  EXPECT_TRUE(project
                  .AddSqlNode("trips",
                              "SELECT pickup_location_id, COUNT(*) AS n "
                              "FROM taxi_table GROUP BY "
                              "pickup_location_id ORDER BY "
                              "pickup_location_id",
                              reqs)
                  .ok());
  EXPECT_TRUE(project
                  .AddSqlNode("busy",
                              "SELECT pickup_location_id, n FROM trips "
                              "WHERE n > 1 ORDER BY pickup_location_id")
                  .ok());
  EXPECT_TRUE(
      project.AddExpectationNode("busy_expectation", "mean(n) > 0").ok());
  return project;
}

std::map<std::string, Bytes> ArtifactBytes(const core::RunReport& report) {
  std::map<std::string, Bytes> out;
  for (const auto& [name, table] : report.artifacts) {
    out[name] = columnar::SerializeTable(table);
  }
  return out;
}

/// A platform over its own in-memory store, pre-seeded with taxi data.
struct Platform {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store{&base};
  SimClock clock{1700000000000000ull};
  std::unique_ptr<core::Bauplan> bp;

  explicit Platform(core::BauplanOptions options = {}) {
    auto opened = core::Bauplan::Open(&store, &clock, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    bp = std::move(*opened);
    auto taxi = SmallTaxi();
    EXPECT_TRUE(bp->CreateTable("main", "taxi_table", taxi.schema()).ok());
    EXPECT_TRUE(bp->WriteTable("main", "taxi_table", taxi).ok());
  }
};

// ---------------------------------------------------------------------
// Bit-identity battery: warm runs must produce the same bytes as cold
// ones in every mode × budget combination, whether or not anything was
// actually served from cache.
// ---------------------------------------------------------------------

struct BatteryCase {
  int parallelism;
  uint64_t budget;
  bool expect_hits;  // budget large enough to actually serve
};

class CacheBitIdentityTest : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(CacheBitIdentityTest, WarmRunMatchesCold) {
  const BatteryCase& c = GetParam();
  core::BauplanOptions options;
  options.artifact_cache_bytes = c.budget;
  Platform p(options);

  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  run.parallelism = c.parallelism;

  auto cold = p.bp->Run(project, "main", run);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->merged);
  auto warm = p.bp->Run(project, "main", run);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(warm->merged);

  EXPECT_EQ(ArtifactBytes(*cold), ArtifactBytes(*warm));
  auto stats = p.bp->artifact_cache_stats();
  if (c.expect_hits) {
    EXPECT_GT(stats.hits, 0);
    for (const auto& node : warm->nodes) {
      EXPECT_TRUE(node.cache_hit) << node.name;
    }
  } else if (c.budget == 0) {
    EXPECT_EQ(stats.hits, 0);
    for (const auto& node : warm->nodes) {
      EXPECT_FALSE(node.cache_hit) << node.name;
    }
  } else {
    // A tiny-but-nonzero budget holds byte-sized expectation outcomes
    // but no table payloads: SQL models must all have re-executed.
    for (const auto& node : warm->nodes) {
      if (node.kind == pipeline::NodeKind::kSqlModel) {
        EXPECT_FALSE(node.cache_hit) << node.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParallelismByBudget, CacheBitIdentityTest,
    ::testing::Values(BatteryCase{1, 0, false},      // disabled
                      BatteryCase{4, 0, false},      //
                      BatteryCase{1, 64, false},     // too tiny to hold
                      BatteryCase{4, 64, false},     //
                      BatteryCase{1, 1ull << 30, true},
                      BatteryCase{4, 1ull << 30, true}));

// A cache filled at one parallelism serves another: exec knobs are
// excluded from the fingerprint because the determinism contract makes
// the bytes identical across them.
TEST(ArtifactCachePlatformTest, CacheCrossesParallelism) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  run.parallelism = 4;
  auto cold = p.bp->Run(project, "main", run);
  ASSERT_TRUE(cold.ok());

  run.parallelism = 1;
  auto warm = p.bp->Run(project, "main", run);
  ASSERT_TRUE(warm.ok());
  for (const auto& node : warm->nodes) {
    EXPECT_TRUE(node.cache_hit) << node.name;
  }
  EXPECT_EQ(ArtifactBytes(*cold), ArtifactBytes(*warm));
}

// Fused and naive runs share entries the same way.
TEST(ArtifactCachePlatformTest, CacheCrossesFusionMode) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions naive;
  naive.fused = false;
  auto cold = p.bp->Run(project, "main", naive);
  ASSERT_TRUE(cold.ok());

  core::PipelineRunOptions fused;  // default fused = true
  auto warm = p.bp->Run(project, "main", fused);
  ASSERT_TRUE(warm.ok());
  for (const auto& node : warm->nodes) {
    EXPECT_TRUE(node.cache_hit) << node.name;
  }
  EXPECT_EQ(ArtifactBytes(*cold), ArtifactBytes(*warm));
}

// A trimmed run bypasses the cache entirely: trimmed artifact bytes
// depend on downstream consumers, which the upstream-only Merkle key
// cannot capture — serving an untrimmed cached artifact would undo the
// trim (and vice versa).
TEST(ArtifactCachePlatformTest, TrimmedRunsBypassTheCache) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  ASSERT_TRUE(p.bp->Run(project, "main", run).ok());  // fill, untrimmed

  core::PipelineRunOptions trimmed = run;
  trimmed.trim_unused_columns = true;
  int64_t hits_before = p.bp->artifact_cache_stats().hits;
  int64_t inserts_before = p.bp->artifact_cache_stats().inserts;
  auto report = p.bp->Run(project, "main", trimmed);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& node : report->nodes) {
    EXPECT_FALSE(node.cache_hit) << node.name;
  }
  EXPECT_EQ(p.bp->artifact_cache_stats().hits, hits_before);
  EXPECT_EQ(p.bp->artifact_cache_stats().inserts, inserts_before);
}

// ---------------------------------------------------------------------
// Cross-branch reuse: fingerprints address content (table metadata
// keys), not refs, so a fork of main replays main's cache for free.
// ---------------------------------------------------------------------

TEST(ArtifactCachePlatformTest, ForkReusesMainArtifacts) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;

  auto on_main = p.bp->Run(project, "main", run);
  ASSERT_TRUE(on_main.ok());
  int64_t hits_before = p.bp->artifact_cache_stats().hits;

  ASSERT_TRUE(p.bp->CreateBranch("feature", "main").ok());
  auto on_fork = p.bp->Run(project, "feature", run);
  ASSERT_TRUE(on_fork.ok());
  for (const auto& node : on_fork->nodes) {
    EXPECT_TRUE(node.cache_hit) << node.name;
  }
  EXPECT_EQ(p.bp->artifact_cache_stats().hits - hits_before,
            static_cast<int64_t>(on_fork->nodes.size()));
  EXPECT_EQ(ArtifactBytes(*on_main), ArtifactBytes(*on_fork));
}

// ...and writing new data to the fork re-keys everything downstream of
// the changed table, on the fork only.
TEST(ArtifactCachePlatformTest, ForkWriteInvalidatesForkOnly) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  ASSERT_TRUE(p.bp->Run(project, "main", run).ok());

  ASSERT_TRUE(p.bp->CreateBranch("feature", "main").ok());
  ASSERT_TRUE(
      p.bp->WriteTable("feature", "taxi_table", SmallTaxi()).ok());
  auto on_fork = p.bp->Run(project, "feature", run);
  ASSERT_TRUE(on_fork.ok());
  for (const auto& node : on_fork->nodes) {
    EXPECT_FALSE(node.cache_hit) << node.name;
  }

  // Main's entries were untouched: a main re-run still hits everywhere.
  auto on_main = p.bp->Run(project, "main", run);
  ASSERT_TRUE(on_main.ok());
  for (const auto& node : on_main->nodes) {
    EXPECT_TRUE(node.cache_hit) << node.name;
  }
}

// ---------------------------------------------------------------------
// Degradation contract under fault injection.
// ---------------------------------------------------------------------

TEST(ArtifactCachePlatformTest, CacheFaultsNeverFailARun) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  run.parallelism = 4;
  ASSERT_TRUE(p.bp->Run(project, "main", run).ok());  // fill

  // Every cache/ op now errors; catalog and data paths stay healthy.
  p.store.FailOnlyPrefix("cache/");
  p.store.FailAfter(0);
  int64_t hits_before = p.bp->artifact_cache_stats().hits;
  auto degraded = p.bp->Run(project, "main", run);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->merged);
  EXPECT_EQ(p.bp->artifact_cache_stats().hits, hits_before);
  for (const auto& node : degraded->nodes) {
    EXPECT_FALSE(node.cache_hit) << node.name;
  }

  // Healed, the next run re-inserts what the failed probes dropped.
  p.store.Heal();
  int64_t inserts_before = p.bp->artifact_cache_stats().inserts;
  auto recovered = p.bp->Run(project, "main", run);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(p.bp->artifact_cache_stats().inserts, inserts_before);
}

// ---------------------------------------------------------------------
// ArtifactCache unit level: LRU, eviction, stats, persistence.
// ---------------------------------------------------------------------

cache::CachedArtifact MakeArtifact(int64_t rows) {
  cache::CachedArtifact artifact;
  columnar::Int64Builder b;
  for (int64_t i = 0; i < rows; ++i) b.Append(i);
  artifact.table = *columnar::Table::Make(
      columnar::Schema({{"v", columnar::TypeId::kInt64, false}}),
      {b.Finish()});
  artifact.output_rows = rows;
  return artifact;
}

TEST(ArtifactCacheTest, LruEvictionUnderBudget) {
  storage::MemoryObjectStore store;
  auto one_entry = MakeArtifact(100).Serialize().size();
  // Room for two entries, not three.
  cache::ArtifactCache cache(&store, 2 * one_entry + one_entry / 2);

  cache.Insert("k1", MakeArtifact(100));
  cache.Insert("k2", MakeArtifact(100));
  EXPECT_EQ(cache.entry_count(), 2u);
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup("k1").has_value());
  cache.Insert("k3", MakeArtifact(100));

  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_TRUE(cache.Lookup("k1").has_value());
  EXPECT_FALSE(cache.Lookup("k2").has_value());
  EXPECT_TRUE(cache.Lookup("k3").has_value());
  EXPECT_LE(cache.used_bytes(), cache.budget_bytes());
}

TEST(ArtifactCacheTest, OverBudgetPayloadIsSkippedNotFatal) {
  storage::MemoryObjectStore store;
  cache::ArtifactCache cache(&store, 16);
  cache.Insert("huge", MakeArtifact(1000));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.Lookup("huge").has_value());
}

TEST(ArtifactCacheTest, ZeroBudgetDisables) {
  storage::MemoryObjectStore store;
  cache::ArtifactCache cache(&store, 0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", MakeArtifact(10));
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().inserts, 0);
}

TEST(ArtifactCacheTest, LoadIndexSeesEarlierProcessEntries) {
  storage::MemoryObjectStore store;
  {
    cache::ArtifactCache writer(&store, 1 << 20);
    writer.Insert("persisted", MakeArtifact(50));
  }
  cache::ArtifactCache reader(&store, 1 << 20);
  EXPECT_FALSE(reader.Lookup("persisted").has_value());  // index empty
  reader.LoadIndex();
  auto hit = reader.Lookup("persisted");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->output_rows, 50);
}

TEST(ArtifactCacheTest, CorruptEntryDroppedOnFirstTouch) {
  storage::MemoryObjectStore store;
  cache::ArtifactCache cache(&store, 1 << 20);
  cache.Insert("k", MakeArtifact(10));
  ASSERT_TRUE(store.Put("cache/k", Bytes{0xde, 0xad}).ok());
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.entry_count(), 0u);  // dropped, not retried forever
}

TEST(ArtifactCacheTest, ClearDropsEverything) {
  storage::MemoryObjectStore store;
  cache::ArtifactCache cache(&store, 1 << 20);
  cache.Insert("a", MakeArtifact(10));
  cache.Insert("b", MakeArtifact(10));
  auto dropped = cache.Clear();
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 2u);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(ArtifactCacheTest, ExpectationArtifactRoundTrips) {
  cache::CachedArtifact artifact;
  artifact.kind = pipeline::NodeKind::kExpectation;
  artifact.expectation_passed = false;
  artifact.details = "mean(count) > 0 failed";
  auto decoded = cache::CachedArtifact::Deserialize(artifact.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, pipeline::NodeKind::kExpectation);
  EXPECT_FALSE(decoded->expectation_passed);
  EXPECT_EQ(decoded->details, "mean(count) > 0 failed");
}

// ---------------------------------------------------------------------
// Fingerprints.
// ---------------------------------------------------------------------

TEST(FingerprintTest, CodeChangeRekeysOnlyTheCone) {
  Platform p;
  auto a = SmallPipeline();
  pipeline::PipelineProject b("cache_proj");
  for (const auto& n : a.nodes()) {
    // Mutate the terminal SQL node only; "trips" feeds it.
    std::string code =
        n.name == "busy" ? n.code + " LIMIT 10" : n.code;
    Status st = n.kind == pipeline::NodeKind::kSqlModel
                    ? b.AddSqlNode(n.name, code, n.requirements)
                    : b.AddExpectationNode(n.name, code, n.requirements);
    ASSERT_TRUE(st.ok());
  }
  auto dag_a = pipeline::Dag::Build(a, {"taxi_table"});
  auto dag_b = pipeline::Dag::Build(b, {"taxi_table"});
  ASSERT_TRUE(dag_a.ok() && dag_b.ok());
  std::set<std::string> all_a(dag_a->execution_order().begin(),
                              dag_a->execution_order().end());
  auto keys_a = cache::ComputeNodeFingerprints(*dag_a, all_a,
                                               p.bp->mutable_catalog(),
                                               "main");
  auto keys_b = cache::ComputeNodeFingerprints(*dag_b, all_a,
                                               p.bp->mutable_catalog(),
                                               "main");
  EXPECT_EQ(keys_a.Find("trips"), keys_b.Find("trips"));
  EXPECT_NE(keys_a.Find("busy"), keys_b.Find("busy"));
  // The expectation audits busy, so it re-keys with it.
  EXPECT_NE(keys_a.Find("busy_expectation"),
            keys_b.Find("busy_expectation"));
  for (const auto& [name, key] : keys_a.key_of) {
    EXPECT_FALSE(key.empty()) << name;
  }
}

TEST(FingerprintTest, UnresolvableInputYieldsEmptyKeys) {
  Platform p;
  pipeline::PipelineProject project("ghost");
  ASSERT_TRUE(
      project.AddSqlNode("reader", "SELECT * FROM no_such_table").ok());
  // The DAG resolves (the table is "known"), but the catalog at main has
  // no such table, so no content id exists to fingerprint against.
  auto dag = pipeline::Dag::Build(project, {"no_such_table"});
  ASSERT_TRUE(dag.ok());
  auto keys = cache::ComputeNodeFingerprints(
      *dag, {"reader"}, p.bp->mutable_catalog(), "main");
  EXPECT_TRUE(keys.Find("reader").empty());
}

// ---------------------------------------------------------------------
// Run registry: cached_nodes record + pre-cache back-compat.
// ---------------------------------------------------------------------

TEST(RunRegistryCacheTest, CachedNodesRoundTrip) {
  storage::MemoryObjectStore store;
  SimClock clock(1000);
  pipeline::RunRegistry registry(&store, &clock, "runs");
  pipeline::PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("n", "SELECT 1 AS one", {}).ok());
  auto record = registry.RegisterRun(project, "main", "commit-1");
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE(registry
                  .FinishRun(record->run_id, "succeeded", "commit-2",
                             {"n", "m"})
                  .ok());
  auto loaded = registry.GetRun(record->run_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->cached_nodes,
            (std::vector<std::string>{"n", "m"}));
}

TEST(RunRegistryCacheTest, PreCacheRecordDeserializes) {
  // A record serialized before the cached_nodes tail existed: the exact
  // v1 field sequence, ending at the project snapshot.
  BinaryWriter w;
  w.PutI64(7);
  w.PutString("legacy_project");
  w.PutString("fp");
  w.PutString("data-commit");
  w.PutString("result-commit");
  w.PutString("main");
  w.PutU64(123456);
  w.PutString("succeeded");
  w.PutU32(0);  // empty snapshot
  auto record = pipeline::RunRecord::Deserialize(w.TakeBuffer());
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->run_id, 7);
  EXPECT_EQ(record->project_name, "legacy_project");
  EXPECT_TRUE(record->cached_nodes.empty());
}

TEST(RunRegistryCacheTest, PlatformRecordsCachedNodes) {
  Platform p;
  auto project = SmallPipeline();
  core::PipelineRunOptions run;
  run.fused = false;
  auto cold = p.bp->Run(project, "main", run);
  ASSERT_TRUE(cold.ok());
  auto warm = p.bp->Run(project, "main", run);
  ASSERT_TRUE(warm.ok());

  auto cold_record = p.bp->run_registry().GetRun(cold->run_id);
  auto warm_record = p.bp->run_registry().GetRun(warm->run_id);
  ASSERT_TRUE(cold_record.ok() && warm_record.ok());
  EXPECT_TRUE(cold_record->cached_nodes.empty());
  EXPECT_EQ(warm_record->cached_nodes.size(), warm->nodes.size());
}

// ---------------------------------------------------------------------
// Query result cache: cached and uncached paths must return identical
// payloads, including plan/lint capture.
// ---------------------------------------------------------------------

TEST(QueryCachePayloadTest, CachedPayloadMatchesUncached) {
  Platform p;
  const std::string sql =
      "SELECT pickup_location_id, COUNT(*) AS n FROM taxi_table "
      "GROUP BY pickup_location_id ORDER BY pickup_location_id";
  sql::QueryOptions options;
  options.capture_plans = true;

  auto fresh = p.bp->Query(sql, {}, options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->from_cache);
  auto cached = p.bp->Query(sql, {}, options);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);

  EXPECT_EQ(columnar::SerializeTable(fresh->table),
            columnar::SerializeTable(cached->table));
  EXPECT_EQ(fresh->logical_plan, cached->logical_plan);
  EXPECT_EQ(fresh->physical_plan, cached->physical_plan);
  EXPECT_EQ(fresh->lints.size(), cached->lints.size());
  EXPECT_EQ(fresh->stats.rows_output, cached->stats.rows_output);
  EXPECT_EQ(fresh->stats.rows_scanned, cached->stats.rows_scanned);
}

TEST(QueryCachePayloadTest, PlanLessEntryDoesNotServeExplain) {
  Platform p;
  const std::string sql = "SELECT COUNT(*) AS n FROM taxi_table";

  auto plain = p.bp->Query(sql);  // fills a plan-less entry
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->logical_plan.empty());

  sql::QueryOptions explain;
  explain.capture_plans = true;
  auto with_plans = p.bp->Query(sql, {}, explain);
  ASSERT_TRUE(with_plans.ok());
  // The plan-less entry must not satisfy a capture_plans request...
  EXPECT_FALSE(with_plans->from_cache);
  EXPECT_FALSE(with_plans->logical_plan.empty());

  // ...and the upgraded entry now serves both shapes.
  auto again = p.bp->Query(sql, {}, explain);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(again->logical_plan, with_plans->logical_plan);
  auto plain_again = p.bp->Query(sql);
  ASSERT_TRUE(plain_again.ok());
  EXPECT_TRUE(plain_again->from_cache);
  // Plain requests get no plan text, exactly like an uncached plain run.
  EXPECT_TRUE(plain_again->logical_plan.empty());
  EXPECT_TRUE(plain_again->lints.empty());
}

}  // namespace
}  // namespace bauplan
