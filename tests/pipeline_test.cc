#include <gtest/gtest.h>

#include "common/clock.h"
#include "pipeline/dag.h"
#include "pipeline/project.h"
#include "pipeline/run_registry.h"
#include "storage/object_store.h"

namespace bauplan::pipeline {
namespace {

// ---------------------------------------------------------------- project

TEST(ProjectTest, PaperPipelineAssembles) {
  PipelineProject project = MakePaperTaxiPipeline();
  ASSERT_EQ(project.nodes().size(), 3u);
  EXPECT_EQ(project.nodes()[0].name, "trips");
  EXPECT_EQ(project.nodes()[1].name, "trips_expectation");
  EXPECT_EQ(project.nodes()[1].kind, NodeKind::kExpectation);
  EXPECT_EQ(project.nodes()[1].requirements.ToString(), "pandas==2.0.0");
  EXPECT_EQ(project.nodes()[2].name, "pickups");
  EXPECT_NE(project.FindNode("trips"), nullptr);
  EXPECT_EQ(project.FindNode("nope"), nullptr);
}

TEST(ProjectTest, DuplicateNodeRejected) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM t").ok());
  EXPECT_TRUE(
      project.AddSqlNode("a", "SELECT * FROM u").IsAlreadyExists());
}

TEST(ProjectTest, ExpectationNamingConventionEnforced) {
  PipelineProject project("p");
  EXPECT_FALSE(
      project.AddExpectationNode("check_trips", "mean(x) > 1").ok());
  EXPECT_TRUE(
      project.AddExpectationNode("trips_expectation", "mean(x) > 1").ok());
  auto target = project.FindNode("trips_expectation")->ExpectationTarget();
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "trips");
}

TEST(ProjectTest, SnapshotRoundTripAndFingerprint) {
  PipelineProject project = MakePaperTaxiPipeline();
  std::string fp = project.Fingerprint();
  EXPECT_EQ(fp.size(), 16u);
  // Deterministic.
  EXPECT_EQ(fp, MakePaperTaxiPipeline().Fingerprint());
  // Different threshold -> different code -> different fingerprint.
  EXPECT_NE(fp, MakePaperTaxiPipeline(99).Fingerprint());

  auto restored = PipelineProject::FromSnapshot(project.Snapshot());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Fingerprint(), fp);
  EXPECT_EQ(restored->nodes().size(), 3u);
  EXPECT_EQ(restored->nodes()[1].requirements.ToString(),
            "pandas==2.0.0");
}

// -------------------------------------------------------------------- DAG

TEST(DagTest, PaperPipelineDag) {
  PipelineProject project = MakePaperTaxiPipeline();
  auto dag = Dag::Build(project, {"taxi_table"});
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  // trips first; expectation and pickups after (both depend on trips).
  const auto& order = dag->execution_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "trips");

  const DagNode& trips = dag->GetNode("trips");
  ASSERT_EQ(trips.source_tables.size(), 1u);
  EXPECT_EQ(trips.source_tables[0], "taxi_table");
  EXPECT_TRUE(trips.upstream_nodes.empty());

  const DagNode& pickups = dag->GetNode("pickups");
  ASSERT_EQ(pickups.upstream_nodes.size(), 1u);
  EXPECT_EQ(pickups.upstream_nodes[0], "trips");

  const DagNode& expectation = dag->GetNode("trips_expectation");
  ASSERT_EQ(expectation.upstream_nodes.size(), 1u);
  EXPECT_EQ(expectation.upstream_nodes[0], "trips");

  EXPECT_EQ(dag->AllSourceTables(),
            std::set<std::string>{"taxi_table"});
}

TEST(DagTest, UnknownReferenceFails) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM nowhere").ok());
  auto dag = Dag::Build(project, {"taxi_table"});
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsNotFound());
}

TEST(DagTest, CycleDetected) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM b").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT * FROM a").ok());
  auto dag = Dag::Build(project, {});
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsInvalidArgument());
  EXPECT_NE(dag.status().message().find("cycle"), std::string::npos);
}

TEST(DagTest, SelfReferenceRejected) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM a").ok());
  EXPECT_FALSE(Dag::Build(project, {}).ok());
}

TEST(DagTest, NodeShadowsSourceTable) {
  // A node named like a catalog table wins the reference.
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("trips", "SELECT * FROM raw").ok());
  ASSERT_TRUE(project.AddSqlNode("agg", "SELECT * FROM trips").ok());
  auto dag = Dag::Build(project, {"raw", "trips"});
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->GetNode("agg").upstream_nodes[0], "trips");
  EXPECT_TRUE(dag->GetNode("agg").source_tables.empty());
}

TEST(DagTest, DescendantsSelector) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM src").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT * FROM a").ok());
  ASSERT_TRUE(project.AddSqlNode("c", "SELECT * FROM b").ok());
  ASSERT_TRUE(project.AddSqlNode("d", "SELECT * FROM src").ok());
  auto dag = Dag::Build(project, {"src"});
  ASSERT_TRUE(dag.ok());

  auto from_b = dag->DescendantsOf("b");
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(*from_b, (std::vector<std::string>{"b", "c"}));

  auto from_a = dag->DescendantsOf("a");
  ASSERT_TRUE(from_a.ok());
  EXPECT_EQ(*from_a, (std::vector<std::string>{"a", "b", "c"}));

  EXPECT_FALSE(dag->DescendantsOf("zzz").ok());
}

TEST(DagTest, JoinNodeHasTwoUpstreams) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT * FROM src1").ok());
  ASSERT_TRUE(project.AddSqlNode(
      "joined",
      "SELECT * FROM a JOIN src2 s ON a.id = s.id").ok());
  auto dag = Dag::Build(project, {"src1", "src2"});
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  const DagNode& joined = dag->GetNode("joined");
  EXPECT_EQ(joined.upstream_nodes,
            std::vector<std::string>{"a"});
  EXPECT_EQ(joined.source_tables,
            std::vector<std::string>{"src2"});
}

TEST(DagTest, ToStringShowsShape) {
  PipelineProject project = MakePaperTaxiPipeline();
  auto dag = Dag::Build(project, {"taxi_table"});
  std::string text = dag->ToString();
  EXPECT_NE(text.find("trips [sql] <- taxi_table"), std::string::npos);
  EXPECT_NE(text.find("trips_expectation [expectation] <- trips"),
            std::string::npos);
}

// ----------------------------------------------------------- run registry

class RunRegistryTest : public ::testing::Test {
 protected:
  RunRegistryTest() : registry_(&store_, &clock_) {}

  storage::MemoryObjectStore store_;
  SimClock clock_{5000};
  RunRegistry registry_;
};

TEST_F(RunRegistryTest, RegisterAssignsDenseIds) {
  PipelineProject project = MakePaperTaxiPipeline();
  auto r1 = registry_.RegisterRun(project, "main", "commit_a");
  auto r2 = registry_.RegisterRun(project, "main", "commit_b");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->run_id, 1);
  EXPECT_EQ(r2->run_id, 2);
  EXPECT_EQ(r1->status, "running");
  EXPECT_EQ(r1->fingerprint, project.Fingerprint());

  auto ids = registry_.ListRuns();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<int64_t>{1, 2}));
}

TEST_F(RunRegistryTest, FinishUpdatesStatusAndResultCommit) {
  PipelineProject project = MakePaperTaxiPipeline();
  auto r = registry_.RegisterRun(project, "main", "commit_a");
  ASSERT_TRUE(registry_.FinishRun(r->run_id, "succeeded", "commit_m").ok());
  auto loaded = registry_.GetRun(r->run_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->status, "succeeded");
  EXPECT_EQ(loaded->result_commit_id, "commit_m");
  EXPECT_EQ(loaded->data_commit_id, "commit_a");
}

TEST_F(RunRegistryTest, SnapshotReproducesProject) {
  PipelineProject project = MakePaperTaxiPipeline(42.0);
  auto r = registry_.RegisterRun(project, "main", "c");
  auto restored = registry_.GetRunProject(r->run_id);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Fingerprint(), project.Fingerprint());
  // The threshold survived the round trip inside the code text.
  EXPECT_NE(restored->FindNode("trips_expectation")->code.find("42"),
            std::string::npos);
}

TEST_F(RunRegistryTest, MissingRunIsNotFound) {
  EXPECT_TRUE(registry_.GetRun(99).status().IsNotFound());
  EXPECT_TRUE(registry_.FinishRun(99, "x").IsNotFound());
}

// ---------------------------------------------------------------- selector

TEST(ReplaySelectorTest, Parse) {
  auto plain = ReplaySelector::Parse("pickups");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->node, "pickups");
  EXPECT_FALSE(plain->include_descendants);

  auto plus = ReplaySelector::Parse("pickups+");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(plus->node, "pickups");
  EXPECT_TRUE(plus->include_descendants);

  EXPECT_FALSE(ReplaySelector::Parse("").ok());
  EXPECT_FALSE(ReplaySelector::Parse("+").ok());
}

}  // namespace
}  // namespace bauplan::pipeline
