#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "columnar/datetime.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "storage/object_store.h"
#include "table/metadata.h"
#include "table/partition.h"
#include "table/table_ops.h"

namespace bauplan::table {
namespace {

using columnar::Field;
using columnar::Int64Builder;
using columnar::ParseTimestampString;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;
using format::ColumnPredicate;
using format::CompareOp;

Schema TripSchema() {
  return Schema({{"trip_id", TypeId::kInt64, false},
                 {"pickup_at", TypeId::kTimestamp, false},
                 {"zone", TypeId::kString, false}});
}

/// `n` trips starting at `start_date`, one per hour, cycling zones.
Table MakeTrips(int64_t n, const std::string& start_date,
                int64_t first_id = 0) {
  int64_t start = *ParseTimestampString(start_date);
  Int64Builder ids;
  Int64Builder ts(TypeId::kTimestamp);
  StringBuilder zones;
  const char* zone_names[] = {"JFK", "LGA", "SoHo"};
  for (int64_t i = 0; i < n; ++i) {
    ids.Append(first_id + i);
    ts.Append(start + i * 3600ll * 1000000);
    zones.Append(zone_names[i % 3]);
  }
  return *Table::Make(TripSchema(),
                      {ids.Finish(), ts.Finish(), zones.Finish()});
}

// ---------------------------------------------------------------- Partition

TEST(PartitionTest, IdentityTransform) {
  PartitionField f{"zone", Transform::kIdentity, 0};
  EXPECT_EQ(f.PartitionName(), "zone");
  EXPECT_EQ(*f.Apply(Value::String("JFK")), Value::String("JFK"));
  EXPECT_TRUE(f.Apply(Value::Null())->is_null());
}

TEST(PartitionTest, BucketTransformStableAndBounded) {
  PartitionField f{"trip_id", Transform::kBucket, 8};
  auto a = f.Apply(Value::Int64(12345));
  auto b = f.Apply(Value::Int64(12345));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_GE(a->int64_value(), 0);
  EXPECT_LT(a->int64_value(), 8);
  PartitionField bad{"trip_id", Transform::kBucket, 0};
  EXPECT_FALSE(bad.Apply(Value::Int64(1)).ok());
}

TEST(PartitionTest, MonthTransform) {
  PartitionField f{"pickup_at", Transform::kMonth, 0};
  // 2019-04 is month (2019-1970)*12 + 3 = 591.
  auto m = f.Apply(Value::Timestamp(*ParseTimestampString("2019-04-15")));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, Value::Int64((2019 - 1970) * 12 + 3));
  // Non-timestamp input rejected.
  EXPECT_FALSE(f.Apply(Value::Int64(5)).ok());
}

TEST(PartitionTest, DayTransform) {
  PartitionField f{"pickup_at", Transform::kDay, 0};
  auto d = f.Apply(Value::Timestamp(*ParseTimestampString("1970-01-02")));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, Value::Int64(1));
}

TEST(PartitionTest, SpecValidation) {
  Schema schema = TripSchema();
  EXPECT_TRUE(PartitionSpec({{"zone", Transform::kIdentity, 0}})
                  .Validate(schema)
                  .ok());
  EXPECT_FALSE(PartitionSpec({{"nope", Transform::kIdentity, 0}})
                   .Validate(schema)
                   .ok());
  EXPECT_FALSE(PartitionSpec({{"zone", Transform::kMonth, 0}})
                   .Validate(schema)
                   .ok());
  EXPECT_FALSE(PartitionSpec({{"trip_id", Transform::kBucket, 0}})
                   .Validate(schema)
                   .ok());
}

TEST(PartitionTest, SpecSerializationRoundTrip) {
  PartitionSpec spec({{"pickup_at", Transform::kMonth, 0},
                      {"trip_id", Transform::kBucket, 16}});
  BinaryWriter w;
  spec.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = PartitionSpec::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == spec);
}

TEST(PartitionTest, PruningIdentity) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  std::vector<Value> jfk = {Value::String("JFK")};
  EXPECT_TRUE(PartitionMightMatch(
      spec, jfk, {{"zone", CompareOp::kEq, Value::String("JFK")}}));
  EXPECT_FALSE(PartitionMightMatch(
      spec, jfk, {{"zone", CompareOp::kEq, Value::String("LGA")}}));
  EXPECT_FALSE(PartitionMightMatch(
      spec, jfk, {{"zone", CompareOp::kNe, Value::String("JFK")}}));
  // Predicates on other columns never prune.
  EXPECT_TRUE(PartitionMightMatch(
      spec, jfk, {{"trip_id", CompareOp::kEq, Value::Int64(1)}}));
}

TEST(PartitionTest, PruningMonthRange) {
  PartitionSpec spec({{"pickup_at", Transform::kMonth, 0}});
  Value march = Value::Int64((2019 - 1970) * 12 + 2);
  Value april_cutoff =
      Value::Timestamp(*ParseTimestampString("2019-04-01"));
  // A March file cannot satisfy pickup_at >= 2019-04-01.
  EXPECT_FALSE(PartitionMightMatch(
      spec, {march}, {{"pickup_at", CompareOp::kGe, april_cutoff}}));
  // An April file can (boundary month must be kept).
  Value april = Value::Int64((2019 - 1970) * 12 + 3);
  EXPECT_TRUE(PartitionMightMatch(
      spec, {april}, {{"pickup_at", CompareOp::kGe, april_cutoff}}));
}

TEST(PartitionTest, PruningBucketOnlyEquality) {
  PartitionField f{"trip_id", Transform::kBucket, 8};
  PartitionSpec spec({f});
  Value v = Value::Int64(42);
  int64_t bucket = f.Apply(v)->int64_value();
  EXPECT_TRUE(PartitionMightMatch(spec, {Value::Int64(bucket)},
                                  {{"trip_id", CompareOp::kEq, v}}));
  EXPECT_FALSE(PartitionMightMatch(
      spec, {Value::Int64((bucket + 1) % 8)},
      {{"trip_id", CompareOp::kEq, v}}));
  // Range predicates never prune hash buckets.
  EXPECT_TRUE(PartitionMightMatch(spec, {Value::Int64(0)},
                                  {{"trip_id", CompareOp::kGt, v}}));
}

// ---------------------------------------------------------------- TableOps

class TableOpsTest : public ::testing::Test {
 protected:
  TableOpsTest() : ops_(&store_, &clock_) {}

  storage::MemoryObjectStore store_;
  SimClock clock_{1000000};
  TableOps ops_;
};

TEST_F(TableOpsTest, CreateAndLoadEmptyTable) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  ASSERT_TRUE(key.ok());
  auto meta = ops_.LoadMetadata(*key);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->table_name, "taxi_table");
  EXPECT_EQ(meta->current_snapshot_id, -1);
  EXPECT_TRUE(meta->CurrentSnapshot().status().IsNotFound());
  // Scanning an empty table returns zero rows with the right schema.
  auto scanned = ops_.ScanTable(*key);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_rows(), 0);
  EXPECT_TRUE(scanned->schema() == TripSchema());
}

TEST_F(TableOpsTest, CreateValidates) {
  EXPECT_FALSE(ops_.CreateTable("", TripSchema()).ok());
  EXPECT_FALSE(ops_.CreateTable("t", Schema()).ok());
  EXPECT_FALSE(ops_.CreateTable("t", TripSchema(),
                                PartitionSpec({{"nope",
                                                Transform::kIdentity, 0}}))
                   .ok());
}

TEST_F(TableOpsTest, AppendAndScan) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(100, "2019-04-01"));
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(*v2, *key);  // metadata is immutable

  auto scanned = ops_.ScanTable(*v2);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_rows(), 100);
  // Old metadata still reads as empty (snapshot isolation).
  EXPECT_EQ(ops_.ScanTable(*key)->num_rows(), 0);
}

TEST_F(TableOpsTest, AppendAccumulates) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(10, "2019-04-01", 0));
  auto v3 = ops_.Append(*v2, MakeTrips(20, "2019-05-01", 10));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(ops_.ScanTable(*v3)->num_rows(), 30);
  auto meta = ops_.LoadMetadata(*v3);
  EXPECT_EQ(meta->snapshots.size(), 2u);
  EXPECT_EQ(meta->CurrentSnapshot()->total_records, 30);
  EXPECT_EQ(meta->CurrentSnapshot()->operation, "append");
}

TEST_F(TableOpsTest, OverwriteReplaces) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(50, "2019-04-01"));
  auto v3 = ops_.Overwrite(*v2, MakeTrips(7, "2020-01-01"));
  ASSERT_TRUE(v3.ok());
  auto scanned = ops_.ScanTable(*v3);
  EXPECT_EQ(scanned->num_rows(), 7);
  EXPECT_EQ(ops_.LoadMetadata(*v3)->CurrentSnapshot()->operation,
            "overwrite");
}

TEST_F(TableOpsTest, SchemaMismatchRejected) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  Int64Builder only_ids;
  only_ids.Append(1);
  Table wrong = *Table::Make(Schema({{"trip_id", TypeId::kInt64, false}}),
                             {only_ids.Finish()});
  EXPECT_FALSE(ops_.Append(*key, wrong).ok());
}

TEST_F(TableOpsTest, TimeTravelBySnapshotAndTimestamp) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(10, "2019-04-01"));
  uint64_t t_after_first = clock_.NowMicros();
  clock_.AdvanceMicros(1000000);
  auto v3 = ops_.Append(*v2, MakeTrips(5, "2019-05-01", 10));

  // By snapshot id.
  ScanOptions by_snap;
  by_snap.snapshot_id = 1;
  EXPECT_EQ(ops_.ScanTable(*v3, by_snap)->num_rows(), 10);

  // By timestamp: as of the first append.
  ScanOptions by_time;
  by_time.as_of_micros = t_after_first;
  EXPECT_EQ(ops_.ScanTable(*v3, by_time)->num_rows(), 10);

  // Before the first snapshot: NotFound.
  ScanOptions too_early;
  too_early.as_of_micros = 1;
  EXPECT_TRUE(ops_.ScanTable(*v3, too_early).status().IsNotFound());

  // Both set: invalid.
  ScanOptions both;
  both.snapshot_id = 1;
  both.as_of_micros = t_after_first;
  EXPECT_TRUE(ops_.ScanTable(*v3, both).status().IsInvalidArgument());

  // Unknown snapshot id.
  ScanOptions bad;
  bad.snapshot_id = 99;
  EXPECT_TRUE(ops_.ScanTable(*v3, bad).status().IsNotFound());
}

TEST_F(TableOpsTest, PartitionedWritesSplitFiles) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  auto v2 = ops_.Append(*key, MakeTrips(90, "2019-04-01"));  // 3 zones
  ASSERT_TRUE(v2.ok());
  auto meta = ops_.LoadMetadata(*v2);
  ScanPlan plan = *ops_.PlanScan(*meta, ScanOptions());
  EXPECT_EQ(plan.files_total, 3);
  EXPECT_EQ(static_cast<int>(plan.files.size()), 3);
}

TEST_F(TableOpsTest, PartitionPruningSkipsFiles) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  auto v2 = ops_.Append(*key, MakeTrips(90, "2019-04-01"));
  auto meta = ops_.LoadMetadata(*v2);

  ScanOptions opts;
  opts.predicates = {{"zone", CompareOp::kEq, Value::String("JFK")}};
  ScanPlan plan = *ops_.PlanScan(*meta, opts);
  EXPECT_EQ(plan.files_total, 3);
  EXPECT_EQ(plan.files_pruned_by_partition, 2);
  EXPECT_EQ(static_cast<int>(plan.files.size()), 1);
  EXPECT_GT(plan.bytes_pruned, 0);

  auto scanned = ops_.ReadScan(*meta, plan, opts);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_rows(), 30);
}

TEST_F(TableOpsTest, StatsPruningSkipsFiles) {
  // Unpartitioned, two appends with disjoint id ranges -> two files whose
  // manifest stats allow pruning.
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(10, "2019-04-01", 0));
  auto v3 = ops_.Append(*v2, MakeTrips(10, "2019-05-01", 1000));
  auto meta = ops_.LoadMetadata(*v3);

  ScanOptions opts;
  opts.predicates = {{"trip_id", CompareOp::kGe, Value::Int64(1000)}};
  ScanPlan plan = *ops_.PlanScan(*meta, opts);
  EXPECT_EQ(plan.files_total, 2);
  EXPECT_EQ(plan.files_pruned_by_stats, 1);
  auto scanned = ops_.ReadScan(*meta, plan, opts);
  EXPECT_EQ(scanned->num_rows(), 10);
}

TEST_F(TableOpsTest, ProjectionScan) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(10, "2019-04-01"));
  ScanOptions opts;
  opts.columns = {"zone"};
  auto scanned = ops_.ScanTable(*v2, opts);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_columns(), 1);
  EXPECT_EQ(scanned->schema().field(0).name, "zone");

  ScanOptions bad;
  bad.columns = {"nope"};
  EXPECT_TRUE(ops_.ScanTable(*v2, bad).status().IsNotFound());
}

TEST_F(TableOpsTest, SchemaEvolutionFillsNulls) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(5, "2019-04-01"));
  auto v3 = ops_.AddColumn(*v2, Field{"tip", TypeId::kDouble, true});
  ASSERT_TRUE(v3.ok());
  auto meta = ops_.LoadMetadata(*v3);
  EXPECT_EQ(meta->schema_version, 1);
  EXPECT_EQ(meta->schema.num_fields(), 4);

  // Old files read with the new column as nulls.
  auto scanned = ops_.ScanTable(*v3);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_rows(), 5);
  EXPECT_TRUE(scanned->GetValue(0, 3).is_null());

  // Non-nullable evolution rejected.
  EXPECT_FALSE(
      ops_.AddColumn(*v3, Field{"must", TypeId::kInt64, false}).ok());
  // Duplicate name rejected.
  EXPECT_FALSE(
      ops_.AddColumn(*v3, Field{"zone", TypeId::kString, true}).ok());
}

TEST_F(TableOpsTest, PredicateOnEvolvedColumnPrunesOldFiles) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(5, "2019-04-01"));
  auto v3 = ops_.AddColumn(*v2, Field{"tip", TypeId::kDouble, true});
  auto meta = ops_.LoadMetadata(*v3);
  ScanOptions opts;
  opts.predicates = {{"tip", CompareOp::kGt, Value::Double(1.0)}};
  ScanPlan plan = *ops_.PlanScan(*meta, opts);
  // Old file has no tip values at all, so it cannot match.
  EXPECT_EQ(plan.files_pruned_by_stats, 1);
  EXPECT_TRUE(plan.files.empty());
}

TEST_F(TableOpsTest, MonthPartitionedTimeTravelScenario) {
  // The paper's running example: taxi trips partitioned by month, a WHERE
  // on pickup_at prunes other months' files.
  PartitionSpec spec({{"pickup_at", Transform::kMonth, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  Table march = MakeTrips(100, "2019-03-01", 0);
  Table april = MakeTrips(100, "2019-04-02", 100);
  auto v2 = ops_.Append(*key, march);
  auto v3 = ops_.Append(*v2, april);
  auto meta = ops_.LoadMetadata(*v3);

  ScanOptions opts;
  opts.predicates = {{"pickup_at", CompareOp::kGe,
                      Value::Timestamp(
                          *ParseTimestampString("2019-04-01"))}};
  ScanPlan plan = *ops_.PlanScan(*meta, opts);
  EXPECT_GE(plan.files_pruned_by_partition, 1);
  auto scanned = ops_.ReadScan(*meta, plan, opts);
  ASSERT_TRUE(scanned.ok());
  // Only April rows (March spills into April after 100 hours? No: 100
  // hourly rows starting March 1 stay in March).
  EXPECT_EQ(scanned->num_rows(), 100);
}

TEST_F(TableOpsTest, DropColumnEvolution) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(5, "2019-04-01"));
  auto v3 = ops_.DropColumn(*v2, "zone");
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  auto meta = ops_.LoadMetadata(*v3);
  EXPECT_EQ(meta->schema.num_fields(), 2);
  EXPECT_FALSE(meta->schema.HasField("zone"));
  EXPECT_EQ(meta->schema_version, 1);
  // Scans no longer surface the column; data is unchanged.
  auto scanned = ops_.ScanTable(*v3);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_columns(), 2);
  EXPECT_EQ(scanned->num_rows(), 5);
  // Old metadata still sees it (schema is versioned with metadata).
  EXPECT_TRUE(ops_.ScanTable(*v2)->schema().HasField("zone"));
  // Cannot drop a missing column or the last column.
  EXPECT_FALSE(ops_.DropColumn(*v3, "zone").ok());
  auto v4 = ops_.DropColumn(*v3, "pickup_at");
  ASSERT_TRUE(v4.ok());
  EXPECT_TRUE(ops_.DropColumn(*v4, "trip_id").status().IsFailedPrecondition());
}

TEST_F(TableOpsTest, DropPartitionSourceRejected) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  EXPECT_TRUE(ops_.DropColumn(*key, "zone").status().IsFailedPrecondition());
  EXPECT_TRUE(ops_.RenameColumn(*key, "zone", "area")
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(TableOpsTest, RenameColumnEvolution) {
  auto key = ops_.CreateTable("taxi_table", TripSchema());
  auto v2 = ops_.Append(*key, MakeTrips(5, "2019-04-01"));
  auto v3 = ops_.RenameColumn(*v2, "zone", "area");
  ASSERT_TRUE(v3.ok());
  auto meta = ops_.LoadMetadata(*v3);
  EXPECT_TRUE(meta->schema.HasField("area"));
  EXPECT_FALSE(meta->schema.HasField("zone"));
  // Name-based resolution: pre-rename files surface the column as null.
  auto scanned = ops_.ScanTable(*v3);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(scanned->GetValue(0, 2).is_null());
  // New writes under the new schema carry values.
  columnar::Int64Builder ids;
  columnar::Int64Builder ts(TypeId::kTimestamp);
  columnar::StringBuilder areas;
  ids.Append(99);
  ts.Append(0);
  areas.Append("EWR");
  Table fresh = *Table::Make(meta->schema,
                             {ids.Finish(), ts.Finish(), areas.Finish()});
  auto v4 = ops_.Append(*v3, fresh);
  ASSERT_TRUE(v4.ok());
  auto again = ops_.ScanTable(*v4);
  EXPECT_EQ(again->GetValue(5, 2), Value::String("EWR"));
  // Invalid renames.
  EXPECT_FALSE(ops_.RenameColumn(*v4, "nope", "x").ok());
  EXPECT_TRUE(ops_.RenameColumn(*v4, "area", "trip_id")
                  .status()
                  .IsAlreadyExists());
}

TEST_F(TableOpsTest, ParallelDecodeMatchesSequential) {
  // Many files (one per zone per append) decoded on 4 threads must give
  // exactly the sequential result, in the same order.
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  auto v2 = ops_.Append(*key, MakeTrips(300, "2019-04-01"));
  auto v3 = ops_.Append(*v2, MakeTrips(300, "2019-05-01", 300));

  ScanOptions sequential;
  ScanOptions parallel;
  parallel.decode_threads = 4;
  auto a = ops_.ScanTable(*v3, sequential);
  auto b = ops_.ScanTable(*v3, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  ASSERT_EQ(a->num_rows(), 600);
  for (int64_t r = 0; r < a->num_rows(); r += 37) {
    for (int c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->GetValue(r, c), b->GetValue(r, c)) << r << "," << c;
    }
  }
}

TEST_F(TableOpsTest, ParallelDecodeWithPredicatesAndProjection) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  auto key = ops_.CreateTable("taxi_table", TripSchema(), spec);
  auto v2 = ops_.Append(*key, MakeTrips(300, "2019-04-01"));
  ScanOptions opts;
  opts.decode_threads = 8;
  opts.columns = {"zone", "trip_id"};
  opts.predicates = {{"trip_id", CompareOp::kLt, Value::Int64(100)}};
  auto scanned = ops_.ScanTable(*v2, opts);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_columns(), 2);
  // Row-group skipping is conservative; the engine filters exactly, so
  // just verify shape and that the surviving rows include the matches.
  EXPECT_GE(scanned->num_rows(), 100);
}

TEST_F(TableOpsTest, LoadMissingMetadataFails) {
  EXPECT_FALSE(ops_.LoadMetadata("nope").ok());
}

}  // namespace
}  // namespace bauplan::table
