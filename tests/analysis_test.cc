// Tests for the static analyzer (code intelligence, paper section 4.5):
// structural reference checks, column-level schema propagation through
// the planner, expectation validation, the diagnostic renderings, and
// the platform surfaces (`bauplan check`, the run pre-flight).

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "cli/project_loader.h"
#include "sql/parser.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

using analysis::AnalysisResult;
using analysis::Analyzer;
using columnar::Schema;
using columnar::TypeId;
using pipeline::PipelineProject;

/// In-memory resolver over a fixed name -> schema map.
class MapResolver : public sql::SchemaResolver {
 public:
  explicit MapResolver(std::map<std::string, Schema> schemas)
      : schemas_(std::move(schemas)) {}

  Result<Schema> GetTableSchema(
      const std::string& table_name) const override {
    auto it = schemas_.find(table_name);
    if (it == schemas_.end()) {
      return Status::NotFound(StrCat("table '", table_name, "' not found"));
    }
    return it->second;
  }

 private:
  std::map<std::string, Schema> schemas_;
};

Schema TaxiSchema() {
  return Schema({{"trip_id", TypeId::kInt64, false},
                 {"pickup_at", TypeId::kTimestamp, false},
                 {"pickup_location_id", TypeId::kInt64, false},
                 {"dropoff_location_id", TypeId::kInt64, false},
                 {"passenger_count", TypeId::kInt64, true},
                 {"trip_distance", TypeId::kDouble, false},
                 {"fare", TypeId::kDouble, false},
                 {"zone", TypeId::kString, false}});
}

/// Analyzer over a catalog holding just taxi_table.
AnalysisResult AnalyzeWithTaxi(const PipelineProject& project) {
  static MapResolver resolver({{"taxi_table", TaxiSchema()}});
  Analyzer analyzer({"taxi_table"}, &resolver);
  return analyzer.Analyze(project);
}

bool HasCode(const AnalysisResult& result, const std::string& code,
             std::string* message = nullptr) {
  for (const auto& d : result.diagnostics.diagnostics()) {
    if (d.code == code) {
      if (message != nullptr) *message = d.message;
      return true;
    }
  }
  return false;
}

// -------------------------------------------------------- clean projects

TEST(AnalyzerTest, PaperPipelineIsClean) {
  AnalysisResult result =
      AnalyzeWithTaxi(pipeline::MakePaperTaxiPipeline());
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
  // Column-level propagation: trips renames passenger_count to count,
  // pickups aggregates trips into counts.
  ASSERT_EQ(result.node_schemas.count("trips"), 1u);
  const Schema& trips = result.node_schemas.at("trips");
  EXPECT_TRUE(trips.HasField("count"));
  EXPECT_FALSE(trips.HasField("passenger_count"));
  ASSERT_EQ(result.node_schemas.count("pickups"), 1u);
  const Schema& pickups = result.node_schemas.at("pickups");
  ASSERT_TRUE(pickups.HasField("counts"));
  EXPECT_EQ(pickups.GetFieldByName("counts")->type, TypeId::kInt64);
}

TEST(AnalyzerTest, WidePipelineIsClean) {
  AnalysisResult result =
      AnalyzeWithTaxi(pipeline::MakeWideTaxiPipeline());
  EXPECT_TRUE(result.ok()) << result.diagnostics.ToText();
  // The join node's inferred schema flows from both upstream inferences.
  ASSERT_EQ(result.node_schemas.count("trip_balance"), 1u);
  EXPECT_TRUE(
      result.node_schemas.at("trip_balance").HasField("short_rides"));
}

// ---------------------------------------------------- structural errors

TEST(AnalyzerTest, UnknownTableIsBP1001WithSuggestion) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare FROM taxi_tabel").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kUnknownTable, &message));
  EXPECT_NE(message.find("taxi_tabel"), std::string::npos);
  // The near-miss gets a fix-it hint.
  const Diagnostic& d = result.diagnostics.diagnostics()[0];
  EXPECT_NE(d.hint.find("taxi_table"), std::string::npos);
  EXPECT_EQ(d.node, "a");
  EXPECT_EQ(d.location, "a.sql");
}

TEST(AnalyzerTest, ExpectationNodeIsNotATable) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "not_null(fare)").ok());
  ASSERT_TRUE(
      project.AddSqlNode("b", "SELECT * FROM a_expectation").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kUnknownTable, &message));
  EXPECT_NE(message.find("a_expectation"), std::string::npos);
}

TEST(AnalyzerTest, CycleIsBP1002) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM b").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT x FROM a").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(
      HasCode(result, analysis::codes::kDependencyCycle, &message));
  EXPECT_NE(message.find("a"), std::string::npos);
  EXPECT_NE(message.find("b"), std::string::npos);
}

TEST(AnalyzerTest, SelfReferenceIsBP1002) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM a").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(HasCode(result, analysis::codes::kDependencyCycle));
}

TEST(AnalyzerTest, ShadowWarningAloneDoesNotFailCheck) {
  PipelineProject project("p");
  // Re-running a pipeline whose outputs already exist in the catalog
  // must stay runnable: shadowing alone is a warning.
  ASSERT_TRUE(
      project.AddSqlNode("trips", "SELECT fare FROM taxi_table").ok());
  MapResolver resolver(
      {{"taxi_table", TaxiSchema()},
       {"trips", Schema({{"fare", TypeId::kDouble, false}})}});
  Analyzer analyzer({"taxi_table", "trips"}, &resolver);
  AnalysisResult result = analyzer.Analyze(project);
  EXPECT_TRUE(result.ok()) << result.diagnostics.ToText();
  EXPECT_TRUE(HasCode(result, analysis::codes::kDuplicateOutput));
  EXPECT_EQ(result.diagnostics.warning_count(), 1u);
}

TEST(AnalyzerTest, DeadAuditIsBP1004Warning) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare FROM taxi_table").ok());
  ASSERT_TRUE(project.AddExpectationNode("taxi_table_expectation",
                                         "not_null(fare)")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());  // warning only
  EXPECT_TRUE(HasCode(result, analysis::codes::kDeadNode));
}

TEST(AnalyzerTest, SqlParseErrorIsBP1005) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELEKT fare FORM nowhere").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result, analysis::codes::kSqlParseError));
  // A node that does not parse produces no downstream noise.
  EXPECT_FALSE(HasCode(result, analysis::codes::kUnknownTable));
}

// ------------------------------------------------- schema propagation

TEST(AnalyzerTest, UnknownColumnIsBP2001) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT no_such_column FROM taxi_table")
          .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kUnknownColumn, &message));
  EXPECT_NE(message.find("no_such_column"), std::string::npos);
  // The hint lists the input columns for fixing the reference.
  EXPECT_NE(result.diagnostics.diagnostics()[0].hint.find("fare"),
            std::string::npos);
}

TEST(AnalyzerTest, UnknownColumnPropagatesThroughUpstreamSchema) {
  PipelineProject project("p");
  // `b` reads a column `a` renamed away: only the inferred (not source)
  // schema can catch this.
  ASSERT_TRUE(project.AddSqlNode(
                         "a",
                         "SELECT passenger_count AS count FROM taxi_table")
                  .ok());
  ASSERT_TRUE(
      project.AddSqlNode("b", "SELECT passenger_count FROM a").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result, analysis::codes::kUnknownColumn));
}

TEST(AnalyzerTest, PlannerRejectionIsBP2002) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT frobnicate(fare) FROM taxi_table")
          .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kTypeMismatch, &message));
  // The parser upper-cases scalar function names.
  EXPECT_NE(message.find("FROBNICATE"), std::string::npos);
}

TEST(AnalyzerTest, SchemaNarrowingOverwriteIsBP2003) {
  PipelineProject project("p");
  // `trips` exists in the catalog with (fare double, zone string); the
  // node overwrites it dropping `zone` — the */narrower-table trap.
  ASSERT_TRUE(
      project.AddSqlNode("trips", "SELECT fare FROM taxi_table").ok());
  MapResolver resolver(
      {{"taxi_table", TaxiSchema()},
       {"trips", Schema({{"fare", TypeId::kDouble, false},
                         {"zone", TypeId::kString, false}})}});
  Analyzer analyzer({"taxi_table", "trips"}, &resolver);
  AnalysisResult result = analyzer.Analyze(project);
  EXPECT_TRUE(result.ok());  // warning severity
  std::string message;
  ASSERT_TRUE(
      HasCode(result, analysis::codes::kSchemaNarrowing, &message));
  EXPECT_NE(message.find("drops column 'zone'"), std::string::npos);
}

// ------------------------------------------------------- expectations

TEST(AnalyzerTest, BadExpectationDslIsBP3001) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "median(fare) > 1")
          .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasCode(result, analysis::codes::kBadExpectation));
}

TEST(AnalyzerTest, ExpectationUnknownColumnIsBP3002) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode(
                         "a",
                         "SELECT passenger_count AS count FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project.AddExpectationNode("a_expectation",
                                         "mean(passenger_count) > 1")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kExpectationUnknownColumn,
                      &message));
  EXPECT_NE(message.find("passenger_count"), std::string::npos);
}

TEST(AnalyzerTest, ExpectationOverNonNumericColumnIsBP3003) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT zone FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "mean(zone) > 1").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  std::string message;
  ASSERT_TRUE(HasCode(result, analysis::codes::kExpectationTypeMismatch,
                      &message));
  EXPECT_NE(message.find("string"), std::string::npos);
}

TEST(AnalyzerTest, NonNumericChecksAllowNonNumericColumns) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT zone FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "unique(zone)").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok()) << result.diagnostics.ToText();
}

// ------------------------------------------- interval range analysis

/// Folds the WHERE clause of `sql` (against the taxi schema) into the
/// interval domain.
analysis::PredicateAnalysis AnalyzeWhere(const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().message();
  return analysis::AnalyzePredicate(stmt->where, TaxiSchema());
}

TEST(RangeAnalysisTest, FoldsBoundsPerColumn) {
  auto analysis =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare > 2 AND fare <= 10");
  EXPECT_FALSE(analysis.contradiction);
  ASSERT_EQ(analysis.intervals.count("fare"), 1u);
  const auto& interval = analysis.intervals.at("fare");
  ASSERT_TRUE(interval.lower.has_value());
  EXPECT_FALSE(interval.lower_inclusive);
  ASSERT_TRUE(interval.upper.has_value());
  EXPECT_TRUE(interval.upper_inclusive);
  EXPECT_TRUE(interval.not_null);  // comparisons filter nulls (3VL)
}

TEST(RangeAnalysisTest, DisjointBoundsAreAContradiction) {
  auto analysis =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare > 10 AND fare < 5");
  EXPECT_TRUE(analysis.contradiction);
  EXPECT_NE(analysis.contradiction_detail.find("fare"),
            std::string::npos);
}

TEST(RangeAnalysisTest, EqualityWithExclusionIsAContradiction) {
  auto analysis =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare = 5 AND fare <> 5");
  EXPECT_TRUE(analysis.contradiction);
}

TEST(RangeAnalysisTest, BetweenFoldsIntoTheInterval) {
  auto analysis = AnalyzeWhere(
      "SELECT 1 FROM t WHERE fare BETWEEN 2 AND 4 AND fare > 10");
  EXPECT_TRUE(analysis.contradiction);
}

TEST(RangeAnalysisTest, InListDisjointFromIntervalIsAContradiction) {
  auto analysis = AnalyzeWhere(
      "SELECT 1 FROM t WHERE passenger_count IN (1, 2, 3) "
      "AND passenger_count > 5");
  EXPECT_TRUE(analysis.contradiction);
}

TEST(RangeAnalysisTest, IsNullAgainstComparisonIsAContradiction) {
  auto analysis = AnalyzeWhere(
      "SELECT 1 FROM t WHERE passenger_count IS NULL "
      "AND passenger_count > 2");
  EXPECT_TRUE(analysis.contradiction);
}

TEST(RangeAnalysisTest, DuplicateAndSubsumedConjunctsAreRedundant) {
  auto duplicate =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare > 5 AND fare > 5");
  EXPECT_EQ(duplicate.redundant_conjuncts.size(), 1u);
  auto subsumed =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare > 10 AND fare > 5");
  ASSERT_EQ(subsumed.redundant_conjuncts.size(), 1u);
  EXPECT_NE(subsumed.redundant_conjuncts[0].find("5"),
            std::string::npos);
}

TEST(RangeAnalysisTest, IndependentConjunctsAreNotRedundant) {
  auto analysis = AnalyzeWhere(
      "SELECT 1 FROM t WHERE fare > 10 AND trip_distance > 3");
  EXPECT_FALSE(analysis.contradiction);
  EXPECT_TRUE(analysis.redundant_conjuncts.empty());
  EXPECT_TRUE(analysis.tautologies.empty());
}

TEST(RangeAnalysisTest, OpaqueStructureClaimsNothing) {
  // OR is outside the conjunctive domain: no facts, no findings.
  auto analysis =
      AnalyzeWhere("SELECT 1 FROM t WHERE fare > 10 OR fare < 5");
  EXPECT_FALSE(analysis.contradiction);
  EXPECT_TRUE(analysis.intervals.empty());
  EXPECT_TRUE(analysis.tautologies.empty());
}

TEST(RangeAnalysisTest, CrossTypeComparisonIsLossy) {
  auto lossy = AnalyzeWhere("SELECT 1 FROM t WHERE zone > 5");
  EXPECT_EQ(lossy.lossy_comparisons.size(), 1u);
  // Timestamp vs parseable timestamp string compares exactly.
  auto exact = AnalyzeWhere(
      "SELECT 1 FROM t WHERE pickup_at >= '2019-04-01'");
  EXPECT_TRUE(exact.lossy_comparisons.empty());
  EXPECT_FALSE(exact.contradiction);
}

// ---------------------------------------------- plan linter (BP4xxx)

/// First diagnostic with `code`, or nullptr.
const Diagnostic* FindCode(const AnalysisResult& result,
                           const std::string& code) {
  for (const auto& d : result.diagnostics.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

TEST(AnalyzerTest, ContradictoryPredicateIsBP4001Warning) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE fare > 10 AND fare < 5")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());  // lints are warnings, not errors
  const Diagnostic* d =
      FindCode(result, analysis::codes::kContradictoryPredicate);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_EQ(d->severity, DiagnosticSeverity::kWarning);
  EXPECT_EQ(d->node, "a");
  EXPECT_NE(d->message.find("always false"), std::string::npos);
}

TEST(AnalyzerTest, SatisfiablePredicateIsNotBP4001) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE fare > 5 AND fare < 10")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, TautologicalFilterIsBP4002) {
  // trip_id is declared NOT NULL, so IS NOT NULL filters nothing.
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE trip_id IS NOT NULL")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());
  const Diagnostic* d =
      FindCode(result, analysis::codes::kTautologicalFilter);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_NE(d->message.find("trip_id"), std::string::npos);
}

TEST(AnalyzerTest, UsefulNullFilterIsNotBP4002) {
  // passenger_count is nullable: IS NOT NULL does real work.
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE passenger_count IS NOT NULL")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, CartesianJoinIsBP4003) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare AS fa FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("b",
                              "SELECT fare AS fb FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("c",
                              "SELECT a.fa FROM a JOIN b ON a.fa > b.fb")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_FALSE(result.ok());
  const Diagnostic* d =
      FindCode(result, analysis::codes::kCartesianJoin);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_EQ(d->node, "c");
  EXPECT_NE(d->hint.find("equi-join"), std::string::npos);
  // Re-coded, not duplicated: the generic planner bucket stays quiet.
  EXPECT_EQ(FindCode(result, analysis::codes::kTypeMismatch), nullptr);
}

TEST(AnalyzerTest, EquiJoinIsNotBP4003) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare AS fa FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("b",
                              "SELECT fare AS fb FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("c",
                              "SELECT a.fa FROM a JOIN b ON a.fa = b.fb")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_EQ(FindCode(result, analysis::codes::kCartesianJoin), nullptr)
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, LimitWithoutOrderByIsBP4004) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare FROM taxi_table LIMIT 5")
          .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());
  const Diagnostic* d =
      FindCode(result, analysis::codes::kLimitWithoutOrder);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_NE(d->message.find("LIMIT"), std::string::npos);
}

TEST(AnalyzerTest, OrderedLimitIsNotBP4004) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "ORDER BY fare LIMIT 5")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, LossyCrossTypeComparisonIsBP4005) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE zone > 5")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());
  const Diagnostic* d =
      FindCode(result, analysis::codes::kLossyComparison);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_NE(d->hint.find("cast"), std::string::npos);
}

TEST(AnalyzerTest, TimestampStringComparisonIsNotBP4005) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE pickup_at >= '2019-04-01'")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, SubsumedConjunctIsBP4006) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE fare > 10 AND fare > 5")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());
  ASSERT_NE(FindCode(result, analysis::codes::kRedundantConjunct),
            nullptr)
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, IndependentConjunctsAreNotBP4006) {
  PipelineProject project("p");
  ASSERT_TRUE(project
                  .AddSqlNode("a",
                              "SELECT fare FROM taxi_table "
                              "WHERE fare > 10 AND trip_distance > 3")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, DeadColumnIsBP4007) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT fare FROM a").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.ok());
  const Diagnostic* d = FindCode(result, analysis::codes::kDeadColumn);
  ASSERT_NE(d, nullptr) << result.diagnostics.ToText();
  EXPECT_EQ(d->node, "a");
  EXPECT_NE(d->message.find("zone"), std::string::npos);
  EXPECT_NE(d->hint.find("--trim"), std::string::npos);
}

TEST(AnalyzerTest, ExpectationKeepsColumnAliveForBP4007) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "unique(zone)").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT fare FROM a").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_EQ(FindCode(result, analysis::codes::kDeadColumn), nullptr)
      << result.diagnostics.ToText();
}

TEST(AnalyzerTest, TerminalNodeColumnsAreNeverBP4007) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.ToText();
}

// ------------------------------------------------------------ lineage

TEST(LineageTest, TracksReadsConsumersAndTerminals) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  ASSERT_TRUE(
      project.AddExpectationNode("a_expectation", "unique(zone)").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT fare FROM a").ok());
  MapResolver resolver({{"taxi_table", TaxiSchema()}});
  analysis::LineageGraph graph =
      analysis::BuildLineage(project, resolver);
  ASSERT_EQ(graph.nodes().size(), 2u);

  const analysis::LineageNode& a = graph.nodes().at("a");
  EXPECT_FALSE(a.terminal);
  ASSERT_EQ(a.reads.count("taxi_table"), 1u);
  EXPECT_EQ(a.reads.at("taxi_table"),
            (std::vector<std::string>{"fare", "zone"}));
  ASSERT_EQ(a.consumers.count("fare"), 1u);
  ASSERT_EQ(a.consumers.at("fare").size(), 1u);
  EXPECT_EQ(a.consumers.at("fare")[0].kind,
            analysis::ColumnConsumer::Kind::kNode);
  EXPECT_EQ(a.consumers.at("fare")[0].name, "b");
  ASSERT_EQ(a.consumers.at("zone").size(), 1u);
  EXPECT_EQ(a.consumers.at("zone")[0].kind,
            analysis::ColumnConsumer::Kind::kExpectation);
  EXPECT_EQ(a.consumers.at("zone")[0].name, "a_expectation");
  EXPECT_TRUE(graph.DeadColumns("a").empty());

  const analysis::LineageNode& b = graph.nodes().at("b");
  EXPECT_TRUE(b.terminal);
  ASSERT_EQ(b.consumers.at("fare").size(), 1u);
  EXPECT_EQ(b.consumers.at("fare")[0].kind,
            analysis::ColumnConsumer::Kind::kTerminal);
  EXPECT_TRUE(graph.DeadColumns("b").empty());
}

TEST(LineageTest, DeadAndRequiredColumns) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT fare FROM a").ok());
  MapResolver resolver({{"taxi_table", TaxiSchema()}});
  analysis::LineageGraph graph =
      analysis::BuildLineage(project, resolver);
  EXPECT_EQ(graph.DeadColumns("a"),
            (std::vector<std::string>{"zone"}));
  auto required = graph.RequiredOutputColumns();
  ASSERT_EQ(required.size(), 1u);
  EXPECT_EQ(required.at("a"), (std::vector<std::string>{"fare"}));
}

TEST(LineageTest, RendersTextAndJson) {
  PipelineProject project("p");
  ASSERT_TRUE(
      project.AddSqlNode("a", "SELECT fare, zone FROM taxi_table").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT fare FROM a").ok());
  MapResolver resolver({{"taxi_table", TaxiSchema()}});
  analysis::LineageGraph graph =
      analysis::BuildLineage(project, resolver);
  std::string text = graph.ToText();
  EXPECT_NE(text.find("lineage: 2 node(s)"), std::string::npos);
  EXPECT_NE(text.find("reads taxi_table: fare, zone"),
            std::string::npos);
  EXPECT_NE(text.find("column zone -> (dead)"), std::string::npos);
  EXPECT_NE(text.find("node b (terminal)"), std::string::npos);
  std::string json = graph.ToJson();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"terminal\":true"), std::string::npos);
  EXPECT_NE(json.find("{\"kind\":\"node\",\"name\":\"b\"}"),
            std::string::npos);
  // Deterministic: rendering twice is byte-identical.
  EXPECT_EQ(json, graph.ToJson());
}

TEST(AnalyzerTest, AnalysisResultCarriesLineage) {
  AnalysisResult result =
      AnalyzeWithTaxi(pipeline::MakePaperTaxiPipeline());
  ASSERT_EQ(result.lineage.nodes().size(), 2u);
  EXPECT_FALSE(result.lineage.nodes().at("trips").terminal);
  EXPECT_TRUE(result.lineage.nodes().at("pickups").terminal);
}

// ------------------------------------------------ diagnostic rendering

TEST(DiagnosticTest, GoldenTextRendering) {
  DiagnosticEngine engine;
  Diagnostic& d = engine.Error("BP1001", "trips", "unknown table 'tripz'");
  d.location = "trips.sql";
  d.hint = "did you mean 'trips'?";
  engine.Warning("BP1004", "x_expectation", "dead audit");
  EXPECT_EQ(engine.ToText(),
            "error[BP1001] trips (trips.sql): unknown table 'tripz'\n"
            "  hint: did you mean 'trips'?\n"
            "warning[BP1004] x_expectation: dead audit\n"
            "check: 1 error(s), 1 warning(s)\n");
}

TEST(DiagnosticTest, GoldenJsonRendering) {
  DiagnosticEngine engine;
  engine.Error("BP1002", "", "cycle \"a\"");
  EXPECT_EQ(engine.ToJson(),
            "{\"version\":1,\"errors\":1,\"warnings\":0,\"diagnostics\":["
            "{\"code\":\"BP1002\",\"severity\":\"error\",\"node\":\"\","
            "\"location\":\"\",\"message\":\"cycle \\\"a\\\"\","
            "\"hint\":\"\"}]}");
}

TEST(DiagnosticTest, JsonIsSortedByNodeLocationCodeMessage) {
  // Reported out of order on purpose: JSON renders sorted, text keeps
  // the pass emission order.
  DiagnosticEngine engine;
  Diagnostic& late = engine.Warning("BP4007", "b", "dead column");
  late.location = "b.sql";
  Diagnostic& early = engine.Error("BP1001", "a", "unknown table");
  early.location = "a.sql";
  EXPECT_EQ(engine.ToJson(),
            "{\"version\":1,\"errors\":1,\"warnings\":1,\"diagnostics\":["
            "{\"code\":\"BP1001\",\"severity\":\"error\",\"node\":\"a\","
            "\"location\":\"a.sql\",\"message\":\"unknown table\","
            "\"hint\":\"\"},"
            "{\"code\":\"BP4007\",\"severity\":\"warning\",\"node\":\"b\","
            "\"location\":\"b.sql\",\"message\":\"dead column\","
            "\"hint\":\"\"}]}");
  EXPECT_EQ(engine.ToText(),
            "warning[BP4007] b (b.sql): dead column\n"
            "error[BP1001] a (a.sql): unknown table\n"
            "check: 1 error(s), 1 warning(s)\n");
}

TEST(DiagnosticTest, PromoteWarningsToErrors) {
  DiagnosticEngine engine;
  engine.Warning("BP4004", "a", "limit without order by");
  engine.Warning("BP4007", "b", "dead column");
  engine.Error("BP1001", "c", "unknown table");
  EXPECT_FALSE(engine.has_errors() && engine.warning_count() == 0);
  engine.PromoteWarningsToErrors();
  EXPECT_EQ(engine.error_count(), 3u);
  EXPECT_EQ(engine.warning_count(), 0u);
  for (const auto& d : engine.diagnostics()) {
    EXPECT_EQ(d.severity, DiagnosticSeverity::kError);
  }
}

TEST(DiagnosticTest, CleanEngineRendersClean) {
  DiagnosticEngine engine;
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.ToText(), "check: clean\n");
  EXPECT_EQ(engine.ToJson(),
            "{\"version\":1,\"errors\":0,\"warnings\":0,"
            "\"diagnostics\":[]}");
}

TEST(AnalyzerTest, EveryErrorCodeRendersInJson) {
  PipelineProject project("p");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM nowhere").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT x FROM b").ok());
  ASSERT_TRUE(project.AddExpectationNode("c_expectation",
                                         "gibberish")
                  .ok());
  AnalysisResult result = AnalyzeWithTaxi(project);
  std::string json = result.diagnostics.ToJson();
  EXPECT_NE(json.find("\"BP1001\""), std::string::npos);
  EXPECT_NE(json.find("\"BP1002\""), std::string::npos);
  EXPECT_NE(json.find("\"BP1001\""), std::string::npos);
}

// -------------------------------------------------- observability wiring

TEST(AnalyzerTest, EmitsSpansAndCounters) {
  SimClock clock(0);
  observability::Tracer tracer(&clock);
  observability::MetricsRegistry metrics;
  analysis::AnalyzerOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;

  MapResolver resolver({{"taxi_table", TaxiSchema()}});
  Analyzer analyzer({"taxi_table"}, &resolver);
  AnalysisResult result =
      analyzer.Analyze(pipeline::MakePaperTaxiPipeline(), options);
  ASSERT_NE(result.root_span, 0u);

  observability::Trace trace = tracer.ExtractTrace(result.root_span);
  ASSERT_NE(trace.root(), nullptr);
  EXPECT_EQ(trace.root()->kind, observability::span_kind::kAnalysis);
  auto passes = trace.ChildrenOf(trace.root_id);
  ASSERT_EQ(passes.size(), 4u);  // structural, schema, expectation, lint
  EXPECT_EQ(passes[0]->kind, observability::span_kind::kPass);
  bool has_lint_pass = false;
  for (const auto* pass : passes) {
    if (pass->name == "lint") has_lint_pass = true;
  }
  EXPECT_TRUE(has_lint_pass);

  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.Get("analysis.runs"), 1.0);
  EXPECT_EQ(snapshot.Get("analysis.nodes"), 3.0);
  EXPECT_EQ(snapshot.Get("analysis.errors"), 0.0);
}

// --------------------------------------------------- platform surfaces

class PlatformCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimClock>(1700000000000000ull);
    auto platform = core::Bauplan::Open(&store_, clock_.get());
    ASSERT_TRUE(platform.ok());
    bp_ = std::move(*platform);
    workload::TaxiGenOptions gen;
    gen.rows = 500;
    auto taxi = workload::GenerateTaxiTable(gen);
    ASSERT_TRUE(taxi.ok());
    ASSERT_TRUE(
        bp_->CreateTable("main", "taxi_table", taxi->schema()).ok());
    ASSERT_TRUE(bp_->WriteTable("main", "taxi_table", *taxi).ok());
  }

  storage::MemoryObjectStore store_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<core::Bauplan> bp_;
};

TEST_F(PlatformCheckTest, CheckPassesCleanProject) {
  auto result = bp_->Check(pipeline::MakePaperTaxiPipeline());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << result->diagnostics.ToText();
  // The check's span tree is extracted into the result.
  ASSERT_NE(result->trace.root(), nullptr);
  EXPECT_EQ(result->trace.root()->kind,
            observability::span_kind::kAnalysis);
  EXPECT_EQ(bp_->metrics_snapshot().Get("analysis.runs"), 1.0);
}

TEST_F(PlatformCheckTest, CheckReportsBrokenProject) {
  PipelineProject project("broken");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM nowhere").ok());
  auto result = bp_->Check(project);
  ASSERT_TRUE(result.ok());  // analysis ran; problems are diagnostics
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(result->diagnostics.has_errors());
}

TEST_F(PlatformCheckTest, RunRefusesBrokenProjectBeforeScheduling) {
  PipelineProject project("broken");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM nowhere").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT x FROM b").ok());

  auto report = bp_->Run(project, "main");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
  // The rendered diagnostics ride along in the refusal.
  EXPECT_NE(report.status().message().find("BP1001"), std::string::npos);
  EXPECT_NE(report.status().message().find("BP1002"), std::string::npos);

  // Refused before anything was scheduled: no container was acquired, no
  // run was registered, no stray branch exists.
  EXPECT_EQ(bp_->container_metrics().cold_starts, 0);
  auto runs = bp_->run_registry().ListRuns();
  ASSERT_TRUE(runs.ok());
  EXPECT_TRUE(runs->empty());
  auto branches = bp_->ListBranches();
  ASSERT_TRUE(branches.ok());
  EXPECT_EQ(branches->size(), 1u);  // just main
}

TEST_F(PlatformCheckTest, NoVerifySkipsPreflight) {
  PipelineProject project("broken");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT x FROM nowhere").ok());
  core::PipelineRunOptions options;
  options.verify = false;
  // Without the pre-flight the failure surfaces later, from DAG
  // extraction inside the registered run: the run exists and is marked
  // failed instead of being refused outright.
  auto report = bp_->Run(project, "main", options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->merged);
  EXPECT_NE(report->status.find("failed"), std::string::npos);
  auto runs = bp_->run_registry().ListRuns();
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs->size(), 1u);
}

TEST_F(PlatformCheckTest, RunStillMergesCleanProject) {
  auto report = bp_->Run(pipeline::MakePaperTaxiPipeline(0.0), "main");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
  // Pre-flight ran: analysis counters registered on the platform.
  EXPECT_EQ(bp_->metrics_snapshot().Get("analysis.runs"), 1.0);
}

TEST_F(PlatformCheckTest, SecondRunOverOwnOutputsStaysClean) {
  // After a successful run, trips/pickups exist in the catalog; checking
  // the same project again must stay runnable (shadow warnings only).
  auto first = bp_->Run(pipeline::MakePaperTaxiPipeline(0.0), "main");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->merged);
  auto check = bp_->Check(pipeline::MakePaperTaxiPipeline(0.0));
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->ok()) << check->diagnostics.ToText();
  EXPECT_TRUE(
      HasCode(*check, analysis::codes::kDuplicateOutput));
  auto second = bp_->Run(pipeline::MakePaperTaxiPipeline(0.0), "main");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->merged);
}

TEST_F(PlatformCheckTest, ExamplesTaxiPipelineChecksClean) {
  auto project =
      cli::LoadProjectFromDir(std::string(BAUPLAN_EXAMPLES_DIR) +
                              "/taxi_pipeline");
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  auto result = bp_->Check(*project);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok()) << result->diagnostics.ToText();
  auto report = bp_->Run(*project, "main");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
}

TEST_F(PlatformCheckTest, BrokenTripleReportsAllThreeCodes) {
  // The acceptance scenario: unknown table + cycle + expectation over a
  // missing column, all reported in one pass.
  PipelineProject project("triple");
  ASSERT_TRUE(project.AddSqlNode("a", "SELECT fare FROM missing").ok());
  ASSERT_TRUE(project.AddSqlNode("b", "SELECT x FROM b").ok());
  ASSERT_TRUE(
      project.AddSqlNode("c", "SELECT fare FROM taxi_table").ok());
  ASSERT_TRUE(project.AddExpectationNode("c_expectation",
                                         "mean(no_such_column) > 1")
                  .ok());
  auto result = bp_->Check(project);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(HasCode(*result, analysis::codes::kUnknownTable));
  EXPECT_TRUE(HasCode(*result, analysis::codes::kDependencyCycle));
  EXPECT_TRUE(
      HasCode(*result, analysis::codes::kExpectationUnknownColumn));
  EXPECT_EQ(result->diagnostics.error_count(), 3u);
}

}  // namespace
}  // namespace bauplan
