#include <algorithm>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "runtime/container_manager.h"
#include "runtime/executor.h"
#include "runtime/package.h"
#include "runtime/package_cache.h"
#include "runtime/scheduler.h"
#include "runtime/spark_model.h"

namespace bauplan::runtime {
namespace {

Package MakePackage(const std::string& name, uint64_t mib) {
  return Package{name, mib * 1024 * 1024};
}

// ---------------------------------------------------------------- package

TEST(PackageRegistryTest, DeterministicAndSized) {
  PackageRegistry a(100, 1.1, 7);
  PackageRegistry b(100, 1.1, 7);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.package(3).name, b.package(3).name);
  EXPECT_EQ(a.package(3).size_bytes, b.package(3).size_bytes);
  EXPECT_GE(a.package(0).size_bytes, 64u * 1024);
}

TEST(PackageRegistryTest, PopularityIsSkewed) {
  PackageRegistry registry(1000, 1.1, 7);
  Rng rng(13);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[registry.SampleByPopularity(rng).name]++;
  }
  // Rank-1 package dominates any mid-tail package.
  EXPECT_GT(counts[registry.package(0).name],
            10 * std::max(counts[registry.package(500).name], 1));
}

TEST(PackageRegistryTest, RequirementSetsAreDistinct) {
  PackageRegistry registry(50, 1.1, 7);
  Rng rng(17);
  auto set = registry.SampleRequirementSet(rng, 5);
  ASSERT_EQ(set.size(), 5u);
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      EXPECT_NE(set[i].name, set[j].name);
    }
  }
  // Asking for more than the universe clamps.
  EXPECT_EQ(registry.SampleRequirementSet(rng, 500).size(), 50u);
}

// ------------------------------------------------------------------ cache

TEST(PackageCacheTest, MissThenHit) {
  SimClock clock;
  PackageCache cache(&clock, {});
  Package numpy = MakePackage("numpy", 20);

  uint64_t miss = cache.Fetch(numpy);
  EXPECT_EQ(cache.metrics().misses, 1);
  EXPECT_TRUE(cache.Contains("numpy"));

  uint64_t hit = cache.Fetch(numpy);
  EXPECT_EQ(cache.metrics().hits, 1);
  // Disk is orders of magnitude faster than downloading.
  EXPECT_LT(hit * 20, miss);
  EXPECT_EQ(clock.NowMicros(), miss + hit);
}

TEST(PackageCacheTest, LruEviction) {
  SimClock clock;
  PackageCache::Options options;
  options.capacity_bytes = 50ull * 1024 * 1024;
  PackageCache cache(&clock, options);
  cache.Fetch(MakePackage("a", 20));
  cache.Fetch(MakePackage("b", 20));
  cache.Fetch(MakePackage("a", 20));  // refresh a
  cache.Fetch(MakePackage("c", 20));  // evicts b (LRU)
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_GT(cache.metrics().bytes_evicted, 0u);
  EXPECT_LE(cache.used_bytes(), options.capacity_bytes);
}

TEST(PackageCacheTest, OversizedPackageNotCached) {
  SimClock clock;
  PackageCache::Options options;
  options.capacity_bytes = 1024;
  PackageCache cache(&clock, options);
  cache.Fetch(MakePackage("huge", 100));
  EXPECT_FALSE(cache.Contains("huge"));
}

TEST(PackageCacheTest, ZipfWorkloadGetsHighHitRate) {
  SimClock clock;
  PackageCache cache(&clock, {});
  PackageRegistry registry(2000, 1.1, 3);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    cache.Fetch(registry.SampleByPopularity(rng));
  }
  // The Zipf head keeps the cache hot.
  EXPECT_GT(cache.metrics().HitRate(), 0.6);
}

// -------------------------------------------------------------- container

TEST(ContainerSpecTest, KeyIsOrderInsensitive) {
  ContainerSpec a;
  a.packages = {MakePackage("x", 1), MakePackage("y", 1)};
  ContainerSpec b;
  b.packages = {MakePackage("y", 1), MakePackage("x", 1)};
  EXPECT_EQ(a.Key(), b.Key());
  ContainerSpec c;
  c.packages = {MakePackage("z", 1)};
  EXPECT_NE(a.Key(), c.Key());
}

class ContainerManagerTest : public ::testing::Test {
 protected:
  ContainerManagerTest()
      : cache_(&clock_, {}), manager_(&clock_, &cache_) {}

  ContainerSpec SpecWith(const std::string& pkg) {
    ContainerSpec spec;
    spec.packages = {MakePackage(pkg, 10)};
    return spec;
  }

  SimClock clock_;
  PackageCache cache_;
  ContainerManager manager_;
};

TEST_F(ContainerManagerTest, ColdThenFrozenResume) {
  ContainerSpec spec = SpecWith("pandas");
  auto cold = manager_.Acquire(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->kind, StartKind::kCold);
  // Cold start is seconds-scale (boot + install).
  EXPECT_GT(cold->startup_micros, 1000000u);
  ASSERT_TRUE(manager_.Release(cold->container_id).ok());

  auto resume = manager_.Acquire(spec);
  ASSERT_TRUE(resume.ok());
  EXPECT_EQ(resume->kind, StartKind::kFrozenResume);
  // The paper's 300 ms.
  EXPECT_EQ(resume->startup_micros, 300000u);
  EXPECT_EQ(manager_.metrics().cold_starts, 1);
  EXPECT_EQ(manager_.metrics().frozen_resumes, 1);
}

TEST_F(ContainerManagerTest, WarmReuseIsFastest) {
  ContainerSpec spec = SpecWith("pandas");
  auto first = manager_.Acquire(spec);
  // Not released: still warm; a second acquire of the same spec would
  // create another container, but after release + resume it is warm only
  // while held. Acquire a second one: cold (no frozen available).
  auto second = manager_.Acquire(spec);
  EXPECT_EQ(second->kind, StartKind::kCold);
  ASSERT_TRUE(manager_.Release(first->container_id).ok());
  ASSERT_TRUE(manager_.Release(second->container_id).ok());
  // Now a frozen resume, then while holding it warm... warm reuse needs
  // an un-held warm container, which Release freezes; verify resume path.
  auto third = manager_.Acquire(spec);
  EXPECT_EQ(third->kind, StartKind::kFrozenResume);
}

TEST_F(ContainerManagerTest, SecondColdStartHitsPackageCache) {
  ContainerSpec spec = SpecWith("pandas");
  auto first = manager_.Acquire(spec);
  // Different spec, same package universe after clearing pool: the
  // package cache persists across containers.
  manager_.Clear();
  auto second = manager_.Acquire(spec);
  EXPECT_EQ(second->kind, StartKind::kCold);
  EXPECT_LT(second->startup_micros, first->startup_micros);
  EXPECT_EQ(cache_.metrics().hits, 1);
}

TEST_F(ContainerManagerTest, ReleaseUnknownFails) {
  EXPECT_TRUE(manager_.Release(999).IsNotFound());
}

TEST_F(ContainerManagerTest, DoubleReleaseFails) {
  auto acq = manager_.Acquire(SpecWith("x"));
  ASSERT_TRUE(manager_.Release(acq->container_id).ok());
  EXPECT_TRUE(manager_.Release(acq->container_id).IsFailedPrecondition());
}

TEST(ContainerManagerEvictionTest, PoolBounded) {
  SimClock clock;
  PackageCache cache(&clock, {});
  ContainerManager::Options options;
  options.max_containers = 3;
  ContainerManager manager(&clock, &cache, options);
  for (int i = 0; i < 6; ++i) {
    ContainerSpec spec;
    spec.packages = {MakePackage("pkg" + std::to_string(i), 5)};
    auto acq = manager.Acquire(spec);
    ASSERT_TRUE(acq.ok());
    ASSERT_TRUE(manager.Release(acq->container_id).ok());
  }
  EXPECT_LE(manager.pool_size(), 3u);
  EXPECT_GT(manager.metrics().evictions, 0);
}

// ------------------------------------------------------------------ spark

TEST(SparkModelTest, ColdClusterThenCheapJobs) {
  SimClock clock;
  SparkSessionModel spark(&clock);
  uint64_t first = spark.SubmitJob();
  uint64_t second = spark.SubmitJob();
  EXPECT_GT(first, 50ull * 1000 * 1000);  // cluster + session + submit
  EXPECT_EQ(second, 1500000u);            // just the submit
  EXPECT_EQ(spark.cold_cluster_starts(), 1);

  // Idle expiry forces a re-start.
  clock.AdvanceMicros(11ull * 60 * 1000 * 1000);
  uint64_t third = spark.SubmitJob();
  EXPECT_GT(third, 50ull * 1000 * 1000);
  EXPECT_EQ(spark.cold_cluster_starts(), 2);
}

// -------------------------------------------------------------- scheduler

TEST(SchedulerTest, LocalityPreferred) {
  SimClock clock;
  Scheduler::Options options;
  options.num_workers = 3;
  Scheduler scheduler(&clock, options);
  scheduler.RecordArtifact("trips", 2);

  auto placement = scheduler.Place("trips", 1 << 20, 1 << 20);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->worker, 2);
  EXPECT_TRUE(placement->locality_hit);
  EXPECT_EQ(placement->transfer_micros, 0u);
  EXPECT_EQ(scheduler.locality_hits(), 1);
}

TEST(SchedulerTest, MissPaysTransfer) {
  SimClock clock;
  Scheduler::Options options;
  options.num_workers = 2;
  options.locality_aware = false;  // ablation: ignore locations
  Scheduler scheduler(&clock, options);
  scheduler.RecordArtifact("trips", 1);

  uint64_t mb = 1 << 20;
  auto placement = scheduler.Place("trips", 100 * mb, mb);
  ASSERT_TRUE(placement.ok());
  EXPECT_GT(placement->transfer_micros, 0u);
  EXPECT_EQ(placement->bytes_moved, 100 * mb);
  EXPECT_EQ(scheduler.total_bytes_moved(), 100 * mb);
  EXPECT_EQ(clock.NowMicros(), placement->transfer_micros);
}

TEST(SchedulerTest, MemoryAccounting) {
  SimClock clock;
  Scheduler::Options options;
  options.num_workers = 1;
  options.worker_memory_bytes = 10ull << 30;
  Scheduler scheduler(&clock, options);

  auto a = scheduler.Place("", 0, 6ull << 30);
  ASSERT_TRUE(a.ok());
  // Vertical elasticity: a second 6 GiB function cannot fit.
  auto b = scheduler.Place("", 0, 6ull << 30);
  ASSERT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsResourceExhausted());

  ASSERT_TRUE(scheduler.ReleaseMemory(a->worker, 6ull << 30).ok());
  EXPECT_TRUE(scheduler.Place("", 0, 6ull << 30).ok());
  EXPECT_EQ(scheduler.peak_memory(0), 6ull << 30);
}

TEST(SchedulerTest, MultiInputPlacePrefersBiggestLocalBytes) {
  SimClock clock;
  Scheduler::Options options;
  options.num_workers = 3;
  Scheduler scheduler(&clock, options);
  uint64_t mb = 1 << 20;
  scheduler.RecordArtifact("small", 0);
  scheduler.RecordArtifact("big", 1);

  // Worker 1 holds 100 MiB of the inputs, worker 0 only 1 MiB: the
  // function lands on worker 1 and pays transfer for "small" alone.
  std::vector<ArtifactRef> inputs = {{"small", mb}, {"big", 100 * mb}};
  auto placement = scheduler.Place(inputs, mb);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->worker, 1);
  EXPECT_TRUE(placement->locality_hit);
  EXPECT_EQ(placement->bytes_moved, mb);
  EXPECT_GT(placement->transfer_micros, 0u);
}

TEST(SchedulerTest, WorkerTimelinesAreMonotonic) {
  SimClock clock;
  Scheduler scheduler(&clock, {});
  EXPECT_EQ(scheduler.WorkerBusyUntil(0), 0u);
  scheduler.ExtendWorkerTimeline(0, 500);
  scheduler.ExtendWorkerTimeline(0, 200);  // earlier value is ignored
  EXPECT_EQ(scheduler.WorkerBusyUntil(0), 500u);
  EXPECT_EQ(scheduler.WorkerBusyUntil(99), 0u);  // out of range: idle
}

TEST(SchedulerTest, OversizedRequestRejected) {
  SimClock clock;
  Scheduler::Options options;
  options.worker_memory_bytes = 1 << 20;
  Scheduler scheduler(&clock, options);
  EXPECT_TRUE(
      scheduler.Place("", 0, 1 << 21).status().IsResourceExhausted());
  EXPECT_TRUE(scheduler.ReleaseMemory(99, 1).IsInvalidArgument());
}

// --------------------------------------------------------------- executor

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : cache_(&clock_, {}),
        containers_(&clock_, &cache_),
        scheduler_(&clock_, {}),
        executor_(&clock_, &containers_, &scheduler_) {}

  FunctionRequest MakeRequest(const std::string& name) {
    FunctionRequest request;
    request.name = name;
    request.memory_bytes = 1 << 20;
    return request;
  }

  SimClock clock_;
  PackageCache cache_;
  ContainerManager containers_;
  Scheduler scheduler_;
  ServerlessExecutor executor_;
};

TEST_F(ExecutorTest, SyncInvokeRunsBodyAndReports) {
  bool ran = false;
  FunctionRequest request = MakeRequest("fn");
  request.body = [&]() {
    ran = true;
    clock_.AdvanceMicros(1000);  // simulated compute
    return Status::OK();
  };
  auto report = executor_.Invoke(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(report->body_micros, 1000u);
  EXPECT_GT(report->startup_micros, 0u);
  EXPECT_EQ(report->total_micros,
            report->startup_micros + report->transfer_micros +
                report->body_micros);
}

TEST_F(ExecutorTest, BodyFailurePropagatesButCleansUp) {
  FunctionRequest request = MakeRequest("bad");
  request.body = [] { return Status::Internal("boom"); };
  auto report = executor_.Invoke(request);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  // Resources were released: a follow-up invoke succeeds.
  FunctionRequest good = MakeRequest("good");
  good.body = [] { return Status::OK(); };
  EXPECT_TRUE(executor_.Invoke(good).ok());
}

TEST_F(ExecutorTest, AsyncSubmitDrain) {
  int order = 0;
  int first_seen = -1, second_seen = -1;
  FunctionRequest a = MakeRequest("a");
  a.body = [&]() {
    first_seen = order++;
    return Status::OK();
  };
  FunctionRequest b = MakeRequest("b");
  b.body = [&]() {
    second_seen = order++;
    return Status::OK();
  };
  executor_.Submit(std::move(a));
  clock_.AdvanceMicros(500);
  executor_.Submit(std::move(b));
  EXPECT_EQ(executor_.pending(), 2u);

  clock_.AdvanceMicros(10000);  // queue wait
  auto reports = executor_.Drain();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ(first_seen, 0);
  EXPECT_EQ(second_seen, 1);
  EXPECT_GE((*reports)[0].queue_micros, 10000u);
  EXPECT_EQ(executor_.pending(), 0u);
}

TEST_F(ExecutorTest, OutputArtifactRegisteredForLocality) {
  FunctionRequest producer = MakeRequest("producer");
  producer.output_artifact = "artifact_x";
  producer.output_bytes = 1 << 20;
  producer.body = [] { return Status::OK(); };
  auto r1 = executor_.Invoke(producer);
  ASSERT_TRUE(r1.ok());

  FunctionRequest consumer = MakeRequest("consumer");
  consumer.input_artifact = "artifact_x";
  consumer.input_bytes = 1 << 20;
  consumer.body = [] { return Status::OK(); };
  auto r2 = executor_.Invoke(consumer);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->locality_hit);
  EXPECT_EQ(r2->worker, r1->worker);
  EXPECT_EQ(r2->transfer_micros, 0u);
}

TEST_F(ExecutorTest, FailedBodyRecordsNoArtifact) {
  FunctionRequest request = MakeRequest("broken_producer");
  request.output_artifact = "phantom";
  request.output_bytes = 1 << 20;
  request.body = [] { return Status::Internal("body blew up"); };
  auto report = executor_.Invoke(request);
  ASSERT_FALSE(report.ok());
  // The failed function produced nothing, so no worker may claim its
  // artifact — a phantom location would fake locality hits downstream.
  EXPECT_EQ(scheduler_.WorkerOf("phantom"), -1);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(scheduler_.used_memory(w), 0u) << "worker " << w;
  }
}

TEST(ExecutorCleanupTest, ExhaustedContainerPoolReleasesReservation) {
  SimClock clock;
  PackageCache cache(&clock, {});
  ContainerManager::Options copts;
  copts.max_containers = 1;
  ContainerManager containers(&clock, &cache, copts);
  Scheduler scheduler(&clock, {});
  ServerlessExecutor executor(&clock, &containers, &scheduler);

  // Occupy the single container slot so Acquire inside Invoke fails
  // after the scheduler memory reservation was already made.
  auto held = containers.Acquire(ContainerSpec{});
  ASSERT_TRUE(held.ok());

  FunctionRequest request;
  request.name = "starved";
  request.memory_bytes = 1 << 30;
  request.body = [] { return Status::OK(); };
  auto report = executor.Invoke(request);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsResourceExhausted());
  // The reservation must not leak: every worker is back to zero.
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(scheduler.used_memory(w), 0u) << "worker " << w;
  }
  // Releasing the slot makes the same request succeed.
  ASSERT_TRUE(containers.Release(held->container_id).ok());
  EXPECT_TRUE(executor.Invoke(request).ok());
}

// ------------------------------------------------------------- wavefront

class WaveExecutorTest : public ::testing::Test {
 protected:
  WaveExecutorTest()
      : fork_clock_(&base_clock_),
        cache_(&fork_clock_, {}),
        containers_(&fork_clock_, &cache_),
        scheduler_(&fork_clock_, {}),
        executor_(&fork_clock_, &containers_, &scheduler_) {}

  FunctionRequest MakeRequest(const std::string& name,
                              uint64_t body_micros) {
    FunctionRequest request;
    request.name = name;
    request.memory_bytes = 1 << 20;
    request.body = [this, body_micros] {
      fork_clock_.AdvanceMicros(body_micros);
      return Status::OK();
    };
    return request;
  }

  SimClock base_clock_;
  ForkableClock fork_clock_;
  PackageCache cache_;
  ContainerManager containers_;
  Scheduler scheduler_;
  ServerlessExecutor executor_;
};

TEST_F(WaveExecutorTest, WaveAdvancesClockByMakespanNotSum) {
  std::vector<FunctionRequest> wave;
  for (int i = 0; i < 4; ++i) {
    wave.push_back(
        MakeRequest("fn" + std::to_string(i), 1000000));
  }
  uint64_t start = base_clock_.NowMicros();
  auto report = executor_.InvokeWave(std::move(wave), 4);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->reports.size(), 4u);
  EXPECT_TRUE(report->deferred.empty());

  uint64_t max_total = 0, sum_total = 0;
  for (const auto& r : report->reports) {
    EXPECT_EQ(r.body_micros, 1000000u);
    max_total = std::max(max_total, r.total_micros);
    sum_total += r.total_micros;
  }
  // Four independent bodies on four workers: the caller only waits the
  // longest member, not the sum of all of them.
  uint64_t elapsed = base_clock_.NowMicros() - start;
  EXPECT_EQ(elapsed, max_total);
  EXPECT_LT(elapsed, sum_total);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(scheduler_.used_memory(w), 0u) << "worker " << w;
  }
}

TEST_F(WaveExecutorTest, SameWorkerMembersSerializeOnTimeline) {
  // One worker: both members run there, so the second one's start is
  // pushed behind the first on the worker's busy-until timeline.
  Scheduler::Options opts;
  opts.num_workers = 1;
  Scheduler one_worker(&fork_clock_, opts);
  ServerlessExecutor executor(&fork_clock_, &containers_, &one_worker);

  std::vector<FunctionRequest> wave;
  wave.push_back(MakeRequest("first", 1000000));
  wave.push_back(MakeRequest("second", 1000000));
  uint64_t start = base_clock_.NowMicros();
  auto report = executor.InvokeWave(std::move(wave), 2);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->reports.size(), 2u);
  // The wave makespan covers both bodies back to back.
  uint64_t elapsed = base_clock_.NowMicros() - start;
  EXPECT_GE(elapsed, 2000000u);
  EXPECT_GE(one_worker.WorkerBusyUntil(0), base_clock_.NowMicros());
  EXPECT_EQ(one_worker.used_memory(0), 0u);
}

TEST_F(WaveExecutorTest, PoolExhaustionDefersInsteadOfFailing) {
  SimClock clock;
  ForkableClock fork(&clock);
  PackageCache cache(&fork, {});
  ContainerManager::Options copts;
  copts.max_containers = 1;
  ContainerManager containers(&fork, &cache, copts);
  Scheduler scheduler(&fork, {});
  ServerlessExecutor executor(&fork, &containers, &scheduler);

  std::vector<FunctionRequest> wave;
  for (int i = 0; i < 3; ++i) {
    FunctionRequest request;
    request.name = "fn" + std::to_string(i);
    request.memory_bytes = 1 << 20;
    request.body = [&fork] {
      fork.AdvanceMicros(1000);
      return Status::OK();
    };
    wave.push_back(std::move(request));
  }
  // Only one container slot: one member runs, the others bounce back as
  // deferred (still runnable) instead of failing the wave.
  auto report = executor.InvokeWave(std::move(wave), 3);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reports.size(), 1u);
  EXPECT_EQ(report->deferred.size(), 2u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(scheduler.used_memory(w), 0u) << "worker " << w;
  }
  // Re-dispatching the deferred members drains them.
  auto next = executor.InvokeWave(std::move(report->deferred), 3);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->reports.size(), 1u);
  EXPECT_EQ(next->deferred.size(), 1u);
}

TEST_F(WaveExecutorTest, DrainWithParallelismRunsAllPending) {
  for (int i = 0; i < 4; ++i) {
    executor_.Submit(MakeRequest("queued" + std::to_string(i), 50000));
  }
  EXPECT_EQ(executor_.pending(), 4u);
  uint64_t start = base_clock_.NowMicros();
  auto reports = executor_.Drain(/*parallelism=*/4);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 4u);
  EXPECT_EQ(executor_.pending(), 0u);
  uint64_t elapsed = base_clock_.NowMicros() - start;
  uint64_t sum_work = 0;
  for (const auto& r : *reports) {
    sum_work += r.startup_micros + r.transfer_micros + r.body_micros;
  }
  // Members overlapped: the caller waited less than the summed work.
  EXPECT_LT(elapsed, sum_work);
}

}  // namespace
}  // namespace bauplan::runtime
