#include <gtest/gtest.h>

#include <set>

#include "columnar/builder.h"
#include "columnar/datetime.h"
#include "core/bauplan.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace bauplan::core {
namespace {

using columnar::Table;
using columnar::TypeId;
using columnar::Value;

class BauplanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opened = Bauplan::Open(&store_, &clock_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    platform_ = std::move(*opened);
    // Seed the lake with the paper's taxi_table on main.
    workload::TaxiGenOptions gen;
    gen.rows = 2000;
    gen.start_date = "2019-03-01";
    gen.days = 90;  // March through May
    auto taxi = workload::GenerateTaxiTable(gen);
    ASSERT_TRUE(taxi.ok());
    taxi_rows_ = taxi->num_rows();
    ASSERT_TRUE(
        platform_->CreateTable("main", "taxi_table", taxi->schema()).ok());
    ASSERT_TRUE(platform_->WriteTable("main", "taxi_table", *taxi).ok());
  }

  storage::MemoryObjectStore store_;
  SimClock clock_{1700000000000000ull};
  std::unique_ptr<Bauplan> platform_;
  int64_t taxi_rows_ = 0;
};

TEST_F(BauplanTest, QueryOverLakehouse) {
  auto result = platform_->Query(
      "SELECT COUNT(*) AS n FROM taxi_table");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.GetValue(0, 0), Value::Int64(taxi_rows_));
}

TEST_F(BauplanTest, QueryWithBranchArgument) {
  ASSERT_TRUE(platform_->CreateBranch("feat_1", "main").ok());
  // Write extra rows only on feat_1.
  workload::TaxiGenOptions gen;
  gen.rows = 100;
  gen.seed = 99;
  auto extra = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(platform_->WriteTable("feat_1", "taxi_table", *extra).ok());

  auto on_main = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table",
                                  "main");
  auto on_feat = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table",
                                  "feat_1");
  ASSERT_TRUE(on_main.ok());
  ASSERT_TRUE(on_feat.ok());
  EXPECT_EQ(on_main->table.GetValue(0, 0), Value::Int64(taxi_rows_));
  EXPECT_EQ(on_feat->table.GetValue(0, 0),
            Value::Int64(taxi_rows_ + 100));
}

TEST_F(BauplanTest, QueryAtCommitIsTimeTravel) {
  auto head_before = platform_->mutable_catalog()->ResolveRef("main");
  workload::TaxiGenOptions gen;
  gen.rows = 50;
  gen.seed = 7;
  auto extra = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(platform_->WriteTable("main", "taxi_table", *extra).ok());

  auto now = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table");
  auto then = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table",
                               *head_before);
  EXPECT_EQ(now->table.GetValue(0, 0), Value::Int64(taxi_rows_ + 50));
  EXPECT_EQ(then->table.GetValue(0, 0), Value::Int64(taxi_rows_));
}

TEST_F(BauplanTest, QueryAtTimestampIsAsOfTimeTravel) {
  uint64_t before = clock_.NowMicros();
  clock_.AdvanceMicros(2000000);
  workload::TaxiGenOptions gen;
  gen.rows = 50;
  gen.seed = 7;
  auto extra = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(platform_->WriteTable("main", "taxi_table", *extra).ok());

  // "main@<epoch micros>" resolves to the newest commit at or before the
  // timestamp — the seed data, not the later write.
  auto then = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table",
                               "main@" + std::to_string(before));
  ASSERT_TRUE(then.ok()) << then.status().ToString();
  EXPECT_EQ(then->table.GetValue(0, 0), Value::Int64(taxi_rows_));
  auto now = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table");
  EXPECT_EQ(now->table.GetValue(0, 0), Value::Int64(taxi_rows_ + 50));

  // ReadTable honors the same as-of grammar.
  auto table = platform_->ReadTable(
      catalog::RefSpec("main", before), "taxi_table");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), taxi_rows_);
}

TEST_F(BauplanTest, QueryEmitsPlanAndExecuteSpans) {
  auto result = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table");
  ASSERT_TRUE(result.ok());
  const observability::Span* root = result->trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, observability::span_kind::kQuery);
  auto children = result->trace.ChildrenOf(root->id);
  ASSERT_EQ(children.size(), 2u);
  std::set<std::string> kinds{children[0]->kind, children[1]->kind};
  EXPECT_TRUE(kinds.count(observability::span_kind::kPlan));
  EXPECT_TRUE(kinds.count(observability::span_kind::kExecute));
}

TEST_F(BauplanTest, QueryErrors) {
  EXPECT_TRUE(platform_->Query("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(platform_->Query("SELECT * FROM taxi_table", "no_branch")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(platform_->Query("SELEC bad syntax").ok());
}

TEST_F(BauplanTest, RunPaperPipelineFused) {
  auto report = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0),
                               "main");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->status, "succeeded");
  EXPECT_TRUE(report->merged);
  EXPECT_EQ(report->run_id, 1);
  ASSERT_EQ(report->nodes.size(), 3u);
  EXPECT_TRUE(report->all_expectations_passed);

  // Artifacts are materialized and queryable on main.
  auto tables = platform_->ListTables("main");
  ASSERT_TRUE(tables.ok());
  EXPECT_NE(std::find(tables->begin(), tables->end(), "trips"),
            tables->end());
  EXPECT_NE(std::find(tables->begin(), tables->end(), "pickups"),
            tables->end());

  auto pickups = platform_->Query(
      "SELECT * FROM pickups ORDER BY counts DESC LIMIT 5");
  ASSERT_TRUE(pickups.ok());
  EXPECT_EQ(pickups->table.num_columns(), 3);
  EXPECT_GT(pickups->table.num_rows(), 0);

  // Fused mode never touched the spill store.
  EXPECT_EQ(report->spill_metrics.puts, 0);
  EXPECT_EQ(report->spill_metrics.gets, 0);

  // No ephemeral branch left behind.
  auto branches = platform_->ListBranches();
  ASSERT_TRUE(branches.ok());
  EXPECT_EQ(branches->size(), 1u);
}

TEST_F(BauplanTest, RunReportEmbedsTraceAndMetrics) {
  auto report = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0),
                               "main");
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The trace root is the run span; its duration is the run makespan.
  const observability::Span* root = report->trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, observability::span_kind::kRun);
  EXPECT_EQ(root->DurationMicros(), report->total_micros);
  // Fused mode: one invocation span under the run, SQL bodies below it.
  ASSERT_TRUE(report->fused.has_value());
  auto children = report->trace.ChildrenOf(root->id);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->kind, observability::span_kind::kInvocation);
  // One SQL span per model, one per expectation, under the invocation
  // (zero-width here: the test platform's storage model is instant).
  size_t sql_spans = 0;
  size_t expectation_spans = 0;
  for (const observability::Span& span : report->trace.spans) {
    if (span.kind == observability::span_kind::kSql) ++sql_spans;
    if (span.kind == observability::span_kind::kExpectation) {
      ++expectation_spans;
    }
  }
  EXPECT_EQ(sql_spans, 2u);
  EXPECT_EQ(expectation_spans, 1u);

  // The metrics snapshot captures platform-wide instruments at run end.
  EXPECT_GT(report->metrics.Get("store.lake.puts"), 0.0);
  EXPECT_GT(report->metrics.Get("containers.cold_starts"), 0.0);

  // The versioned JSON export carries all of it.
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"run\""), std::string::npos);
}

TEST_F(BauplanTest, RunNaiveSpillsThroughObjectStore) {
  PipelineRunOptions options;
  options.fused = false;
  auto report =
      platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "main", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
  // The naive mapping spilled trips and pickups and re-read trips twice.
  EXPECT_GE(report->spill_metrics.puts, 2);
  EXPECT_GE(report->spill_metrics.gets, 2);
}

TEST_F(BauplanTest, FusedAndNaiveProduceIdenticalArtifacts) {
  auto fused = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "main");
  ASSERT_TRUE(fused.ok());
  PipelineRunOptions naive_options;
  naive_options.fused = false;
  auto naive = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "main",
                              naive_options);
  ASSERT_TRUE(naive.ok());

  const Table& a = fused->artifacts.at("pickups");
  const Table& b = naive->artifacts.at("pickups");
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.GetValue(r, c), b.GetValue(r, c));
    }
  }
}

TEST_F(BauplanTest, RunWithTrimDropsDeadColumnsFromIntermediates) {
  // `wide` produces four columns but `narrow` (its only consumer)
  // reads two: with trim_unused_columns the lineage graph narrows the
  // materialized intermediate, and the terminal artifact is untouched.
  pipeline::PipelineProject project("trim_demo");
  ASSERT_TRUE(project
                  .AddSqlNode("wide",
                              "SELECT trip_id, fare, zone, trip_distance "
                              "FROM taxi_table")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("narrow",
                              "SELECT trip_id, fare FROM wide "
                              "ORDER BY trip_id")
                  .ok());
  ASSERT_TRUE(platform_->CreateBranch("plain", "main").ok());
  ASSERT_TRUE(platform_->CreateBranch("trim", "main").ok());

  auto plain = platform_->Run(project, "plain");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->artifacts.at("wide").num_columns(), 4);

  PipelineRunOptions options;
  options.trim_unused_columns = true;
  auto trimmed = platform_->Run(project, "trim", options);
  ASSERT_TRUE(trimmed.ok()) << trimmed.status().ToString();
  const Table& wide = trimmed->artifacts.at("wide");
  EXPECT_EQ(wide.num_columns(), 2);
  EXPECT_TRUE(wide.schema().HasField("trip_id"));
  EXPECT_TRUE(wide.schema().HasField("fare"));
  EXPECT_EQ(wide.num_rows(), plain->artifacts.at("wide").num_rows());

  // The pipeline's product is identical either way.
  const Table& a = plain->artifacts.at("narrow");
  const Table& b = trimmed->artifacts.at("narrow");
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.GetValue(r, c), b.GetValue(r, c));
    }
  }
}

TEST_F(BauplanTest, FailedExpectationRollsBackEverything) {
  // Impossible threshold: mean(count) > 1000.
  auto report = platform_->Run(pipeline::MakePaperTaxiPipeline(1000.0),
                               "main");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->merged);
  EXPECT_NE(report->status.find("expectations failed"),
            std::string::npos);
  // Nothing leaked into main.
  auto tables = platform_->ListTables("main");
  EXPECT_EQ(std::find(tables->begin(), tables->end(), "trips"),
            tables->end());
  // No stray branches.
  EXPECT_EQ(platform_->ListBranches()->size(), 1u);
  // Run record says failed.
  auto record = platform_->run_registry().GetRun(report->run_id);
  ASSERT_TRUE(record.ok());
  EXPECT_NE(record->status.find("failed"), std::string::npos);
}

TEST_F(BauplanTest, RunOnBranchIsIsolatedUntilMerged) {
  ASSERT_TRUE(platform_->CreateBranch("feat_1", "main").ok());
  auto report =
      platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "feat_1");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->merged);

  // Artifacts visible on feat_1, not on main.
  EXPECT_TRUE(platform_->Query("SELECT * FROM pickups LIMIT 1", "feat_1")
                  .ok());
  EXPECT_FALSE(platform_->Query("SELECT * FROM pickups LIMIT 1", "main")
                   .ok());

  // Promote to production.
  ASSERT_TRUE(platform_->MergeBranch("feat_1", "main").ok());
  EXPECT_TRUE(
      platform_->Query("SELECT * FROM pickups LIMIT 1", "main").ok());
}

TEST_F(BauplanTest, ReplayRunFull) {
  auto original =
      platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "main");
  ASSERT_TRUE(original.ok());

  // More data lands on main after the run.
  workload::TaxiGenOptions gen;
  gen.rows = 500;
  gen.seed = 77;
  gen.start_date = "2019-04-15";
  ASSERT_TRUE(platform_->WriteTable(
      "main", "taxi_table", *workload::GenerateTaxiTable(gen)).ok());

  // Replay reads the recorded commit: same data, same results.
  auto replay = platform_->ReplayRun(original->run_id);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->merged);
  const Table& then = original->artifacts.at("pickups");
  const Table& again = replay->artifacts.at("pickups");
  ASSERT_EQ(then.num_rows(), again.num_rows());
  for (int64_t r = 0; r < then.num_rows(); ++r) {
    for (int c = 0; c < then.num_columns(); ++c) {
      ASSERT_EQ(then.GetValue(r, c), again.GetValue(r, c));
    }
  }
  // The sandbox branch is gone.
  EXPECT_EQ(platform_->ListBranches()->size(), 1u);
}

TEST_F(BauplanTest, ReplaySelectorSubset) {
  auto original =
      platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "main");
  ASSERT_TRUE(original.ok());

  // `-m pickups+`: only pickups (it has no descendants).
  auto replay = platform_->ReplayRun(original->run_id, "pickups+");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->nodes.size(), 1u);
  EXPECT_EQ(replay->nodes[0].name, "pickups");
  // Upstream trips came from the materialized run output.
  EXPECT_GT(replay->artifacts.at("pickups").num_rows(), 0);

  // `-m trips+` replays everything downstream of trips.
  auto full = platform_->ReplayRun(original->run_id, "trips+");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->nodes.size(), 3u);

  EXPECT_TRUE(
      platform_->ReplayRun(original->run_id, "nope").status().IsNotFound());
  EXPECT_TRUE(platform_->ReplayRun(999).status().IsNotFound());
}

TEST_F(BauplanTest, RunRecordsFingerprint) {
  auto project = pipeline::MakePaperTaxiPipeline(1.0);
  auto report = platform_->Run(project, "main");
  auto record = platform_->run_registry().GetRun(report->run_id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->fingerprint, project.Fingerprint());
  EXPECT_EQ(record->branch, "main");
  EXPECT_FALSE(record->data_commit_id.empty());
  EXPECT_FALSE(record->result_commit_id.empty());
}

TEST_F(BauplanTest, WriteTableOverwrite) {
  workload::TaxiGenOptions gen;
  gen.rows = 10;
  auto small = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(platform_->WriteTable("main", "taxi_table", *small,
                                    /*overwrite=*/true)
                  .ok());
  auto count = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table");
  EXPECT_EQ(count->table.GetValue(0, 0), Value::Int64(10));
}

TEST_F(BauplanTest, CreateTableTwiceFails) {
  EXPECT_TRUE(platform_->CreateTable("main", "taxi_table",
                                     columnar::Schema({{"x",
                                                        TypeId::kInt64,
                                                        false}}))
                  .IsAlreadyExists());
}

TEST_F(BauplanTest, QueryPushdownPrunesPartitionedFiles) {
  // End to end: a WHERE through the engine becomes partition pruning in
  // the table format, observable as fewer bytes read from the lake.
  table::PartitionSpec spec(
      {{"pickup_at", table::Transform::kMonth, 0}});
  workload::TaxiGenOptions gen;
  gen.rows = 3000;
  gen.start_date = "2019-01-01";
  gen.days = 28;
  auto january = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(platform_->CreateTable("main", "monthly_trips",
                                     january->schema(), spec).ok());
  ASSERT_TRUE(
      platform_->WriteTable("main", "monthly_trips", *january).ok());
  for (const char* month : {"2019-02-01", "2019-03-01", "2019-04-01"}) {
    gen.start_date = month;
    gen.seed += 1;
    ASSERT_TRUE(platform_->WriteTable(
        "main", "monthly_trips",
        *workload::GenerateTaxiTable(gen)).ok());
  }

  auto full = platform_->Query(
      "SELECT COUNT(*) AS n FROM monthly_trips");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->table.GetValue(0, 0), columnar::Value::Int64(12000));
  int64_t full_scanned = full->stats.rows_scanned;

  auto pruned = platform_->Query(
      "SELECT COUNT(*) AS n FROM monthly_trips "
      "WHERE pickup_at >= '2019-04-01'");
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->table.GetValue(0, 0), columnar::Value::Int64(3000));
  // The scan materialized only the surviving month's files.
  EXPECT_LT(pruned->stats.rows_scanned, full_scanned / 2);
}

TEST_F(BauplanTest, CreateTableAs) {
  ASSERT_TRUE(platform_->CreateTableAs(
      "main", "busy_zones",
      "SELECT zone, COUNT(*) AS trips FROM taxi_table GROUP BY zone "
      "HAVING COUNT(*) > 5").ok());
  auto result = platform_->Query("SELECT COUNT(*) AS n FROM busy_zones");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->table.GetValue(0, 0).int64_value(), 0);
  // Name collision rejected; bad SQL rejected.
  EXPECT_TRUE(platform_->CreateTableAs("main", "busy_zones",
                                       "SELECT 1 AS x FROM taxi_table")
                  .IsAlreadyExists());
  EXPECT_FALSE(
      platform_->CreateTableAs("main", "bad", "SELEC nope").ok());
}

TEST_F(BauplanTest, ConcurrentPromotionsConflictCleanly) {
  // Two teams run the same pipeline on their own branches; both try to
  // promote to main. The second promotion must fail with Conflict (both
  // changed the same artifact tables), and main must keep team A's
  // version — the database-transaction analogy of Fig. 4.
  ASSERT_TRUE(platform_->CreateBranch("team_a", "main").ok());
  ASSERT_TRUE(platform_->CreateBranch("team_b", "main").ok());
  auto run_a = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0),
                              "team_a");
  ASSERT_TRUE(run_a.ok());
  ASSERT_TRUE(run_a->merged);
  clock_.AdvanceMicros(1000000);
  auto run_b = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0),
                              "team_b");
  ASSERT_TRUE(run_b.ok());
  ASSERT_TRUE(run_b->merged);

  ASSERT_TRUE(platform_->MergeBranch("team_a", "main").ok());
  auto second = platform_->MergeBranch("team_b", "main");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsConflict());

  // Main holds exactly team A's pickups (pointer equality through the
  // catalog), and team B's branch is untouched for a rebase.
  auto main_key = platform_->mutable_catalog()->GetTable("main", "pickups");
  auto a_key = platform_->mutable_catalog()->GetTable("team_a", "pickups");
  auto b_key = platform_->mutable_catalog()->GetTable("team_b", "pickups");
  ASSERT_TRUE(main_key.ok());
  EXPECT_EQ(*main_key, *a_key);
  EXPECT_NE(*main_key, *b_key);
}

TEST_F(BauplanTest, RunMergesCleanlyAfterUnrelatedMainProgress) {
  // Main moves (an unrelated table write) while a feature branch runs a
  // pipeline; promoting the branch still merges three-way with no
  // conflict because the changed tables are disjoint.
  ASSERT_TRUE(platform_->CreateBranch("feat", "main").ok());
  auto run = platform_->Run(pipeline::MakePaperTaxiPipeline(1.0), "feat");
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->merged);

  workload::TaxiGenOptions gen;
  gen.rows = 20;
  gen.seed = 123;
  ASSERT_TRUE(platform_->WriteTable(
      "main", "taxi_table", *workload::GenerateTaxiTable(gen)).ok());

  auto merged = platform_->MergeBranch("feat", "main");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(merged->fast_forward);
  // Main now has both the extra rows and the pipeline artifacts.
  EXPECT_TRUE(platform_->Query("SELECT * FROM pickups LIMIT 1").ok());
  auto count = platform_->Query("SELECT COUNT(*) AS n FROM taxi_table");
  EXPECT_EQ(count->table.GetValue(0, 0),
            columnar::Value::Int64(taxi_rows_ + 20));
}

TEST_F(BauplanTest, PipelineWithJoinAcrossSources) {
  // A pipeline whose node joins a source table with an upstream node.
  columnar::Int64Builder ids;
  columnar::StringBuilder names;
  for (int64_t i = 1; i <= 265; ++i) {
    ids.Append(i);
    names.Append("zone_name_" + std::to_string(i));
  }
  Table zones = *Table::Make(
      columnar::Schema({{"id", TypeId::kInt64, false},
                        {"zone_name", TypeId::kString, false}}),
      {ids.Finish(), names.Finish()});
  ASSERT_TRUE(platform_->CreateTable("main", "zones", zones.schema()).ok());
  ASSERT_TRUE(platform_->WriteTable("main", "zones", zones).ok());

  pipeline::PipelineProject project("join_pipeline");
  ASSERT_TRUE(project
                  .AddSqlNode("busy", "SELECT pickup_location_id, COUNT(*)"
                              " AS n FROM taxi_table GROUP BY "
                              "pickup_location_id")
                  .ok());
  ASSERT_TRUE(project
                  .AddSqlNode("named_busy",
                              "SELECT z.zone_name, b.n FROM busy b JOIN "
                              "zones z ON b.pickup_location_id = z.id "
                              "ORDER BY b.n DESC LIMIT 10")
                  .ok());
  auto report = platform_->Run(project, "main");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
  auto result = platform_->Query("SELECT * FROM named_busy");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 10);
}

}  // namespace
}  // namespace bauplan::core
