// Failure injection across the stack: when the object store starts
// erroring, the catalog must never advance a branch to a commit it did
// not durably write, table writes must surface IOError instead of
// corrupting metadata, and pipeline runs must roll their ephemeral
// branch back.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "core/bauplan.h"
#include "pipeline/project.h"
#include "storage/fault_injection_store.h"
#include "storage/object_store.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

TEST(FaultInjectionStoreTest, FailAfterCountdown) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  store.FailAfter(2);
  EXPECT_TRUE(store.Put("a", {1}).ok());
  EXPECT_TRUE(store.Put("b", {2}).ok());
  EXPECT_TRUE(store.Put("c", {3}).IsIOError());
  EXPECT_TRUE(store.Get("a").status().IsIOError());
  store.Heal();
  EXPECT_TRUE(store.Get("a").ok());
}

TEST(FaultInjectionStoreTest, PrefixScoping) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  store.FailOnlyPrefix("catalog/");
  store.FailAfter(0);
  EXPECT_TRUE(store.Put("lake/data", {1}).ok());
  EXPECT_TRUE(store.Put("catalog/refs", {1}).IsIOError());
}

TEST(FaultInjectionCatalogTest, CommitFailureDoesNotMoveBranch) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  SimClock clock(1000);
  auto catalog = catalog::Catalog::Open(&store, &clock);
  ASSERT_TRUE(catalog.ok());
  auto head_before = catalog->ResolveRef("main");
  ASSERT_TRUE(head_before.ok());

  store.FailAfter(0);  // the next store op (commit write) fails
  catalog::TableChanges changes;
  changes.puts["t"] = "k";
  auto commit = catalog->CommitChanges("main", "doomed", "test", changes);
  EXPECT_FALSE(commit.ok());

  store.Heal();
  auto head_after = catalog->ResolveRef("main");
  ASSERT_TRUE(head_after.ok());
  EXPECT_EQ(*head_after, *head_before);  // branch never moved
}

TEST(FaultInjectionTableTest, AppendFailureLeavesOldMetadataIntact) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  SimClock clock(1000);
  table::TableOps ops(&store, &clock);

  workload::TaxiGenOptions gen;
  gen.rows = 100;
  auto data = workload::GenerateTaxiTable(gen);
  auto key = ops.CreateTable("t", data->schema());
  ASSERT_TRUE(key.ok());
  auto v2 = ops.Append(*key, *data);
  ASSERT_TRUE(v2.ok());

  // Fail partway through the next append's writes.
  store.FailAfter(2);
  auto v3 = ops.Append(*v2, *data);
  EXPECT_FALSE(v3.ok());
  store.Heal();
  // v2 is still fully readable: immutable metadata means a failed write
  // can orphan objects but never corrupt a committed version.
  auto scanned = ops.ScanTable(*v2);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->num_rows(), 100);
}

TEST(FaultInjectionPlatformTest, RunFailureRollsBack) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  SimClock clock(1700000000000000ull);
  auto platform = core::Bauplan::Open(&store, &clock);
  ASSERT_TRUE(platform.ok());
  core::Bauplan& bp = **platform;

  workload::TaxiGenOptions gen;
  gen.rows = 500;
  gen.start_date = "2019-04-01";
  auto taxi = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(bp.CreateTable("main", "taxi_table", taxi->schema()).ok());
  ASSERT_TRUE(bp.WriteTable("main", "taxi_table", *taxi).ok());

  auto tables_before = bp.ListTables("main");
  ASSERT_TRUE(tables_before.ok());

  // Fail lake writes during the run's materialization phase: the data
  // prefix covers the artifact tables' objects.
  store.FailOnlyPrefix("lake/trips");
  store.FailAfter(0);
  auto report = bp.Run(pipeline::MakePaperTaxiPipeline(1.0), "main");
  store.Heal();

  // The run reports failure (either as status or error), and main is
  // untouched: same tables, no stray branches.
  if (report.ok()) {
    EXPECT_FALSE(report->merged);
    EXPECT_NE(report->status.find("failed"), std::string::npos);
  }
  auto tables_after = bp.ListTables("main");
  ASSERT_TRUE(tables_after.ok());
  EXPECT_EQ(*tables_after, *tables_before);
  auto branches = bp.ListBranches();
  ASSERT_TRUE(branches.ok());
  EXPECT_EQ(branches->size(), 1u);
}

TEST(FaultInjectionPlatformTest, QueryFailureIsCleanError) {
  storage::MemoryObjectStore base;
  storage::FaultInjectionStore store(&base);
  SimClock clock(1700000000000000ull);
  auto platform = core::Bauplan::Open(&store, &clock);
  ASSERT_TRUE(platform.ok());
  core::Bauplan& bp = **platform;

  workload::TaxiGenOptions gen;
  gen.rows = 100;
  auto taxi = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(bp.CreateTable("main", "taxi_table", taxi->schema()).ok());
  ASSERT_TRUE(bp.WriteTable("main", "taxi_table", *taxi).ok());

  store.FailOnlyPrefix("lake/taxi_table/data");
  store.FailAfter(0);
  auto result = bp.Query("SELECT COUNT(*) AS n FROM taxi_table");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());

  store.Heal();
  EXPECT_TRUE(bp.Query("SELECT COUNT(*) AS n FROM taxi_table").ok());
}

}  // namespace
}  // namespace bauplan
