#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "columnar/csv.h"
#include "columnar/datetime.h"

namespace bauplan::columnar {
namespace {

TEST(CsvReadTest, BasicWithHeaderAndInference) {
  auto table = ReadCsv(
      "id,fare,zone,pickup_at\n"
      "1,10.5,JFK,2019-04-01\n"
      "2,8.25,LGA,2019-04-02 10:30:00\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->schema().field(0).type, TypeId::kInt64);
  EXPECT_EQ(table->schema().field(1).type, TypeId::kDouble);
  EXPECT_EQ(table->schema().field(2).type, TypeId::kString);
  EXPECT_EQ(table->schema().field(3).type, TypeId::kTimestamp);
  EXPECT_EQ(table->GetValue(0, 0), Value::Int64(1));
  EXPECT_EQ(table->GetValue(1, 1), Value::Double(8.25));
  EXPECT_EQ(table->GetValue(0, 2), Value::String("JFK"));
  EXPECT_EQ(table->GetValue(0, 3).int64_value(),
            *ParseTimestampString("2019-04-01"));
}

TEST(CsvReadTest, NoHeaderGeneratesNames) {
  CsvReadOptions options;
  options.has_header = false;
  auto table = ReadCsv("1,a\n2,b\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).name, "c0");
  EXPECT_EQ(table->schema().field(1).name, "c1");
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvReadTest, QuotedFieldsAndEscapes) {
  auto table = ReadCsv(
      "name,notes\n"
      "\"Smith, John\",\"said \"\"hi\"\"\"\n"
      "plain,\"multi\nline\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->GetValue(0, 0), Value::String("Smith, John"));
  EXPECT_EQ(table->GetValue(0, 1), Value::String("said \"hi\""));
  EXPECT_EQ(table->GetValue(1, 1), Value::String("multi\nline"));
}

TEST(CsvReadTest, EmptyUnquotedIsNullQuotedIsEmptyString) {
  auto table = ReadCsv("a,b\n1,\n2,\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->GetValue(0, 1).is_null());
  EXPECT_FALSE(table->GetValue(1, 1).is_null());
  EXPECT_EQ(table->GetValue(1, 1), Value::String(""));
}

TEST(CsvReadTest, NullsDoNotBreakNumericInference) {
  auto table = ReadCsv("x\n1\n\n3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).type, TypeId::kInt64);
  EXPECT_TRUE(table->GetValue(1, 0).is_null());
  EXPECT_EQ(table->GetValue(2, 0), Value::Int64(3));
}

TEST(CsvReadTest, MixedColumnFallsBackToString) {
  auto table = ReadCsv("x\n1\nhello\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).type, TypeId::kString);
  EXPECT_EQ(table->GetValue(0, 0), Value::String("1"));
}

TEST(CsvReadTest, IntColumnBeatsDouble) {
  auto ints = ReadCsv("x\n1\n2\n");
  EXPECT_EQ(ints->schema().field(0).type, TypeId::kInt64);
  auto doubles = ReadCsv("x\n1\n2.5\n");
  EXPECT_EQ(doubles->schema().field(0).type, TypeId::kDouble);
}

TEST(CsvReadTest, Errors) {
  EXPECT_FALSE(ReadCsv("").ok());
  EXPECT_FALSE(ReadCsv("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(ReadCsv("a\n\"unterminated\n").ok());
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  auto table = ReadCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_columns(), 2);
  EXPECT_EQ(table->GetValue(0, 1), Value::Int64(2));
}

TEST(CsvWriteTest, RoundTrip) {
  Int64Builder ids;
  DoubleBuilder fares;
  StringBuilder notes;
  ids.Append(1);
  ids.AppendNull();
  fares.Append(10.5);
  fares.Append(7.0);
  notes.Append("plain");
  notes.Append("has, comma and \"quote\"");
  Table t = *Table::Make(Schema({{"id", TypeId::kInt64, true},
                                 {"fare", TypeId::kDouble, true},
                                 {"notes", TypeId::kString, true}}),
                         {ids.Finish(), fares.Finish(), notes.Finish()});
  std::string csv = WriteCsv(t);
  auto back = ReadCsv(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2);
  EXPECT_EQ(back->GetValue(0, 0), Value::Int64(1));
  EXPECT_TRUE(back->GetValue(1, 0).is_null());
  EXPECT_EQ(back->GetValue(0, 2), Value::String("plain"));
  EXPECT_EQ(back->GetValue(1, 2),
            Value::String("has, comma and \"quote\""));
}

// Property sweep: round trip across shapes and null densities.
class CsvRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CsvRoundTrip, PreservesValues) {
  int rows = std::get<0>(GetParam());
  int null_every = std::get<1>(GetParam());
  Int64Builder ints;
  DoubleBuilder doubles;
  StringBuilder strings;
  for (int i = 0; i < rows; ++i) {
    if (null_every > 0 && i % null_every == 0) {
      ints.AppendNull();
      doubles.AppendNull();
      strings.AppendNull();
    } else {
      ints.Append(i * 3 - 50);
      doubles.Append(i * 0.5);
      strings.Append(i % 2 == 0 ? "even,half" : "odd");
    }
  }
  Table t = *Table::Make(Schema({{"i", TypeId::kInt64, true},
                                 {"d", TypeId::kDouble, true},
                                 {"s", TypeId::kString, true}}),
                         {ints.Finish(), doubles.Finish(),
                          strings.Finish()});
  auto back = ReadCsv(WriteCsv(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), rows);
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < 3; ++c) {
      Value a = t.GetValue(r, c);
      Value b = back->GetValue(r, c);
      ASSERT_EQ(a.is_null(), b.is_null()) << r << "," << c;
      if (!a.is_null()) {
        ASSERT_EQ(a, b) << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CsvRoundTrip,
                         ::testing::Combine(::testing::Values(1, 100, 999),
                                            ::testing::Values(0, 1, 7)));

}  // namespace
}  // namespace bauplan::columnar
