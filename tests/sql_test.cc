#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "common/rng.h"
#include "common/strings.h"
#include "columnar/datetime.h"
#include "columnar/table.h"
#include "sql/engine.h"
#include "sql/expr_eval.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace bauplan::sql {
namespace {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::ParseTimestampString;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using columnar::Value;

/// The paper's taxi_table: trips with pickup location/time, passengers.
Table TaxiTable() {
  Int64Builder pickup_loc, dropoff_loc, passengers;
  Int64Builder pickup_at(TypeId::kTimestamp);
  DoubleBuilder fare;
  StringBuilder zone;
  struct Row {
    int64_t pickup, dropoff, pax;
    const char* when;
    double fare;
    const char* zone;
  };
  std::vector<Row> rows = {
      {1, 2, 2, "2019-03-15 08:00:00", 10.0, "JFK"},
      {1, 3, 1, "2019-04-01 09:00:00", 15.5, "JFK"},
      {2, 3, 4, "2019-04-02 10:30:00", 8.25, "LGA"},
      {1, 2, 3, "2019-04-05 11:00:00", 30.0, "JFK"},
      {3, 1, 1, "2019-04-07 12:15:00", 22.0, "SoHo"},
      {2, 1, 6, "2019-04-09 13:45:00", 5.0, "LGA"},
      {3, 2, 2, "2019-05-01 14:00:00", 18.0, "SoHo"},
  };
  for (const auto& r : rows) {
    pickup_loc.Append(r.pickup);
    dropoff_loc.Append(r.dropoff);
    passengers.Append(r.pax);
    pickup_at.Append(*ParseTimestampString(r.when));
    fare.Append(r.fare);
    zone.Append(r.zone);
  }
  return *Table::Make(
      Schema({{"pickup_location_id", TypeId::kInt64, false},
              {"dropoff_location_id", TypeId::kInt64, false},
              {"passenger_count", TypeId::kInt64, false},
              {"pickup_at", TypeId::kTimestamp, false},
              {"fare", TypeId::kDouble, false},
              {"zone", TypeId::kString, false}}),
      {pickup_loc.Finish(), dropoff_loc.Finish(), passengers.Finish(),
       pickup_at.Finish(), fare.Finish(), zone.Finish()});
}

Table ZoneTable() {
  Int64Builder id;
  StringBuilder name, borough;
  id.Append(1);
  name.Append("JFK");
  borough.Append("Queens");
  id.Append(2);
  name.Append("LGA");
  borough.Append("Queens");
  id.Append(4);
  name.Append("EWR");
  borough.Append("NJ");
  return *Table::Make(Schema({{"id", TypeId::kInt64, false},
                              {"name", TypeId::kString, false},
                              {"borough", TypeId::kString, false}}),
                      {id.Finish(), name.Finish(), borough.Finish()});
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() {
    provider_.AddTable("taxi_table", TaxiTable());
    provider_.AddTable("zones", ZoneTable());
  }

  Result<QueryResult> Run(std::string_view sql, QueryOptions opts = {}) {
    return RunQuery(sql, provider_, &provider_, opts);
  }

  Table RunOk(std::string_view sql) {
    auto result = Run(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? result->table : Table();
  }

  MemoryTableProvider provider_;
};

// ---------------------------------------------------------------- lexer

TEST(LexerTest, TokenizesKeywordsAndIdentifiers) {
  auto tokens = Tokenize("SELECT foo FROM Bar");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "foo");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  EXPECT_EQ((*tokens)[3].text, "Bar");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select from where");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.25 1e3 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].float_value, 3.25);
  EXPECT_EQ((*tokens)[2].float_value, 1000.0);
  EXPECT_EQ((*tokens)[3].text, "it's");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto tokens = Tokenize("<= >= != <> = < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[1].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[2].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[3].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[4].type, TokenType::kEq);
  EXPECT_EQ((*tokens)[5].type, TokenType::kLt);
  EXPECT_EQ((*tokens)[6].type, TokenType::kGt);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- everything\n x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999").ok());
}

// ---------------------------------------------------------------- parser

TEST(ParserTest, PaperStep1Parses) {
  auto stmt = ParseSelect(
      "SELECT pickup_location_id, passenger_count as count, "
      "dropoff_location_id FROM taxi_table "
      "WHERE pickup_at >= '2019-04-01'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[1].alias, "count");
  EXPECT_EQ(stmt->from.table_name, "taxi_table");
  ASSERT_NE(stmt->where, nullptr);
}

TEST(ParserTest, PaperStep3Parses) {
  auto stmt = ParseSelect(
      "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS counts "
      "FROM trips GROUP BY pickup_location_id, dropoff_location_id "
      "ORDER BY counts DESC");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->group_by.size(), 2u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
}

TEST(ParserTest, ExtractTableReferences) {
  auto refs = ExtractTableReferences(
      "SELECT * FROM trips t JOIN zones z ON t.zone_id = z.id");
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 2u);
  EXPECT_EQ((*refs)[0], "trips");
  EXPECT_EQ((*refs)[1], "zones");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  // a + (b * c)
  EXPECT_EQ(stmt->items[0].expr->ToString(), "(a + (b * c))");
  auto stmt2 = ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->where->binary_op, BinaryOp::kOr);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FORM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT -3").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t trailing garbage junk").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

TEST(ParserTest, BetweenInLikeCase) {
  auto stmt = ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t "
      "WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3) AND c LIKE 'J%' "
      "AND d NOT IN (4) AND e IS NOT NULL");
  ASSERT_TRUE(stmt.ok());
}

// ---------------------------------------------------------------- eval

TEST(ExprEvalTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("JFK", "J%"));
  EXPECT_TRUE(LikeMatch("JFK", "%FK"));
  EXPECT_TRUE(LikeMatch("JFK", "_F_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%%"));
  EXPECT_FALSE(LikeMatch("JFK", "j%"));  // case sensitive
  EXPECT_FALSE(LikeMatch("JFK", "_F"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("xaYYYb", "%a%b"));
}

// ---------------------------------------------------------------- queries

TEST_F(SqlTest, SelectStar) {
  Table t = RunOk("SELECT * FROM taxi_table");
  EXPECT_EQ(t.num_rows(), 7);
  EXPECT_EQ(t.num_columns(), 6);
}

TEST_F(SqlTest, PaperStep1TrailingSemicolonAndDateFilter) {
  Table t = RunOk(
      "SELECT pickup_location_id, passenger_count as count, "
      "dropoff_location_id FROM taxi_table "
      "WHERE pickup_at >= '2019-04-01';");
  EXPECT_EQ(t.num_rows(), 6);  // March trip excluded
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.schema().field(1).name, "count");
}

TEST_F(SqlTest, PaperStep3GroupByOrderBy) {
  // Build trips as in Step 1, register it, then run Step 3 on it.
  Table trips = RunOk(
      "SELECT pickup_location_id, passenger_count as count, "
      "dropoff_location_id FROM taxi_table "
      "WHERE pickup_at >= '2019-04-01'");
  provider_.AddTable("trips", trips);
  Table pickups = RunOk(
      "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS counts "
      "FROM trips GROUP BY pickup_location_id, dropoff_location_id "
      "ORDER BY counts DESC");
  EXPECT_EQ(pickups.num_columns(), 3);
  EXPECT_GE(pickups.num_rows(), 4);
  // Counts are non-increasing.
  for (int64_t i = 1; i < pickups.num_rows(); ++i) {
    EXPECT_LE(pickups.GetValue(i, 2).int64_value(),
              pickups.GetValue(i - 1, 2).int64_value());
  }
}

TEST_F(SqlTest, WhereComparisons) {
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE fare > 20").num_rows(), 2);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE fare <= 10").num_rows(),
            3);
  EXPECT_EQ(
      RunOk("SELECT * FROM taxi_table WHERE zone = 'JFK'").num_rows(), 3);
  EXPECT_EQ(
      RunOk("SELECT * FROM taxi_table WHERE zone != 'JFK'").num_rows(), 4);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE 15 < fare").num_rows(), 4);
}

TEST_F(SqlTest, WhereLogicalOperators) {
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE zone = 'JFK' AND "
                  "passenger_count >= 2")
                .num_rows(),
            2);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE zone = 'JFK' OR "
                  "zone = 'LGA'")
                .num_rows(),
            5);
  EXPECT_EQ(
      RunOk("SELECT * FROM taxi_table WHERE NOT zone = 'JFK'").num_rows(),
      4);
}

TEST_F(SqlTest, WhereBetweenInLike) {
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE fare BETWEEN 10 AND 20")
                .num_rows(),
            3);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE pickup_location_id IN "
                  "(1, 3)")
                .num_rows(),
            5);
  EXPECT_EQ(
      RunOk("SELECT * FROM taxi_table WHERE zone LIKE '%o%'").num_rows(),
      2);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table WHERE zone NOT LIKE 'J%'")
                .num_rows(),
            4);
}

TEST_F(SqlTest, Projections) {
  Table t = RunOk(
      "SELECT fare * 2 AS double_fare, passenger_count + 1 AS pax "
      "FROM taxi_table LIMIT 1");
  EXPECT_EQ(t.GetValue(0, 0), Value::Double(20.0));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(3));
}

TEST_F(SqlTest, IntegerAndDoubleDivision) {
  Table t = RunOk("SELECT 7 / 2 AS d, 7 % 2 AS m FROM taxi_table LIMIT 1");
  EXPECT_EQ(t.GetValue(0, 0), Value::Double(3.5));  // div is double
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(1));
}

TEST_F(SqlTest, GlobalAggregates) {
  Table t = RunOk(
      "SELECT COUNT(*) AS n, SUM(fare) AS total, AVG(passenger_count) "
      "AS avg_pax, MIN(fare) AS lo, MAX(fare) AS hi FROM taxi_table");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(7));
  EXPECT_NEAR(t.GetValue(0, 1).double_value(), 108.75, 1e-9);
  EXPECT_NEAR(t.GetValue(0, 2).double_value(), 19.0 / 7, 1e-9);
  EXPECT_EQ(t.GetValue(0, 3), Value::Double(5.0));
  EXPECT_EQ(t.GetValue(0, 4), Value::Double(30.0));
}

TEST_F(SqlTest, GroupByWithHaving) {
  Table t = RunOk(
      "SELECT zone, COUNT(*) AS n FROM taxi_table GROUP BY zone "
      "HAVING COUNT(*) >= 2 ORDER BY n DESC, zone");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("JFK"));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(3));
}

TEST_F(SqlTest, AggregateOfExpression) {
  Table t = RunOk("SELECT SUM(fare * 2) AS s FROM taxi_table");
  EXPECT_NEAR(t.GetValue(0, 0).double_value(), 217.5, 1e-9);
}

TEST_F(SqlTest, ExpressionOverAggregates) {
  Table t = RunOk(
      "SELECT SUM(fare) / COUNT(*) AS mean_fare FROM taxi_table");
  EXPECT_NEAR(t.GetValue(0, 0).double_value(), 108.75 / 7, 1e-9);
}

TEST_F(SqlTest, CountDistinct) {
  Table t = RunOk("SELECT COUNT(DISTINCT zone) AS z FROM taxi_table");
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(3));
}

TEST_F(SqlTest, EmptyAggregateSemantics) {
  Table t = RunOk(
      "SELECT COUNT(*) AS n, SUM(fare) AS s FROM taxi_table WHERE fare > "
      "1000");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(0));
  EXPECT_TRUE(t.GetValue(0, 1).is_null());
}

TEST_F(SqlTest, GroupColumnRule) {
  auto bad = Run("SELECT zone, fare FROM taxi_table GROUP BY zone");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto bad2 = Run("SELECT * FROM taxi_table WHERE COUNT(*) > 1");
  ASSERT_FALSE(bad2.ok());
}

TEST_F(SqlTest, OrderByMultipleKeysAndHiddenColumn) {
  Table t = RunOk(
      "SELECT zone FROM taxi_table ORDER BY passenger_count DESC, fare");
  EXPECT_EQ(t.num_columns(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("LGA"));  // pax 6
}

TEST_F(SqlTest, OrderByAggregateNotSelected) {
  Table t = RunOk(
      "SELECT zone FROM taxi_table GROUP BY zone ORDER BY SUM(fare) DESC");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("JFK"));  // 55.5
}

TEST_F(SqlTest, Limit) {
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table LIMIT 3").num_rows(), 3);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table LIMIT 0").num_rows(), 0);
  EXPECT_EQ(RunOk("SELECT * FROM taxi_table LIMIT 100").num_rows(), 7);
}

TEST_F(SqlTest, InnerJoin) {
  Table t = RunOk(
      "SELECT t.zone, z.borough FROM taxi_table t "
      "JOIN zones z ON t.pickup_location_id = z.id ORDER BY t.zone");
  // pickup ids 1,2 match zones 1,2; id 3 (SoHo pickups) has no match.
  EXPECT_EQ(t.num_rows(), 5);
  EXPECT_EQ(t.GetValue(0, 1), Value::String("Queens"));
}

TEST_F(SqlTest, LeftJoinKeepsUnmatched) {
  Table t = RunOk(
      "SELECT t.pickup_location_id, z.name FROM taxi_table t "
      "LEFT JOIN zones z ON t.pickup_location_id = z.id "
      "ORDER BY t.pickup_location_id");
  EXPECT_EQ(t.num_rows(), 7);
  // pickup_location_id 3 rows have null zone name.
  int64_t nulls = 0;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    if (t.GetValue(i, 1).is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2);
}

TEST_F(SqlTest, JoinWithAggregation) {
  Table t = RunOk(
      "SELECT z.borough, COUNT(*) AS n FROM taxi_table t "
      "JOIN zones z ON t.pickup_location_id = z.id "
      "GROUP BY z.borough");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("Queens"));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(5));
}

TEST_F(SqlTest, JoinRequiresEquiCondition) {
  auto bad = Run(
      "SELECT * FROM taxi_table t JOIN zones z ON t.fare > 1");
  EXPECT_FALSE(bad.ok());
}

TEST_F(SqlTest, AmbiguousColumnRejected) {
  provider_.AddTable("other_zones", ZoneTable());
  auto bad = Run(
      "SELECT name FROM zones a JOIN other_zones b ON a.id = b.id");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(SqlTest, ScalarFunctions) {
  Table t = RunOk(
      "SELECT LOWER(zone) AS lo, UPPER(zone) AS up, LENGTH(zone) AS n, "
      "ABS(0 - fare) AS a FROM taxi_table WHERE zone = 'SoHo' LIMIT 1");
  EXPECT_EQ(t.GetValue(0, 0), Value::String("soho"));
  EXPECT_EQ(t.GetValue(0, 1), Value::String("SOHO"));
  EXPECT_EQ(t.GetValue(0, 2), Value::Int64(4));
  EXPECT_EQ(t.GetValue(0, 3), Value::Double(22.0));
}

TEST_F(SqlTest, RoundFloorCeil) {
  Table t = RunOk(
      "SELECT ROUND(fare) AS r, FLOOR(fare) AS f, CEIL(fare) AS c "
      "FROM taxi_table WHERE zone = 'LGA' ORDER BY fare LIMIT 1");
  EXPECT_EQ(t.GetValue(0, 0), Value::Double(5.0));
  EXPECT_EQ(t.GetValue(0, 1), Value::Double(5.0));
  EXPECT_EQ(t.GetValue(0, 2), Value::Double(5.0));
  Table t2 = RunOk("SELECT ROUND(8.25) AS r, FLOOR(8.25) AS f, "
                   "CEIL(8.25) AS c FROM taxi_table LIMIT 1");
  EXPECT_EQ(t2.GetValue(0, 0), Value::Double(8.0));
  EXPECT_EQ(t2.GetValue(0, 1), Value::Double(8.0));
  EXPECT_EQ(t2.GetValue(0, 2), Value::Double(9.0));
  EXPECT_FALSE(Run("SELECT ROUND(zone) AS r FROM taxi_table").ok());
}

TEST_F(SqlTest, CaseExpression) {
  Table t = RunOk(
      "SELECT zone, CASE WHEN fare >= 20 THEN 'pricey' WHEN fare >= 10 "
      "THEN 'normal' ELSE 'cheap' END AS bucket FROM taxi_table "
      "ORDER BY fare DESC LIMIT 2");
  EXPECT_EQ(t.GetValue(0, 1), Value::String("pricey"));
}

TEST_F(SqlTest, CastExpression) {
  Table t = RunOk(
      "SELECT CAST(fare AS int64) AS f, CAST(passenger_count AS string) "
      "AS s, CAST('2019-04-01' AS timestamp) AS ts FROM taxi_table "
      "LIMIT 1");
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(10));
  EXPECT_EQ(t.GetValue(0, 1), Value::String("2"));
  EXPECT_EQ(t.GetValue(0, 2).type(), TypeId::kTimestamp);
}

TEST_F(SqlTest, NullHandlingThreeValuedLogic) {
  Int64Builder a;
  a.Append(1);
  a.AppendNull();
  a.Append(3);
  provider_.AddTable("with_nulls",
                     *Table::Make(Schema({{"a", TypeId::kInt64, true}}),
                                  {a.Finish()}));
  // Null comparisons are unknown -> filtered out.
  EXPECT_EQ(RunOk("SELECT * FROM with_nulls WHERE a > 0").num_rows(), 2);
  EXPECT_EQ(RunOk("SELECT * FROM with_nulls WHERE a IS NULL").num_rows(),
            1);
  EXPECT_EQ(
      RunOk("SELECT * FROM with_nulls WHERE a IS NOT NULL").num_rows(), 2);
  // Aggregates skip nulls; COUNT(col) counts non-null.
  Table agg = RunOk(
      "SELECT COUNT(*) AS all_rows, COUNT(a) AS non_null, SUM(a) AS s "
      "FROM with_nulls");
  EXPECT_EQ(agg.GetValue(0, 0), Value::Int64(3));
  EXPECT_EQ(agg.GetValue(0, 1), Value::Int64(2));
  EXPECT_EQ(agg.GetValue(0, 2), Value::Int64(4));
  // COALESCE picks the first non-null.
  Table c = RunOk("SELECT COALESCE(a, 0 - 1) AS c FROM with_nulls");
  EXPECT_EQ(c.GetValue(1, 0), Value::Int64(-1));
}

TEST_F(SqlTest, DivisionByZeroIsNull) {
  Table t = RunOk("SELECT fare / 0 AS x FROM taxi_table LIMIT 1");
  EXPECT_TRUE(t.GetValue(0, 0).is_null());
}

TEST_F(SqlTest, MissingTableAndColumnErrors) {
  EXPECT_TRUE(Run("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(
      Run("SELECT missing FROM taxi_table").status().IsNotFound());
  EXPECT_TRUE(
      Run("SELECT * FROM taxi_table WHERE nope = 1").status().IsNotFound());
}

TEST_F(SqlTest, ConstantFolding) {
  QueryOptions opts;
  opts.capture_plans = true;
  auto result = Run("SELECT * FROM taxi_table WHERE fare > 10 + 5", opts);
  ASSERT_TRUE(result.ok());
  // The folded literal appears in the physical plan.
  EXPECT_NE(result->physical_plan.find("fare > 15"), std::string::npos);
  EXPECT_EQ(result->table.num_rows(), 4);
}

TEST_F(SqlTest, PredicatePushdownVisibleInPlan) {
  QueryOptions opts;
  opts.capture_plans = true;
  auto result = Run(
      "SELECT zone FROM taxi_table WHERE pickup_at >= '2019-04-01' AND "
      "fare > 10",
      opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->physical_plan.find("pushdown="), std::string::npos);
  EXPECT_NE(result->physical_plan.find("columns="), std::string::npos);
  EXPECT_EQ(result->table.num_rows(), 4);
}

TEST_F(SqlTest, OptimizerOffStillCorrect) {
  QueryOptions off;
  off.optimizer.pushdown_predicates = false;
  off.optimizer.pushdown_projections = false;
  off.optimizer.fold_constants = false;
  auto a = Run("SELECT zone, COUNT(*) AS n FROM taxi_table WHERE fare > 9 "
               "GROUP BY zone ORDER BY n DESC, zone",
               off);
  auto b = Run("SELECT zone, COUNT(*) AS n FROM taxi_table WHERE fare > 9 "
               "GROUP BY zone ORDER BY n DESC, zone");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->table.num_rows(), b->table.num_rows());
  for (int64_t i = 0; i < a->table.num_rows(); ++i) {
    EXPECT_EQ(a->table.GetValue(i, 0), b->table.GetValue(i, 0));
    EXPECT_EQ(a->table.GetValue(i, 1), b->table.GetValue(i, 1));
  }
}

TEST_F(SqlTest, StatsReportScannedRows) {
  auto result = Run("SELECT COUNT(*) AS n FROM taxi_table");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.rows_scanned, 7);
  EXPECT_EQ(result->stats.rows_output, 1);
  EXPECT_GT(result->stats.operators_executed, 0);
}

TEST_F(SqlTest, DerivedTableBasic) {
  Table t = RunOk(
      "SELECT zone, n FROM (SELECT zone, COUNT(*) AS n FROM taxi_table "
      "GROUP BY zone) z WHERE n >= 2 ORDER BY n DESC");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("JFK"));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(3));
}

TEST_F(SqlTest, DerivedTableWithOuterAggregate) {
  // Average per-zone fare: aggregate over an aggregate.
  Table t = RunOk(
      "SELECT AVG(zone_total) AS mean_total FROM "
      "(SELECT zone, SUM(fare) AS zone_total FROM taxi_table "
      "GROUP BY zone) per_zone");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_NEAR(t.GetValue(0, 0).double_value(), 108.75 / 3, 1e-9);
}

TEST_F(SqlTest, DerivedTableJoinedToBaseTable) {
  Table t = RunOk(
      "SELECT z.borough, busy.n FROM "
      "(SELECT pickup_location_id AS loc, COUNT(*) AS n FROM taxi_table "
      "GROUP BY pickup_location_id) busy "
      "JOIN zones z ON busy.loc = z.id ORDER BY busy.n DESC");
  ASSERT_EQ(t.num_rows(), 2);  // locations 1 and 2 are in zones
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(3));
}

TEST_F(SqlTest, NestedDerivedTables) {
  Table t = RunOk(
      "SELECT * FROM (SELECT * FROM (SELECT zone FROM taxi_table "
      "WHERE fare > 20) inner_q) outer_q ORDER BY zone");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST_F(SqlTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(Run("SELECT * FROM (SELECT 1 AS x FROM taxi_table)").ok());
}

TEST_F(SqlTest, DerivedTableReferencesExtracted) {
  auto refs = ExtractTableReferences(
      "SELECT * FROM (SELECT * FROM trips t JOIN zones z ON t.a = z.b) q");
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(refs->size(), 2u);
  EXPECT_EQ((*refs)[0], "trips");
  EXPECT_EQ((*refs)[1], "zones");
}

TEST_F(SqlTest, UnionAllBasic) {
  Table t = RunOk(
      "SELECT zone FROM taxi_table WHERE fare > 20 "
      "UNION ALL SELECT zone FROM taxi_table WHERE fare < 6");
  EXPECT_EQ(t.num_rows(), 3);  // {30, 22} + {5}
  EXPECT_EQ(t.num_columns(), 1);
  EXPECT_EQ(t.schema().field(0).name, "zone");
}

TEST_F(SqlTest, UnionAllKeepsDuplicates) {
  Table t = RunOk(
      "SELECT zone FROM taxi_table UNION ALL SELECT zone FROM taxi_table");
  EXPECT_EQ(t.num_rows(), 14);
}

TEST_F(SqlTest, UnionAllThreeWayWithAggregates) {
  Table t = RunOk(
      "SELECT 'min' AS stat, MIN(fare) AS v FROM taxi_table "
      "UNION ALL SELECT 'avg' AS stat, AVG(fare) AS v FROM taxi_table "
      "UNION ALL SELECT 'max' AS stat, MAX(fare) AS v FROM taxi_table");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("min"));
  EXPECT_EQ(t.GetValue(0, 1), Value::Double(5.0));
  EXPECT_EQ(t.GetValue(2, 1), Value::Double(30.0));
}

TEST_F(SqlTest, UnionInsideDerivedTableCanSort) {
  Table t = RunOk(
      "SELECT * FROM (SELECT fare FROM taxi_table WHERE zone = 'JFK' "
      "UNION ALL SELECT fare FROM taxi_table WHERE zone = 'LGA') u "
      "ORDER BY fare DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(0, 0), Value::Double(30.0));
  EXPECT_EQ(t.GetValue(1, 0), Value::Double(15.5));
}

TEST_F(SqlTest, UnionErrors) {
  // Arity mismatch.
  EXPECT_FALSE(Run("SELECT zone FROM taxi_table UNION ALL "
                   "SELECT zone, fare FROM taxi_table").ok());
  // Type mismatch by position.
  EXPECT_FALSE(Run("SELECT zone FROM taxi_table UNION ALL "
                   "SELECT fare FROM taxi_table").ok());
  // ORDER BY on a union branch.
  EXPECT_FALSE(Run("SELECT zone FROM taxi_table ORDER BY zone UNION ALL "
                   "SELECT zone FROM taxi_table").ok());
  // Plain UNION (dedup) is not implemented; only UNION ALL.
  EXPECT_FALSE(Run("SELECT zone FROM taxi_table UNION "
                   "SELECT zone FROM taxi_table").ok());
}

TEST_F(SqlTest, SelectDistinct) {
  Table t = RunOk("SELECT DISTINCT zone FROM taxi_table ORDER BY zone");
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("JFK"));
  EXPECT_EQ(t.GetValue(1, 0), Value::String("LGA"));
  EXPECT_EQ(t.GetValue(2, 0), Value::String("SoHo"));
}

TEST_F(SqlTest, SelectDistinctMultiColumn) {
  Table t = RunOk(
      "SELECT DISTINCT pickup_location_id, zone FROM taxi_table");
  // (1,JFK) (2,LGA) (3,SoHo) are the only combinations.
  EXPECT_EQ(t.num_rows(), 3);
}

TEST_F(SqlTest, SelectDistinctWithExpressionAndLimit) {
  Table t = RunOk(
      "SELECT DISTINCT passenger_count % 2 AS parity FROM taxi_table "
      "ORDER BY parity LIMIT 10");
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(0));
  EXPECT_EQ(t.GetValue(1, 0), Value::Int64(1));
}

TEST_F(SqlTest, DistinctTreatsNullsAsEqual) {
  Int64Builder a;
  a.AppendNull();
  a.AppendNull();
  a.Append(1);
  provider_.AddTable("nulls2",
                     *Table::Make(Schema({{"a", TypeId::kInt64, true}}),
                                  {a.Finish()}));
  Table t = RunOk("SELECT DISTINCT a FROM nulls2");
  EXPECT_EQ(t.num_rows(), 2);  // one NULL row + one 1 row
}

TEST_F(SqlTest, DistinctOrderByHiddenColumnRejected) {
  auto bad = Run("SELECT DISTINCT zone FROM taxi_table ORDER BY fare");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

// Oracle property test: random simple predicates evaluated by the engine
// must agree with a direct row-by-row evaluation of the same predicate.
TEST_F(SqlTest, RandomPredicateOracle) {
  Table taxi = TaxiTable();
  Rng rng(20230906);
  const char* numeric_cols[] = {"pickup_location_id", "passenger_count",
                                "fare"};
  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 200; ++trial) {
    const char* col = numeric_cols[rng.UniformInt(0, 2)];
    const char* op = ops[rng.UniformInt(0, 5)];
    double lit = rng.Uniform(0, 35);
    std::string sql = StrCat("SELECT * FROM taxi_table WHERE ", col, " ",
                             op, " ", lit);

    // Oracle: direct evaluation over the source rows.
    auto column = *taxi.GetColumnByName(col);
    int64_t expected = 0;
    for (int64_t i = 0; i < taxi.num_rows(); ++i) {
      Value v = column->GetValue(i);
      if (v.is_null()) continue;
      double x = *v.AsDouble();
      bool keep = false;
      std::string_view o(op);
      if (o == "=") keep = x == lit;
      if (o == "!=") keep = x != lit;
      if (o == "<") keep = x < lit;
      if (o == "<=") keep = x <= lit;
      if (o == ">") keep = x > lit;
      if (o == ">=") keep = x >= lit;
      if (keep) ++expected;
    }

    auto result = Run(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    ASSERT_EQ(result->table.num_rows(), expected) << sql;
  }
}

// Oracle property test: GROUP BY sums must equal a direct row loop.
TEST_F(SqlTest, RandomGroupByOracle) {
  Table taxi = TaxiTable();
  Rng rng(99);
  const char* group_cols[] = {"zone", "pickup_location_id",
                              "passenger_count"};
  for (int trial = 0; trial < 60; ++trial) {
    const char* group = group_cols[rng.UniformInt(0, 2)];
    double cutoff = rng.Uniform(0, 35);
    std::string sql =
        StrCat("SELECT ", group, ", COUNT(*) AS n, SUM(fare) AS s FROM "
               "taxi_table WHERE fare > ", cutoff, " GROUP BY ", group);

    // Oracle.
    auto keys = *taxi.GetColumnByName(group);
    auto fares = *taxi.GetColumnByName("fare");
    std::map<std::string, std::pair<int64_t, double>> expected;
    for (int64_t i = 0; i < taxi.num_rows(); ++i) {
      double fare = fares->GetValue(i).double_value();
      if (!(fare > cutoff)) continue;
      auto& slot = expected[keys->GetValue(i).ToString()];
      slot.first += 1;
      slot.second += fare;
    }

    auto result = Run(sql);
    ASSERT_TRUE(result.ok()) << sql;
    ASSERT_EQ(result->table.num_rows(),
              static_cast<int64_t>(expected.size())) << sql;
    for (int64_t r = 0; r < result->table.num_rows(); ++r) {
      std::string key = result->table.GetValue(r, 0).ToString();
      ASSERT_TRUE(expected.count(key) > 0) << sql << " key " << key;
      ASSERT_EQ(result->table.GetValue(r, 1).int64_value(),
                expected[key].first) << sql;
      ASSERT_NEAR(result->table.GetValue(r, 2).double_value(),
                  expected[key].second, 1e-9) << sql;
    }
  }
}

// Oracle property test: random two-conjunct predicates with AND/OR.
TEST_F(SqlTest, RandomBooleanCombinationOracle) {
  Table taxi = TaxiTable();
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    double a = rng.Uniform(0, 35);
    int64_t b = rng.UniformInt(0, 6);
    bool use_and = rng.Bernoulli(0.5);
    std::string sql = StrCat("SELECT COUNT(*) AS n FROM taxi_table WHERE ",
                             "fare > ", a, use_and ? " AND " : " OR ",
                             "passenger_count <= ", b);
    auto fares = *taxi.GetColumnByName("fare");
    auto pax = *taxi.GetColumnByName("passenger_count");
    int64_t expected = 0;
    for (int64_t i = 0; i < taxi.num_rows(); ++i) {
      bool left = fares->GetValue(i).double_value() > static_cast<double>(a);
      bool right = pax->GetValue(i).int64_value() <= b;
      if (use_and ? (left && right) : (left || right)) ++expected;
    }
    auto result = Run(sql);
    ASSERT_TRUE(result.ok()) << sql;
    ASSERT_EQ(result->table.GetValue(0, 0), Value::Int64(expected)) << sql;
  }
}

// Property sweep: WHERE pushdown + projection must agree with a full scan
// across many predicates.
class PushdownEquivalence : public SqlTest,
                            public ::testing::WithParamInterface<
                                const char*> {};

TEST_P(PushdownEquivalence, SameResultWithAndWithoutOptimizer) {
  std::string sql = GetParam();
  QueryOptions off;
  off.optimizer.pushdown_predicates = false;
  off.optimizer.pushdown_filters = false;
  off.optimizer.pushdown_projections = false;
  auto with = RunQuery(sql, provider_, &provider_, {});
  auto without = RunQuery(sql, provider_, &provider_, off);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  ASSERT_EQ(with->table.num_rows(), without->table.num_rows()) << sql;
  for (int64_t r = 0; r < with->table.num_rows(); ++r) {
    for (int c = 0; c < with->table.num_columns(); ++c) {
      Value a = with->table.GetValue(r, c);
      Value b = without->table.GetValue(r, c);
      ASSERT_EQ(a.is_null(), b.is_null()) << sql;
      if (!a.is_null()) {
        ASSERT_EQ(a, b) << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, PushdownEquivalence,
    ::testing::Values(
        "SELECT * FROM taxi_table WHERE fare > 15 ORDER BY fare",
        "SELECT zone FROM taxi_table WHERE pickup_at >= '2019-04-01' "
        "ORDER BY zone",
        "SELECT zone, SUM(fare) AS s FROM taxi_table WHERE "
        "passenger_count < 5 GROUP BY zone ORDER BY zone",
        "SELECT t.zone FROM taxi_table t JOIN zones z ON "
        "t.pickup_location_id = z.id WHERE z.borough = 'Queens' "
        "ORDER BY t.zone",
        "SELECT * FROM taxi_table WHERE zone = 'JFK' AND fare "
        "BETWEEN 10 AND 40 ORDER BY fare",
        "SELECT pickup_location_id, COUNT(*) AS n FROM taxi_table "
        "GROUP BY pickup_location_id HAVING COUNT(*) > 1 ORDER BY n"));

}  // namespace
}  // namespace bauplan::sql
