#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "columnar/table.h"
#include "expectations/expectation.h"
#include "expectations/requirements.h"

namespace bauplan::expectations {
namespace {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::Table;
using columnar::TypeId;

Table CountsTable(std::vector<int64_t> counts, bool with_null = false) {
  Int64Builder b;
  for (int64_t c : counts) b.Append(c);
  if (with_null) b.AppendNull();
  return *Table::Make(Schema({{"count", TypeId::kInt64, true}}),
                      {b.Finish()});
}

// ------------------------------------------------------------ requirements

TEST(RequirementsTest, ParseSingle) {
  auto req = PackageRequirement::Parse("pandas==2.0.0");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->name, "pandas");
  EXPECT_EQ(req->version, "2.0.0");
  EXPECT_EQ(req->ToString(), "pandas==2.0.0");
}

TEST(RequirementsTest, ParseRejectsMalformed) {
  EXPECT_FALSE(PackageRequirement::Parse("pandas").ok());
  EXPECT_FALSE(PackageRequirement::Parse("==2.0.0").ok());
  EXPECT_FALSE(PackageRequirement::Parse("pandas==").ok());
  EXPECT_FALSE(PackageRequirement::Parse("").ok());
}

TEST(RequirementsTest, SetIsSortedAndDeduplicated) {
  auto set = RequirementSet::Parse("scipy==1.1.0, pandas==2.0.0, "
                                   "pandas==2.0.0");
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->items().size(), 2u);
  EXPECT_EQ(set->items()[0].name, "pandas");
  EXPECT_EQ(set->items()[1].name, "scipy");
  EXPECT_EQ(set->ToString(), "pandas==2.0.0,scipy==1.1.0");
}

TEST(RequirementsTest, EmptySetParses) {
  auto set = RequirementSet::Parse("  ");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->empty());
}

// ------------------------------------------------------------ expectations

TEST(ExpectationTest, MeanGreaterThanPaperExample) {
  // The paper's Step 2: mean(count) > 10.
  Expectation exp = ExpectMeanGreaterThan("count", 10.0);
  auto pass = exp.Check(CountsTable({12, 15, 9}));
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(pass->passed);

  auto fail = exp.Check(CountsTable({1, 2, 3}));
  ASSERT_TRUE(fail.ok());
  EXPECT_FALSE(fail->passed);
  EXPECT_NE(fail->details.find("mean(count) = 2"), std::string::npos);
}

TEST(ExpectationTest, MeanSkipsNulls) {
  Expectation exp = ExpectMeanGreaterThan("count", 10.0);
  auto result = exp.Check(CountsTable({20, 20}, /*with_null=*/true));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->passed);  // mean of {20, 20}, not {20, 20, 0}
}

TEST(ExpectationTest, MeanOfMissingColumnErrors) {
  Expectation exp = ExpectMeanGreaterThan("nope", 1.0);
  EXPECT_FALSE(exp.Check(CountsTable({1})).ok());
}

TEST(ExpectationTest, MeanOfAllNullsFails) {
  Int64Builder b;
  b.AppendNull();
  Table t = *Table::Make(Schema({{"count", TypeId::kInt64, true}}),
                         {b.Finish()});
  Expectation exp = ExpectMeanGreaterThan("count", 1.0);
  EXPECT_FALSE(exp.Check(t).ok());
}

TEST(ExpectationTest, MeanBetween) {
  Expectation exp = ExpectMeanBetween("count", 2.0, 4.0);
  EXPECT_TRUE(exp.Check(CountsTable({2, 4}))->passed);
  EXPECT_FALSE(exp.Check(CountsTable({10, 20}))->passed);
}

TEST(ExpectationTest, NoNulls) {
  EXPECT_TRUE(ExpectNoNulls("count").Check(CountsTable({1, 2}))->passed);
  EXPECT_FALSE(
      ExpectNoNulls("count").Check(CountsTable({1}, true))->passed);
}

TEST(ExpectationTest, Unique) {
  EXPECT_TRUE(ExpectUnique("count").Check(CountsTable({1, 2, 3}))->passed);
  EXPECT_FALSE(
      ExpectUnique("count").Check(CountsTable({1, 2, 2}))->passed);
  // Nulls do not count as duplicates.
  EXPECT_TRUE(ExpectUnique("count").Check(CountsTable({1}, true))->passed);
}

TEST(ExpectationTest, RowCountBetween) {
  EXPECT_TRUE(
      ExpectRowCountBetween(1, 5).Check(CountsTable({1, 2}))->passed);
  EXPECT_FALSE(ExpectRowCountBetween(3, 5).Check(CountsTable({1}))->passed);
}

TEST(ExpectationTest, ValuesBetween) {
  EXPECT_TRUE(ExpectValuesBetween("count", 0, 10)
                  .Check(CountsTable({1, 5, 10}))
                  ->passed);
  auto out = ExpectValuesBetween("count", 0, 3).Check(CountsTable({1, 9}));
  EXPECT_FALSE(out->passed);
  EXPECT_NE(out->details.find("1 values"), std::string::npos);
}

// ------------------------------------------------------------------- DSL

TEST(ExpectationDslTest, ParsesAllForms) {
  EXPECT_TRUE(ParseExpectation("mean(count) > 10").ok());
  EXPECT_TRUE(ParseExpectation("mean(fare) between 1 and 50").ok());
  EXPECT_TRUE(ParseExpectation("not_null(zone)").ok());
  EXPECT_TRUE(ParseExpectation("unique(trip_id)").ok());
  EXPECT_TRUE(ParseExpectation("row_count between 1 and 1000").ok());
  EXPECT_TRUE(ParseExpectation("values(fare) between 0 and 500").ok());
}

TEST(ExpectationDslTest, ParsedDslEvaluates) {
  auto exp = ParseExpectation("mean(count) > 10");
  ASSERT_TRUE(exp.ok());
  EXPECT_TRUE(exp->Check(CountsTable({11, 12}))->passed);
  EXPECT_FALSE(exp->Check(CountsTable({1, 2}))->passed);
}

TEST(ExpectationDslTest, RejectsGarbage) {
  EXPECT_FALSE(ParseExpectation("").ok());
  EXPECT_FALSE(ParseExpectation("median(count) > 1").ok());
  EXPECT_FALSE(ParseExpectation("mean(count) < 10").ok());
  EXPECT_FALSE(ParseExpectation("mean(count)").ok());
  EXPECT_FALSE(ParseExpectation("not_null(a) > 3").ok());
  EXPECT_FALSE(ParseExpectation("row_count between x and y").ok());
}

}  // namespace
}  // namespace bauplan::expectations
