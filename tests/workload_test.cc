#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/cost_curve.h"
#include "workload/powerlaw.h"
#include "workload/query_log.h"
#include "workload/taxi_gen.h"

namespace bauplan::workload {
namespace {

// ---------------------------------------------------------------- powerlaw

TEST(CcdfTest, MonotoneNonIncreasingFromOne) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.Pareto(1.0, 1.5));
  auto ccdf = ComputeCcdf(samples, 40);
  ASSERT_EQ(ccdf.size(), 40u);
  EXPECT_NEAR(ccdf.front().ccdf, 1.0, 0.01);
  for (size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i].ccdf, ccdf[i - 1].ccdf);
    EXPECT_GT(ccdf[i].x, ccdf[i - 1].x);
  }
}

TEST(CcdfTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(ComputeCcdf({}, 10).empty());
  EXPECT_TRUE(ComputeCcdf({1.0}, 0).empty());
  auto single = ComputeCcdf({5.0, 5.0}, 5);
  EXPECT_EQ(single.size(), 5u);
}

TEST(PowerLawFitTest, RecoversKnownAlpha) {
  // Pareto with tail index k has density exponent alpha = k + 1.
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.Pareto(1.0, 1.5));
  auto fit = FitPowerLaw(samples, 1.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, 2.5, 0.05);
  EXPECT_EQ(fit->tail_samples, 50000);
  EXPECT_LT(fit->ks_distance, 0.02);
}

TEST(PowerLawFitTest, AutoXminFindsTail) {
  // Mixture: uniform body below 5, Pareto tail above.
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Uniform(0.1, 5.0));
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Pareto(5.0, 1.2));
  auto fit = FitPowerLawAutoXmin(samples);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, 2.2, 0.25);
  EXPECT_GT(fit->xmin, 2.0);
}

TEST(PowerLawFitTest, ErrorsOnBadInput) {
  EXPECT_FALSE(FitPowerLaw({1, 2, 3}, 0.0).ok());
  EXPECT_FALSE(FitPowerLaw({1, 2, 3}, 100.0).ok());  // empty tail
  EXPECT_FALSE(FitPowerLawAutoXmin({1.0, 2.0}).ok());
}

TEST(PowerLawFitTest, CcdfOfFit) {
  PowerLawFit fit;
  fit.alpha = 2.0;
  fit.xmin = 1.0;
  EXPECT_EQ(PowerLawCcdf(fit, 0.5), 1.0);
  EXPECT_NEAR(PowerLawCcdf(fit, 10.0), 0.1, 1e-9);
}

TEST(PercentileTest, InterpolatesAndValidates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_EQ(*Percentile(v, 0), 10);
  EXPECT_EQ(*Percentile(v, 100), 40);
  EXPECT_NEAR(*Percentile(v, 50), 25, 1e-9);
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile(v, 101).ok());
}

// --------------------------------------------------------------- query log

TEST(QueryLogTest, PaperProfilesShape) {
  auto profiles = PaperCompanyProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  // Bigger firms: more queries, heavier tails (smaller alpha).
  EXPECT_LT(profiles[2].alpha, profiles[0].alpha);
  EXPECT_GT(profiles[2].queries_per_month,
            profiles[0].queries_per_month);
}

TEST(QueryLogTest, GeneratedLogMatchesProfile) {
  CompanyProfile profile{"test", 2.2, 0.5, 30000};
  Rng rng(21);
  QueryLog log = GenerateQueryLog(profile, rng);
  ASSERT_EQ(log.durations_seconds.size(), 30000u);
  ASSERT_EQ(log.bytes_scanned.size(), 30000u);
  for (double d : log.durations_seconds) EXPECT_GE(d, 0.5);
  // Refit recovers the generating alpha.
  auto fit = FitPowerLaw(log.durations_seconds, profile.xmin_seconds);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->alpha, profile.alpha, 0.1);
}

TEST(QueryLogTest, BytesCorrelateWithDuration) {
  CompanyProfile profile{"test", 2.0, 0.5, 20000};
  Rng rng(23);
  QueryLog log = GenerateQueryLog(profile, rng);
  // Rank correlation proxy: mean bytes of the slowest decile should far
  // exceed mean bytes of the fastest decile.
  std::vector<size_t> index(log.durations_seconds.size());
  for (size_t i = 0; i < index.size(); ++i) index[i] = i;
  std::sort(index.begin(), index.end(), [&](size_t a, size_t b) {
    return log.durations_seconds[a] < log.durations_seconds[b];
  });
  size_t decile = index.size() / 10;
  double fast = 0, slow = 0;
  for (size_t i = 0; i < decile; ++i) {
    fast += static_cast<double>(log.bytes_scanned[index[i]]);
    slow += static_cast<double>(
        log.bytes_scanned[index[index.size() - 1 - i]]);
  }
  EXPECT_GT(slow, 5 * fast);
}

TEST(QueryLogTest, CalibrationHitsTargetPercentile) {
  double alpha = 2.3;
  double target = 750e6;  // the paper's P80 = 750 MB
  double xmin = CalibrateXminForPercentile(alpha, 80.0, target);
  // Sample and verify the empirical P80 lands near the target.
  Rng rng(29);
  std::vector<double> bytes;
  for (int i = 0; i < 200000; ++i) {
    bytes.push_back(rng.Pareto(xmin, alpha - 1.0));
  }
  double p80 = *Percentile(bytes, 80.0);
  EXPECT_NEAR(p80 / target, 1.0, 0.05);
}

// --------------------------------------------------------------- cost curve

TEST(CostCurveTest, MonotoneAndEndsAtOne) {
  Rng rng(31);
  std::vector<uint64_t> bytes;
  for (int i = 0; i < 50000; ++i) {
    bytes.push_back(static_cast<uint64_t>(rng.Pareto(1e6, 1.3)));
  }
  auto curve = ComputeCostCurve(bytes);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 100u);
  EXPECT_NEAR(curve->back().cumulative_cost_share, 1.0, 1e-9);
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_GE((*curve)[i].cumulative_cost_share,
              (*curve)[i - 1].cumulative_cost_share);
    EXPECT_GE((*curve)[i].bytes_at_percentile,
              (*curve)[i - 1].bytes_at_percentile);
  }
}

TEST(CostCurveTest, EmptyWorkloadRejected) {
  EXPECT_FALSE(ComputeCostCurve({}).ok());
}

TEST(CostCurveTest, UniformWorkloadIsLinear) {
  std::vector<uint64_t> bytes(1000, 1000000);
  auto curve = ComputeCostCurve(bytes);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR((*curve)[49].cumulative_cost_share, 0.5, 0.02);
}

// ----------------------------------------------------------------- taxigen

TEST(TaxiGenTest, GeneratesRequestedShape) {
  TaxiGenOptions options;
  options.rows = 5000;
  auto table = GenerateTaxiTable(options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 5000);
  EXPECT_EQ(table->num_columns(), 8);
  EXPECT_TRUE(table->schema().HasField("pickup_at"));
  EXPECT_TRUE(table->schema().HasField("fare"));
}

TEST(TaxiGenTest, DeterministicInSeed) {
  TaxiGenOptions options;
  options.rows = 100;
  auto a = GenerateTaxiTable(options);
  auto b = GenerateTaxiTable(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->GetValue(i, 6), b->GetValue(i, 6));  // fare column
  }
  options.seed = 43;
  auto c = GenerateTaxiTable(options);
  bool any_diff = false;
  for (int64_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = !(a->GetValue(i, 6) == c->GetValue(i, 6));
  }
  EXPECT_TRUE(any_diff);
}

TEST(TaxiGenTest, TimestampsInRangeAndLocationsBounded) {
  TaxiGenOptions options;
  options.rows = 2000;
  options.start_date = "2019-04-01";
  options.days = 30;
  options.num_locations = 50;
  auto table = GenerateTaxiTable(options);
  ASSERT_TRUE(table.ok());
  auto pickup_at = *table->GetColumnByName("pickup_at");
  auto loc = *table->GetColumnByName("pickup_location_id");
  int64_t start = 1554076800000000LL;
  int64_t end = start + 30ll * 86400 * 1000000;
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    int64_t ts = pickup_at->GetValue(i).int64_value();
    EXPECT_GE(ts, start);
    EXPECT_LT(ts, end);
    int64_t l = loc->GetValue(i).int64_value();
    EXPECT_GE(l, 1);
    EXPECT_LE(l, 50);
  }
}

TEST(TaxiGenTest, NullRateRoughlyHonored) {
  TaxiGenOptions options;
  options.rows = 20000;
  options.null_passenger_rate = 0.05;
  auto table = GenerateTaxiTable(options);
  auto pax = *table->GetColumnByName("passenger_count");
  double rate = static_cast<double>(pax->null_count()) / 20000.0;
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(TaxiGenTest, RejectsBadOptions) {
  TaxiGenOptions options;
  options.rows = -1;
  EXPECT_FALSE(GenerateTaxiTable(options).ok());
  options.rows = 10;
  options.start_date = "not a date";
  EXPECT_FALSE(GenerateTaxiTable(options).ok());
}

}  // namespace
}  // namespace bauplan::workload
