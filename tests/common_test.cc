#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace bauplan {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status st = Status::IOError("disk full").WithContext("writing manifest");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "writing manifest: disk full");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("ctx");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, AllFactoriesMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  BAUPLAN_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(10), 20);
  EXPECT_FALSE(DoublePositive(0).ok());
}

Result<std::vector<int>> MakeVector() {
  return std::vector<int>{1, 2, 3};
}

TEST(ResultTest, RangeForOverTemporaryIsSafe) {
  // `*rvalue` returns by value, so the loop binds a lifetime-extended
  // temporary instead of dangling into the destroyed Result.
  int sum = 0;
  for (int v : *MakeVector()) sum += v;
  EXPECT_EQ(sum, 6);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "/"), "x/y/z");
  EXPECT_EQ(StrSplit("x/y/z", '/'), parts);
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello\t\n"), "hello");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ParseInt64Strict) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, std::numeric_limits<int64_t>::max());

  // Everything atoi/atoll silently mangled is a hard error: junk,
  // trailing junk, whitespace, overflow, empty.
  int64_t keep = 7;
  EXPECT_FALSE(ParseInt64("abc", &keep));
  EXPECT_FALSE(ParseInt64("12abc", &keep));
  EXPECT_FALSE(ParseInt64(" 12", &keep));
  EXPECT_FALSE(ParseInt64("12 ", &keep));
  EXPECT_FALSE(ParseInt64("", &keep));
  EXPECT_FALSE(ParseInt64("+12", &keep));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &keep));  // max + 1
  EXPECT_FALSE(ParseInt64("1.5", &keep));
  EXPECT_EQ(keep, 7);  // failures never clobber the output
}

TEST(StringsTest, ParseDoubleStrict) {
  double v = -1.0;
  EXPECT_TRUE(ParseDouble("1.5", &v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("42", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);

  double keep = 7.0;
  EXPECT_FALSE(ParseDouble("", &keep));
  EXPECT_FALSE(ParseDouble("x", &keep));
  EXPECT_FALSE(ParseDouble("1.5x", &keep));
  EXPECT_FALSE(ParseDouble(" 1.5", &keep));
  EXPECT_FALSE(ParseDouble("nan", &keep));
  EXPECT_FALSE(ParseDouble("inf", &keep));
  EXPECT_DOUBLE_EQ(keep, 7.0);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("s3://bucket/key", "s3://"));
  EXPECT_FALSE(StartsWith("s3", "s3://"));
  EXPECT_TRUE(EndsWith("data.bpf", ".bpf"));
  EXPECT_FALSE(EndsWith("bpf", "data.bpf"));
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("rows=", 42, " frac=", 0.5), "rows=42 frac=0.5");
}

TEST(StringsTest, EscapeJsonEscapesQuotesAndBackslashes) {
  EXPECT_EQ(EscapeJson("plain"), "plain");
  EXPECT_EQ(EscapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJson("\\\""), "\\\\\\\"");
}

TEST(StringsTest, EscapeJsonEscapesControlCharacters) {
  EXPECT_EQ(EscapeJson("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeJson("cr\rlf"), "cr\\rlf");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(EscapeJson(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(EscapeJson(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(750ull * 1024 * 1024), "750.0 MiB");
}

TEST(StringsTest, FormatDuration) {
  EXPECT_EQ(FormatDurationMicros(320), "320 us");
  EXPECT_EQ(FormatDurationMicros(4100), "4.1 ms");
  EXPECT_EQ(FormatDurationMicros(2700000), "2.70 s");
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("bauplan"), Fnv1a64("bauplan"));
  EXPECT_NE(Fnv1a64("bauplan"), Fnv1a64("bauplan!"));
}

TEST(HashTest, EmptyInputHasCanonicalBasis) {
  EXPECT_EQ(Fnv1a64("", 0), 0xCBF29CE484222325ULL);
}

TEST(HashTest, CombineIsOrderDependent) {
  uint64_t a = Fnv1a64("a"), b = Fnv1a64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashTest, FingerprintIs16HexChars) {
  std::string fp = FingerprintHex("SELECT * FROM trips");
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(fp, FingerprintHex("SELECT * FROM trips"));
}

// ---------------------------------------------------------------- Clock

TEST(ClockTest, SimClockAdvancesOnlyWhenAsked) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(ClockTest, StopwatchMeasuresSimTime) {
  SimClock clock;
  Stopwatch sw(&clock);
  clock.AdvanceMicros(1234);
  EXPECT_EQ(sw.ElapsedMicros(), 1234u);
  sw.Reset();
  EXPECT_EQ(sw.ElapsedMicros(), 0u);
}

TEST(ClockTest, WallClockIsMonotonic) {
  WallClock clock;
  uint64_t a = clock.NowMicros();
  uint64_t b = clock.NowMicros();
  EXPECT_GE(b, a);
}

TEST(ClockTest, FormatTimestamp) {
  // 2019-04-01 00:00:00 UTC == 1554076800 seconds.
  EXPECT_EQ(FormatTimestampMicros(1554076800ull * 1000000),
            "2019-04-01T00:00:00Z");
}

TEST(ForkableClockTest, PassesThroughWhenUnforked) {
  SimClock base(100);
  ForkableClock clock(&base);
  EXPECT_FALSE(clock.ForkActive());
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.AdvanceMicros(50);
  EXPECT_EQ(base.NowMicros(), 150u);
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(ForkableClockTest, ForkIsPrivateAndBaseUntouched) {
  SimClock base(1000);
  ForkableClock clock(&base);
  clock.BeginFork(5000);
  EXPECT_TRUE(clock.ForkActive());
  EXPECT_EQ(clock.NowMicros(), 5000u);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 5250u);
  // The base never saw the forked advance.
  EXPECT_EQ(base.NowMicros(), 1000u);
  EXPECT_EQ(clock.EndFork(), 5250u);
  EXPECT_FALSE(clock.ForkActive());
  EXPECT_EQ(clock.NowMicros(), 1000u);
}

TEST(ForkableClockTest, ForksNest) {
  SimClock base;
  ForkableClock clock(&base);
  clock.BeginFork(10);
  clock.AdvanceMicros(5);
  clock.BeginFork(100);  // inner fork shadows the outer
  clock.AdvanceMicros(7);
  EXPECT_EQ(clock.EndFork(), 107u);
  // Back on the outer fork, which kept its own time.
  EXPECT_EQ(clock.NowMicros(), 15u);
  EXPECT_EQ(clock.EndFork(), 15u);
  EXPECT_EQ(base.NowMicros(), 0u);
}

TEST(ForkableClockTest, ForksAreThreadLocal) {
  SimClock base;
  ForkableClock clock(&base);
  clock.BeginFork(1000);
  clock.AdvanceMicros(1);
  uint64_t other_thread_now = 0;
  bool other_thread_forked = true;
  std::thread t([&] {
    // A fresh thread has no fork: it reads the base clock.
    other_thread_forked = clock.ForkActive();
    clock.AdvanceMicros(42);
    other_thread_now = clock.NowMicros();
  });
  t.join();
  EXPECT_FALSE(other_thread_forked);
  EXPECT_EQ(other_thread_now, 42u);
  // This thread's fork never saw the other thread's advance.
  EXPECT_EQ(clock.EndFork(), 1001u);
  EXPECT_EQ(base.NowMicros(), 42u);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ParetoRespectsXmin) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoMeanMatchesTheory) {
  // For alpha > 1, E[X] = alpha * xmin / (alpha - 1).
  Rng rng(13);
  const double xmin = 1.0, alpha = 3.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Pareto(xmin, alpha);
  double mean = sum / n;
  EXPECT_NEAR(mean, alpha * xmin / (alpha - 1), 0.03);
}

TEST(RngTest, ExponentialMeanMatchesTheory) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatchTheory) {
  Rng rng(19);
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0;
  for (uint64_t k = 1; k <= 100; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankOneIsMostPopular) {
  ZipfDistribution zipf(1000, 1.1);
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(2));
  EXPECT_GT(zipf.Pmf(2), zipf.Pmf(100));
}

TEST(ZipfTest, SamplesFollowPmf) {
  ZipfDistribution zipf(50, 1.0);
  Rng rng(23);
  std::vector<int> counts(51, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, zipf.Pmf(1), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[10]) / n, zipf.Pmf(10), 0.01);
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(1u << 30);
  w.PutU64(1ull << 60);
  w.PutI32(-5);
  w.PutI64(-123456789012345);
  w.PutDouble(3.25);
  w.PutBool(true);
  w.PutString("hello world");

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 1u << 30);
  EXPECT_EQ(*r.GetU64(), 1ull << 60);
  EXPECT_EQ(*r.GetI32(), -5);
  EXPECT_EQ(*r.GetI64(), -123456789012345);
  EXPECT_EQ(*r.GetDouble(), 3.25);
  EXPECT_EQ(*r.GetBool(), true);
  EXPECT_EQ(*r.GetString(), "hello world");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  BinaryWriter w;
  w.PutU32(5);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetU64().ok());
}

TEST(BytesTest, TruncatedStringFails) {
  BinaryWriter w;
  w.PutU32(100);  // claims 100 bytes follow, but none do
  BinaryReader r(w.buffer());
  auto res = r.GetString();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsIOError());
}

TEST(BytesTest, SeekAndSkip) {
  BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  w.PutU32(3);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(*r.GetU32(), 2u);
  ASSERT_TRUE(r.SeekTo(0).ok());
  EXPECT_EQ(*r.GetU32(), 1u);
  EXPECT_FALSE(r.SeekTo(100).ok());
  EXPECT_FALSE(r.Skip(100).ok());
}

}  // namespace
}  // namespace bauplan
