// Memory-budgeted spill execution coverage: bit-identity of the spilled
// join/sort/aggregate paths against the unlimited in-memory engine across
// budgets and thread counts, spill edge cases (sub-morsel budgets, null
// join keys, skewed keys that defeat re-partitioning, external sort
// stability), exec.spill.* accounting, and the empty-input edges of the
// kernels the spill merge path leans on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "columnar/serialize.h"
#include "common/strings.h"
#include "observability/metrics.h"
#include "sql/engine.h"
#include "storage/object_store.h"

namespace bauplan {
namespace {

using columnar::ArrayPtr;
using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using sql::ExecOptions;
using sql::QueryOptions;
using sql::QueryResult;

// ---------------------------------------------------------------- fixture

class SpillTest : public ::testing::Test {
 protected:
  SpillTest() {
    // Fact table: enough rows and string payload that modest budgets
    // force every operator to spill. Deterministic contents (no RNG) so
    // failures reproduce exactly.
    Int64Builder id, key, qty;
    DoubleBuilder amount;
    StringBuilder tag;
    double nan = std::numeric_limits<double>::quiet_NaN();
    for (int64_t i = 0; i < 20000; ++i) {
      id.Append(i);
      if (i % 97 == 0) {
        key.AppendNull();
      } else {
        key.Append(i % 211);
      }
      qty.Append((i * 7) % 13);
      if (i % 53 == 0) {
        amount.Append(nan);
      } else {
        amount.Append(static_cast<double>((i * 31) % 997) / 7.0);
      }
      tag.Append(StrCat("tag_", i % 37, "_", std::string(i % 11, 'x')));
    }
    provider_.AddTable(
        "facts",
        *Table::Make(Schema({{"id", TypeId::kInt64, false},
                             {"key", TypeId::kInt64, true},
                             {"qty", TypeId::kInt64, false},
                             {"amount", TypeId::kDouble, true},
                             {"tag", TypeId::kString, false}}),
                     {id.Finish(), key.Finish(), qty.Finish(),
                      amount.Finish(), tag.Finish()}));

    // Dim side: covers part of the key space, has duplicate and null keys.
    Int64Builder dkey;
    StringBuilder dname;
    for (int64_t i = 0; i < 150; ++i) {
      dkey.Append(i % 120);  // keys 0..119, 30 of them twice
      dname.Append(StrCat("dim_", i));
    }
    dkey.AppendNull();
    dname.Append("dim_null");
    provider_.AddTable(
        "dims", *Table::Make(Schema({{"dkey", TypeId::kInt64, true},
                                     {"dname", TypeId::kString, false}}),
                             {dkey.Finish(), dname.Finish()}));
  }

  Result<QueryResult> Run(std::string_view sql, int64_t budget,
                          int threads = 1,
                          ExecOptions::Engine engine =
                              ExecOptions::Engine::kVectorized,
                          observability::MetricsRegistry* metrics = nullptr,
                          storage::ObjectStore* spill_store = nullptr) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.morsel_rows = 1024;  // multi-morsel paths on 20k rows
    options.exec.memory_budget_bytes = budget;
    options.exec.metrics = metrics;
    options.exec.spill_store = spill_store;
    return sql::RunQuery(sql, provider_, &provider_, options);
  }

  /// The tentpole guarantee, checked at the byte level: serialized result
  /// tables must be identical, not merely row-equal.
  void ExpectBitIdentical(const Table& a, const Table& b,
                          const std::string& context) {
    Bytes ba = columnar::SerializeTable(a);
    Bytes bb = columnar::SerializeTable(b);
    ASSERT_EQ(ba.size(), bb.size()) << context;
    ASSERT_TRUE(ba == bb) << context;
  }

  sql::MemoryTableProvider provider_;
};

// --------------------------------------------- bit-identity battery

// Every operator that can spill, exercised across budgets (from "spill
// everything" to "almost fits") and thread counts, must produce result
// bytes identical to the unlimited in-memory path.
TEST_F(SpillTest, SpilledResultsBitIdenticalAcrossBudgetsAndThreads) {
  const char* kQueries[] = {
      // Grace join (inner, string payload both sides).
      "SELECT f.id, f.tag, d.dname FROM facts f "
      "JOIN dims d ON f.key = d.dkey ORDER BY f.id, d.dname",
      // Grace LEFT join: unmatched and null-key probe rows survive.
      "SELECT f.id, d.dname FROM facts f "
      "LEFT JOIN dims d ON f.key = d.dkey ORDER BY f.id, d.dname",
      // External sort, multi-key with nulls and NaNs in the keys.
      "SELECT id, amount, tag FROM facts ORDER BY amount DESC, tag, id",
      // External sort fused with LIMIT (top-N per run + bounded merge).
      "SELECT id, amount FROM facts ORDER BY amount, id LIMIT 321",
      // Spilled aggregation: all agg kinds over many groups, null keys.
      "SELECT key, COUNT(*) AS n, SUM(qty) AS sq, SUM(amount) AS sa, "
      "AVG(amount) AS avg_a, MIN(tag) AS lo, MAX(tag) AS hi, "
      "COUNT(DISTINCT qty) AS dq FROM facts GROUP BY key",
  };
  const int64_t kBudgets[] = {1, 16 * 1024, 256 * 1024};
  for (const char* sql : kQueries) {
    auto unlimited = Run(sql, /*budget=*/0);
    ASSERT_TRUE(unlimited.ok()) << sql << ": "
                                << unlimited.status().ToString();
    EXPECT_EQ(unlimited->stats.spill_partitions, 0) << sql;
    for (int64_t budget : kBudgets) {
      for (int threads : {1, 4}) {
        auto spilled = Run(sql, budget, threads);
        ASSERT_TRUE(spilled.ok())
            << sql << " budget=" << budget << ": "
            << spilled.status().ToString();
        ExpectBitIdentical(
            unlimited->table, spilled->table,
            StrCat(sql, " budget=", budget, " threads=", threads));
      }
    }
  }
}

TEST_F(SpillTest, ScalarVectorizedSpilledAgree) {
  // The scalar engine ignores the budget; its row-at-a-time results pin
  // down semantics for the spilled vectorized paths.
  const char* sql =
      "SELECT key, COUNT(*) AS n, MIN(tag) AS lo FROM facts "
      "GROUP BY key ORDER BY n DESC, lo LIMIT 50";
  auto scalar = Run(sql, /*budget=*/1, 1, ExecOptions::Engine::kScalar);
  auto vectorized = Run(sql, /*budget=*/0);
  auto spilled = Run(sql, /*budget=*/1, 4);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  ASSERT_TRUE(vectorized.ok()) << vectorized.status().ToString();
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  ExpectBitIdentical(vectorized->table, spilled->table, sql);
  ASSERT_EQ(scalar->table.num_rows(), spilled->table.num_rows());
  for (int64_t r = 0; r < scalar->table.num_rows(); ++r) {
    EXPECT_EQ(scalar->table.GetValue(r, 0).ToString(),
              spilled->table.GetValue(r, 0).ToString())
        << "row " << r;
  }
}

// ------------------------------------------------------ spill edge cases

// A budget of one byte is smaller than any single morsel: every operator
// must still complete (partition sizing clamps, runs hold >= 1 row).
TEST_F(SpillTest, BudgetSmallerThanOneMorsel) {
  auto unlimited = Run(
      "SELECT f.key, COUNT(*) AS n FROM facts f "
      "JOIN dims d ON f.key = d.dkey GROUP BY f.key ORDER BY f.key",
      0);
  auto tiny = Run(
      "SELECT f.key, COUNT(*) AS n FROM facts f "
      "JOIN dims d ON f.key = d.dkey GROUP BY f.key ORDER BY f.key",
      1);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();
  ExpectBitIdentical(unlimited->table, tiny->table, "budget=1");
  EXPECT_GT(tiny->stats.spill_partitions, 0);
}

TEST_F(SpillTest, NullJoinKeysUnderSpill) {
  // facts has ~206 null keys; dims has one null-key row. Inner join
  // drops them all; LEFT join keeps the probe rows null-extended. The
  // Grace path sets null rows aside before partitioning, so both
  // answers must survive any budget.
  auto inner0 = Run("SELECT f.id FROM facts f JOIN dims d "
                    "ON f.key = d.dkey ORDER BY f.id", 0);
  auto inner1 = Run("SELECT f.id FROM facts f JOIN dims d "
                    "ON f.key = d.dkey ORDER BY f.id", 1, 4);
  ASSERT_TRUE(inner0.ok() && inner1.ok());
  ExpectBitIdentical(inner0->table, inner1->table, "inner null keys");

  auto left1 = Run("SELECT f.id, d.dname FROM facts f LEFT JOIN dims d "
                   "ON f.key = d.dkey", 1);
  ASSERT_TRUE(left1.ok());
  int64_t null_extended = 0;
  for (int64_t r = 0; r < left1->table.num_rows(); ++r) {
    if (left1->table.GetValue(r, 1).is_null()) ++null_extended;
  }
  // Null-key probe rows (207: every 97th of 20000) plus rows whose key
  // is outside the dim key range [0, 120) all come back unmatched.
  EXPECT_GT(null_extended, 206);
}

// A single repeated key defeats hash re-partitioning at every level; the
// recursion bound must stop splitting and join the partition in memory
// rather than recurse forever.
TEST_F(SpillTest, RecursiveRepartitionOnSkewedKeyTerminates) {
  Int64Builder skb;
  StringBuilder svb;
  for (int64_t i = 0; i < 3000; ++i) {
    skb.Append(42);  // one key for every row
    svb.Append(StrCat("payload_", i));
  }
  provider_.AddTable(
      "skew", *Table::Make(Schema({{"sk", TypeId::kInt64, false},
                                   {"sv", TypeId::kString, false}}),
                           {skb.Finish(), svb.Finish()}));
  const char* sql =
      "SELECT COUNT(*) AS n FROM skew a JOIN skew b ON a.sk = b.sk";
  auto unlimited = Run(sql, 0);
  auto spilled = Run(sql, 1);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(spilled->table.GetValue(0, 0).int64_value(), 3000 * 3000);
  ExpectBitIdentical(unlimited->table, spilled->table, sql);
}

// External sort must preserve the in-memory sort's stability: rows with
// equal keys stay in input order, across run boundaries.
TEST_F(SpillTest, ExternalSortIsStable) {
  auto unlimited =
      Run("SELECT id, qty FROM facts ORDER BY qty", 0);
  auto external =
      Run("SELECT id, qty FROM facts ORDER BY qty", 1);
  ASSERT_TRUE(unlimited.ok() && external.ok());
  ExpectBitIdentical(unlimited->table, external->table, "stability");
  // Within each qty group (only 13 distinct values), ids must ascend —
  // the stable order of an already-id-ordered input.
  int64_t prev_qty = -1, prev_id = -1;
  for (int64_t r = 0; r < external->table.num_rows(); ++r) {
    int64_t q = external->table.GetValue(r, 1).int64_value();
    int64_t i = external->table.GetValue(r, 0).int64_value();
    if (q == prev_qty) {
      EXPECT_GT(i, prev_id) << "row " << r;
    }
    prev_qty = q;
    prev_id = i;
  }
}

// ------------------------------------------------------------ accounting

TEST_F(SpillTest, SpillCountersAndStoreDrainage) {
  observability::MetricsRegistry metrics;
  storage::MemoryObjectStore store;
  auto r = Run(
      "SELECT f.key, COUNT(*) AS n FROM facts f JOIN dims d "
      "ON f.key = d.dkey GROUP BY f.key ORDER BY n DESC, f.key",
      16 * 1024, 2, ExecOptions::Engine::kVectorized, &metrics, &store);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.spill_partitions, 0);
  EXPECT_GT(r->stats.spill_bytes_written, 0);
  // Single-read scratch: everything written is read back exactly once.
  EXPECT_EQ(r->stats.spill_bytes_read, r->stats.spill_bytes_written);
  EXPECT_EQ(metrics.GetCounter("exec.spill.partitions")->Value(),
            r->stats.spill_partitions);
  EXPECT_EQ(metrics.GetCounter("exec.spill.bytes_written")->Value(),
            r->stats.spill_bytes_written);
  EXPECT_EQ(metrics.GetCounter("exec.spill.bytes_read")->Value(),
            r->stats.spill_bytes_read);
  // Spill objects are deleted after their single read.
  auto leftover = store.List("");
  ASSERT_TRUE(leftover.ok());
  EXPECT_TRUE(leftover->empty());
}

TEST_F(SpillTest, UnlimitedBudgetNeverTouchesSpillStore) {
  storage::MemoryObjectStore store;
  auto r = Run("SELECT key, COUNT(*) AS n FROM facts GROUP BY key", 0, 1,
               ExecOptions::Engine::kVectorized, nullptr, &store);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.spill_partitions, 0);
  EXPECT_EQ(r->stats.spill_bytes_written, 0);
  auto contents = store.List("");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->empty());
}

// A top-N external sort stops merging early; the unread tail of every
// run must still be swept from the store.
TEST_F(SpillTest, ExternalTopNSweepsUnreadRuns) {
  storage::MemoryObjectStore store;
  auto r = Run("SELECT id FROM facts ORDER BY amount, id LIMIT 5",
               8 * 1024, 1, ExecOptions::Engine::kVectorized, nullptr,
               &store);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.num_rows(), 5);
  EXPECT_GT(r->stats.spill_partitions, 0);
  auto leftover = store.List("");
  ASSERT_TRUE(leftover.ok());
  EXPECT_TRUE(leftover->empty());
}

// ----------------------------------- kernel edges under the merge path

TEST(SpillKernelEdgeTest, ConcatZeroTablesIsAnErrorNotACrash) {
  auto result = columnar::ConcatTables({});
  EXPECT_FALSE(result.ok());
}

TEST(SpillKernelEdgeTest, SliceTableAtNumRowsYieldsEmpty) {
  Int64Builder b;
  StringBuilder s;
  for (int64_t i = 0; i < 5; ++i) {
    b.Append(i);
    s.Append(StrCat("v", i));
  }
  auto table = Table::Make(Schema({{"a", TypeId::kInt64, false},
                                   {"s", TypeId::kString, false}}),
                           {b.Finish(), s.Finish()});
  ASSERT_TRUE(table.ok());
  auto tail = columnar::SliceTable(*table, 5, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->num_rows(), 0);
  // Huge length must clamp, not overflow offset + length.
  auto huge = columnar::SliceTable(
      *table, 3, std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->num_rows(), 2);
  EXPECT_FALSE(columnar::SliceTable(*table, 6, 1).ok());  // past the end
}

TEST(SpillKernelEdgeTest, EmptyStringArrayRoundTripsThroughSerialize) {
  // A StringArray built with zero offsets (not the canonical single 0)
  // used to fail deserialization with "offsets count mismatch".
  auto raw = std::make_shared<columnar::StringArray>(
      std::string(), std::vector<uint32_t>{}, std::vector<uint8_t>{}, 0);
  ASSERT_EQ(raw->length(), 0);
  Bytes payload;
  {
    BinaryWriter w;
    columnar::SerializeArray(*raw, &w);
    payload = w.TakeBuffer();
  }
  BinaryReader reader(payload);
  auto back = columnar::DeserializeArray(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->length(), 0);
  EXPECT_EQ((*back)->type(), TypeId::kString);
}

}  // namespace
}  // namespace bauplan
