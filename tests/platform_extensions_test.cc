// Tests for the platform extensions beyond the paper's core: the audit
// trail (Full Auditability principle), the commit-keyed query result
// cache (section 5 future work), and the CLI project loader.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "cli/project_loader.h"
#include "columnar/builder.h"
#include "common/clock.h"
#include "core/audit_log.h"
#include "core/bauplan.h"
#include "core/query_cache.h"
#include "pipeline/project.h"
#include "storage/object_store.h"
#include "workload/taxi_gen.h"

namespace bauplan {
namespace {

// ----------------------------------------------------------- audit log

TEST(AuditLogTest, RecordsAndTails) {
  storage::MemoryObjectStore store;
  SimClock clock(5000);
  core::AuditLog log(&store, &clock);
  ASSERT_TRUE(log.Record("alice", "query", "main", "SELECT 1", "ok").ok());
  clock.AdvanceMicros(100);
  ASSERT_TRUE(log.Record("bob", "merge", "main", "from feat", "ok").ok());

  auto entries = log.Tail();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  // Newest first.
  EXPECT_EQ((*entries)[0].actor, "bob");
  EXPECT_EQ((*entries)[0].sequence, 2);
  EXPECT_EQ((*entries)[1].operation, "query");
  EXPECT_EQ((*entries)[1].detail, "SELECT 1");
  EXPECT_LT((*entries)[1].timestamp_micros,
            (*entries)[0].timestamp_micros);
}

TEST(AuditLogTest, TailLimit) {
  storage::MemoryObjectStore store;
  SimClock clock(0);
  core::AuditLog log(&store, &clock);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Record("a", "op", "r", std::to_string(i), "ok").ok());
  }
  auto last_two = log.Tail(2);
  ASSERT_TRUE(last_two.ok());
  ASSERT_EQ(last_two->size(), 2u);
  EXPECT_EQ((*last_two)[0].detail, "4");
  EXPECT_EQ((*last_two)[1].detail, "3");
}

TEST(AuditLogTest, SequenceSurvivesReopen) {
  storage::MemoryObjectStore store;
  SimClock clock(0);
  {
    core::AuditLog log(&store, &clock);
    ASSERT_TRUE(log.Record("a", "op", "r", "first", "ok").ok());
  }
  core::AuditLog reopened(&store, &clock);
  ASSERT_TRUE(reopened.Record("a", "op", "r", "second", "ok").ok());
  auto entries = reopened.Tail();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].sequence, 2);
}

TEST(AuditLogTest, PlatformVerbsAreRecorded) {
  storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  auto platform = core::Bauplan::Open(&store, &clock);
  ASSERT_TRUE(platform.ok());
  core::Bauplan& bp = **platform;

  workload::TaxiGenOptions gen;
  gen.rows = 200;
  gen.start_date = "2019-04-01";
  auto taxi = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(bp.CreateTable("main", "taxi_table", taxi->schema()).ok());
  ASSERT_TRUE(bp.WriteTable("main", "taxi_table", *taxi).ok());
  ASSERT_TRUE(bp.CreateBranch("feat", "main").ok());
  ASSERT_TRUE(bp.Query("SELECT COUNT(*) AS n FROM taxi_table").ok());
  ASSERT_TRUE(bp.Run(pipeline::MakePaperTaxiPipeline(1.0), "feat").ok());
  ASSERT_TRUE(bp.MergeBranch("feat", "main").ok());
  // A failing query is recorded too.
  (void)bp.Query("SELECT * FROM nope");

  auto entries = bp.audit_log().Tail();
  ASSERT_TRUE(entries.ok());
  std::map<std::string, int> by_op;
  bool saw_failure = false;
  for (const auto& entry : *entries) {
    by_op[entry.operation]++;
    if (entry.outcome != "ok") saw_failure = true;
  }
  EXPECT_GE(by_op["create_table"], 1);
  EXPECT_GE(by_op["write_table"], 1);
  EXPECT_GE(by_op["create_branch"], 1);
  EXPECT_GE(by_op["query"], 2);
  EXPECT_GE(by_op["run"], 1);
  EXPECT_GE(by_op["merge"], 1);
  EXPECT_TRUE(saw_failure);
}

// ---------------------------------------------------------- query cache

TEST(QueryCacheTest, HitOnSameSqlAndCommit) {
  core::QueryResultCache cache;
  columnar::Int64Builder b;
  b.Append(42);
  auto table = *columnar::Table::Make(
      columnar::Schema({{"n", columnar::TypeId::kInt64, false}}),
      {b.Finish()});
  cache.Insert("SELECT 1", "commit_a", table);

  columnar::Table out;
  EXPECT_TRUE(cache.Lookup("SELECT 1", "commit_a", &out));
  EXPECT_EQ(out.GetValue(0, 0), columnar::Value::Int64(42));
  EXPECT_FALSE(cache.Lookup("SELECT 1", "commit_b", &out));
  EXPECT_FALSE(cache.Lookup("SELECT 2", "commit_a", &out));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  core::QueryResultCache cache(0);
  columnar::Int64Builder b;
  b.Append(1);
  auto table = *columnar::Table::Make(
      columnar::Schema({{"n", columnar::TypeId::kInt64, false}}),
      {b.Finish()});
  cache.Insert("q", "c", table);
  columnar::Table out;
  EXPECT_FALSE(cache.Lookup("q", "c", &out));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(QueryCacheTest, LruEviction) {
  columnar::Int64Builder b;
  for (int i = 0; i < 1000; ++i) b.Append(i);
  auto table = *columnar::Table::Make(
      columnar::Schema({{"n", columnar::TypeId::kInt64, false}}),
      {b.Finish()});
  uint64_t one = static_cast<uint64_t>(table.EstimatedBytes());
  core::QueryResultCache cache(one * 2 + 100);
  cache.Insert("a", "c", table);
  cache.Insert("b", "c", table);
  columnar::Table out;
  ASSERT_TRUE(cache.Lookup("a", "c", &out));  // refresh a
  cache.Insert("d", "c", table);              // evicts b
  EXPECT_TRUE(cache.Lookup("a", "c", &out));
  EXPECT_FALSE(cache.Lookup("b", "c", &out));
  EXPECT_TRUE(cache.Lookup("d", "c", &out));
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(QueryCacheTest, PlatformCachesUntilCommitMoves) {
  storage::MemoryObjectStore store;
  SimClock clock(1700000000000000ull);
  auto platform = core::Bauplan::Open(&store, &clock);
  ASSERT_TRUE(platform.ok());
  core::Bauplan& bp = **platform;
  workload::TaxiGenOptions gen;
  gen.rows = 300;
  auto taxi = workload::GenerateTaxiTable(gen);
  ASSERT_TRUE(bp.CreateTable("main", "taxi_table", taxi->schema()).ok());
  ASSERT_TRUE(bp.WriteTable("main", "taxi_table", *taxi).ok());

  const char* sql = "SELECT COUNT(*) AS n FROM taxi_table";
  auto first = bp.Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  auto second = bp.Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->table.GetValue(0, 0), first->table.GetValue(0, 0));
  EXPECT_EQ(bp.query_cache_stats().hits, 1);

  // A write moves the branch head: the cache must not serve stale data.
  gen.seed = 9;
  ASSERT_TRUE(bp.WriteTable("main", "taxi_table",
                            *workload::GenerateTaxiTable(gen)).ok());
  auto third = bp.Query(sql);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->from_cache);
  EXPECT_EQ(third->table.GetValue(0, 0), columnar::Value::Int64(600));
}

// --------------------------------------------------------- project loader

class ProjectLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bauplan_loader_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(ProjectLoaderTest, LoadsSqlAndExpectations) {
  WriteFile("trips.sql", "SELECT * FROM taxi_table\n");
  WriteFile("pickups.sql", "SELECT * FROM trips\n");
  WriteFile("expectations.conf",
            "# comment line\n"
            "\n"
            "trips_expectation: mean(count) > 10 | requires: "
            "pandas==2.0.0,numpy==1.26\n");
  auto project = cli::LoadProjectFromDir(dir_.string());
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  EXPECT_EQ(project->nodes().size(), 3u);
  const auto* expectation = project->FindNode("trips_expectation");
  ASSERT_NE(expectation, nullptr);
  EXPECT_EQ(expectation->requirements.ToString(),
            "numpy==1.26,pandas==2.0.0");
  EXPECT_EQ(expectation->code, "mean(count) > 10");
}

TEST_F(ProjectLoaderTest, ErrorsOnBadExpectationLine) {
  WriteFile("a.sql", "SELECT * FROM t\n");
  WriteFile("expectations.conf", "no colon here\n");
  EXPECT_FALSE(cli::LoadProjectFromDir(dir_.string()).ok());
}

TEST_F(ProjectLoaderTest, ErrorsOnEmptyDirAndMissingDir) {
  EXPECT_TRUE(
      cli::LoadProjectFromDir(dir_.string()).status().IsNotFound());
  EXPECT_TRUE(cli::LoadProjectFromDir("/no/such/dir").status()
                  .IsNotFound());
}

TEST_F(ProjectLoaderTest, DemoRoundTrips) {
  ASSERT_TRUE(cli::WriteDemoProject(dir_.string(), 7.5).ok());
  auto project = cli::LoadProjectFromDir(dir_.string());
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  EXPECT_EQ(project->nodes().size(), 3u);
  // Threshold survived the file round trip.
  EXPECT_NE(project->FindNode("trips_expectation")->code.find("7.5"),
            std::string::npos);
  // Node-for-node identical to the canonical pipeline (fingerprints
  // differ only by project name and file ordering).
  auto canonical = pipeline::MakePaperTaxiPipeline(7.5);
  for (const auto& node : canonical.nodes()) {
    const auto* loaded = project->FindNode(node.name);
    ASSERT_NE(loaded, nullptr) << node.name;
    EXPECT_EQ(loaded->code, node.code) << node.name;
    EXPECT_EQ(loaded->requirements.ToString(),
              node.requirements.ToString());
  }
}

}  // namespace
}  // namespace bauplan
