#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "common/clock.h"
#include "storage/object_store.h"
#include "table/maintenance.h"
#include "table/table_ops.h"
#include "workload/taxi_gen.h"

namespace bauplan::table {
namespace {

using columnar::Table;
using columnar::Value;

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest() : ops_(&store_, &clock_), maint_(&ops_, &store_) {}

  /// Creates an unpartitioned taxi table built from `appends` appends of
  /// `rows` rows each; returns the final metadata key.
  std::string BuildTable(int appends, int64_t rows,
                         PartitionSpec spec = {}) {
    workload::TaxiGenOptions gen;
    gen.rows = rows;
    auto schema = workload::GenerateTaxiTable(gen)->schema();
    std::string key = *ops_.CreateTable("taxi_table", schema, spec);
    for (int i = 0; i < appends; ++i) {
      gen.seed = static_cast<uint64_t>(i + 1);
      clock_.AdvanceMicros(1000000);
      key = *ops_.Append(key, *workload::GenerateTaxiTable(gen));
    }
    return key;
  }

  int64_t CountRows(const std::string& key) {
    return ops_.ScanTable(key)->num_rows();
  }

  storage::MemoryObjectStore store_;
  SimClock clock_{1000000};
  TableOps ops_;
  TableMaintenance maint_;
};

TEST_F(MaintenanceTest, CompactMergesFragmentedPartitions) {
  std::string key = BuildTable(5, 200);  // 5 files, one partition
  auto before = ops_.LoadMetadata(key);
  ASSERT_TRUE(before.ok());

  auto result = maint_.CompactFiles(key);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->compacted);
  EXPECT_EQ(result->files_before, 5);
  EXPECT_EQ(result->files_after, 1);
  EXPECT_GT(result->bytes_rewritten, 0);
  EXPECT_NE(result->metadata_key, key);

  // Same logical contents, fewer files.
  EXPECT_EQ(CountRows(result->metadata_key), 1000);
  auto after = ops_.LoadMetadata(result->metadata_key);
  ScanPlan plan = *ops_.PlanScan(*after, ScanOptions());
  EXPECT_EQ(static_cast<int>(plan.files.size()), 1);
  EXPECT_EQ(after->CurrentSnapshot()->operation, "replace");

  // Time travel to the pre-compaction snapshot still works.
  ScanOptions old_snap;
  old_snap.snapshot_id = before->current_snapshot_id;
  auto old_data = ops_.ScanTable(result->metadata_key, old_snap);
  ASSERT_TRUE(old_data.ok());
  EXPECT_EQ(old_data->num_rows(), 1000);
}

TEST_F(MaintenanceTest, CompactRespectsPartitions) {
  PartitionSpec spec({{"zone", Transform::kIdentity, 0}});
  std::string key = BuildTable(4, 500, spec);
  auto result = maint_.CompactFiles(key);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compacted);
  auto after = ops_.LoadMetadata(result->metadata_key);
  ScanPlan plan = *ops_.PlanScan(*after, ScanOptions());
  // One file per zone after compaction, and pruning still works.
  std::set<std::string> partitions;
  for (const auto& file : plan.files) {
    ASSERT_EQ(file.partition.size(), 1u);
    EXPECT_TRUE(partitions.insert(file.partition[0].ToString()).second)
        << "partition appears in more than one file";
  }
  ScanOptions prune;
  prune.predicates = {{"zone", format::CompareOp::kEq,
                       Value::String("zone_001")}};
  ScanPlan pruned = *ops_.PlanScan(*after, prune);
  EXPECT_EQ(static_cast<int>(pruned.files.size()), 1);
}

TEST_F(MaintenanceTest, CompactIsNoopWhenAlreadyCompact) {
  std::string key = BuildTable(1, 100);
  auto result = maint_.CompactFiles(key);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compacted);
  EXPECT_EQ(result->metadata_key, key);  // no new metadata written
}

TEST_F(MaintenanceTest, CompactEmptyTableIsNoop) {
  workload::TaxiGenOptions gen;
  gen.rows = 1;
  auto schema = workload::GenerateTaxiTable(gen)->schema();
  std::string key = *ops_.CreateTable("empty_table", schema);
  auto result = maint_.CompactFiles(key);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compacted);
}

TEST_F(MaintenanceTest, CompactValidatesArgs) {
  std::string key = BuildTable(2, 10);
  EXPECT_FALSE(maint_.CompactFiles(key, 0).ok());
  EXPECT_FALSE(maint_.CompactFiles("no-such-key").ok());
}

TEST_F(MaintenanceTest, ExpireDeletesUnreferencedObjects) {
  std::string key = BuildTable(4, 100);
  size_t objects_before = store_.object_count();

  auto result = maint_.ExpireSnapshots(key);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshots_removed, 3);  // all but current
  // Append snapshots share earlier files via shared manifests; only the
  // manifests exclusive to expired snapshots go away. Current snapshot
  // references all four manifests, so nothing is reclaimed here.
  EXPECT_EQ(result->data_files_deleted, 0);

  // After an overwrite, expiry really reclaims the old generation.
  workload::TaxiGenOptions gen;
  gen.rows = 50;
  gen.seed = 99;
  std::string overwritten =
      *ops_.Overwrite(result->metadata_key,
                      *workload::GenerateTaxiTable(gen));
  auto expired = maint_.ExpireSnapshots(overwritten);
  ASSERT_TRUE(expired.ok());
  EXPECT_GE(expired->data_files_deleted, 4);
  EXPECT_GT(expired->bytes_reclaimed, 0u);
  EXPECT_GE(expired->manifests_deleted, 4);
  EXPECT_LT(store_.object_count(), objects_before + 10);

  // Table still reads correctly.
  EXPECT_EQ(CountRows(expired->metadata_key), 50);
  // But old snapshots are gone.
  auto meta = ops_.LoadMetadata(expired->metadata_key);
  EXPECT_EQ(meta->snapshots.size(), 1u);
  ScanOptions old_snap;
  old_snap.snapshot_id = 1;
  EXPECT_TRUE(
      ops_.ScanTable(expired->metadata_key, old_snap).status()
          .IsNotFound());
}

TEST_F(MaintenanceTest, ExpireKeepsRecentSnapshots) {
  std::string key = BuildTable(3, 100);
  auto meta = ops_.LoadMetadata(key);
  // Keep everything at or after the second snapshot's timestamp.
  uint64_t cutoff = meta->snapshots[1].timestamp_micros;
  auto result = maint_.ExpireSnapshots(key, cutoff);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->snapshots_removed, 1);
  auto after = ops_.LoadMetadata(result->metadata_key);
  EXPECT_EQ(after->snapshots.size(), 2u);
}

TEST_F(MaintenanceTest, ExpireNoopWhenNothingToExpire) {
  std::string key = BuildTable(1, 10);
  auto result = maint_.ExpireSnapshots(key);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->snapshots_removed, 0);
  EXPECT_EQ(result->metadata_key, key);
}

TEST_F(MaintenanceTest, CompactThenExpireReclaimsFragments) {
  std::string key = BuildTable(6, 200);
  auto compacted = maint_.CompactFiles(key);
  ASSERT_TRUE(compacted.ok());
  uint64_t bytes_before = store_.total_bytes();
  auto expired = maint_.ExpireSnapshots(compacted->metadata_key);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->data_files_deleted, 6);  // the six fragments
  EXPECT_LT(store_.total_bytes(), bytes_before);
  EXPECT_EQ(CountRows(expired->metadata_key), 1200);
}

}  // namespace
}  // namespace bauplan::table
