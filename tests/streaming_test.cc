// Streaming-engine coverage: bit-identity of the push-based pipelined
// engine against the materialized vectorized engine and the scalar
// oracle across query shapes, thread counts and memory budgets; the
// O(morsel) peak-memory guarantee for streaming chains; LIMIT early
// exit stopping upstream morsel dispatch; the composite (int64,int64)
// packed-key join fast path; pipeline counters, the exec.peak_bytes
// gauge, and the pipeline -> operator span hierarchy.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "columnar/serialize.h"
#include "common/clock.h"
#include "common/strings.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "sql/engine.h"

namespace bauplan {
namespace {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;
using sql::ExecOptions;
using sql::QueryOptions;
using sql::QueryResult;

// ---------------------------------------------------------------- fixture

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() {
    // Facts: same shape as the spill suite (nulls every 97th key, NaN
    // every 53rd amount) but with dyadic-rational amounts (k/4) whose
    // partial sums are exact in double for any association — so the
    // scalar oracle's row-at-a-time accumulation is bit-identical to
    // the morsel-cut partial sums, and all three engines can be
    // compared at the byte level.
    Int64Builder id, key, qty;
    DoubleBuilder amount;
    StringBuilder tag;
    double nan = std::numeric_limits<double>::quiet_NaN();
    for (int64_t i = 0; i < 20000; ++i) {
      id.Append(i);
      if (i % 97 == 0) {
        key.AppendNull();
      } else {
        key.Append(i % 211);
      }
      qty.Append((i * 7) % 13);
      if (i % 53 == 0) {
        amount.Append(nan);
      } else {
        amount.Append(static_cast<double>((i * 31) % 997) / 4.0);
      }
      tag.Append(StrCat("tag_", i % 37, "_", std::string(i % 11, 'x')));
    }
    provider_.AddTable(
        "facts",
        *Table::Make(Schema({{"id", TypeId::kInt64, false},
                             {"key", TypeId::kInt64, true},
                             {"qty", TypeId::kInt64, false},
                             {"amount", TypeId::kDouble, true},
                             {"tag", TypeId::kString, false}}),
                     {id.Finish(), key.Finish(), qty.Finish(),
                      amount.Finish(), tag.Finish()}));

    Int64Builder dkey;
    StringBuilder dname;
    for (int64_t i = 0; i < 150; ++i) {
      dkey.Append(i % 120);
      dname.Append(StrCat("dim_", i));
    }
    dkey.AppendNull();
    dname.Append("dim_null");
    provider_.AddTable(
        "dims", *Table::Make(Schema({{"dkey", TypeId::kInt64, true},
                                     {"dname", TypeId::kString, false}}),
                             {dkey.Finish(), dname.Finish()}));

    // String-keyed dimension: skey matches `tag` values, sk2 matches
    // `key` values — string and mixed (string, int64) composite join
    // keys for the canonical-key battery shapes.
    Int64Builder sk2;
    StringBuilder skey, sname;
    for (int64_t i = 0; i < 180; ++i) {
      skey.Append(StrCat("tag_", i % 37, "_", std::string(i % 11, 'x')));
      sk2.Append(i % 211);
      sname.Append(StrCat("sdim_", i));
    }
    provider_.AddTable(
        "sdims",
        *Table::Make(Schema({{"skey", TypeId::kString, false},
                             {"sk2", TypeId::kInt64, false},
                             {"sname", TypeId::kString, false}}),
                     {skey.Finish(), sk2.Finish(), sname.Finish()}));
  }

  Result<QueryResult> Run(std::string_view sql, int64_t budget,
                          int threads = 1,
                          ExecOptions::Engine engine =
                              ExecOptions::Engine::kStreaming,
                          int64_t morsel_rows = 1024,
                          observability::MetricsRegistry* metrics = nullptr) {
    QueryOptions options;
    options.exec.engine = engine;
    options.exec.threads = threads;
    options.exec.morsel_rows = morsel_rows;
    options.exec.memory_budget_bytes = budget;
    options.exec.metrics = metrics;
    return sql::RunQuery(sql, provider_, &provider_, options);
  }

  void ExpectBitIdentical(const Table& a, const Table& b,
                          const std::string& context) {
    Bytes ba = columnar::SerializeTable(a);
    Bytes bb = columnar::SerializeTable(b);
    ASSERT_EQ(ba.size(), bb.size()) << context;
    ASSERT_TRUE(ba == bb) << context;
  }

  sql::MemoryTableProvider provider_;
};

// --------------------------------------------- bit-identity battery

// The tentpole contract: for every query shape the streaming engine's
// result bytes equal the materialized engine's and the scalar oracle's,
// for any engine x threads x budget combination.
TEST_F(StreamingTest, StreamingMaterializedScalarBitIdentical) {
  struct Shape {
    const char* sql;
    // The scalar oracle's seed sort convention compares NaN equal to
    // everything; the vectorized/streaming sort orders NaN last. Skip
    // the oracle for NaN-keyed orderings (a pre-existing, documented
    // engine divergence) and keep it for every deterministic shape.
    bool scalar_oracle;
  };
  const Shape kQueries[] = {
      // Filter -> project chain (pure streaming pipeline, no breaker).
      {"SELECT id, qty * 2 + 1 AS q2, tag FROM facts WHERE qty > 4",
       true},
      // Inner hash join with a residual conjunct on the probe side.
      {"SELECT f.id, f.tag, d.dname FROM facts f "
       "JOIN dims d ON f.key = d.dkey AND f.qty >= 4 "
       "ORDER BY f.id, d.dname",
       true},
      // LEFT join: unmatched and null-key probe rows survive.
      {"SELECT f.id, d.dname FROM facts f "
       "LEFT JOIN dims d ON f.key = d.dkey ORDER BY f.id, d.dname",
       true},
      // String join key: the canonical-bytes build fast path.
      {"SELECT f.id, s.sname FROM facts f "
       "JOIN sdims s ON f.tag = s.skey ORDER BY f.id, s.sname",
       true},
      // Mixed (string, int64) composite key with a nullable column.
      {"SELECT f.id, s.sname FROM facts f "
       "JOIN sdims s ON f.tag = s.skey AND f.key = s.sk2 "
       "ORDER BY f.id, s.sname",
       true},
      // LEFT join over the mixed composite key.
      {"SELECT f.id, s.sname FROM facts f "
       "LEFT JOIN sdims s ON f.tag = s.skey AND f.key = s.sk2 "
       "ORDER BY f.id, s.sname",
       true},
      // Multi-key sort breaker with nulls and NaNs in the keys.
      {"SELECT id, amount, tag FROM facts ORDER BY amount DESC, tag, id",
       false},
      // Multi-key sort breaker, NaN-free keys: scalar oracle applies.
      {"SELECT id, qty, tag FROM facts ORDER BY qty DESC, tag, id",
       true},
      // Top-N: sort fused with LIMIT (NaN ordering key).
      {"SELECT id, amount FROM facts ORDER BY amount, id LIMIT 321",
       false},
      // Top-N over NaN-free keys: scalar oracle applies.
      {"SELECT id, tag FROM facts ORDER BY tag, id LIMIT 321", true},
      // Grouped aggregation, every aggregate kind plus DISTINCT.
      {"SELECT key, COUNT(*) AS n, SUM(qty) AS sq, SUM(amount) AS sa, "
       "AVG(amount) AS avg_a, MIN(tag) AS lo, MAX(tag) AS hi, "
       "COUNT(DISTINCT qty) AS dq FROM facts GROUP BY key",
       true},
      // Global aggregate over a filtered stream.
      {"SELECT COUNT(*) AS n, SUM(qty) AS s FROM facts WHERE qty > 5",
       true},
  };
  for (const auto& [sql, scalar_oracle] : kQueries) {
    auto baseline = Run(sql, /*budget=*/0, /*threads=*/1,
                        ExecOptions::Engine::kVectorized);
    ASSERT_TRUE(baseline.ok())
        << sql << ": " << baseline.status().ToString();
    if (scalar_oracle) {
      auto scalar = Run(sql, /*budget=*/0, /*threads=*/1,
                        ExecOptions::Engine::kScalar);
      ASSERT_TRUE(scalar.ok()) << sql << ": "
                               << scalar.status().ToString();
      ExpectBitIdentical(baseline->table, scalar->table,
                         StrCat(sql, " [scalar oracle]"));
    }
    for (int64_t budget : {int64_t{0}, int64_t{64 * 1024}}) {
      for (int threads : {1, 4, 8}) {
        auto streaming = Run(sql, budget, threads);
        ASSERT_TRUE(streaming.ok())
            << sql << " budget=" << budget << " threads=" << threads
            << ": " << streaming.status().ToString();
        ExpectBitIdentical(
            baseline->table, streaming->table,
            StrCat(sql, " budget=", budget, " threads=", threads));
        auto materialized = Run(sql, budget, threads,
                                ExecOptions::Engine::kVectorized);
        ASSERT_TRUE(materialized.ok());
        ExpectBitIdentical(
            baseline->table, materialized->table,
            StrCat(sql, " [materialized] budget=", budget,
                   " threads=", threads));
      }
    }
  }
}

// --------------------------------------------- optimizer ablation matrix

// Every optimizer rewrite must be exact: toggling any one of them (or
// all of them) off must reproduce the scalar no-rewrites oracle byte
// for byte, on every engine. The contradiction shape exercises
// prune_contradictions' empty-scan replacement; the redundant-conjunct
// shape exercises the interval fold behind it.
TEST_F(StreamingTest, OptimizerAblationMatrixIsBitIdentical) {
  const char* kQueries[] = {
      "SELECT id, qty * 2 + 1 AS q2, tag FROM facts WHERE qty > 4",
      "SELECT f.id, f.tag, d.dname FROM facts f "
      "JOIN dims d ON f.key = d.dkey AND f.qty >= 4 "
      "ORDER BY f.id, d.dname",
      // Provably empty: the pruned plan scans nothing, the unpruned
      // plan filters everything away — same (empty) bytes.
      "SELECT id, qty, tag FROM facts WHERE qty > 4 AND qty < 2",
      "SELECT id, tag FROM facts WHERE qty >= 4 AND qty >= 2 "
      "ORDER BY id",
      "SELECT key, COUNT(*) AS n, SUM(qty) AS sq FROM facts "
      "WHERE qty > 2 AND qty > 1 GROUP BY key",
  };
  struct Variant {
    const char* name;
    void (*apply)(sql::OptimizerOptions*);
  };
  const Variant kVariants[] = {
      {"defaults", [](sql::OptimizerOptions*) {}},
      {"no_pushdown_predicates",
       [](sql::OptimizerOptions* o) { o->pushdown_predicates = false; }},
      {"no_pushdown_filters",
       [](sql::OptimizerOptions* o) { o->pushdown_filters = false; }},
      {"no_pushdown_projections",
       [](sql::OptimizerOptions* o) { o->pushdown_projections = false; }},
      {"no_fold_constants",
       [](sql::OptimizerOptions* o) { o->fold_constants = false; }},
      {"no_prune_contradictions",
       [](sql::OptimizerOptions* o) { o->prune_contradictions = false; }},
      {"no_trim_output_columns",
       [](sql::OptimizerOptions* o) { o->trim_output_columns = false; }},
      {"all_off",
       [](sql::OptimizerOptions* o) {
         o->pushdown_predicates = false;
         o->pushdown_filters = false;
         o->pushdown_projections = false;
         o->fold_constants = false;
         o->prune_contradictions = false;
         o->trim_output_columns = false;
       }},
  };
  const ExecOptions::Engine kEngines[] = {
      ExecOptions::Engine::kScalar, ExecOptions::Engine::kVectorized,
      ExecOptions::Engine::kStreaming};
  for (const char* sql : kQueries) {
    // Oracle: the scalar engine over the pristine (rewrite-free) plan.
    QueryOptions oracle_options;
    oracle_options.exec.engine = ExecOptions::Engine::kScalar;
    kVariants[7].apply(&oracle_options.optimizer);
    auto oracle = sql::RunQuery(sql, provider_, &provider_,
                                oracle_options);
    ASSERT_TRUE(oracle.ok()) << sql << ": "
                             << oracle.status().ToString();
    for (const auto& variant : kVariants) {
      for (ExecOptions::Engine engine : kEngines) {
        QueryOptions options;
        options.exec.engine = engine;
        variant.apply(&options.optimizer);
        auto result =
            sql::RunQuery(sql, provider_, &provider_, options);
        ASSERT_TRUE(result.ok())
            << sql << " [" << variant.name << "]: "
            << result.status().ToString();
        ExpectBitIdentical(oracle->table, result->table,
                           StrCat(sql, " [", variant.name, "]"));
      }
    }
  }
}

// Cross-node projection trimming: with required_output_columns set, the
// result is exactly the untrimmed result's column subset, on every
// engine — and the contradiction query stays empty but keeps the
// trimmed schema.
TEST_F(StreamingTest, RequiredOutputColumnsTrimExactly) {
  const char* sql =
      "SELECT id, qty, amount, tag FROM facts WHERE qty > 4 "
      "ORDER BY id";
  QueryOptions full_options;
  full_options.exec.engine = ExecOptions::Engine::kScalar;
  auto full = sql::RunQuery(sql, provider_, &provider_, full_options);
  ASSERT_TRUE(full.ok());
  auto expected = full->table.SelectColumns({"id", "tag"});
  ASSERT_TRUE(expected.ok());
  for (ExecOptions::Engine engine :
       {ExecOptions::Engine::kScalar, ExecOptions::Engine::kVectorized,
        ExecOptions::Engine::kStreaming}) {
    QueryOptions options;
    options.exec.engine = engine;
    // Lineage order differs from schema order on purpose: the trim
    // keeps schema order.
    options.optimizer.required_output_columns = {"tag", "id"};
    auto trimmed = sql::RunQuery(sql, provider_, &provider_, options);
    ASSERT_TRUE(trimmed.ok()) << trimmed.status().ToString();
    ExpectBitIdentical(*expected, trimmed->table, "trimmed subset");
  }
  // Requesting columns outside the schema trims to the intersection;
  // an all-unknown set keeps the first column rather than none.
  QueryOptions odd;
  odd.exec.engine = ExecOptions::Engine::kStreaming;
  odd.optimizer.required_output_columns = {"nope", "qty"};
  auto partial = sql::RunQuery(sql, provider_, &provider_, odd);
  ASSERT_TRUE(partial.ok());
  auto expected_qty = full->table.SelectColumns({"qty"});
  ASSERT_TRUE(expected_qty.ok());
  ExpectBitIdentical(*expected_qty, partial->table,
                     "unknown names drop out");
}

// ------------------------------------------------- peak-memory guarantee

// A filter -> project -> aggregate chain over 1M rows must stream: the
// largest intermediate the streaming engine materializes is a handful
// of morsel-sized chunks, while the materialized engine's peak is the
// full filtered table.
TEST_F(StreamingTest, StreamingChainPeakIsMorselSizedNotTableSized) {
  Int64Builder bid, bqty;
  for (int64_t i = 0; i < 1000000; ++i) {
    bid.Append(i);
    bqty.Append((i * 13) % 101);
  }
  provider_.AddTable(
      "big", *Table::Make(Schema({{"bid", TypeId::kInt64, false},
                                  {"bqty", TypeId::kInt64, false}}),
                          {bid.Finish(), bqty.Finish()}));
  const char* sql =
      "SELECT SUM(bid + bqty) AS s, COUNT(*) AS n FROM big "
      "WHERE bqty % 3 > 0";
  const int64_t kMorselRows = 4096;
  const int64_t kDataBytes = 1000000 * 2 * 8;  // two int64 columns
  auto streaming = Run(sql, 0, 4, ExecOptions::Engine::kStreaming,
                       kMorselRows);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  auto materialized = Run(sql, 0, 4, ExecOptions::Engine::kVectorized,
                          kMorselRows);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ExpectBitIdentical(streaming->table, materialized->table, sql);

  // Streaming: no intermediate beyond a few in-flight morsel chunks.
  // A chunk is at most kMorselRows x 2 int64 columns; allow a small
  // multiple for in-flight batches and aggregate cuts.
  EXPECT_GT(streaming->stats.peak_bytes, 0);
  EXPECT_LE(streaming->stats.peak_bytes, 16 * kMorselRows * 2 * 8)
      << "streaming peak should be O(morsel)";
  EXPECT_LT(streaming->stats.peak_bytes, kDataBytes / 16);
  // Materialized: the filter output (~2/3 of the table) is one
  // intermediate.
  EXPECT_GT(materialized->stats.peak_bytes, kDataBytes / 4);
  EXPECT_GT(materialized->stats.peak_bytes,
            8 * streaming->stats.peak_bytes);
}

// A streaming filter -> project -> limit chain short-circuits: with the
// limit satisfied by the first dispatched batch, the peak never grows
// past a few chunks even though the scan is 1M rows.
TEST_F(StreamingTest, FilterProjectLimitChainStreamsWithinMorselPeak) {
  Int64Builder bid, bqty;
  for (int64_t i = 0; i < 1000000; ++i) {
    bid.Append(i);
    bqty.Append((i * 13) % 101);
  }
  provider_.AddTable(
      "big", *Table::Make(Schema({{"bid", TypeId::kInt64, false},
                                  {"bqty", TypeId::kInt64, false}}),
                          {bid.Finish(), bqty.Finish()}));
  const char* sql =
      "SELECT bid * 2 AS d FROM big WHERE bqty % 2 = 0 LIMIT 100";
  const int64_t kMorselRows = 4096;
  auto streaming = Run(sql, 0, 1, ExecOptions::Engine::kStreaming,
                       kMorselRows);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->table.num_rows(), 100);
  auto materialized = Run(sql, 0, 1, ExecOptions::Engine::kVectorized,
                          kMorselRows);
  ASSERT_TRUE(materialized.ok());
  ExpectBitIdentical(streaming->table, materialized->table, sql);
  EXPECT_LE(streaming->stats.peak_bytes, 16 * kMorselRows * 2 * 8)
      << "limit chain must not materialize the scan";
}

// ------------------------------------------------------ LIMIT early exit

// With the limit satisfied after the first ordered batch, upstream
// morsel dispatch stops: completed morsels stay well under the number
// the dispatch plan scheduled.
TEST_F(StreamingTest, LimitStopsUpstreamMorselDispatch) {
  const char* sql = "SELECT id FROM facts WHERE qty >= 0 LIMIT 10";
  auto r = Run(sql, 0, 1, ExecOptions::Engine::kStreaming,
               /*morsel_rows=*/256);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.num_rows(), 10);
  // 20000 rows / 256-row morsels = 79 scheduled; only the first batch
  // (a few morsels) should have run.
  EXPECT_EQ(r->stats.morsels_scheduled, (20000 + 255) / 256);
  EXPECT_LT(r->stats.morsels, r->stats.morsels_scheduled);
  auto baseline = Run(sql, 0, 1, ExecOptions::Engine::kVectorized,
                      /*morsel_rows=*/256);
  ASSERT_TRUE(baseline.ok());
  ExpectBitIdentical(r->table, baseline->table, sql);
  // Without a limit the two counters agree: everything scheduled runs.
  auto full = Run("SELECT id FROM facts WHERE qty >= 0", 0, 4,
                  ExecOptions::Engine::kStreaming, /*morsel_rows=*/256);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stats.morsels, full->stats.morsels_scheduled);
  EXPECT_EQ(full->stats.morsels, (20000 + 255) / 256);
}

// ------------------------------------- composite (int64,int64) join keys

// Two null-free int64 build keys take the 128-bit packed-key fast path;
// a nullable build key falls back to hashed buckets. Both must agree
// with the materialized engine and the scalar oracle byte-for-byte.
TEST_F(StreamingTest, CompositeInt64JoinFastPathAndNullableFallback) {
  Int64Builder k1, k2;
  StringBuilder lv;
  for (int64_t i = 0; i < 200; ++i) {
    k1.Append(i % 40);
    k2.Append(i % 11);
    lv.Append(StrCat("lk_", i));
  }
  provider_.AddTable(
      "lookup", *Table::Make(Schema({{"k1", TypeId::kInt64, false},
                                     {"k2", TypeId::kInt64, false},
                                     {"lv", TypeId::kString, false}}),
                             {k1.Finish(), k2.Finish(), lv.Finish()}));
  // Same contents but k1 nullable with one null row: packed keys cannot
  // represent the null, so the build must take the bucket fallback.
  Int64Builder nk1, nk2;
  StringBuilder nlv;
  for (int64_t i = 0; i < 200; ++i) {
    nk1.Append(i % 40);
    nk2.Append(i % 11);
    nlv.Append(StrCat("lk_", i));
  }
  nk1.AppendNull();
  nk2.Append(3);
  nlv.Append("lk_null");
  provider_.AddTable(
      "lookupn", *Table::Make(Schema({{"k1", TypeId::kInt64, true},
                                      {"k2", TypeId::kInt64, false},
                                      {"lv", TypeId::kString, false}}),
                              {nk1.Finish(), nk2.Finish(), nlv.Finish()}));
  for (const char* table : {"lookup", "lookupn"}) {
    std::string sql = StrCat(
        "SELECT f.id, l.lv FROM facts f JOIN ", table,
        " l ON f.qty = l.k2 AND f.key = l.k1 ORDER BY f.id, l.lv");
    auto baseline =
        Run(sql, 0, 1, ExecOptions::Engine::kVectorized);
    ASSERT_TRUE(baseline.ok()) << sql << ": "
                               << baseline.status().ToString();
    ASSERT_GT(baseline->table.num_rows(), 0) << sql;
    auto scalar = Run(sql, 0, 1, ExecOptions::Engine::kScalar);
    ASSERT_TRUE(scalar.ok());
    ExpectBitIdentical(baseline->table, scalar->table,
                       StrCat(sql, " [scalar]"));
    for (int threads : {1, 4}) {
      auto streaming = Run(sql, 0, threads);
      ASSERT_TRUE(streaming.ok()) << sql;
      ExpectBitIdentical(baseline->table, streaming->table,
                         StrCat(sql, " threads=", threads));
    }
    // Budgeted: the build side fits but the probe side exceeds 64 KiB,
    // exercising the breaker-ized streaming join against Grace.
    auto budgeted = Run(sql, 64 * 1024, 4);
    ASSERT_TRUE(budgeted.ok()) << sql;
    ExpectBitIdentical(baseline->table, budgeted->table,
                       StrCat(sql, " [budgeted]"));
  }
}

// ----------------------------------------------- counters, gauge, spans

TEST_F(StreamingTest, PipelineCountersAndPeakGauge) {
  observability::MetricsRegistry metrics;
  const char* sql =
      "SELECT key, COUNT(*) AS n FROM facts f JOIN dims d "
      "ON f.key = d.dkey GROUP BY key ORDER BY n DESC, key";
  auto r = Run(sql, 0, 2, ExecOptions::Engine::kStreaming, 1024, &metrics);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The join probe chain, the build side, and the aggregate input each
  // compile to at least one pipeline.
  EXPECT_GE(r->stats.pipelines, 2);
  EXPECT_EQ(metrics.GetCounter("exec.pipelines")->Value(),
            r->stats.pipelines);
  EXPECT_GT(r->stats.peak_bytes, 0);
  EXPECT_EQ(metrics.GetGauge("exec.peak_bytes")->Value(),
            r->stats.peak_bytes);
  EXPECT_EQ(metrics.GetCounter("exec.morsels")->Value(), r->stats.morsels);
  EXPECT_EQ(metrics.GetCounter("exec.morsels_scheduled")->Value(),
            r->stats.morsels_scheduled);

  // The materialized engine drives no pipelines but still reports peak.
  observability::MetricsRegistry m2;
  auto mat = Run(sql, 0, 2, ExecOptions::Engine::kVectorized, 1024, &m2);
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->stats.pipelines, 0);
  EXPECT_EQ(m2.GetCounter("exec.pipelines")->Value(), 0);
  EXPECT_GT(mat->stats.peak_bytes, 0);
}

// op.* spans nest under their pipeline span; breaker operator spans
// parent the pipelines that feed them.
TEST_F(StreamingTest, PipelineSpansParentOperatorSpans) {
  SimClock clock;
  observability::Tracer tracer(&clock);
  uint64_t root = tracer.StartSpan("query", observability::span_kind::kQuery);
  QueryOptions options;
  options.tracer = &tracer;
  options.parent_span = root;
  options.exec.morsel_rows = 1024;
  auto r = sql::RunQuery(
      "SELECT key, COUNT(*) AS n FROM facts WHERE qty > 2 "
      "GROUP BY key ORDER BY n DESC, key LIMIT 20",
      provider_, &provider_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  tracer.EndSpan(root);
  observability::Trace trace = tracer.ExtractTrace(root);
  ASSERT_NE(trace.root(), nullptr);
  int pipeline_spans = 0;
  int ops_under_pipelines = 0;
  int pipelines_under_breaker_ops = 0;
  for (const auto& span : trace.spans) {
    if (span.kind == observability::span_kind::kPipeline) {
      ++pipeline_spans;
      const observability::Span* parent = trace.Find(span.parent_id);
      ASSERT_NE(parent, nullptr);
      if (parent->kind == observability::span_kind::kOperator) {
        ++pipelines_under_breaker_ops;
      }
    }
    if (span.kind == observability::span_kind::kOperator) {
      const observability::Span* parent = trace.Find(span.parent_id);
      ASSERT_NE(parent, nullptr);
      if (parent->kind == observability::span_kind::kPipeline) {
        ++ops_under_pipelines;
      }
    }
  }
  EXPECT_GE(pipeline_spans, 2);
  EXPECT_GT(ops_under_pipelines, 0);
  // The aggregate and sort breakers each parent their input pipeline.
  EXPECT_GT(pipelines_under_breaker_ops, 0);
}

// Env-var defaults resolve in exactly one place, strictly.
TEST(ExecOptionsFromEnvTest, ResolvesAndValidates) {
  unsetenv("BAUPLAN_THREADS");
  unsetenv("BAUPLAN_MEMORY_BUDGET");
  auto defaults = ExecOptions::FromEnv();
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->threads, 1);
  EXPECT_EQ(defaults->memory_budget_bytes, 0);
  EXPECT_EQ(defaults->engine, ExecOptions::Engine::kStreaming);

  setenv("BAUPLAN_THREADS", "3", 1);
  setenv("BAUPLAN_MEMORY_BUDGET", "65536", 1);
  auto tuned = ExecOptions::FromEnv();
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned->threads, 3);
  EXPECT_EQ(tuned->memory_budget_bytes, 65536);

  setenv("BAUPLAN_THREADS", "lots", 1);
  EXPECT_FALSE(ExecOptions::FromEnv().ok());
  setenv("BAUPLAN_THREADS", "0", 1);
  EXPECT_FALSE(ExecOptions::FromEnv().ok());
  setenv("BAUPLAN_THREADS", "2", 1);
  setenv("BAUPLAN_MEMORY_BUDGET", "-1", 1);
  EXPECT_FALSE(ExecOptions::FromEnv().ok());
  unsetenv("BAUPLAN_THREADS");
  unsetenv("BAUPLAN_MEMORY_BUDGET");
}

}  // namespace
}  // namespace bauplan
