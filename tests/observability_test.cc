#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace bauplan::observability {
namespace {

// ------------------------------------------------------------------ tracer

TEST(TracerTest, NestedSpansExtractDepthFirst) {
  SimClock clock(1000);
  Tracer tracer(&clock);

  uint64_t run = tracer.StartSpan("run", span_kind::kRun);
  clock.AdvanceMicros(10);
  uint64_t wave = tracer.StartSpan("wave_0", span_kind::kWave, run);
  clock.AdvanceMicros(5);
  uint64_t node = tracer.StartSpan("trips", span_kind::kNode, wave);
  clock.AdvanceMicros(20);
  tracer.EndSpan(node);
  tracer.EndSpan(wave);
  clock.AdvanceMicros(15);
  tracer.EndSpan(run);

  Trace trace = tracer.ExtractTrace(run);
  // Extraction removes the subtree from the tracer.
  EXPECT_EQ(tracer.span_count(), 0u);

  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.root_id, 1u);
  // Depth-first renumbering from 1: run -> wave -> node.
  EXPECT_EQ(trace.spans[0].name, "run");
  EXPECT_EQ(trace.spans[0].id, 1u);
  EXPECT_EQ(trace.spans[0].parent_id, 0u);
  EXPECT_EQ(trace.spans[1].name, "wave_0");
  EXPECT_EQ(trace.spans[1].parent_id, 1u);
  EXPECT_EQ(trace.spans[2].name, "trips");
  EXPECT_EQ(trace.spans[2].parent_id, 2u);

  EXPECT_EQ(trace.TotalMicros(), 50u);
  EXPECT_EQ(trace.SumByKind(span_kind::kNode), 20u);
  ASSERT_EQ(trace.ChildrenOf(1).size(), 1u);
  EXPECT_EQ(trace.ChildrenOf(1)[0]->name, "wave_0");
}

TEST(TracerTest, ChildrenCanonicalizedByStartTime) {
  SimClock clock(0);
  Tracer tracer(&clock);
  uint64_t root = tracer.StartSpan("run", span_kind::kRun);
  // Registered out of schedule order, as parallel wave bodies would.
  uint64_t late = tracer.StartSpanAt("late", span_kind::kNode, root, 300);
  uint64_t early = tracer.StartSpanAt("early", span_kind::kNode, root, 100);
  tracer.EndSpanAt(late, 400);
  tracer.EndSpanAt(early, 200);
  tracer.EndSpanAt(root, 400);

  Trace trace = tracer.ExtractTrace(root);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[1].name, "early");
  EXPECT_EQ(trace.spans[2].name, "late");
}

TEST(TracerTest, ShiftDescendantsMovesSubtreeNotRoot) {
  SimClock clock(0);
  Tracer tracer(&clock);
  uint64_t node = tracer.StartSpanAt("node", span_kind::kNode, 0, 100);
  uint64_t sql = tracer.StartSpanAt("sql", span_kind::kSql, node, 110);
  uint64_t spill = tracer.StartSpanAt("put", span_kind::kSpill, sql, 120);
  tracer.EndSpanAt(spill, 130);
  tracer.EndSpanAt(sql, 140);
  tracer.EndSpanAt(node, 150);

  tracer.ShiftDescendants(node, 40);
  Trace trace = tracer.ExtractTrace(node);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].start_micros, 100u);  // root unmoved
  EXPECT_EQ(trace.spans[1].start_micros, 150u);  // sql
  EXPECT_EQ(trace.spans[1].end_micros, 180u);
  EXPECT_EQ(trace.spans[2].start_micros, 160u);  // spill, shifted once
  EXPECT_EQ(trace.spans[2].end_micros, 170u);
}

TEST(TracerTest, ScopedSpanToleratesNullTracer) {
  ScopedSpan span(nullptr, "noop", span_kind::kSql);
  EXPECT_EQ(span.id(), 0u);
}

TEST(TracerTest, ConcurrentSpanCreationIsSafe) {
  SimClock clock(0);
  Tracer tracer(&clock);
  uint64_t root = tracer.StartSpan("run", span_kind::kRun);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, root, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        uint64_t id = tracer.StartSpanAt(
            "body_" + std::to_string(t), span_kind::kSql, root,
            static_cast<uint64_t>(i));
        tracer.AddAttribute(id, "thread", std::to_string(t));
        tracer.EndSpanAt(id, static_cast<uint64_t>(i + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Trace trace = tracer.ExtractTrace(root);
  EXPECT_EQ(trace.spans.size(), 1u + kThreads * kSpansPerThread);
  EXPECT_EQ(trace.SumByKind(span_kind::kSql),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

// ------------------------------------------------------------ trace JSON

TEST(TraceJsonTest, GoldenRendering) {
  SimClock clock(100);
  Tracer tracer(&clock);
  uint64_t run = tracer.StartSpan("run", span_kind::kRun);
  clock.AdvanceMicros(10);
  uint64_t sql = tracer.StartSpan("trips", span_kind::kSql, run);
  tracer.AddAttribute(sql, "worker", "0");
  clock.AdvanceMicros(30);
  tracer.EndSpan(sql);
  tracer.EndSpan(run);
  Trace trace = tracer.ExtractTrace(run);

  EXPECT_EQ(
      trace.ToJson(),
      "{\"version\":2,\"root_id\":1,\"spans\":["
      "{\"id\":1,\"parent_id\":0,\"name\":\"run\",\"kind\":\"run\","
      "\"start_micros\":100,\"end_micros\":140,\"duration_micros\":40},"
      "{\"id\":2,\"parent_id\":1,\"name\":\"trips\",\"kind\":\"sql\","
      "\"start_micros\":110,\"end_micros\":140,\"duration_micros\":30,"
      "\"attributes\":{\"worker\":\"0\"}}]}");
}

TEST(TraceJsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeJson("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
}

// ----------------------------------------------------------------- metrics

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("scheduler.placements");
  Counter* b = registry.GetCounter("scheduler.placements");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotFlattensAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(2);
  registry.GetDoubleCounter("d")->Add(0.5);
  registry.GetGauge("g")->Set(7);
  registry.GetHistogram("h")->Observe(10);
  registry.GetHistogram("h")->Observe(30);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Get("c"), 2.0);
  EXPECT_EQ(snapshot.Get("d"), 0.5);
  EXPECT_EQ(snapshot.Get("g"), 7.0);
  EXPECT_EQ(snapshot.Get("h.count"), 2.0);
  EXPECT_EQ(snapshot.Get("h.sum"), 40.0);
  EXPECT_EQ(snapshot.Get("h.min"), 10.0);
  EXPECT_EQ(snapshot.Get("h.max"), 30.0);
  EXPECT_EQ(snapshot.Get("missing", -1.0), -1.0);

  EXPECT_EQ(snapshot.ToJson(),
            "{\"c\":2,\"d\":0.5,\"g\":7,\"h.count\":2,\"h.max\":30,"
            "\"h.min\":10,\"h.sum\":40}");
  EXPECT_EQ(snapshot.ToText(),
            "c 2\nd 0.5\ng 7\nh.count 2\nh.max 30\nh.min 10\nh.sum 40\n");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistration) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(5);
  registry.GetHistogram("h")->Observe(9);
  registry.Reset();
  EXPECT_EQ(registry.instrument_count(), 2u);
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->GetSnapshot().count, 0);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  // Hammered from many threads: registration races, lock-free updates,
  // and snapshots taken mid-flight. TSan is the real assertion here.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("shared.counter")->Increment();
        registry.GetCounter("thread." + std::to_string(t))->Increment();
        registry.GetGauge("shared.peak")->SetMax(i);
        registry.GetHistogram("shared.latency")->Observe(
            static_cast<uint64_t>(i));
        registry.GetDoubleCounter("shared.cost")->Add(0.25);
      }
    });
  }
  std::thread snapshotter([&registry] {
    for (int i = 0; i < 50; ++i) {
      MetricsSnapshot snapshot = registry.Snapshot();
      EXPECT_GE(snapshot.Get("shared.counter"), 0.0);
    }
  });
  for (auto& thread : threads) thread.join();
  snapshotter.join();

  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            kThreads * kIters);
  EXPECT_EQ(registry.GetHistogram("shared.latency")->GetSnapshot().count,
            kThreads * kIters);
  EXPECT_DOUBLE_EQ(registry.GetDoubleCounter("shared.cost")->Value(),
                   kThreads * kIters * 0.25);
  EXPECT_EQ(registry.GetGauge("shared.peak")->Value(), kIters - 1);
}

}  // namespace
}  // namespace bauplan::observability
