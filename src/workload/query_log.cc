#include "workload/query_log.h"

#include <cmath>

namespace bauplan::workload {

std::vector<CompanyProfile> PaperCompanyProfiles() {
  // Shapes chosen to straddle the paper's Fig. 1 (left): all power-law,
  // "a good chunk of the queries in the 10^0-10^1 seconds range", with
  // heavier tails for bigger companies.
  return {
      {"company_a_startup", 2.6, 0.4, 20000},
      {"company_b_scaleup", 2.1, 0.6, 50000},
      {"company_c_public", 1.7, 1.0, 120000},
  };
}

QueryLog GenerateQueryLog(const CompanyProfile& profile, Rng& rng,
                          double bytes_per_second_scan) {
  QueryLog log;
  log.company = profile.name;
  log.durations_seconds.reserve(
      static_cast<size_t>(profile.queries_per_month));
  log.bytes_scanned.reserve(
      static_cast<size_t>(profile.queries_per_month));
  // Density exponent alpha corresponds to Pareto tail index alpha-1.
  double tail_index = profile.alpha - 1.0;
  for (int64_t i = 0; i < profile.queries_per_month; ++i) {
    double duration = rng.Pareto(profile.xmin_seconds, tail_index);
    // Statement timeout: queries that would run longer are killed and
    // retried smaller (rejection-sample), truncating the extreme tail.
    int guard = 0;
    while (duration > profile.timeout_seconds && guard++ < 64) {
      duration = rng.Pareto(profile.xmin_seconds, tail_index);
    }
    if (duration > profile.timeout_seconds) {
      duration = profile.timeout_seconds;
    }
    log.durations_seconds.push_back(duration);
    // Bytes scanned are duration-correlated with log-normal noise
    // (sigma 0.5 ~ a 65% multiplicative spread).
    double noise = std::exp(rng.Normal(0.0, 0.5));
    log.bytes_scanned.push_back(static_cast<uint64_t>(
        duration * bytes_per_second_scan * noise));
  }
  return log;
}

double CalibrateXminForPercentile(double alpha, double percentile,
                                  double target_bytes) {
  // Pareto CCDF (x/xmin)^-k with k = alpha-1; P(X <= x_p) = p means
  // (x_p/xmin)^-k = 1-p, so xmin = x_p * (1-p)^(1/k).
  double k = alpha - 1.0;
  double p = percentile / 100.0;
  return target_bytes * std::pow(1.0 - p, 1.0 / k);
}

}  // namespace bauplan::workload
