#include "workload/cost_curve.h"

#include <algorithm>

#include "common/status.h"

namespace bauplan::workload {

Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<uint64_t>& bytes_scanned,
    const storage::CostModel& cost) {
  return ComputeCostCurve(bytes_scanned, [&cost](uint64_t bytes) {
    return cost.CreditsFor(bytes);
  });
}

Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<uint64_t>& bytes_scanned,
    const std::function<double(uint64_t)>& credits_for) {
  if (bytes_scanned.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  std::vector<uint64_t> sorted = bytes_scanned;
  std::sort(sorted.begin(), sorted.end());

  // Prefix sums of credits in ascending-bytes order.
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    prefix[i + 1] = prefix[i] + credits_for(sorted[i]);
  }
  double total = prefix.back();
  if (total <= 0) {
    return Status::FailedPrecondition("workload has zero total cost");
  }

  std::vector<CostCurvePoint> out;
  out.reserve(100);
  for (int p = 1; p <= 100; ++p) {
    size_t count = static_cast<size_t>(
        static_cast<double>(sorted.size()) * p / 100.0);
    count = std::min(std::max<size_t>(count, 1), sorted.size());
    CostCurvePoint point;
    point.percentile = p;
    point.bytes_at_percentile = static_cast<double>(sorted[count - 1]);
    point.cumulative_cost_share = prefix[count] / total;
    out.push_back(point);
  }
  return out;
}

}  // namespace bauplan::workload
