#include "workload/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace bauplan::workload {

std::vector<CcdfPoint> ComputeCcdf(std::vector<double> samples,
                                   int points) {
  std::vector<CcdfPoint> out;
  if (samples.empty() || points <= 0) return out;
  std::sort(samples.begin(), samples.end());
  double lo = samples.front();
  double hi = samples.back();
  if (lo <= 0) lo = 1e-12;
  if (hi <= lo) hi = lo * 1.0001;
  double log_lo = std::log(lo);
  double log_hi = std::log(hi);
  const double n = static_cast<double>(samples.size());
  for (int i = 0; i < points; ++i) {
    double x = std::exp(log_lo + (log_hi - log_lo) * i /
                        std::max(points - 1, 1));
    // Count of samples >= x via binary search.
    auto it = std::lower_bound(samples.begin(), samples.end(), x);
    double count = static_cast<double>(samples.end() - it);
    out.push_back({x, count / n});
  }
  return out;
}

Result<PowerLawFit> FitPowerLaw(const std::vector<double>& samples,
                                double xmin) {
  if (xmin <= 0) {
    return Status::InvalidArgument("xmin must be positive");
  }
  double log_sum = 0;
  int64_t n = 0;
  std::vector<double> tail;
  for (double x : samples) {
    if (x >= xmin) {
      log_sum += std::log(x / xmin);
      tail.push_back(x);
      ++n;
    }
  }
  if (n < 10) {
    return Status::FailedPrecondition(
        StrCat("only ", n, " samples at or above xmin=", xmin,
               "; need at least 10"));
  }
  if (log_sum <= 0) {
    return Status::FailedPrecondition("degenerate tail (all equal xmin)");
  }
  PowerLawFit fit;
  fit.alpha = 1.0 + static_cast<double>(n) / log_sum;
  fit.xmin = xmin;
  fit.tail_samples = n;

  // KS distance between empirical tail CCDF and the fitted CCDF.
  std::sort(tail.begin(), tail.end());
  double ks = 0;
  for (size_t i = 0; i < tail.size(); ++i) {
    double empirical_cdf =
        static_cast<double>(i + 1) / static_cast<double>(tail.size());
    double model_cdf = 1.0 - std::pow(tail[i] / xmin, 1.0 - fit.alpha);
    ks = std::max(ks, std::fabs(empirical_cdf - model_cdf));
  }
  fit.ks_distance = ks;
  return fit;
}

Result<PowerLawFit> FitPowerLawAutoXmin(const std::vector<double>& samples,
                                        int max_candidates) {
  if (samples.size() < 20) {
    return Status::FailedPrecondition("need at least 20 samples");
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  // Candidate xmins: quantiles of the lower 90% of the data.
  std::vector<double> candidates;
  int steps = std::max(1, max_candidates);
  for (int i = 0; i < steps; ++i) {
    size_t idx = static_cast<size_t>(
        0.9 * static_cast<double>(sorted.size() - 1) * i / steps);
    double candidate = sorted[idx];
    if (candidate <= 0) continue;
    if (!candidates.empty() && candidate == candidates.back()) continue;
    candidates.push_back(candidate);
  }
  Result<PowerLawFit> best = Status::FailedPrecondition("no usable xmin");
  for (double xmin : candidates) {
    auto fit = FitPowerLaw(samples, xmin);
    if (!fit.ok()) continue;
    if (!best.ok() || fit->ks_distance < best->ks_distance) best = fit;
  }
  return best;
}

double PowerLawCcdf(const PowerLawFit& fit, double x) {
  if (x <= fit.xmin) return 1.0;
  return std::pow(x / fit.xmin, 1.0 - fit.alpha);
}

Result<double> Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return Status::InvalidArgument("percentile of empty sample set");
  }
  if (p < 0 || p > 100) {
    return Status::InvalidArgument("percentile must be in [0, 100]");
  }
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

}  // namespace bauplan::workload
