#ifndef BAUPLAN_WORKLOAD_QUERY_LOG_H_
#define BAUPLAN_WORKLOAD_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bauplan::workload {

/// Power-law profile of one company's SQL workload. The paper anonymized
/// real query-history logs by fitting the `powerlaw` package and then
/// re-sampling from the fit (section 3.1 footnote 2); these profiles play
/// the role of those fitted parameters.
struct CompanyProfile {
  std::string name;
  /// Tail exponent of the query-time density p(t) ~ t^-alpha.
  double alpha = 2.0;
  /// Minimum of the power-law regime, seconds.
  double xmin_seconds = 0.5;
  /// Queries in one month of history.
  int64_t queries_per_month = 50000;
  /// Statement timeout: real warehouses kill longer queries, which
  /// truncates the power-law tail at the far right of Fig. 1.
  double timeout_seconds = 7200.0;
};

/// One month of one company's query history.
struct QueryLog {
  std::string company;
  /// Per-query durations, seconds.
  std::vector<double> durations_seconds;
  /// Per-query bytes scanned (correlated with duration, as the paper
  /// observes: "query time correlates with byte scans and table size").
  std::vector<uint64_t> bytes_scanned;
};

/// The paper's three sample companies (startup -> public firm): the same
/// power-law shape with different tail exponents and volumes.
std::vector<CompanyProfile> PaperCompanyProfiles();

/// Samples a month of queries for `profile`. Durations are Pareto
/// (xmin, alpha-1 tail); bytes scanned are duration-correlated with
/// multiplicative noise around `bytes_per_second_scan`.
QueryLog GenerateQueryLog(const CompanyProfile& profile, Rng& rng,
                          double bytes_per_second_scan = 250e6);

/// Calibrates a bytes-scanned Pareto distribution so that the p-th
/// percentile equals `target_bytes` (the paper's design partner: P80 =
/// 750 MB). Returns the xmin for the given alpha.
double CalibrateXminForPercentile(double alpha, double percentile,
                                  double target_bytes);

}  // namespace bauplan::workload

#endif  // BAUPLAN_WORKLOAD_QUERY_LOG_H_
