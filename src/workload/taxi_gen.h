#ifndef BAUPLAN_WORKLOAD_TAXI_GEN_H_
#define BAUPLAN_WORKLOAD_TAXI_GEN_H_

#include <cstdint>
#include <string>

#include "columnar/table.h"
#include "common/result.h"
#include "common/rng.h"

namespace bauplan::workload {

/// Parameters of the synthetic NYC-taxi-like dataset (the paper's running
/// example uses the public TLC trip records; we generate a statistically
/// similar table: Zipf-popular pickup zones, diurnal timestamps,
/// log-normal fares).
struct TaxiGenOptions {
  int64_t rows = 100000;
  /// Trip timestamps span [start_date, start_date + days).
  std::string start_date = "2019-04-01";
  int days = 30;
  /// Distinct pickup/dropoff location ids, Zipf-popular.
  int64_t num_locations = 265;  // the real TLC zone count
  double location_zipf_s = 1.05;
  /// Fraction of rows with a null passenger_count (data dirtiness).
  double null_passenger_rate = 0.01;
  uint64_t seed = 42;
};

/// Schema of the generated table:
///   trip_id int64, pickup_at timestamp, pickup_location_id int64,
///   dropoff_location_id int64, passenger_count int64 (nullable),
///   trip_distance double, fare double, zone string.
Result<columnar::Table> GenerateTaxiTable(const TaxiGenOptions& options);

}  // namespace bauplan::workload

#endif  // BAUPLAN_WORKLOAD_TAXI_GEN_H_
