#include "workload/taxi_gen.h"

#include <cmath>
#include <cstdio>

#include "columnar/builder.h"
#include "columnar/datetime.h"

namespace bauplan::workload {

using columnar::DoubleBuilder;
using columnar::Int64Builder;
using columnar::Schema;
using columnar::StringBuilder;
using columnar::Table;
using columnar::TypeId;

Result<Table> GenerateTaxiTable(const TaxiGenOptions& options) {
  if (options.rows < 0 || options.num_locations <= 0 || options.days <= 0) {
    return Status::InvalidArgument("invalid taxi generator options");
  }
  BAUPLAN_ASSIGN_OR_RETURN(
      int64_t start_micros,
      columnar::ParseTimestampString(options.start_date));
  Rng rng(options.seed);
  ZipfDistribution location_popularity(
      static_cast<uint64_t>(options.num_locations),
      options.location_zipf_s);

  Int64Builder trip_id;
  Int64Builder pickup_at(TypeId::kTimestamp);
  Int64Builder pickup_location, dropoff_location, passenger_count;
  DoubleBuilder trip_distance, fare;
  StringBuilder zone;

  const int64_t span_micros =
      static_cast<int64_t>(options.days) * 86400ll * 1000000;
  for (int64_t i = 0; i < options.rows; ++i) {
    trip_id.Append(i + 1);
    // Diurnal timestamps: uniform day + normal around 14:00 local.
    int64_t day_offset = rng.UniformInt(0, options.days - 1);
    double hour = rng.Normal(14.0, 4.5);
    if (hour < 0) hour = 0;
    if (hour >= 24) hour = 23.99;
    int64_t within_day = static_cast<int64_t>(hour * 3600e6);
    int64_t ts = start_micros + day_offset * 86400ll * 1000000 + within_day;
    if (ts >= start_micros + span_micros) ts = start_micros + span_micros - 1;
    pickup_at.Append(ts);

    int64_t pickup =
        static_cast<int64_t>(location_popularity.Sample(rng));
    int64_t dropoff =
        static_cast<int64_t>(location_popularity.Sample(rng));
    pickup_location.Append(pickup);
    dropoff_location.Append(dropoff);

    if (rng.Bernoulli(options.null_passenger_rate)) {
      passenger_count.AppendNull();
    } else {
      // Mostly 1-2 passengers, occasionally a van.
      int64_t pax = 1 + static_cast<int64_t>(rng.Exponential(1.2));
      passenger_count.Append(pax > 6 ? 6 : pax);
    }

    double miles = std::exp(rng.Normal(std::log(2.2), 0.8));
    trip_distance.Append(miles);
    // Taxi-meter-ish fare: flagfall + per-mile with noise.
    fare.Append(3.0 + 2.5 * miles + rng.Uniform(0.0, 2.0));

    char zone_name[24];
    std::snprintf(zone_name, sizeof(zone_name), "zone_%03lld",
                  static_cast<long long>(pickup));
    zone.Append(zone_name);
  }

  return Table::Make(
      Schema({{"trip_id", TypeId::kInt64, false},
              {"pickup_at", TypeId::kTimestamp, false},
              {"pickup_location_id", TypeId::kInt64, false},
              {"dropoff_location_id", TypeId::kInt64, false},
              {"passenger_count", TypeId::kInt64, true},
              {"trip_distance", TypeId::kDouble, false},
              {"fare", TypeId::kDouble, false},
              {"zone", TypeId::kString, false}}),
      {trip_id.Finish(), pickup_at.Finish(), pickup_location.Finish(),
       dropoff_location.Finish(), passenger_count.Finish(),
       trip_distance.Finish(), fare.Finish(), zone.Finish()});
}

}  // namespace bauplan::workload
