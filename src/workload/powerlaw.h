#ifndef BAUPLAN_WORKLOAD_POWERLAW_H_
#define BAUPLAN_WORKLOAD_POWERLAW_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace bauplan::workload {

/// One point of an empirical (or fitted) complementary CDF.
struct CcdfPoint {
  double x = 0;
  /// P(X >= x).
  double ccdf = 0;
};

/// Empirical CCDF of `samples` evaluated at `points` log-spaced x values
/// between the min and max sample (the log-log series of Fig. 1 left).
std::vector<CcdfPoint> ComputeCcdf(std::vector<double> samples,
                                   int points = 50);

/// Result of a continuous power-law MLE fit (Clauset/Alstott-style, the
/// same method as the `powerlaw` package the paper used to anonymize its
/// data).
struct PowerLawFit {
  /// Tail exponent of the density p(x) ~ x^-alpha (alpha = 1 + tail index).
  double alpha = 0;
  double xmin = 0;
  /// Samples at or above xmin used in the fit.
  int64_t tail_samples = 0;
  /// Kolmogorov-Smirnov distance between empirical and fitted tails.
  double ks_distance = 0;
};

/// Fits alpha by MLE with a fixed xmin:
///   alpha = 1 + n / sum(ln(x_i / xmin)), x_i >= xmin.
Result<PowerLawFit> FitPowerLaw(const std::vector<double>& samples,
                                double xmin);

/// Fits xmin too, by scanning candidate xmins (each observed value) and
/// keeping the fit with the smallest KS distance — the standard
/// Clauset-Shalizi-Newman procedure.
Result<PowerLawFit> FitPowerLawAutoXmin(const std::vector<double>& samples,
                                        int max_candidates = 50);

/// CCDF of the fitted power law at x: (x/xmin)^-(alpha-1), for x >= xmin.
double PowerLawCcdf(const PowerLawFit& fit, double x);

/// The p-th percentile (0..100) of `samples` (linear interpolation).
Result<double> Percentile(std::vector<double> samples, double p);

}  // namespace bauplan::workload

#endif  // BAUPLAN_WORKLOAD_POWERLAW_H_
