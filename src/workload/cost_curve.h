#ifndef BAUPLAN_WORKLOAD_COST_CURVE_H_
#define BAUPLAN_WORKLOAD_COST_CURVE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/latency_model.h"

namespace bauplan::workload {

/// One point of Fig. 1 (right): queries up to the p-th bytes-scanned
/// percentile are responsible for `cumulative_cost_share` of all credits.
struct CostCurvePoint {
  double percentile = 0;
  /// Bytes-scanned value at this percentile.
  double bytes_at_percentile = 0;
  /// Fraction of total credits consumed by queries at or below it.
  double cumulative_cost_share = 0;
};

/// Computes the cumulative-cost curve of a bytes-scanned workload under a
/// credit cost model, at integer percentiles 1..100.
Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<uint64_t>& bytes_scanned,
    const storage::CostModel& cost = {});

/// Same, with an arbitrary per-query cost function (e.g. warehouse-style
/// time billing with a 60-second minimum, which is what produces the
/// paper's 80/80 point).
Result<std::vector<CostCurvePoint>> ComputeCostCurve(
    const std::vector<uint64_t>& bytes_scanned,
    const std::function<double(uint64_t)>& credits_for);

}  // namespace bauplan::workload

#endif  // BAUPLAN_WORKLOAD_COST_CURVE_H_
