#include "analysis/analyzer.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "common/strings.h"
#include "expectations/expectation.h"
#include "sql/parser.h"

namespace bauplan::analysis {

using columnar::Schema;
using pipeline::NodeKind;
using pipeline::PipelineNode;
using pipeline::PipelineProject;

namespace {

/// Levenshtein distance, used for "did you mean" fix-it hints. Inputs
/// are identifiers, so quadratic cost is irrelevant.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The closest candidate within an edit-distance budget proportional to
/// the name's length, or empty when nothing is plausibly a typo.
std::string ClosestName(const std::string& name,
                        const std::set<std::string>& candidates) {
  std::string best;
  size_t best_distance = name.size() / 2 + 1;
  for (const auto& candidate : candidates) {
    if (candidate == name) continue;
    size_t d = EditDistance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

/// "a, b, c" rendering of a name set for hints.
std::string JoinNames(const std::set<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// "name(col1, col2, ...)" rendering of one table's columns for hints.
std::string DescribeSchema(const std::string& table, const Schema& schema) {
  std::string out = StrCat(table, "(");
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += schema.field(i).name;
  }
  out += ")";
  return out;
}

/// The loader's one-file-per-node convention, used as the diagnostic
/// source location even for in-memory projects.
std::string NodeLocation(const PipelineNode& node) {
  if (node.kind == NodeKind::kSqlModel) return StrCat(node.name, ".sql");
  return StrCat("expectations.conf: ", node.name);
}

/// Resolves scans against the schemas the analyzer inferred for upstream
/// nodes first, falling back to the catalog; this is how inferred columns
/// flow through the whole DAG.
class ChainedResolver : public sql::SchemaResolver {
 public:
  ChainedResolver(const std::map<std::string, Schema>* inferred,
                  const sql::SchemaResolver* fallback)
      : inferred_(inferred), fallback_(fallback) {}

  Result<Schema> GetTableSchema(
      const std::string& table_name) const override {
    auto it = inferred_->find(table_name);
    if (it != inferred_->end()) return it->second;
    if (fallback_ != nullptr) return fallback_->GetTableSchema(table_name);
    return Status::NotFound(
        StrCat("table '", table_name, "' not found"));
  }

 private:
  const std::map<std::string, Schema>* inferred_;
  const sql::SchemaResolver* fallback_;
};

/// Per-node facts shared between passes so each pass never re-parses.
struct NodeFacts {
  const PipelineNode* node = nullptr;
  /// Parsed statement for SQL nodes that parse; nullopt otherwise.
  std::optional<sql::SelectStatement> stmt;
  /// FROM/JOIN references (SQL nodes).
  std::vector<std::string> refs;
  /// Audited table (expectation nodes with a well-formed name).
  std::string target;
  /// True once any pass reported an error on this node; downstream
  /// passes skip it instead of cascading secondary noise.
  bool poisoned = false;
  /// True when the node sits on a dependency cycle.
  bool on_cycle = false;
};

}  // namespace

AnalysisResult Analyzer::Analyze(const PipelineProject& project,
                                 const AnalyzerOptions& options) const {
  AnalysisResult result;
  DiagnosticEngine& diag = result.diagnostics;

  uint64_t analysis_span = 0;
  if (options.tracer != nullptr) {
    analysis_span = options.tracer->StartSpan(
        StrCat("analyze:", project.name()), observability::span_kind::kAnalysis,
        options.parent_span);
    options.tracer->AddAttribute(analysis_span, "project", project.name());
    result.root_span = analysis_span;
  }
  auto pass_span = [&](const char* name) -> uint64_t {
    if (options.tracer == nullptr) return 0;
    return options.tracer->StartSpan(name, observability::span_kind::kPass,
                                     analysis_span);
  };
  auto end_span = [&](uint64_t id) {
    if (options.tracer != nullptr && id != 0) options.tracer->EndSpan(id);
  };

  // ---------------------------------------------------------- setup
  // Parse every node once; collect the name universes the passes
  // resolve references against.
  std::map<std::string, NodeFacts> facts;
  std::set<std::string> sql_node_names;
  std::set<std::string> expectation_node_names;
  for (const PipelineNode& node : project.nodes()) {
    NodeFacts f;
    f.node = &node;
    if (node.kind == NodeKind::kSqlModel) {
      sql_node_names.insert(node.name);
      auto stmt = sql::ParseSelect(node.code);
      if (!stmt.ok()) {
        f.poisoned = true;
        Diagnostic& d = diag.Error(codes::kSqlParseError, node.name,
                                   stmt.status().message());
        d.location = NodeLocation(node);
        d.hint = "the node's SQL must be a single SELECT statement";
      } else {
        f.stmt = std::move(stmt).ValueOrDie();
        // A parsed statement always extracts cleanly.
        f.refs = sql::ExtractTableReferences(node.code).ValueOrDie();
      }
    } else {
      expectation_node_names.insert(node.name);
      auto target = node.ExpectationTarget();
      if (!target.ok()) {
        // Unreachable through AddExpectationNode, which enforces the
        // naming convention; kept for snapshots of forward versions.
        f.poisoned = true;
        Diagnostic& d = diag.Error(codes::kBadExpectation, node.name,
                                   target.status().message());
        d.location = NodeLocation(node);
        d.hint = "name expectation nodes '<table>_expectation'";
      } else {
        f.target = std::move(target).ValueOrDie();
      }
    }
    facts.emplace(node.name, std::move(f));
  }

  // ------------------------------------------------- pass 1: structural
  uint64_t span = pass_span("structural");

  // Everything a FROM clause or expectation may legally reference: SQL
  // node outputs plus catalog tables at the checked ref.
  std::set<std::string> referenceable = sql_node_names;
  referenceable.insert(known_tables_.begin(), known_tables_.end());

  for (const PipelineNode& node : project.nodes()) {
    NodeFacts& f = facts.at(node.name);
    if (node.kind == NodeKind::kSqlModel) {
      for (const std::string& ref : f.refs) {
        if (referenceable.count(ref) > 0) continue;
        f.poisoned = true;
        Diagnostic& d = diag.Error(
            codes::kUnknownTable, node.name,
            StrCat("unknown table '", ref,
                   "': not a pipeline node and not in the catalog"));
        d.location = NodeLocation(node);
        if (expectation_node_names.count(ref) > 0) {
          d.hint = StrCat("'", ref,
                          "' is an expectation node; expectations audit "
                          "tables but do not produce them");
        } else {
          std::string suggestion = ClosestName(ref, referenceable);
          d.hint = suggestion.empty()
                       ? StrCat("referenceable tables: ",
                                JoinNames(referenceable))
                       : StrCat("did you mean '", suggestion, "'?");
        }
      }
      if (known_tables_.count(node.name) > 0) {
        Diagnostic& d = diag.Warning(
            codes::kDuplicateOutput, node.name,
            StrCat("output table '", node.name,
                   "' shadows an existing table in the catalog"));
        d.location = NodeLocation(node);
        d.hint = StrCat("each run overwrites '", node.name,
                        "' at merge; rename the node if that is not "
                        "intended");
      }
    } else if (!f.poisoned) {
      if (referenceable.count(f.target) == 0) {
        f.poisoned = true;
        Diagnostic& d = diag.Error(
            codes::kUnknownTable, node.name,
            StrCat("expectation audits unknown table '", f.target,
                   "': not a pipeline node and not in the catalog"));
        d.location = NodeLocation(node);
        std::string suggestion = ClosestName(f.target, referenceable);
        if (!suggestion.empty()) {
          d.hint = StrCat("did you mean '", suggestion, "_expectation'?");
        }
      } else if (sql_node_names.count(f.target) == 0) {
        // Audits a static catalog table: re-checks unchanged data every
        // run, which is almost always a typo'd target.
        Diagnostic& d = diag.Warning(
            codes::kDeadNode, node.name,
            StrCat("dead audit: no pipeline node produces '", f.target,
                   "', so this expectation re-checks the same catalog "
                   "table every run"));
        d.location = NodeLocation(node);
        d.hint = StrCat("point the expectation at a produced artifact (",
                        JoinNames(sql_node_names), ")");
      }
    }
  }

  // Cycle detection over project-internal edges (ref -> reader), Kahn
  // peeling: whatever survives sits on (or downstream-inside) a cycle.
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> readers;
  for (const std::string& name : sql_node_names) indegree[name] = 0;
  for (const std::string& name : sql_node_names) {
    for (const std::string& ref : facts.at(name).refs) {
      if (sql_node_names.count(ref) == 0) continue;
      readers[ref].push_back(name);
      ++indegree[name];
    }
  }
  std::deque<std::string> ready;
  std::vector<std::string> topo_order;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) ready.push_back(name);
  }
  while (!ready.empty()) {
    std::string name = ready.front();
    ready.pop_front();
    topo_order.push_back(name);
    for (const std::string& reader : readers[name]) {
      if (--indegree[reader] == 0) ready.push_back(reader);
    }
  }
  if (topo_order.size() < sql_node_names.size()) {
    std::set<std::string> cyclic;
    for (const auto& [name, deg] : indegree) {
      if (deg > 0) cyclic.insert(name);
    }
    for (const std::string& name : cyclic) {
      facts.at(name).on_cycle = true;
      facts.at(name).poisoned = true;
    }
    Diagnostic d;
    d.code = codes::kDependencyCycle;
    d.severity = DiagnosticSeverity::kError;
    d.message = StrCat("dependency cycle among nodes: ", JoinNames(cyclic));
    d.hint =
        "a node may not read its own output (directly or transitively); "
        "remove one of the FROM references among these nodes";
    diag.Report(std::move(d));
  }
  end_span(span);

  // ----------------------------------------- pass 2: schema propagation
  // Fold each clean SQL node through the planner in topological order so
  // every node sees the inferred output schemas of its upstreams.
  span = pass_span("schema");
  ChainedResolver resolver(&result.node_schemas, catalog_schemas_);
  // Logical plans survive this pass for the linter: the interval pass
  // walks filter predicates against each node's *input* schemas, which
  // only the planned tree knows.
  std::map<std::string, sql::PlanPtr> plans;
  for (const std::string& name : topo_order) {
    NodeFacts& f = facts.at(name);
    if (f.poisoned || !f.stmt.has_value()) continue;
    // Skip (quietly) nodes whose inputs have no schema to propagate: an
    // upstream that failed to plan, or a catalog table with no resolver.
    bool inputs_resolved = true;
    for (const std::string& ref : f.refs) {
      if (result.node_schemas.count(ref) > 0) continue;
      if (sql_node_names.count(ref) == 0 && catalog_schemas_ != nullptr) {
        continue;  // catalog table; resolver will supply it
      }
      inputs_resolved = false;
    }
    if (!inputs_resolved) continue;

    auto plan = sql::PlanQuery(*f.stmt, resolver);
    if (!plan.ok()) {
      f.poisoned = true;
      // The planner reports unknown columns as NotFound; an ON clause
      // with no equality between the sides is the cartesian-product
      // lint (BP4003); everything else (ambiguity, UNION shape, typing,
      // unknown functions) is a binding or type error.
      const bool unknown_column = plan.status().IsNotFound();
      const bool cartesian =
          plan.status().message().find(
              "JOIN ON must contain at least one equality") !=
          std::string::npos;
      Diagnostic& d = diag.Error(
          cartesian ? codes::kCartesianJoin
                    : (unknown_column ? codes::kUnknownColumn
                                      : codes::kTypeMismatch),
          name, plan.status().message());
      d.location = NodeLocation(*f.node);
      if (cartesian) {
        d.hint =
            "without an equality between the two sides the join degrades "
            "to a cartesian product; add an equi-join key to ON";
      }
      std::string inputs;
      for (const std::string& ref : f.refs) {
        auto schema = resolver.GetTableSchema(ref);
        if (!schema.ok()) continue;
        if (!inputs.empty()) inputs += "; ";
        inputs += DescribeSchema(ref, schema.ValueOrDie());
      }
      if (!cartesian && !inputs.empty()) {
        d.hint = StrCat("input columns: ", inputs);
      }
      continue;
    }
    plans[name] = plan.ValueOrDie();
    Schema inferred = plan.ValueOrDie()->schema;

    // Overwriting a catalog table with fewer columns or changed types is
    // the SELECT-*-into-narrower-table trap: flag column by column.
    if (known_tables_.count(name) > 0 && catalog_schemas_ != nullptr) {
      auto existing = catalog_schemas_->GetTableSchema(name);
      if (existing.ok()) {
        std::string conflicts;
        for (const columnar::Field& field :
             existing.ValueOrDie().fields()) {
          int idx = inferred.GetFieldIndex(field.name);
          if (idx < 0) {
            if (!conflicts.empty()) conflicts += "; ";
            conflicts += StrCat("drops column '", field.name, "'");
          } else if (inferred.field(idx).type != field.type) {
            if (!conflicts.empty()) conflicts += "; ";
            conflicts += StrCat(
                "changes '", field.name, "' from ",
                columnar::TypeIdToString(field.type), " to ",
                columnar::TypeIdToString(inferred.field(idx).type));
          }
        }
        if (!conflicts.empty()) {
          Diagnostic& d = diag.Warning(
              codes::kSchemaNarrowing, name,
              StrCat("overwrites catalog table '", name,
                     "' with an incompatible schema: ", conflicts));
          d.location = NodeLocation(*f.node);
          d.hint = StrCat("existing schema: ",
                          existing.ValueOrDie().ToString());
        }
      }
    }
    result.node_schemas.emplace(name, std::move(inferred));
  }
  end_span(span);

  // --------------------------------------------- pass 3: expectations
  span = pass_span("expectation");
  for (const PipelineNode& node : project.nodes()) {
    if (node.kind != NodeKind::kExpectation) continue;
    NodeFacts& f = facts.at(node.name);
    if (f.poisoned) continue;

    auto spec = expectations::ParseExpectationSpec(node.code);
    if (!spec.ok()) {
      Diagnostic& d = diag.Error(codes::kBadExpectation, node.name,
                                 spec.status().message());
      d.location = NodeLocation(node);
      d.hint =
          "expected one of: mean(col) > N, mean(col) between A and B, "
          "not_null(col), unique(col), values(col) between A and B, "
          "row_count between A and B";
      continue;
    }
    const expectations::ExpectationSpec& s = spec.ValueOrDie();
    if (s.column.empty()) continue;  // row_count needs no column

    // The audited table's schema: inferred for project nodes, resolved
    // from the catalog for source tables. Unavailable (upstream failed to
    // plan) means skip rather than guess.
    auto schema = resolver.GetTableSchema(f.target);
    if (!schema.ok()) continue;
    const Schema& target_schema = schema.ValueOrDie();

    auto field = target_schema.GetFieldByName(s.column);
    if (!field.ok()) {
      Diagnostic& d = diag.Error(
          codes::kExpectationUnknownColumn, node.name,
          StrCat("expectation references column '", s.column,
                 "' but table '", f.target, "' has no such column"));
      d.location = NodeLocation(node);
      std::set<std::string> columns;
      for (const columnar::Field& tf : target_schema.fields()) {
        columns.insert(tf.name);
      }
      std::string suggestion = ClosestName(s.column, columns);
      d.hint = suggestion.empty()
                   ? StrCat("columns of '", f.target,
                            "': ", JoinNames(columns))
                   : StrCat("did you mean '", suggestion, "'?");
      continue;
    }
    if (s.RequiresNumericColumn() &&
        !columnar::IsNumeric(field.ValueOrDie().type)) {
      Diagnostic& d = diag.Error(
          codes::kExpectationTypeMismatch, node.name,
          StrCat("expectation needs a numeric column but '", s.column,
                 "' of table '", f.target, "' is ",
                 columnar::TypeIdToString(field.ValueOrDie().type)));
      d.location = NodeLocation(node);
      d.hint =
          "mean(...) and values(...) only apply to int64, double or "
          "timestamp columns; use not_null/unique for other types";
    }
  }
  end_span(span);

  // --------------------------------------------------- pass 4: lint
  // Interval-domain predicate analysis per node (BP4001/BP4002/BP4005/
  // BP4006), statement-shape lints (BP4004), and the cross-pipeline
  // lineage fold for dead columns (BP4007).
  span = pass_span("lint");
  const size_t lint_start = diag.diagnostics().size();
  for (const std::string& name : topo_order) {
    NodeFacts& f = facts.at(name);
    if (f.poisoned || !f.stmt.has_value()) continue;
    const std::string location = NodeLocation(*f.node);
    LintStatement(*f.stmt, name, location, &diag);
    auto it = plans.find(name);
    if (it != plans.end()) LintPlan(it->second, name, location, &diag);
  }
  result.lineage = BuildLineage(project, resolver);
  for (const auto& [name, lineage_node] : result.lineage.nodes()) {
    for (const std::string& column :
         result.lineage.DeadColumns(name)) {
      Diagnostic& d = diag.Warning(
          codes::kDeadColumn, name,
          StrCat("column '", column, "' is produced but never consumed ",
                 "by any downstream node, expectation, or terminal ",
                 "output"));
      auto fit = facts.find(name);
      if (fit != facts.end()) d.location = NodeLocation(*fit->second.node);
      d.hint = StrCat("drop '", column,
                      "' from the SELECT list, or let the runner trim it "
                      "(run --trim)");
    }
  }
  const size_t lint_findings = diag.diagnostics().size() - lint_start;
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("analysis.lint.findings")
        ->Increment(static_cast<int64_t>(lint_findings));
  }
  if (options.tracer != nullptr && span != 0) {
    options.tracer->AddAttribute(span, "findings",
                                 std::to_string(lint_findings));
  }
  end_span(span);

  // ------------------------------------------------------ observability
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("analysis.runs")->Increment();
    options.metrics->GetCounter("analysis.nodes")
        ->Increment(static_cast<int64_t>(project.nodes().size()));
    options.metrics->GetCounter("analysis.diagnostics")
        ->Increment(static_cast<int64_t>(diag.diagnostics().size()));
    options.metrics->GetCounter("analysis.errors")
        ->Increment(static_cast<int64_t>(diag.error_count()));
    options.metrics->GetCounter("analysis.warnings")
        ->Increment(static_cast<int64_t>(diag.warning_count()));
  }
  if (options.tracer != nullptr) {
    options.tracer->AddAttribute(analysis_span, "errors",
                                 std::to_string(diag.error_count()));
    options.tracer->AddAttribute(analysis_span, "warnings",
                                 std::to_string(diag.warning_count()));
    options.tracer->EndSpan(analysis_span);
  }
  return result;
}

}  // namespace bauplan::analysis
