#include "analysis/range_analysis.h"

#include <set>
#include <utility>

#include "columnar/datetime.h"
#include "common/strings.h"
#include "sql/expr_eval.h"

namespace bauplan::analysis {

using columnar::IsNumeric;
using columnar::TypeId;
using columnar::Value;
using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::PlanKind;
using sql::PlanPtr;
using sql::SelectStatement;

namespace {

// ------------------------------------------------------------- interval

/// a < b / a <= b on non-null values of one comparison family.
bool ValueLt(const Value& a, const Value& b) { return a.Compare(b) < 0; }

}  // namespace

bool ValueInterval::IsEmpty() const {
  if (must_be_null && not_null) return true;
  if (must_be_null && (lower.has_value() || upper.has_value())) return true;
  if (lower.has_value() && upper.has_value()) {
    int cmp = lower->Compare(*upper);
    if (cmp > 0) return true;
    if (cmp == 0 && !(lower_inclusive && upper_inclusive)) return true;
    // Single admissible point that a `<>` conjunct excludes.
    if (cmp == 0) {
      for (const Value& v : excluded) {
        if (v.Compare(*lower) == 0) return true;
      }
    }
  }
  return false;
}

bool ValueInterval::Contains(const Value& v) const {
  if (must_be_null) return false;
  if (lower.has_value()) {
    int cmp = v.Compare(*lower);
    if (cmp < 0 || (cmp == 0 && !lower_inclusive)) return false;
  }
  if (upper.has_value()) {
    int cmp = v.Compare(*upper);
    if (cmp > 0 || (cmp == 0 && !upper_inclusive)) return false;
  }
  for (const Value& e : excluded) {
    if (e.Compare(v) == 0) return false;
  }
  return true;
}

std::string ValueInterval::ToString() const {
  if (must_be_null) return "null";
  if (lower.has_value() && upper.has_value() &&
      lower->Compare(*upper) == 0 && lower_inclusive && upper_inclusive) {
    return StrCat("{", lower->ToString(), "}");
  }
  std::string out = lower.has_value()
                        ? StrCat(lower_inclusive ? "[" : "(",
                                 lower->ToString())
                        : "(-inf";
  out += ", ";
  out += upper.has_value()
             ? StrCat(upper->ToString(), upper_inclusive ? "]" : ")")
             : "+inf)";
  for (const Value& e : excluded) {
    out += StrCat(" \\ {", e.ToString(), "}");
  }
  return out;
}

bool ValueInterval::operator==(const ValueInterval& other) const {
  auto bound_eq = [](const std::optional<Value>& a,
                     const std::optional<Value>& b) {
    if (a.has_value() != b.has_value()) return false;
    return !a.has_value() || a->Compare(*b) == 0;
  };
  if (!bound_eq(lower, other.lower) || !bound_eq(upper, other.upper)) {
    return false;
  }
  if (lower.has_value() && lower_inclusive != other.lower_inclusive) {
    return false;
  }
  if (upper.has_value() && upper_inclusive != other.upper_inclusive) {
    return false;
  }
  if (must_be_null != other.must_be_null || not_null != other.not_null) {
    return false;
  }
  if (excluded.size() != other.excluded.size()) return false;
  for (size_t i = 0; i < excluded.size(); ++i) {
    if (excluded[i].Compare(other.excluded[i]) != 0) return false;
  }
  return true;
}

namespace {

// ------------------------------------------------- conjunct classification

/// `column <op> literal` in either orientation, normalized so the column
/// is on the left.
struct SimpleComparison {
  std::string column;
  BinaryOp op = BinaryOp::kEq;
  Value literal;
};

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool AsSimpleComparison(const Expr& expr, SimpleComparison* out) {
  if (expr.kind != ExprKind::kBinary || !IsComparisonOp(expr.binary_op)) {
    return false;
  }
  if (expr.left->kind == ExprKind::kColumnRef &&
      expr.right->kind == ExprKind::kLiteral) {
    out->column = expr.left->column_name;
    out->op = expr.binary_op;
    out->literal = expr.right->literal;
    return true;
  }
  if (expr.right->kind == ExprKind::kColumnRef &&
      expr.left->kind == ExprKind::kLiteral) {
    out->column = expr.right->column_name;
    out->op = FlipComparison(expr.binary_op);
    out->literal = expr.left->literal;
    return true;
  }
  return false;
}

void SplitAnd(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitAnd(expr->left, out);
    SplitAnd(expr->right, out);
    return;
  }
  out->push_back(expr);
}

/// Tries to reduce a literal-only conjunct to its value.
std::optional<Value> FoldConstantConjunct(const Expr& expr) {
  if (expr.kind == ExprKind::kLiteral) return expr.literal;
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  if (!refs.empty() || ContainsAggregate(expr)) return std::nullopt;
  auto value = sql::EvaluateConstant(expr);
  if (!value.ok()) return std::nullopt;
  return *value;
}

/// Classifies literal `lit` against a column of type `column_type`:
/// returns the (possibly coerced) literal when the comparison is
/// well-ordered, nullopt when the engine would fall back to ordering by
/// type id (the BP4005 hazard).
std::optional<Value> CoerceLiteral(TypeId column_type, const Value& lit) {
  TypeId lt = lit.type();
  if (IsNumeric(column_type) && IsNumeric(lt)) {
    // int64/double/timestamp all compare numerically in the engine;
    // timestamp columns additionally accept parseable date strings.
    if (column_type == TypeId::kTimestamp && lt != TypeId::kTimestamp &&
        lt != TypeId::kInt64 && lt != TypeId::kDouble) {
      return std::nullopt;
    }
    return lit;
  }
  if (column_type == TypeId::kTimestamp && lt == TypeId::kString) {
    auto parsed = columnar::ParseTimestampString(lit.string_value());
    if (parsed.ok()) return Value::Timestamp(*parsed);
    return std::nullopt;
  }
  if (column_type == TypeId::kString && lt == TypeId::kString) return lit;
  if (column_type == TypeId::kBool && lt == TypeId::kBool) return lit;
  return std::nullopt;
}

// ---------------------------------------------------- interval refinement

/// Applies one normalized comparison to `interval`. Returns false when
/// the constraint was already implied (the interval did not change).
bool ApplyComparison(ValueInterval* interval, BinaryOp op,
                     const Value& lit) {
  ValueInterval before = *interval;
  interval->not_null = true;  // NULL <op> x is never true
  switch (op) {
    case BinaryOp::kEq:
      if (!interval->lower.has_value() || ValueLt(*interval->lower, lit) ||
          (interval->lower->Compare(lit) == 0 &&
           !interval->lower_inclusive)) {
        interval->lower = lit;
        interval->lower_inclusive = true;
      }
      if (!interval->upper.has_value() || ValueLt(lit, *interval->upper) ||
          (interval->upper->Compare(lit) == 0 &&
           !interval->upper_inclusive)) {
        interval->upper = lit;
        interval->upper_inclusive = true;
      }
      break;
    case BinaryOp::kNe: {
      bool present = false;
      for (const Value& e : interval->excluded) {
        if (e.Compare(lit) == 0) present = true;
      }
      if (!present) interval->excluded.push_back(lit);
      break;
    }
    case BinaryOp::kLt:
      if (!interval->upper.has_value() || ValueLt(lit, *interval->upper) ||
          (interval->upper->Compare(lit) == 0 &&
           interval->upper_inclusive)) {
        interval->upper = lit;
        interval->upper_inclusive = false;
      }
      break;
    case BinaryOp::kLe:
      if (!interval->upper.has_value() || ValueLt(lit, *interval->upper)) {
        interval->upper = lit;
        interval->upper_inclusive = true;
      }
      break;
    case BinaryOp::kGt:
      if (!interval->lower.has_value() || ValueLt(*interval->lower, lit) ||
          (interval->lower->Compare(lit) == 0 &&
           interval->lower_inclusive)) {
        interval->lower = lit;
        interval->lower_inclusive = false;
      }
      break;
    case BinaryOp::kGe:
      if (!interval->lower.has_value() || ValueLt(*interval->lower, lit)) {
        interval->lower = lit;
        interval->lower_inclusive = true;
      }
      break;
    default:
      break;
  }
  return !(*interval == before);
}

/// One interval-relevant fact extracted from a conjunct.
struct ConjunctFact {
  enum class Kind { kComparison, kIsNull, kIsNotNull, kInList } kind;
  std::string column;
  BinaryOp op = BinaryOp::kEq;   // kComparison
  Value literal;                 // kComparison
  std::vector<Value> in_values;  // kInList (already coerced)
  std::string text;              // rendered source conjunct
};

/// Extracts the facts a conjunct contributes, or nothing for opaque
/// conjuncts. Appends BP4005 material to `lossy` for comparisons the
/// engine orders by type id instead of value.
std::vector<ConjunctFact> ExtractFacts(const Expr& conjunct,
                                       const columnar::Schema& schema,
                                       std::vector<std::string>* lossy) {
  std::vector<ConjunctFact> facts;
  auto column_type = [&](const std::string& name) -> std::optional<TypeId> {
    int idx = schema.GetFieldIndex(name);
    if (idx < 0) return std::nullopt;
    return schema.field(idx).type;
  };
  SimpleComparison cmp;
  if (AsSimpleComparison(conjunct, &cmp)) {
    auto type = column_type(cmp.column);
    if (!type.has_value()) return facts;
    if (cmp.literal.is_null()) {
      // `x = NULL` is never true; surfaced by the caller as a
      // contradiction via the interval (lower > upper trick is not
      // needed — flag directly with an impossible fact).
      ConjunctFact fact;
      fact.kind = ConjunctFact::Kind::kIsNull;
      fact.column = cmp.column;
      fact.text = conjunct.ToString();
      facts.push_back(fact);
      ConjunctFact fact2;
      fact2.kind = ConjunctFact::Kind::kIsNotNull;
      fact2.column = cmp.column;
      fact2.text = conjunct.ToString();
      facts.push_back(fact2);
      return facts;
    }
    auto coerced = CoerceLiteral(*type, cmp.literal);
    if (!coerced.has_value()) {
      lossy->push_back(StrCat(
          conjunct.ToString(), " compares ",
          columnar::TypeIdToString(*type), " column '", cmp.column,
          "' with a ", columnar::TypeIdToString(cmp.literal.type()),
          " literal"));
      return facts;
    }
    ConjunctFact fact;
    fact.kind = ConjunctFact::Kind::kComparison;
    fact.column = cmp.column;
    fact.op = cmp.op;
    fact.literal = *coerced;
    fact.text = conjunct.ToString();
    facts.push_back(fact);
    return facts;
  }
  if (conjunct.kind == ExprKind::kIsNull && conjunct.left != nullptr &&
      conjunct.left->kind == ExprKind::kColumnRef) {
    ConjunctFact fact;
    fact.kind = conjunct.negated ? ConjunctFact::Kind::kIsNotNull
                                 : ConjunctFact::Kind::kIsNull;
    fact.column = conjunct.left->column_name;
    fact.text = conjunct.ToString();
    facts.push_back(fact);
    return facts;
  }
  if (conjunct.kind == ExprKind::kBetween && !conjunct.negated &&
      conjunct.left != nullptr &&
      conjunct.left->kind == ExprKind::kColumnRef &&
      conjunct.between_low != nullptr &&
      conjunct.between_low->kind == ExprKind::kLiteral &&
      conjunct.between_high != nullptr &&
      conjunct.between_high->kind == ExprKind::kLiteral &&
      !conjunct.between_low->literal.is_null() &&
      !conjunct.between_high->literal.is_null()) {
    auto type = column_type(conjunct.left->column_name);
    if (!type.has_value()) return facts;
    auto lo = CoerceLiteral(*type, conjunct.between_low->literal);
    auto hi = CoerceLiteral(*type, conjunct.between_high->literal);
    if (!lo.has_value() || !hi.has_value()) {
      lossy->push_back(StrCat(conjunct.ToString(),
                              " compares incompatible types"));
      return facts;
    }
    ConjunctFact low_fact;
    low_fact.kind = ConjunctFact::Kind::kComparison;
    low_fact.column = conjunct.left->column_name;
    low_fact.op = BinaryOp::kGe;
    low_fact.literal = *lo;
    low_fact.text = conjunct.ToString();
    facts.push_back(low_fact);
    ConjunctFact high_fact = low_fact;
    high_fact.op = BinaryOp::kLe;
    high_fact.literal = *hi;
    facts.push_back(high_fact);
    return facts;
  }
  if (conjunct.kind == ExprKind::kInList && !conjunct.negated &&
      conjunct.left != nullptr &&
      conjunct.left->kind == ExprKind::kColumnRef && !conjunct.list.empty()) {
    auto type = column_type(conjunct.left->column_name);
    if (!type.has_value()) return facts;
    ConjunctFact fact;
    fact.kind = ConjunctFact::Kind::kInList;
    fact.column = conjunct.left->column_name;
    fact.text = conjunct.ToString();
    for (const ExprPtr& item : conjunct.list) {
      if (item->kind != ExprKind::kLiteral || item->literal.is_null()) {
        return facts;  // opaque or null member: stay conservative
      }
      auto coerced = CoerceLiteral(*type, item->literal);
      if (!coerced.has_value()) return facts;
      fact.in_values.push_back(*coerced);
    }
    facts.push_back(fact);
    return facts;
  }
  return facts;
}

/// Whether `field` is declared NOT NULL in `schema`.
bool IsNonNullable(const columnar::Schema& schema,
                   const std::string& column) {
  int idx = schema.GetFieldIndex(column);
  return idx >= 0 && !schema.field(idx).nullable;
}

/// Applies `fact` to the per-column state. Returns true when the state
/// changed (i.e. the fact was not already implied).
bool ApplyFact(std::map<std::string, ValueInterval>* intervals,
               const ConjunctFact& fact) {
  ValueInterval& interval = (*intervals)[fact.column];
  switch (fact.kind) {
    case ConjunctFact::Kind::kComparison:
      return ApplyComparison(&interval, fact.op, fact.literal);
    case ConjunctFact::Kind::kIsNull: {
      bool changed = !interval.must_be_null;
      interval.must_be_null = true;
      return changed;
    }
    case ConjunctFact::Kind::kIsNotNull: {
      bool changed = !interval.not_null;
      interval.not_null = true;
      return changed;
    }
    case ConjunctFact::Kind::kInList: {
      bool changed = false;
      // Convex hull: col >= min(values) AND col <= max(values). Exact
      // membership pruning happens in the caller's emptiness check.
      Value lo = fact.in_values[0];
      Value hi = fact.in_values[0];
      for (const Value& v : fact.in_values) {
        if (ValueLt(v, lo)) lo = v;
        if (ValueLt(hi, v)) hi = v;
      }
      changed |= ApplyComparison(&interval, BinaryOp::kGe, lo);
      changed |= ApplyComparison(&interval, BinaryOp::kLe, hi);
      return changed;
    }
  }
  return false;
}

}  // namespace

PredicateAnalysis AnalyzePredicate(const ExprPtr& predicate,
                                   const columnar::Schema& schema) {
  PredicateAnalysis out;
  std::vector<ExprPtr> conjuncts;
  SplitAnd(predicate, &conjuncts);
  if (conjuncts.empty()) return out;

  // Pass 0: constant conjuncts and exact textual duplicates.
  std::set<std::string> seen_text;
  std::vector<const Expr*> live;
  for (const ExprPtr& c : conjuncts) {
    std::string text = c->ToString();
    if (!seen_text.insert(text).second) {
      out.redundant_conjuncts.push_back(
          StrCat(text, " duplicates an earlier conjunct"));
      continue;  // AND is idempotent: analyzing once is enough
    }
    if (auto value = FoldConstantConjunct(*c)) {
      if (value->is_null() ||
          (value->type() == TypeId::kBool && !value->bool_value())) {
        out.contradiction = true;
        out.contradiction_detail =
            StrCat("conjunct ", text, " is never true");
        return out;
      }
      if (value->type() == TypeId::kBool && value->bool_value()) {
        out.tautologies.push_back(StrCat(text, " is always true"));
        continue;
      }
    }
    live.push_back(c.get());
  }

  // Pass 1: fold every interval-relevant fact.
  struct TaggedFact {
    ConjunctFact fact;
    size_t conjunct_index;
  };
  std::vector<TaggedFact> facts;
  for (size_t i = 0; i < live.size(); ++i) {
    for (ConjunctFact& f :
         ExtractFacts(*live[i], schema, &out.lossy_comparisons)) {
      facts.push_back({std::move(f), i});
    }
  }
  for (const TaggedFact& tf : facts) {
    ApplyFact(&out.intervals, tf.fact);
  }

  // IS NOT NULL on a column the schema declares non-nullable proves
  // nothing new — flag it, unless a sibling fact needed the column.
  for (const TaggedFact& tf : facts) {
    if (tf.fact.kind == ConjunctFact::Kind::kIsNotNull &&
        IsNonNullable(schema, tf.fact.column)) {
      out.tautologies.push_back(StrCat(
          tf.fact.text, " is always true (column '", tf.fact.column,
          "' is declared NOT NULL)"));
    }
  }

  // Pass 2: contradiction checks.
  for (auto& [column, interval] : out.intervals) {
    if (interval.must_be_null && IsNonNullable(schema, column)) {
      out.contradiction = true;
      out.contradiction_detail =
          StrCat("column '", column, "' is declared NOT NULL but the ",
                 "predicate requires it to be null");
      return out;
    }
    if (interval.IsEmpty()) {
      out.contradiction = true;
      out.contradiction_detail =
          StrCat("column '", column, "' admits no value: ",
                 interval.ToString());
      return out;
    }
  }
  // IN-list membership against the final interval: if no member
  // survives the other constraints, nothing can.
  for (const TaggedFact& tf : facts) {
    if (tf.fact.kind != ConjunctFact::Kind::kInList) continue;
    const ValueInterval& interval = out.intervals[tf.fact.column];
    bool any = false;
    for (const Value& v : tf.fact.in_values) {
      if (interval.Contains(v)) any = true;
    }
    if (!any) {
      out.contradiction = true;
      out.contradiction_detail =
          StrCat("no member of ", tf.fact.text,
                 " satisfies the other conjuncts on '", tf.fact.column,
                 "'");
      return out;
    }
  }

  // Pass 3: subsumption — a conjunct all of whose facts are implied by
  // the remaining conjuncts' facts is redundant (`x > 3 AND x > 5`).
  for (size_t i = 0; i < live.size(); ++i) {
    bool has_facts = false;
    std::map<std::string, ValueInterval> without;
    for (const TaggedFact& tf : facts) {
      if (tf.conjunct_index == i) {
        has_facts = true;
        continue;
      }
      ApplyFact(&without, tf.fact);
    }
    if (!has_facts) continue;
    bool implied = true;
    for (const TaggedFact& tf : facts) {
      if (tf.conjunct_index != i) continue;
      if (ApplyFact(&without, tf.fact)) implied = false;
    }
    if (implied) {
      out.redundant_conjuncts.push_back(StrCat(
          live[i]->ToString(), " is implied by the other conjuncts"));
    }
  }
  return out;
}

// ------------------------------------------------------------ plan lints

namespace {

void LintFilterPredicate(const ExprPtr& predicate,
                         const columnar::Schema& input_schema,
                         const std::string& node,
                         const std::string& location, const char* what,
                         DiagnosticEngine* diag) {
  PredicateAnalysis analysis = AnalyzePredicate(predicate, input_schema);
  if (analysis.contradiction) {
    Diagnostic& d = diag->Warning(
        codes::kContradictoryPredicate, node,
        StrCat(what, " is provably always false: ",
               analysis.contradiction_detail));
    d.location = location;
    d.hint = "the subtree returns no rows; remove it or fix the bounds";
  }
  for (const std::string& t : analysis.tautologies) {
    Diagnostic& d =
        diag->Warning(codes::kTautologicalFilter, node,
                      StrCat(what, " conjunct ", t));
    d.location = location;
    d.hint = "drop the conjunct; it filters nothing";
  }
  for (const std::string& l : analysis.lossy_comparisons) {
    Diagnostic& d = diag->Warning(
        codes::kLossyComparison, node,
        StrCat(what, " ", l,
               "; mixed types order by type id, not value"));
    d.location = location;
    d.hint = "cast one side so both compare in the same domain";
  }
  for (const std::string& r : analysis.redundant_conjuncts) {
    Diagnostic& d = diag->Warning(codes::kRedundantConjunct, node,
                                  StrCat(what, " conjunct ", r));
    d.location = location;
    d.hint = "remove the redundant conjunct";
  }
}

}  // namespace

void LintPlan(const PlanPtr& plan, const std::string& node,
              const std::string& location, DiagnosticEngine* diag) {
  if (plan == nullptr) return;
  for (const PlanPtr& child : plan->children) {
    LintPlan(child, node, location, diag);
  }
  switch (plan->kind) {
    case PlanKind::kFilter: {
      // HAVING plans as a filter above the aggregate; label accordingly.
      const char* what = (!plan->children.empty() &&
                          plan->children[0]->kind == PlanKind::kAggregate)
                             ? "HAVING predicate"
                             : "WHERE predicate";
      LintFilterPredicate(plan->predicate, plan->children[0]->schema, node,
                          location, what, diag);
      return;
    }
    case PlanKind::kJoin: {
      if (plan->residual != nullptr &&
          plan->join_type == sql::JoinType::kInner) {
        LintFilterPredicate(plan->residual, plan->schema, node, location,
                            "JOIN residual", diag);
      }
      return;
    }
    default:
      return;
  }
}

void LintStatement(const SelectStatement& stmt, const std::string& node,
                   const std::string& location, DiagnosticEngine* diag) {
  if (stmt.limit >= 0 && stmt.order_by.empty()) {
    Diagnostic& d = diag->Warning(
        codes::kLimitWithoutOrder, node,
        StrCat("LIMIT ", stmt.limit,
               " without ORDER BY keeps an arbitrary subset of rows"));
    d.location = location;
    d.hint = "add ORDER BY to make the result deterministic";
  }
  if (stmt.from.subquery != nullptr) {
    LintStatement(*stmt.from.subquery, node, location, diag);
  }
  for (const sql::JoinClause& join : stmt.joins) {
    if (join.table.subquery != nullptr) {
      LintStatement(*join.table.subquery, node, location, diag);
    }
  }
  if (stmt.union_next != nullptr) {
    LintStatement(*stmt.union_next, node, location, diag);
  }
}

}  // namespace bauplan::analysis
