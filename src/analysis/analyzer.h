#ifndef BAUPLAN_ANALYSIS_ANALYZER_H_
#define BAUPLAN_ANALYSIS_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "analysis/lineage.h"
#include "analysis/range_analysis.h"
#include "columnar/type.h"
#include "common/diagnostic.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "pipeline/project.h"
#include "sql/planner.h"

namespace bauplan::analysis {

/// Stable diagnostic codes emitted by the analyzer. The BP1xxx range is
/// structural (reference graph), BP2xxx is column-level schema
/// propagation, BP3xxx is expectation checking, BP4xxx is the plan
/// linter (declared in range_analysis.h — the interval-domain pass that
/// powers it). Codes are contractual: their meaning never changes once
/// shipped.
namespace codes {
/// A FROM/JOIN reference (or expectation target) names neither a
/// pipeline node nor a table in the catalog at the checked ref.
inline constexpr const char* kUnknownTable = "BP1001";
/// The extracted dependency graph has a cycle (including self-reads).
inline constexpr const char* kDependencyCycle = "BP1002";
/// A SQL node's output table name duplicates a table that already exists
/// in the catalog; every run overwrites it, and reads of that name
/// resolve to the node, shadowing the stored table.
inline constexpr const char* kDuplicateOutput = "BP1003";
/// A dead audit: the expectation's target is a static catalog table no
/// node in the project produces, so every run re-checks unchanged data.
inline constexpr const char* kDeadNode = "BP1004";
/// The node's SQL does not parse.
inline constexpr const char* kSqlParseError = "BP1005";
/// An expression references a column absent from the node's input scope.
inline constexpr const char* kUnknownColumn = "BP2001";
/// The node's expressions fail to bind or type-check (ambiguous
/// references, UNION shape mismatches, misplaced aggregates, unknown
/// functions).
inline constexpr const char* kTypeMismatch = "BP2002";
/// The node's inferred output schema conflicts with the same-named
/// catalog table it will overwrite (dropped columns or changed types —
/// the SELECT-*-into-narrower-table trap).
inline constexpr const char* kSchemaNarrowing = "BP2003";
/// The expectation DSL does not parse.
inline constexpr const char* kBadExpectation = "BP3001";
/// The expectation references a column its input table does not have.
inline constexpr const char* kExpectationUnknownColumn = "BP3002";
/// The expectation needs a numeric column but the referenced column is
/// not numeric (mean/values over strings or bools).
inline constexpr const char* kExpectationTypeMismatch = "BP3003";
}  // namespace codes

/// Observability wiring for one analysis; all fields optional.
struct AnalyzerOptions {
  /// With a tracer, the analysis opens an "analysis" span (under
  /// `parent_span` when non-zero) with one child span per pass.
  observability::Tracer* tracer = nullptr;
  uint64_t parent_span = 0;
  /// With a registry, the analysis bumps "analysis.*" counters.
  observability::MetricsRegistry* metrics = nullptr;
};

/// Everything one analysis produced.
struct AnalysisResult {
  DiagnosticEngine diagnostics;
  /// Column-level output schema inferred for each SQL node that planned
  /// cleanly (the schema its materialized artifact will have).
  std::map<std::string, columnar::Schema> node_schemas;
  /// Cross-pipeline column lineage (see lineage.h), built during the
  /// lint pass; `check --lineage` renders it and the runner derives
  /// projection trimming from it.
  LineageGraph lineage;
  /// Id of the "analysis" span (0 without a tracer). Callers that own
  /// the tracer may ExtractTrace it into `trace`.
  uint64_t root_span = 0;
  /// Extracted analysis span tree; empty unless the caller extracts it.
  observability::Trace trace;

  /// True when no error-severity diagnostic was reported (warnings do
  /// not fail a check).
  bool ok() const { return !diagnostics.has_errors(); }
};

/// The code-intelligence static analyzer (paper section 4.5): parses a
/// whole pipeline project and rejects broken ones before any container
/// is scheduled. Three passes over the extracted reference graph:
///
///   1. structural  — resolve every FROM/JOIN/expectation reference
///      against project nodes and the catalog; find unknown references,
///      cycles, shadowed outputs and dead audits.
///   2. schema      — fold each SQL node through the query planner in
///      topological order, feeding every node the inferred output
///      schemas of its upstream nodes; surfaces unknown columns, type
///      errors and schema-narrowing overwrites, column by column.
///   3. expectation — validate each expectation's referenced column and
///      required type against the inferred schema of its input.
///   4. lint        — interval-domain abstract interpretation over every
///      node's predicates (contradictions, tautologies, lossy
///      comparisons, redundant conjuncts; BP4001–BP4006) plus the
///      cross-pipeline lineage fold that finds dead columns (BP4007).
///
/// Purely static: nothing executes, no branch is created, no container
/// is acquired. All findings are Diagnostic records with stable codes.
class Analyzer {
 public:
  /// `known_tables` are the table names visible in the catalog at the
  /// checked ref. `catalog_schemas` resolves those tables' schemas; when
  /// null, the schema and expectation passes silently skip checks that
  /// need a source-table schema (structural checks still run).
  Analyzer(std::set<std::string> known_tables,
           const sql::SchemaResolver* catalog_schemas)
      : known_tables_(std::move(known_tables)),
        catalog_schemas_(catalog_schemas) {}

  /// Runs all passes; never fails — problems are diagnostics, not
  /// statuses.
  AnalysisResult Analyze(const pipeline::PipelineProject& project,
                         const AnalyzerOptions& options = {}) const;

 private:
  std::set<std::string> known_tables_;
  const sql::SchemaResolver* catalog_schemas_;
};

}  // namespace bauplan::analysis

#endif  // BAUPLAN_ANALYSIS_ANALYZER_H_
