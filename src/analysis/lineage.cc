#include "analysis/lineage.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.h"
#include "expectations/expectation.h"
#include "sql/optimizer.h"
#include "sql/parser.h"

namespace bauplan::analysis {

using pipeline::NodeKind;
using pipeline::PipelineNode;
using pipeline::PipelineProject;

namespace {

/// Resolves upstream node names to their inferred schemas, falling back
/// to the catalog for source tables.
class OverlayResolver : public sql::SchemaResolver {
 public:
  explicit OverlayResolver(const sql::SchemaResolver* base) : base_(base) {}

  void Add(const std::string& name, columnar::Schema schema) {
    inferred_[name] = std::move(schema);
  }
  bool Has(const std::string& name) const {
    return inferred_.count(name) > 0;
  }

  Result<columnar::Schema> GetTableSchema(
      const std::string& table_name) const override {
    auto it = inferred_.find(table_name);
    if (it != inferred_.end()) return it->second;
    return base_->GetTableSchema(table_name);
  }

 private:
  const sql::SchemaResolver* base_;
  std::map<std::string, columnar::Schema> inferred_;
};

/// Collects each scan's read set: the columns projection pushdown left
/// in `scan_columns`, or the scan's whole schema when nothing was
/// trimmed (empty scan_columns = read everything).
void CollectScanReads(const sql::PlanPtr& plan,
                      std::map<std::string, std::set<std::string>>* reads) {
  if (plan == nullptr) return;
  if (plan->kind == sql::PlanKind::kScan && !plan->empty_scan) {
    std::set<std::string>& columns = (*reads)[plan->table_name];
    if (plan->scan_columns.empty()) {
      for (const auto& f : plan->schema.fields()) columns.insert(f.name);
    } else {
      columns.insert(plan->scan_columns.begin(), plan->scan_columns.end());
    }
  }
  for (const auto& child : plan->children) CollectScanReads(child, reads);
}

const char* ConsumerKindName(ColumnConsumer::Kind kind) {
  switch (kind) {
    case ColumnConsumer::Kind::kNode:
      return "node";
    case ColumnConsumer::Kind::kExpectation:
      return "expectation";
    case ColumnConsumer::Kind::kTerminal:
      return "output";
  }
  return "unknown";
}

}  // namespace

LineageGraph BuildLineage(const PipelineProject& project,
                          const sql::SchemaResolver& catalog) {
  LineageGraph graph;
  OverlayResolver resolver(&catalog);
  std::set<std::string> node_names;
  for (const PipelineNode& node : project.nodes()) {
    if (node.kind == NodeKind::kSqlModel) node_names.insert(node.name);
  }

  // Plan nodes in dependency order: a node is ready once every upstream
  // *node* it references has an inferred schema (source tables resolve
  // through the catalog). Unplannable nodes (parse errors, cycles,
  // missing tables) are skipped — earlier analyzer passes own those
  // diagnostics.
  struct Planned {
    const PipelineNode* node;
    sql::PlanPtr plan;
  };
  std::vector<Planned> planned;
  std::vector<const PipelineNode*> pending;
  for (const PipelineNode& node : project.nodes()) {
    if (node.kind == NodeKind::kSqlModel) pending.push_back(&node);
  }
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<const PipelineNode*> next;
    for (const PipelineNode* node : pending) {
      auto stmt = sql::ParseSelect(node->code);
      if (!stmt.ok()) {
        progress = true;  // drop it; never becomes ready
        continue;
      }
      bool ready = true;
      for (const std::string& ref : stmt->ReferencedTables()) {
        if (node_names.count(ref) > 0 && !resolver.Has(ref)) {
          ready = false;
        }
      }
      if (!ready) {
        next.push_back(node);
        continue;
      }
      progress = true;
      auto plan = sql::PlanQuery(*stmt, resolver);
      if (!plan.ok()) continue;
      // Projection pushdown alone computes the exact per-scan read
      // sets; every other rewrite is noise for lineage purposes.
      sql::OptimizerOptions opts;
      opts.pushdown_predicates = false;
      opts.pushdown_filters = false;
      opts.fold_constants = false;
      opts.prune_contradictions = false;
      opts.trim_output_columns = false;
      auto optimized = sql::OptimizePlan(*plan, opts);
      if (!optimized.ok()) continue;
      resolver.Add(node->name, (*optimized)->schema);
      planned.push_back({node, *optimized});
    }
    pending = std::move(next);
  }

  // First pass: nodes, read sets, outputs.
  for (const Planned& p : planned) {
    LineageNode ln;
    ln.name = p.node->name;
    std::map<std::string, std::set<std::string>> reads;
    CollectScanReads(p.plan, &reads);
    for (auto& [table, columns] : reads) {
      ln.reads[table] =
          std::vector<std::string>(columns.begin(), columns.end());
    }
    for (const auto& f : p.plan->schema.fields()) {
      ln.outputs.push_back(f.name);
      ln.consumers[f.name];  // materialize the (possibly empty) entry
    }
    graph.AddNode(std::move(ln));
  }

  // Second pass: wire consumers.
  std::map<std::string, LineageNode> nodes = graph.nodes();
  for (auto& [reader_name, reader] : nodes) {
    for (const auto& [input, columns] : reader.reads) {
      auto it = nodes.find(input);
      if (it == nodes.end()) continue;  // catalog source table
      it->second.terminal = false;
      for (const std::string& column : columns) {
        auto entry = it->second.consumers.find(column);
        if (entry == it->second.consumers.end()) continue;
        entry->second.push_back(
            {ColumnConsumer::Kind::kNode, reader_name});
      }
    }
  }
  for (const PipelineNode& node : project.nodes()) {
    if (node.kind != NodeKind::kExpectation) continue;
    auto target = node.ExpectationTarget();
    if (!target.ok()) continue;
    auto it = nodes.find(*target);
    if (it == nodes.end()) continue;
    auto spec = expectations::ParseExpectationSpec(node.code);
    if (!spec.ok() || spec->column.empty()) continue;
    auto entry = it->second.consumers.find(spec->column);
    if (entry == it->second.consumers.end()) continue;
    entry->second.push_back(
        {ColumnConsumer::Kind::kExpectation, node.name});
  }
  // Terminal nodes: the materialized artifact is the product, so the
  // output itself consumes every column.
  for (auto& [name, node] : nodes) {
    if (!node.terminal) continue;
    for (auto& [column, consumers] : node.consumers) {
      consumers.push_back({ColumnConsumer::Kind::kTerminal, ""});
    }
  }

  LineageGraph out;
  for (auto& [name, node] : nodes) out.AddNode(std::move(node));
  return out;
}

std::vector<std::string> LineageGraph::DeadColumns(
    const std::string& node) const {
  std::vector<std::string> dead;
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.terminal) return dead;
  for (const std::string& column : it->second.outputs) {
    auto entry = it->second.consumers.find(column);
    if (entry == it->second.consumers.end() || entry->second.empty()) {
      dead.push_back(column);
    }
  }
  return dead;
}

std::map<std::string, std::vector<std::string>>
LineageGraph::RequiredOutputColumns() const {
  std::map<std::string, std::vector<std::string>> required;
  for (const auto& [name, node] : nodes_) {
    if (node.terminal) continue;
    std::vector<std::string> live;
    for (const std::string& column : node.outputs) {
      auto entry = node.consumers.find(column);
      if (entry != node.consumers.end() && !entry->second.empty()) {
        live.push_back(column);
      }
    }
    if (live.size() < node.outputs.size()) required[name] = live;
  }
  return required;
}

std::string LineageGraph::ToText() const {
  std::string out =
      StrCat("lineage: ", nodes_.size(), " node(s)\n");
  for (const auto& [name, node] : nodes_) {
    out += StrCat("node ", name, node.terminal ? " (terminal)" : "", "\n");
    for (const auto& [input, columns] : node.reads) {
      out += StrCat("  reads ", input, ": ", StrJoin(columns, ", "), "\n");
    }
    for (const std::string& column : node.outputs) {
      out += StrCat("  column ", column, " -> ");
      auto entry = node.consumers.find(column);
      if (entry == node.consumers.end() || entry->second.empty()) {
        out += "(dead)\n";
        continue;
      }
      for (size_t i = 0; i < entry->second.size(); ++i) {
        const ColumnConsumer& c = entry->second[i];
        if (i > 0) out += ", ";
        out += c.kind == ColumnConsumer::Kind::kTerminal
                   ? "output"
                   : StrCat(ConsumerKindName(c.kind), " ", c.name);
      }
      out += "\n";
    }
  }
  return out;
}

std::string LineageGraph::ToJson() const {
  std::string out = StrCat("{\"version\":1,\"nodes\":[");
  bool first_node = true;
  for (const auto& [name, node] : nodes_) {
    if (!first_node) out += ",";
    first_node = false;
    out += StrCat("{\"name\":\"", EscapeJson(name), "\",\"terminal\":",
                  node.terminal ? "true" : "false", ",\"reads\":{");
    bool first_read = true;
    for (const auto& [input, columns] : node.reads) {
      if (!first_read) out += ",";
      first_read = false;
      out += StrCat("\"", EscapeJson(input), "\":[");
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ",";
        out += StrCat("\"", EscapeJson(columns[i]), "\"");
      }
      out += "]";
    }
    out += "},\"columns\":[";
    bool first_col = true;
    for (const std::string& column : node.outputs) {
      if (!first_col) out += ",";
      first_col = false;
      out += StrCat("{\"name\":\"", EscapeJson(column),
                    "\",\"consumers\":[");
      auto entry = node.consumers.find(column);
      if (entry != node.consumers.end()) {
        for (size_t i = 0; i < entry->second.size(); ++i) {
          const ColumnConsumer& c = entry->second[i];
          if (i > 0) out += ",";
          out += StrCat("{\"kind\":\"", ConsumerKindName(c.kind), "\"");
          if (!c.name.empty()) {
            out += StrCat(",\"name\":\"", EscapeJson(c.name), "\"");
          }
          out += "}";
        }
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace bauplan::analysis
