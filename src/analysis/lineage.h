#ifndef BAUPLAN_ANALYSIS_LINEAGE_H_
#define BAUPLAN_ANALYSIS_LINEAGE_H_

#include <map>
#include <string>
#include <vector>

#include "columnar/type.h"
#include "pipeline/project.h"
#include "sql/planner.h"

/// Cross-pipeline column lineage: which columns every node reads from
/// each of its inputs, and which consumer (downstream node, expectation,
/// or the terminal output) reads each column a node produces. Built by
/// folding every node's logical plan over the whole PipelineProject —
/// the projection-pushdown pass computes the exact per-scan read sets,
/// so lineage is as precise as the optimizer itself.
///
/// Two consumers: `bauplan check --lineage` renders the graph, and the
/// pipeline runner derives each node's required output columns from it
/// (cross-node projection trimming — a node only materializes columns
/// somebody reads).
namespace bauplan::analysis {

/// One reader of a produced column.
struct ColumnConsumer {
  enum class Kind { kNode, kExpectation, kTerminal };
  Kind kind = Kind::kTerminal;
  /// Consumer node name; empty for the terminal output.
  std::string name;
};

/// Lineage facts for one SQL node.
struct LineageNode {
  std::string name;
  /// Input table -> columns the node's plan actually reads from it
  /// (sorted). Inputs are upstream nodes or catalog source tables.
  std::map<std::string, std::vector<std::string>> reads;
  /// Output columns in schema order.
  std::vector<std::string> outputs;
  /// Output column -> its readers. A column with no entry (or an empty
  /// list) on a non-terminal node is dead (BP4007).
  std::map<std::string, std::vector<ColumnConsumer>> consumers;
  /// No downstream SQL node reads this node: its whole output is the
  /// pipeline's product, so every column counts as consumed.
  bool terminal = true;
};

class LineageGraph {
 public:
  /// Nodes keyed (and therefore rendered) by name.
  const std::map<std::string, LineageNode>& nodes() const {
    return nodes_;
  }

  /// Columns `node` produces that no downstream node or expectation
  /// reads. Empty for terminal nodes (the output itself consumes them)
  /// and unknown names.
  std::vector<std::string> DeadColumns(const std::string& node) const;

  /// Per-node required output columns for cross-node projection
  /// trimming: the union of every consumer's reads plus audited
  /// expectation columns. Nodes whose consumers read everything — and
  /// terminal nodes — have no entry (nothing to trim).
  std::map<std::string, std::vector<std::string>> RequiredOutputColumns()
      const;

  /// Multi-line human rendering for `check --lineage`.
  std::string ToText() const;
  /// Deterministic JSON rendering for `check --lineage --json`.
  std::string ToJson() const;

  void AddNode(LineageNode node) {
    nodes_[node.name] = std::move(node);
  }

 private:
  std::map<std::string, LineageNode> nodes_;
};

/// Builds the lineage graph for `project`, resolving source tables
/// through `catalog`. Nodes that fail to parse or plan are skipped (the
/// analyzer's earlier passes already diagnosed them), so the graph is
/// best-effort on broken projects and exact on clean ones.
LineageGraph BuildLineage(const pipeline::PipelineProject& project,
                          const sql::SchemaResolver& catalog);

}  // namespace bauplan::analysis

#endif  // BAUPLAN_ANALYSIS_LINEAGE_H_
