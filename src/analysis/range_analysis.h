#ifndef BAUPLAN_ANALYSIS_RANGE_ANALYSIS_H_
#define BAUPLAN_ANALYSIS_RANGE_ANALYSIS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "columnar/type.h"
#include "columnar/value.h"
#include "common/diagnostic.h"
#include "sql/ast.h"
#include "sql/logical_plan.h"

/// Interval-domain abstract interpretation over predicate expressions.
///
/// WHERE/JOIN/HAVING conjunctions fold into one value interval per
/// column; an empty interval proves the predicate can never hold
/// (contradiction), a vacuous conjunct proves it is removable
/// (tautology). The same machinery backs two consumers: the analyzer's
/// lint pass (BP4xxx diagnostics) and the optimizer's
/// `prune_contradictions` rewrite — which is why these files compile
/// into the SQL library (the optimizer cannot link the analyzer) while
/// keeping the analysis-layer namespace and header location.
///
/// Soundness under SQL's three-valued logic: a comparison whose operand
/// is NULL yields NULL, and WHERE discards non-true rows. So every
/// folded comparison also proves the column non-null for surviving
/// rows, and "interval empty" means *no* row — null or not — can pass.
namespace bauplan::analysis {

namespace codes {
/// Predicate is provably always false — the subtree returns no rows.
inline constexpr const char* kContradictoryPredicate = "BP4001";
/// Conjunct is provably always true — the filter does no work.
inline constexpr const char* kTautologicalFilter = "BP4002";
/// Join has no equality linking its two sides (cartesian product).
inline constexpr const char* kCartesianJoin = "BP4003";
/// LIMIT without ORDER BY — which rows survive is nondeterministic.
inline constexpr const char* kLimitWithoutOrder = "BP4004";
/// Comparison of incompatible types — ordered by type id, not value.
inline constexpr const char* kLossyComparison = "BP4005";
/// Conjunct duplicated or implied by the other conjuncts.
inline constexpr const char* kRedundantConjunct = "BP4006";
/// Column produced by a node but read by no consumer (see lineage.h).
inline constexpr const char* kDeadColumn = "BP4007";
}  // namespace codes

/// One column's abstract value: a (possibly unbounded) interval plus
/// point exclusions and nullability facts.
struct ValueInterval {
  std::optional<columnar::Value> lower;
  bool lower_inclusive = true;
  std::optional<columnar::Value> upper;
  bool upper_inclusive = true;
  /// Values excluded by `<>` conjuncts.
  std::vector<columnar::Value> excluded;
  /// IS NULL seen — only the null value passes.
  bool must_be_null = false;
  /// IS NOT NULL seen, or any comparison (3VL filters nulls).
  bool not_null = false;

  /// True when no value (null or otherwise) satisfies the constraints.
  bool IsEmpty() const;
  /// True when `v` (non-null) lies inside the interval.
  bool Contains(const columnar::Value& v) const;
  /// "[2, 10)", "(-inf, 5]", "{3}", "null" — for diagnostics.
  std::string ToString() const;

  bool operator==(const ValueInterval& other) const;
};

/// Result of folding one conjunction into the interval domain.
struct PredicateAnalysis {
  /// Per-column intervals for the columns the conjunction constrains.
  std::map<std::string, ValueInterval> intervals;
  /// The conjunction is provably always false.
  bool contradiction = false;
  /// Human-readable proof ("qty > 4 contradicts qty < 2").
  std::string contradiction_detail;
  /// Rendered conjuncts that are provably always true (BP4002).
  std::vector<std::string> tautologies;
  /// Rendered cross-type comparisons the engine orders by type id, not
  /// value (BP4005).
  std::vector<std::string> lossy_comparisons;
  /// Rendered conjuncts that are duplicates of, or implied by, the
  /// other conjuncts (BP4006).
  std::vector<std::string> redundant_conjuncts;
};

/// Folds the conjuncts of `predicate` (null = trivially true) into
/// per-column intervals against `schema` (which supplies column types
/// and nullability). Non-conjunct structure (OR, functions, LIKE,
/// column-to-column comparisons) is treated as opaque — the analysis
/// only ever claims what it can prove.
PredicateAnalysis AnalyzePredicate(const sql::ExprPtr& predicate,
                                   const columnar::Schema& schema);

/// Walks a logical plan and appends BP4001/BP4002/BP4005/BP4006
/// diagnostics for every Filter predicate (WHERE and HAVING both plan
/// as filters) and inner-join residual. `node` and `location` anchor
/// the diagnostics.
void LintPlan(const sql::PlanPtr& plan, const std::string& node,
              const std::string& location, DiagnosticEngine* diag);

/// Appends BP4004 (LIMIT without ORDER BY) for `stmt`, recursing into
/// derived tables and UNION branches.
void LintStatement(const sql::SelectStatement& stmt, const std::string& node,
                   const std::string& location, DiagnosticEngine* diag);

}  // namespace bauplan::analysis

#endif  // BAUPLAN_ANALYSIS_RANGE_ANALYSIS_H_
