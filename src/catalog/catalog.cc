#include "catalog/catalog.h"

#include <set>

#include "common/strings.h"

namespace bauplan::catalog {

Result<Catalog> Catalog::Open(storage::ObjectStore* store, Clock* clock,
                              std::string prefix) {
  Catalog cat(store, clock, std::move(prefix));
  BAUPLAN_ASSIGN_OR_RETURN(auto main_head,
                           cat.ReadRef("branch", kMainBranch));
  if (!main_head.has_value()) {
    Commit root;
    root.message = "initialize catalog";
    root.author = "system";
    root.timestamp_micros = clock->NowMicros();
    BAUPLAN_ASSIGN_OR_RETURN(std::string root_id,
                             cat.WriteCommit(std::move(root)));
    BAUPLAN_RETURN_NOT_OK(cat.WriteRef("branch", kMainBranch, root_id));
  }
  return cat;
}

std::string Catalog::CommitKey(const std::string& id) const {
  return StrCat(prefix_, "/commits/", id);
}

std::string Catalog::RefKey(const std::string& kind,
                            const std::string& name) const {
  return StrCat(prefix_, "/refs/", kind, "/", name);
}

Result<std::optional<std::string>> Catalog::ReadRef(
    const std::string& kind, const std::string& name) const {
  auto data = store_->Get(RefKey(kind, name));
  if (!data.ok()) {
    if (data.status().IsNotFound()) return std::optional<std::string>();
    return data.status();
  }
  return std::optional<std::string>(
      std::string(data->begin(), data->end()));
}

Status Catalog::WriteRef(const std::string& kind, const std::string& name,
                         const std::string& commit_id) {
  return store_->Put(RefKey(kind, name),
                     Bytes(commit_id.begin(), commit_id.end()));
}

Result<std::string> Catalog::WriteCommit(Commit commit) {
  commit.id = commit.ComputeId();
  BAUPLAN_RETURN_NOT_OK(store_->Put(CommitKey(commit.id),
                                    commit.Serialize()));
  return commit.id;
}

Status Catalog::CreateBranch(const std::string& name,
                             const std::string& from_ref) {
  if (name.empty()) return Status::InvalidArgument("empty branch name");
  BAUPLAN_ASSIGN_OR_RETURN(auto existing, ReadRef("branch", name));
  if (existing.has_value()) {
    return Status::AlreadyExists(StrCat("branch '", name,
                                        "' already exists"));
  }
  BAUPLAN_ASSIGN_OR_RETURN(std::string commit_id, ResolveRef(from_ref));
  return WriteRef("branch", name, commit_id);
}

Status Catalog::DeleteBranch(const std::string& name) {
  if (name == kMainBranch) {
    return Status::FailedPrecondition("cannot delete the main branch");
  }
  Status st = store_->Delete(RefKey("branch", name));
  if (st.IsNotFound()) {
    return Status::NotFound(StrCat("no branch named '", name, "'"));
  }
  return st;
}

Status Catalog::CreateTag(const std::string& name,
                          const std::string& from_ref) {
  if (name.empty()) return Status::InvalidArgument("empty tag name");
  BAUPLAN_ASSIGN_OR_RETURN(auto existing, ReadRef("tag", name));
  if (existing.has_value()) {
    return Status::AlreadyExists(StrCat("tag '", name, "' already exists"));
  }
  BAUPLAN_ASSIGN_OR_RETURN(std::string commit_id, ResolveRef(from_ref));
  return WriteRef("tag", name, commit_id);
}

Result<std::vector<std::string>> Catalog::ListBranches() const {
  std::string prefix = StrCat(prefix_, "/refs/branch/");
  BAUPLAN_ASSIGN_OR_RETURN(auto objects, store_->List(prefix));
  std::vector<std::string> names;
  names.reserve(objects.size());
  for (const auto& obj : objects) {
    names.push_back(obj.key.substr(prefix.size()));
  }
  return names;
}

bool Catalog::HasBranch(const std::string& name) const {
  auto ref = ReadRef("branch", name);
  return ref.ok() && ref->has_value();
}

Result<std::string> Catalog::ResolveRef(const std::string& ref) const {
  BAUPLAN_ASSIGN_OR_RETURN(auto branch, ReadRef("branch", ref));
  if (branch.has_value()) return *branch;
  BAUPLAN_ASSIGN_OR_RETURN(auto tag, ReadRef("tag", ref));
  if (tag.has_value()) return *tag;
  // Literal commit id.
  if (store_->Exists(CommitKey(ref))) return ref;
  return Status::NotFound(
      StrCat("'", ref, "' is not a branch, tag, or commit id"));
}

Result<std::string> Catalog::Resolve(const RefSpec& spec) const {
  // A spec that swallowed a malformed @timestamp reports the parse error
  // here, not a misleading unknown-ref failure on the raw string.
  BAUPLAN_RETURN_NOT_OK(spec.status());
  BAUPLAN_ASSIGN_OR_RETURN(std::string id, ResolveRef(spec.name()));
  if (!spec.has_timestamp()) return id;
  // As-of: newest commit on the first-parent chain at or before the
  // timestamp (the chain is newest-first, so the first match wins).
  while (!id.empty()) {
    BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
    if (c.timestamp_micros <= spec.timestamp_micros()) return id;
    id = c.parent_id;
  }
  return Status::NotFound(
      StrCat("'", spec.name(), "' has no commit at or before @",
             spec.timestamp_micros()));
}

Result<Commit> Catalog::GetCommit(const std::string& commit_id) const {
  auto data = store_->Get(CommitKey(commit_id));
  if (!data.ok()) {
    return Status::NotFound(StrCat("no commit with id '", commit_id, "'"));
  }
  return Commit::Deserialize(*data);
}

Result<std::vector<Commit>> Catalog::Log(const std::string& ref,
                                         size_t limit) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string id, ResolveRef(ref));
  std::vector<Commit> out;
  while (!id.empty()) {
    BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
    id = c.parent_id;
    out.push_back(std::move(c));
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

Result<std::map<std::string, std::string>> Catalog::GetTables(
    const std::string& ref) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string id, ResolveRef(ref));
  BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
  return c.tables;
}

Result<std::string> Catalog::GetTable(const std::string& ref,
                                      const std::string& table_name) const {
  BAUPLAN_ASSIGN_OR_RETURN(auto tables, GetTables(ref));
  auto it = tables.find(table_name);
  if (it == tables.end()) {
    return Status::NotFound(StrCat("no table named '", table_name,
                                   "' at ref '", ref, "'"));
  }
  return it->second;
}

Result<std::string> Catalog::CommitChanges(const std::string& branch,
                                           const std::string& message,
                                           const std::string& author,
                                           const TableChanges& changes,
                                           const std::string& expected_head) {
  BAUPLAN_ASSIGN_OR_RETURN(auto head, ReadRef("branch", branch));
  if (!head.has_value()) {
    return Status::NotFound(StrCat("no branch named '", branch, "'"));
  }
  if (!expected_head.empty() && *head != expected_head) {
    return Status::Conflict(
        StrCat("branch '", branch, "' moved from ", expected_head, " to ",
               *head, "; rebase and retry"));
  }
  BAUPLAN_ASSIGN_OR_RETURN(Commit parent, GetCommit(*head));

  Commit next;
  next.parent_id = parent.id;
  next.message = message;
  next.author = author;
  next.timestamp_micros = clock_->NowMicros();
  next.tables = parent.tables;
  for (const auto& name : changes.deletes) {
    if (next.tables.erase(name) == 0) {
      return Status::NotFound(
          StrCat("cannot delete table '", name, "': not in catalog"));
    }
  }
  for (const auto& [name, key] : changes.puts) next.tables[name] = key;

  BAUPLAN_ASSIGN_OR_RETURN(std::string id, WriteCommit(std::move(next)));
  BAUPLAN_RETURN_NOT_OK(WriteRef("branch", branch, id));
  return id;
}

Result<bool> Catalog::IsAncestor(const std::string& ancestor,
                                 const std::string& descendant) const {
  std::string id = descendant;
  while (!id.empty()) {
    if (id == ancestor) return true;
    BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
    id = c.parent_id;
  }
  return false;
}

Result<std::string> Catalog::CommonAncestor(const std::string& a,
                                            const std::string& b) const {
  std::set<std::string> seen;
  std::string id = a;
  while (!id.empty()) {
    seen.insert(id);
    BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
    id = c.parent_id;
  }
  id = b;
  while (!id.empty()) {
    if (seen.count(id) > 0) return id;
    BAUPLAN_ASSIGN_OR_RETURN(Commit c, GetCommit(id));
    id = c.parent_id;
  }
  return Status::Internal("commits share no ancestor (disjoint histories)");
}

Result<MergeResult> Catalog::Merge(const std::string& from_ref,
                                   const std::string& to_branch,
                                   const std::string& author) {
  BAUPLAN_ASSIGN_OR_RETURN(std::string from_id, ResolveRef(from_ref));
  BAUPLAN_ASSIGN_OR_RETURN(auto to_head, ReadRef("branch", to_branch));
  if (!to_head.has_value()) {
    return Status::NotFound(StrCat("no branch named '", to_branch, "'"));
  }

  // Already merged.
  BAUPLAN_ASSIGN_OR_RETURN(bool from_in_to, IsAncestor(from_id, *to_head));
  if (from_in_to) return MergeResult{*to_head, true};

  // Fast-forward: target head is an ancestor of the source.
  BAUPLAN_ASSIGN_OR_RETURN(bool ff, IsAncestor(*to_head, from_id));
  if (ff) {
    BAUPLAN_RETURN_NOT_OK(WriteRef("branch", to_branch, from_id));
    return MergeResult{from_id, true};
  }

  // Three-way merge against the common ancestor.
  BAUPLAN_ASSIGN_OR_RETURN(std::string base_id,
                           CommonAncestor(from_id, *to_head));
  BAUPLAN_ASSIGN_OR_RETURN(Commit base, GetCommit(base_id));
  BAUPLAN_ASSIGN_OR_RETURN(Commit ours, GetCommit(*to_head));
  BAUPLAN_ASSIGN_OR_RETURN(Commit theirs, GetCommit(from_id));

  std::map<std::string, std::string> merged = ours.tables;
  std::set<std::string> all_names;
  for (const auto& [n, k] : base.tables) all_names.insert(n);
  for (const auto& [n, k] : ours.tables) all_names.insert(n);
  for (const auto& [n, k] : theirs.tables) all_names.insert(n);

  auto lookup = [](const std::map<std::string, std::string>& m,
                   const std::string& n) -> std::string {
    auto it = m.find(n);
    return it == m.end() ? std::string() : it->second;
  };
  for (const auto& name : all_names) {
    std::string in_base = lookup(base.tables, name);
    std::string in_ours = lookup(ours.tables, name);
    std::string in_theirs = lookup(theirs.tables, name);
    if (in_ours == in_theirs) continue;  // agree (incl. both deleted)
    bool ours_changed = in_ours != in_base;
    bool theirs_changed = in_theirs != in_base;
    if (ours_changed && theirs_changed) {
      return Status::Conflict(
          StrCat("merge conflict on table '", name, "': both '", to_branch,
                 "' and '", from_ref, "' changed it since ", base_id));
    }
    // Exactly one side changed: take that side.
    const std::string& winner = theirs_changed ? in_theirs : in_ours;
    if (winner.empty()) {
      merged.erase(name);
    } else {
      merged[name] = winner;
    }
  }

  Commit merge;
  merge.parent_id = ours.id;
  merge.merge_parent_id = theirs.id;
  merge.message = StrCat("merge ", from_ref, " into ", to_branch);
  merge.author = author;
  merge.timestamp_micros = clock_->NowMicros();
  merge.tables = std::move(merged);
  BAUPLAN_ASSIGN_OR_RETURN(std::string id, WriteCommit(std::move(merge)));
  BAUPLAN_RETURN_NOT_OK(WriteRef("branch", to_branch, id));
  return MergeResult{id, false};
}

Result<std::string> Catalog::CreateEphemeralBranch(
    const std::string& from_ref, const std::string& prefix) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name = StrCat(prefix, "_", ++ephemeral_counter_);
    Status st = CreateBranch(name, from_ref);
    if (st.ok()) return name;
    if (!st.IsAlreadyExists()) return st;
  }
  return Status::Internal("could not allocate an ephemeral branch name");
}

}  // namespace bauplan::catalog
