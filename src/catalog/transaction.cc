#include "catalog/transaction.h"

#include "common/logging.h"
#include "common/strings.h"

namespace bauplan::catalog {

Result<TransactionResult> RunTransformAuditWrite(
    Catalog* catalog, const std::string& base_branch,
    const std::string& author,
    const std::function<Status(Catalog*, const std::string&)>& body) {
  if (!catalog->HasBranch(base_branch)) {
    return Status::NotFound(
        StrCat("no branch named '", base_branch, "'"));
  }
  BAUPLAN_ASSIGN_OR_RETURN(
      std::string run_branch,
      catalog->CreateEphemeralBranch(base_branch, "run"));

  Status body_status = body(catalog, run_branch);
  if (!body_status.ok()) {
    // Audit failed (or transform errored): drop the dirty branch so the
    // base branch never observes partial results.
    Status cleanup = catalog->DeleteBranch(run_branch);
    if (!cleanup.ok()) {
      LogWarning(StrCat("failed to delete ephemeral branch ", run_branch,
                        ": ", cleanup.ToString()));
    }
    return body_status.WithContext(
        StrCat("transform-audit-write on '", base_branch,
               "' rolled back (ephemeral branch ", run_branch, ")"));
  }

  BAUPLAN_ASSIGN_OR_RETURN(MergeResult merged,
                           catalog->Merge(run_branch, base_branch, author));
  BAUPLAN_RETURN_NOT_OK(catalog->DeleteBranch(run_branch));
  return TransactionResult{merged.commit_id, run_branch};
}

}  // namespace bauplan::catalog
