#ifndef BAUPLAN_CATALOG_CATALOG_H_
#define BAUPLAN_CATALOG_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/commit.h"
#include "catalog/refspec.h"
#include "common/clock.h"
#include "common/result.h"
#include "storage/object_store.h"

namespace bauplan::catalog {

/// A set of table changes applied by one commit. Absent tables are
/// created, present ones repointed; deletes remove the name.
struct TableChanges {
  /// table name -> new metadata key.
  std::map<std::string, std::string> puts;
  std::vector<std::string> deletes;
};

/// Summary of a merge.
struct MergeResult {
  std::string commit_id;
  bool fast_forward = false;
};

/// Git-for-data catalog (the Nessie stand-in): an append-only commit DAG in
/// object storage plus mutable branch/tag references. All reads are by
/// ref (branch name, tag name, or commit id), which is what makes
/// `bauplan query -b feat_1` and time travel work.
///
/// Commit concurrency follows compare-and-swap semantics: a commit states
/// the head it was computed against and fails with Conflict if the branch
/// has moved, exactly like Nessie's optimistic locking.
class Catalog {
 public:
  static constexpr const char* kMainBranch = "main";

  /// Opens (or initializes) the catalog stored under `prefix` in `store`.
  /// A fresh catalog gets a root commit and a "main" branch.
  static Result<Catalog> Open(storage::ObjectStore* store, Clock* clock,
                              std::string prefix = "catalog");

  // -- refs -----------------------------------------------------------

  /// Creates branch `name` at the commit `from_ref` resolves to.
  Status CreateBranch(const std::string& name, const std::string& from_ref);

  /// Deletes a branch; main cannot be deleted.
  Status DeleteBranch(const std::string& name);

  /// Creates an immutable tag at the commit `from_ref` resolves to.
  Status CreateTag(const std::string& name, const std::string& from_ref);

  /// All branch names, sorted.
  Result<std::vector<std::string>> ListBranches() const;

  bool HasBranch(const std::string& name) const;

  /// Resolves a branch name, tag name, or literal commit id to a commit id.
  Result<std::string> ResolveRef(const std::string& ref) const;

  /// Resolves a parsed refspec. Without a timestamp this is ResolveRef;
  /// with one ("name@timestamp") it walks the ref's first-parent log to
  /// the newest commit at or before the timestamp (as-of time travel).
  Result<std::string> Resolve(const RefSpec& spec) const;

  // -- history --------------------------------------------------------

  Result<Commit> GetCommit(const std::string& commit_id) const;

  /// Commits on the first-parent chain from `ref` back to the root,
  /// newest first, capped at `limit` (0 = unlimited).
  Result<std::vector<Commit>> Log(const std::string& ref,
                                  size_t limit = 0) const;

  // -- content --------------------------------------------------------

  /// The full table map at `ref`.
  Result<std::map<std::string, std::string>> GetTables(
      const std::string& ref) const;

  /// Metadata key of one table at `ref`; NotFound when absent.
  Result<std::string> GetTable(const std::string& ref,
                               const std::string& table_name) const;

  // -- writes ---------------------------------------------------------

  /// Applies `changes` on top of `branch`, creating a new commit and
  /// advancing the branch. When `expected_head` is non-empty and the
  /// branch has moved past it, fails with Conflict and writes nothing.
  Result<std::string> CommitChanges(const std::string& branch,
                                    const std::string& message,
                                    const std::string& author,
                                    const TableChanges& changes,
                                    const std::string& expected_head = "");

  /// Merges `from_ref` into `to_branch`. Fast-forwards when possible;
  /// otherwise three-way merges against the common ancestor and fails
  /// with Conflict when both sides changed the same table differently.
  Result<MergeResult> Merge(const std::string& from_ref,
                            const std::string& to_branch,
                            const std::string& author);

  /// Creates a uniquely-named ephemeral branch "<prefix>_<n>" off
  /// `from_ref` and returns its name (paper's run_12 branches, Fig. 4).
  Result<std::string> CreateEphemeralBranch(const std::string& from_ref,
                                            const std::string& prefix);

 private:
  Catalog(storage::ObjectStore* store, Clock* clock, std::string prefix)
      : store_(store), clock_(clock), prefix_(std::move(prefix)) {}

  std::string CommitKey(const std::string& id) const;
  std::string RefKey(const std::string& kind, const std::string& name) const;

  Result<std::optional<std::string>> ReadRef(const std::string& kind,
                                             const std::string& name) const;
  Status WriteRef(const std::string& kind, const std::string& name,
                  const std::string& commit_id);

  Result<std::string> WriteCommit(Commit commit);

  /// First common ancestor of two commits on first-parent chains.
  Result<std::string> CommonAncestor(const std::string& a,
                                     const std::string& b) const;

  /// True when `ancestor` is on the first-parent chain of `descendant`.
  Result<bool> IsAncestor(const std::string& ancestor,
                          const std::string& descendant) const;

  storage::ObjectStore* store_;
  Clock* clock_;
  std::string prefix_;
  uint64_t ephemeral_counter_ = 0;
};

}  // namespace bauplan::catalog

#endif  // BAUPLAN_CATALOG_CATALOG_H_
