#ifndef BAUPLAN_CATALOG_TRANSACTION_H_
#define BAUPLAN_CATALOG_TRANSACTION_H_

#include <functional>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"

namespace bauplan::catalog {

/// Outcome of a transform-audit-write transaction.
struct TransactionResult {
  /// The commit the base branch ended at.
  std::string final_commit_id;
  /// Name of the ephemeral branch the work ran in (already deleted).
  std::string ephemeral_branch;
};

/// Runs `body` inside an ephemeral branch forked off `base_branch` and
/// merges back only on success — the paper's *transform-audit-write*
/// pattern (Fig. 4):
///
///   1. fork run_<n> off base_branch,
///   2. body(catalog, "run_<n>") performs transformations and audits,
///   3. body OK  -> merge run_<n> into base_branch, delete run_<n>,
///      body err -> delete run_<n>; the base branch never sees dirty data.
///
/// The analogy to a database transaction is deliberate and exact: the
/// ephemeral branch is the uncommitted workspace, merge is commit.
Result<TransactionResult> RunTransformAuditWrite(
    Catalog* catalog, const std::string& base_branch,
    const std::string& author,
    const std::function<Status(Catalog*, const std::string&)>& body);

}  // namespace bauplan::catalog

#endif  // BAUPLAN_CATALOG_TRANSACTION_H_
