#include "catalog/refspec.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace bauplan::catalog {

namespace {

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's
/// days-from-civil, valid for all post-1970 dates used here).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

/// Parses exactly `width` digits at `pos`, advancing it.
bool TakeNumber(const std::string& s, size_t& pos, size_t width,
                unsigned* out) {
  if (pos + width > s.size()) return false;
  unsigned value = 0;
  for (size_t i = 0; i < width; ++i) {
    char c = s[pos + i];
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  pos += width;
  *out = value;
  return true;
}

}  // namespace

Result<uint64_t> ParseRefTimestamp(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty timestamp in refspec");
  }
  if (AllDigits(text)) {
    return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
  }
  // ISO8601: YYYY-MM-DD, optionally "THH:MM:SS" (UTC).
  size_t pos = 0;
  unsigned year = 0, month = 0, day = 0;
  unsigned hour = 0, minute = 0, second = 0;
  auto bad = [&]() {
    return Status::InvalidArgument(
        StrCat("cannot parse refspec timestamp '", text,
               "' (want epoch micros or YYYY-MM-DD[THH:MM:SS])"));
  };
  if (!TakeNumber(text, pos, 4, &year)) return bad();
  if (pos >= text.size() || text[pos] != '-') return bad();
  ++pos;
  if (!TakeNumber(text, pos, 2, &month)) return bad();
  if (pos >= text.size() || text[pos] != '-') return bad();
  ++pos;
  if (!TakeNumber(text, pos, 2, &day)) return bad();
  if (pos < text.size()) {
    if (text[pos] != 'T' && text[pos] != ' ') return bad();
    ++pos;
    if (!TakeNumber(text, pos, 2, &hour)) return bad();
    if (pos >= text.size() || text[pos] != ':') return bad();
    ++pos;
    if (!TakeNumber(text, pos, 2, &minute)) return bad();
    if (pos < text.size()) {
      if (text[pos] != ':') return bad();
      ++pos;
      if (!TakeNumber(text, pos, 2, &second)) return bad();
    }
    if (pos != text.size()) return bad();
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 59) {
    return bad();
  }
  int64_t days = DaysFromCivil(year, month, day);
  int64_t seconds =
      days * 86400 + hour * 3600 + minute * 60 + second;
  if (seconds < 0) return bad();
  return static_cast<uint64_t>(seconds) * 1000000ull;
}

RefSpec::RefSpec() : name_("main") {}

RefSpec::RefSpec(std::string name, uint64_t timestamp_micros)
    : name_(std::move(name)), timestamp_micros_(timestamp_micros) {}

RefSpec::RefSpec(const std::string& spec) {
  auto parsed = Parse(spec);
  if (parsed.ok()) {
    *this = std::move(*parsed);
    return;
  }
  // Lenient fallback: keep the raw string as the name so legacy callers
  // that never time-travel keep working. But a spec containing '@' was
  // meant as name@timestamp — treating `main@2026-13-99` as a branch
  // named "main@2026-13-99" turns a typo into a baffling unknown-ref
  // error, so record the parse failure for resolution to surface.
  name_ = spec;
  if (spec.find('@') != std::string::npos) {
    status_ = Status::InvalidArgument(
        StrCat(parsed.status().message(),
               " — for time travel use <ref>@<epoch micros> or "
               "<ref>@YYYY-MM-DD[THH:MM:SS]; to address a ref literally "
               "named '", spec, "', rename it without '@'"));
  }
}

RefSpec::RefSpec(const char* spec) : RefSpec(std::string(spec)) {}

Result<RefSpec> RefSpec::Parse(const std::string& spec) {
  size_t at = spec.rfind('@');
  RefSpec parsed;
  if (at == std::string::npos) {
    parsed.name_ = spec;
  } else {
    parsed.name_ = spec.substr(0, at);
    BAUPLAN_ASSIGN_OR_RETURN(uint64_t ts,
                             ParseRefTimestamp(spec.substr(at + 1)));
    parsed.timestamp_micros_ = ts;
  }
  if (parsed.name_.empty()) {
    return Status::InvalidArgument(
        StrCat("refspec '", spec, "' has no ref name"));
  }
  return parsed;
}

std::string RefSpec::ToString() const {
  if (!has_timestamp()) return name_;
  return StrCat(name_, "@", *timestamp_micros_);
}

}  // namespace bauplan::catalog
