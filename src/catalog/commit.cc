#include "catalog/commit.h"

#include "common/hash.h"

namespace bauplan::catalog {

Bytes Commit::Serialize() const {
  BinaryWriter w;
  w.PutString(parent_id);
  w.PutString(merge_parent_id);
  w.PutString(message);
  w.PutString(author);
  w.PutU64(timestamp_micros);
  w.PutU32(static_cast<uint32_t>(tables.size()));
  for (const auto& [name, key] : tables) {
    w.PutString(name);
    w.PutString(key);
  }
  return w.TakeBuffer();
}

Result<Commit> Commit::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  Commit c;
  BAUPLAN_ASSIGN_OR_RETURN(c.parent_id, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(c.merge_parent_id, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(c.message, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(c.author, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(c.timestamp_micros, r.GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t ntables, r.GetU32());
  for (uint32_t i = 0; i < ntables; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(std::string name, r.GetString());
    BAUPLAN_ASSIGN_OR_RETURN(std::string key, r.GetString());
    c.tables.emplace(std::move(name), std::move(key));
  }
  c.id = c.ComputeId();
  return c;
}

std::string Commit::ComputeId() const {
  Bytes image = Serialize();
  return FingerprintHex(
      std::string_view(reinterpret_cast<const char*>(image.data()),
                       image.size()));
}

}  // namespace bauplan::catalog
