#ifndef BAUPLAN_CATALOG_REFSPEC_H_
#define BAUPLAN_CATALOG_REFSPEC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"

namespace bauplan::catalog {

/// A parsed catalog reference: a branch name, tag name, or commit id,
/// optionally with an "@timestamp" as-of suffix for time travel —
/// `main@2023-04-01`, `main@2023-04-01T12:30:00`, or
/// `main@1680000000000000` (epoch micros). Resolution walks the ref's
/// commit log to the newest commit at or before the timestamp
/// (Catalog::Resolve).
///
/// Implicitly convertible from a string so every API that used to take a
/// raw ref string keeps working. A string containing '@' whose timestamp
/// half fails to parse keeps the raw string as the name but records the
/// parse error — resolution surfaces "invalid timestamp" with a fix-it
/// hint instead of a misleading unknown-ref message for what is almost
/// certainly a time-travel typo. '@'-free strings never carry an error.
class RefSpec {
 public:
  /// The default ref: branch "main", no as-of.
  RefSpec();

  // Implicit by design: migration path for `Query(sql, "main")` etc.
  RefSpec(const char* spec);                 // NOLINT(runtime/explicit)
  RefSpec(const std::string& spec);          // NOLINT(runtime/explicit)
  RefSpec(std::string name, uint64_t timestamp_micros);

  /// Strict parse: errors on an empty name or an unparseable
  /// "@timestamp" suffix instead of falling back.
  static Result<RefSpec> Parse(const std::string& spec);

  /// False when the lenient string conversion swallowed a malformed
  /// "@timestamp" suffix; status() then explains the rejection.
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const std::string& name() const { return name_; }
  bool has_timestamp() const { return timestamp_micros_.has_value(); }
  /// Only meaningful when has_timestamp().
  uint64_t timestamp_micros() const {
    return timestamp_micros_.value_or(0);
  }

  /// Round-trips: "<name>" or "<name>@<epoch micros>".
  std::string ToString() const;

  bool operator==(const RefSpec& other) const {
    return name_ == other.name_ &&
           timestamp_micros_ == other.timestamp_micros_;
  }
  bool operator!=(const RefSpec& other) const { return !(*this == other); }

 private:
  std::string name_;
  std::optional<uint64_t> timestamp_micros_;
  Status status_ = Status::OK();
};

/// Parses the timestamp half of a refspec: a run of digits is epoch
/// micros; otherwise ISO8601 "YYYY-MM-DD" or "YYYY-MM-DDTHH:MM:SS"
/// (treated as UTC). Exposed for tests.
Result<uint64_t> ParseRefTimestamp(const std::string& text);

}  // namespace bauplan::catalog

#endif  // BAUPLAN_CATALOG_REFSPEC_H_
