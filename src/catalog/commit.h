#ifndef BAUPLAN_CATALOG_COMMIT_H_
#define BAUPLAN_CATALOG_COMMIT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace bauplan::catalog {

/// One immutable version of the entire catalog: a full snapshot of
/// table-name -> table-metadata-pointer plus commit ancestry. Versioning
/// whole catalogs at a time (rather than single tables) is exactly why the
/// paper picked Nessie: a pipeline run updates several artifacts atomically.
struct Commit {
  /// Content-derived hex id (16 chars).
  std::string id;
  /// Parent commit id; empty for the root commit.
  std::string parent_id;
  /// Secondary parent for merge commits; empty otherwise.
  std::string merge_parent_id;
  std::string message;
  std::string author;
  uint64_t timestamp_micros = 0;
  /// Full catalog content at this commit: table name -> object-store key
  /// of the table's metadata file.
  std::map<std::string, std::string> tables;

  /// Serialized image of everything except `id`.
  Bytes Serialize() const;
  static Result<Commit> Deserialize(const Bytes& bytes);

  /// Computes the content-derived id from the serialized image.
  std::string ComputeId() const;
};

}  // namespace bauplan::catalog

#endif  // BAUPLAN_CATALOG_COMMIT_H_
