#ifndef BAUPLAN_CACHE_FINGERPRINT_H_
#define BAUPLAN_CACHE_FINGERPRINT_H_

#include <map>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "pipeline/dag.h"

namespace bauplan::cache {

/// Per-node cache keys for one DAG execution at one data version.
/// A key is empty when the node is uncacheable this run (an input's
/// content id could not be resolved); empty keys propagate downstream so
/// a node never caches against an unknown input.
struct NodeFingerprints {
  /// Node name -> cache key (16 hex chars), or "" for uncacheable.
  std::map<std::string, std::string> key_of;

  /// Key for `name`, or "" when absent/uncacheable.
  const std::string& Find(const std::string& name) const;
};

/// Derives content-addressed cache keys for every selected node of `dag`,
/// walking in execution order so upstream keys exist before their
/// consumers need them. Each key is
///
///   Hash(code fingerprint, ordered input content ids, env spec,
///        expectation specs)
///
/// where:
///   - the code fingerprint covers the node's name, kind, code text and
///     requirement set (the package/env spec);
///   - input content ids are, in DAG extraction order, the cache key of
///     each selected upstream node (Merkle chaining: a change anywhere
///     upstream re-keys the whole downstream cone) and the immutable
///     table-metadata key of each catalog input (source tables, plus
///     replayed upstreams outside `selected`). Content ids never mention
///     branch names, so a fork of `main` resolves to the same metadata
///     keys as `main` and reuses its artifacts for free;
///   - for SQL nodes, the specs of every expectation auditing the node
///     (cached artifacts are post-audit: changing an audit must
///     invalidate what it vouched for).
///
/// Execution knobs (engine, threads, memory budget, parallelism) are
/// deliberately excluded: the engine's determinism contract makes result
/// bytes identical across all of them, so a cache filled at --parallel 4
/// serves --parallel 1 and vice versa.
///
/// Resolution failures are not errors: the affected node (and its cone)
/// just gets an empty key.
NodeFingerprints ComputeNodeFingerprints(
    const pipeline::Dag& dag, const std::set<std::string>& selected,
    const catalog::Catalog* catalog, const std::string& ref);

}  // namespace bauplan::cache

#endif  // BAUPLAN_CACHE_FINGERPRINT_H_
