#include "cache/artifact_cache.h"

#include "columnar/serialize.h"
#include "common/strings.h"

namespace bauplan::cache {

namespace {
/// Payload format version; unknown versions decode as corrupt (miss).
constexpr uint8_t kFormatVersion = 1;
}  // namespace

Bytes CachedArtifact::Serialize() const {
  BinaryWriter w;
  w.PutU8(kFormatVersion);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutBool(expectation_passed);
  w.PutString(details);
  w.PutI64(output_rows);
  if (kind == pipeline::NodeKind::kSqlModel) {
    Bytes payload = columnar::SerializeTable(table);
    w.PutU32(static_cast<uint32_t>(payload.size()));
    w.PutRaw(payload.data(), payload.size());
  }
  return w.TakeBuffer();
}

Result<CachedArtifact> CachedArtifact::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kFormatVersion) {
    return Status::IOError("unknown cached-artifact format version");
  }
  CachedArtifact artifact;
  BAUPLAN_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > static_cast<uint8_t>(pipeline::NodeKind::kExpectation)) {
    return Status::IOError("invalid node kind in cached artifact");
  }
  artifact.kind = static_cast<pipeline::NodeKind>(kind);
  BAUPLAN_ASSIGN_OR_RETURN(artifact.expectation_passed, r.GetBool());
  BAUPLAN_ASSIGN_OR_RETURN(artifact.details, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(artifact.output_rows, r.GetI64());
  if (artifact.kind == pipeline::NodeKind::kSqlModel) {
    BAUPLAN_ASSIGN_OR_RETURN(uint32_t size, r.GetU32());
    Bytes payload(size);
    BAUPLAN_RETURN_NOT_OK(r.GetRaw(payload.data(), size));
    BAUPLAN_ASSIGN_OR_RETURN(artifact.table,
                             columnar::DeserializeTable(payload));
  }
  return artifact;
}

ArtifactCache::ArtifactCache(storage::ObjectStore* store,
                             uint64_t budget_bytes,
                             observability::MetricsRegistry* registry,
                             std::string prefix)
    : store_(store), budget_bytes_(budget_bytes),
      prefix_(std::move(prefix)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("cache.hits");
  misses_ = registry->GetCounter("cache.misses");
  inserts_ = registry->GetCounter("cache.inserts");
  evictions_ = registry->GetCounter("cache.evictions");
  bytes_ = registry->GetGauge("cache.bytes");
}

std::string ArtifactCache::ObjectKey(const std::string& key) const {
  return StrCat(prefix_, "/", key);
}

void ArtifactCache::LoadIndex() {
  if (!enabled()) return;
  auto objects = store_->List(StrCat(prefix_, "/"));
  if (!objects.ok()) return;  // degrade: start cold
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
  for (const auto& object : *objects) {
    std::string key = object.key.substr(prefix_.size() + 1);
    if (key.empty() || entries_.count(key) > 0) continue;
    lru_.push_back(Entry{key, object.size});
    entries_[key] = std::prev(lru_.end());
    used_bytes_ += object.size;
  }
  // The budget may have shrunk since these were written.
  EvictUntilFits(0);
  bytes_->Set(static_cast<int64_t>(used_bytes_));
}

std::optional<CachedArtifact> ArtifactCache::Lookup(
    const std::string& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  auto data = store_->Get(ObjectKey(key));
  if (!data.ok()) {
    // The index promised an object the store no longer serves (fault,
    // out-of-band deletion): drop it so later probes skip the store.
    DropEntry(key, /*count_eviction=*/false);
    misses_->Increment();
    return std::nullopt;
  }
  auto artifact = CachedArtifact::Deserialize(*data);
  if (!artifact.ok()) {
    DropEntry(key, /*count_eviction=*/false);
    (void)store_->Delete(ObjectKey(key));
    misses_->Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_->Increment();
  return std::move(*artifact);
}

void ArtifactCache::Insert(const std::string& key,
                           const CachedArtifact& artifact) {
  if (!enabled() || key.empty()) return;
  Bytes payload = artifact.Serialize();
  uint64_t incoming = payload.size();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) > 0) return;  // content-addressed: immutable
  if (incoming > budget_bytes_) return;
  EvictUntilFits(incoming);
  if (!store_->Put(ObjectKey(key), std::move(payload)).ok()) {
    return;  // degrade: just not cached
  }
  lru_.push_front(Entry{key, incoming});
  entries_[key] = lru_.begin();
  used_bytes_ += incoming;
  inserts_->Increment();
  bytes_->Set(static_cast<int64_t>(used_bytes_));
}

void ArtifactCache::EvictUntilFits(uint64_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > budget_bytes_) {
    DropEntry(lru_.back().key, /*count_eviction=*/true);
  }
}

void ArtifactCache::DropEntry(const std::string& key,
                              bool count_eviction) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  used_bytes_ -= it->second->bytes;
  // Delete failures leave an orphan object behind; the index forgets it
  // either way, and LoadIndex would re-adopt it in a later process.
  (void)store_->Delete(ObjectKey(key));
  lru_.erase(it->second);
  entries_.erase(it);
  if (count_eviction) evictions_->Increment();
  bytes_->Set(static_cast<int64_t>(used_bytes_));
}

Result<size_t> ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Clear everything listed in the store, not just this process's index:
  // `bauplan cache clear` should empty a lake another session filled.
  BAUPLAN_ASSIGN_OR_RETURN(auto objects, store_->List(StrCat(prefix_, "/")));
  size_t dropped = 0;
  for (const auto& object : objects) {
    BAUPLAN_RETURN_NOT_OK(store_->Delete(object.key));
    ++dropped;
  }
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
  bytes_->Set(0);
  return dropped;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot;
  snapshot.hits = hits_->Value();
  snapshot.misses = misses_->Value();
  snapshot.inserts = inserts_->Value();
  snapshot.evictions = evictions_->Value();
  snapshot.bytes = used_bytes_;
  snapshot.entries = entries_.size();
  return snapshot;
}

uint64_t ArtifactCache::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

size_t ArtifactCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace bauplan::cache
