#include "cache/fingerprint.h"

#include <vector>

#include "common/hash.h"
#include "common/strings.h"

namespace bauplan::cache {

namespace {

/// Bumping this re-keys every cached artifact (cache format epoch).
constexpr std::string_view kKeySalt = "bpcache-v1";

/// Field separator that cannot appear ambiguously: every component is
/// length-prefixed before it, so "a"+"bc" never collides with "ab"+"c".
void AppendComponent(std::string& acc, std::string_view component) {
  acc += StrCat(component.size(), ":");
  acc += component;
}

}  // namespace

const std::string& NodeFingerprints::Find(const std::string& name) const {
  static const std::string kEmpty;
  auto it = key_of.find(name);
  return it == key_of.end() ? kEmpty : it->second;
}

NodeFingerprints ComputeNodeFingerprints(
    const pipeline::Dag& dag, const std::set<std::string>& selected,
    const catalog::Catalog* catalog, const std::string& ref) {
  NodeFingerprints fps;

  // Expectation specs per audited node, ordered by expectation name (the
  // execution order is topological, so collect once up front).
  std::map<std::string, std::map<std::string, std::string>> audits;
  for (const auto& name : dag.execution_order()) {
    const pipeline::PipelineNode& node = *dag.GetNode(name).node;
    if (node.kind != pipeline::NodeKind::kExpectation) continue;
    auto target = node.ExpectationTarget();
    if (target.ok()) audits[*target][name] = node.code;
  }

  for (const auto& name : dag.execution_order()) {
    if (selected.count(name) == 0) continue;
    const pipeline::DagNode& dag_node = dag.GetNode(name);
    const pipeline::PipelineNode& node = *dag_node.node;

    std::string acc;
    AppendComponent(acc, kKeySalt);
    // Code fingerprint: identity + logic + the package/env spec.
    AppendComponent(acc, node.kind == pipeline::NodeKind::kExpectation
                             ? "expectation"
                             : "sql_model");
    AppendComponent(acc, node.name);
    AppendComponent(acc, node.code);
    AppendComponent(acc, node.requirements.ToString());

    // Ordered input content ids. An unresolvable input makes the node
    // (and, through the chaining below, its whole cone) uncacheable.
    bool cacheable = true;
    for (const auto& up : dag_node.upstream_nodes) {
      if (selected.count(up) > 0) {
        const std::string& up_key = fps.Find(up);
        if (up_key.empty()) {
          cacheable = false;
          break;
        }
        AppendComponent(acc, StrCat("node:", up_key));
      } else {
        // Replayed upstream: materialized in the catalog; its content id
        // is the immutable table-metadata key at the pinned commit.
        auto metadata_key = catalog->GetTable(ref, up);
        if (!metadata_key.ok()) {
          cacheable = false;
          break;
        }
        AppendComponent(acc, StrCat("table:", *metadata_key));
      }
    }
    if (cacheable) {
      for (const auto& table : dag_node.source_tables) {
        auto metadata_key = catalog->GetTable(ref, table);
        if (!metadata_key.ok()) {
          cacheable = false;
          break;
        }
        AppendComponent(acc, StrCat("table:", *metadata_key));
      }
    }
    if (!cacheable) {
      fps.key_of[name] = "";
      continue;
    }

    // Post-audit contract: the specs vouching for this artifact key it.
    if (node.kind == pipeline::NodeKind::kSqlModel) {
      if (auto it = audits.find(name); it != audits.end()) {
        for (const auto& [audit_name, spec] : it->second) {
          AppendComponent(acc, StrCat("audit:", audit_name, "=", spec));
        }
      }
    }

    fps.key_of[name] = FingerprintHex(acc);
  }
  return fps;
}

}  // namespace bauplan::cache
