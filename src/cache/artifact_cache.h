#ifndef BAUPLAN_CACHE_ARTIFACT_CACHE_H_
#define BAUPLAN_CACHE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "columnar/table.h"
#include "common/bytes.h"
#include "common/thread_annotations.h"
#include "observability/metrics.h"
#include "pipeline/project.h"
#include "storage/object_store.h"

namespace bauplan::cache {

/// What one cached pipeline node produced: a post-audit table artifact
/// (SQL models) or a recorded audit outcome (expectations).
struct CachedArtifact {
  pipeline::NodeKind kind = pipeline::NodeKind::kSqlModel;
  /// SQL models only.
  columnar::Table table;
  /// Expectations only.
  bool expectation_passed = true;
  std::string details;
  int64_t output_rows = 0;

  Bytes Serialize() const;
  static Result<CachedArtifact> Deserialize(const Bytes& bytes);
};

/// Content-addressed differential artifact cache: memoizes per-node
/// pipeline outputs under their fingerprint keys (cache/fingerprint.h)
/// so a re-run can skip every unchanged node. Entries live in an
/// ObjectStore under "<prefix>/<key>" — hand it the platform's metered
/// lake store and the cache persists across processes, pays the modeled
/// object-storage latency, and composes with MeteredObjectStore,
/// FaultInjectionStore and the cost model like any other I/O.
///
/// Degradation contract: the cache can make a run faster, never fail it.
/// Every store error — probe get, insert put, eviction delete, index
/// list — degrades to a miss (or a skipped insert) and the run proceeds
/// as if the cache were cold. A corrupt entry is dropped from the index
/// on first touch.
///
/// Capacity: `budget_bytes` bounds the total serialized payload; 0
/// disables the cache entirely. Inserts evict least-recently-used
/// entries (deleting their objects) until the newcomer fits; an entry
/// larger than the whole budget is not stored.
///
/// Counters register as cache.{hits,misses,inserts,evictions} plus the
/// cache.bytes gauge; `skipped_invocations` is counted by the runner.
///
/// Thread safety: all operations take an internal mutex (probes happen
/// on the run driver thread, but fused bodies probe from inside a
/// function invocation).
class ArtifactCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    uint64_t bytes = 0;
    size_t entries = 0;
  };

  /// Does not own `store` or `registry` (private registry when null).
  ArtifactCache(storage::ObjectStore* store, uint64_t budget_bytes,
                observability::MetricsRegistry* registry = nullptr,
                std::string prefix = "cache");

  bool enabled() const { return budget_bytes_ > 0; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  /// Rebuilds the in-memory index from the store so a fresh process sees
  /// entries persisted by earlier ones. List errors degrade to an empty
  /// index; entries beyond the budget are evicted immediately (the
  /// budget may have shrunk since they were written).
  void LoadIndex();

  /// Returns the artifact cached under `key`, or nullopt on a miss. Any
  /// store or decode error is a miss.
  std::optional<CachedArtifact> Lookup(const std::string& key);

  /// Stores an artifact under `key`. Never fails: store errors, an
  /// over-budget payload, or a disabled cache all just skip the insert.
  void Insert(const std::string& key, const CachedArtifact& artifact);

  /// Deletes every cached entry (objects and index); returns how many
  /// were dropped. The only surface where a store error is reported.
  Result<size_t> Clear();

  Stats stats() const;
  uint64_t used_bytes() const;
  size_t entry_count() const;

 private:
  struct Entry {
    std::string key;
    uint64_t bytes = 0;
  };

  std::string ObjectKey(const std::string& key) const;
  void EvictUntilFits(uint64_t incoming) BAUPLAN_REQUIRES(mu_);
  void DropEntry(const std::string& key, bool count_eviction)
      BAUPLAN_REQUIRES(mu_);

  storage::ObjectStore* store_;
  uint64_t budget_bytes_;
  std::string prefix_;
  mutable std::mutex mu_;
  uint64_t used_bytes_ BAUPLAN_GUARDED_BY(mu_) = 0;
  std::list<Entry> lru_ BAUPLAN_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_
      BAUPLAN_GUARDED_BY(mu_);
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* hits_;
  observability::Counter* misses_;
  observability::Counter* inserts_;
  observability::Counter* evictions_;
  observability::Gauge* bytes_;
};

}  // namespace bauplan::cache

#endif  // BAUPLAN_CACHE_ARTIFACT_CACHE_H_
