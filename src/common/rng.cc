#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bauplan {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Pareto(double xmin, double alpha) {
  assert(xmin > 0 && alpha > 0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return xmin * std::pow(u, -1.0 / alpha);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(uint64_t k) const {
  assert(k >= 1 && k <= n_);
  if (k == 1) return cdf_[0];
  return cdf_[k - 1] - cdf_[k - 2];
}

}  // namespace bauplan
