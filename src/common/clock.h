#ifndef BAUPLAN_COMMON_CLOCK_H_
#define BAUPLAN_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace bauplan {

/// Time source abstraction. Production components take a Clock* so that the
/// serverless-runtime and object-storage simulators can run on virtual time
/// (deterministic, instant) while examples and the CLI run on wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() const = 0;

  /// Advances time by `micros`. On a wall clock this sleeps (bounded); on a
  /// simulated clock it advances virtual time instantly.
  virtual void AdvanceMicros(uint64_t micros) = 0;
};

/// Virtual clock: time only moves when AdvanceMicros is called. All bench
/// and test latencies are measured on this clock so results are exact and
/// deterministic.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_; }
  void AdvanceMicros(uint64_t micros) override { now_ += micros; }

 private:
  uint64_t now_;
};

/// Wall clock (microseconds since the Unix epoch); AdvanceMicros is a no-op (the
/// simulation layers must not actually sleep in-process).
class WallClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void AdvanceMicros(uint64_t micros) override;
};

/// Scoped stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock)
      : clock_(clock), start_(clock->NowMicros()) {}

  uint64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  void Reset() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  uint64_t start_;
};

/// Renders an epoch-micros timestamp as "YYYY-MM-DDTHH:MM:SSZ" (UTC).
std::string FormatTimestampMicros(uint64_t epoch_micros);

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_CLOCK_H_
