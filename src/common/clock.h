#ifndef BAUPLAN_COMMON_CLOCK_H_
#define BAUPLAN_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace bauplan {

/// Time source abstraction. Production components take a Clock* so that the
/// serverless-runtime and object-storage simulators can run on virtual time
/// (deterministic, instant) while examples and the CLI run on wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() const = 0;

  /// Advances time by `micros`. On a wall clock this sleeps (bounded); on a
  /// simulated clock it advances virtual time instantly.
  virtual void AdvanceMicros(uint64_t micros) = 0;
};

/// Virtual clock: time only moves when AdvanceMicros is called. All bench
/// and test latencies are measured on this clock so results are exact and
/// deterministic. Reads and advances are atomic so helper threads (e.g.
/// the parallel scan decoder) may observe it without racing.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(uint64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_;
};

/// Wraps a base clock with per-thread forked timelines, the substrate of
/// the parallel wavefront executor: while a fork is active on the calling
/// thread, NowMicros/AdvanceMicros operate on a thread-private virtual
/// time and the base clock is untouched, so concurrent function bodies
/// each accumulate their own latency instead of summing onto one global
/// clock. Threads without an active fork pass straight through to the
/// base, which keeps every sequential code path byte-for-byte identical.
class ForkableClock : public Clock {
 public:
  /// Does not own `base`.
  explicit ForkableClock(Clock* base) : base_(base) {}

  uint64_t NowMicros() const override;
  void AdvanceMicros(uint64_t micros) override;

  /// Starts a thread-private timeline at `start_micros`. Forks nest: an
  /// inner fork shadows the outer one until its EndFork.
  void BeginFork(uint64_t start_micros);

  /// Ends the innermost fork on this thread, returning its final virtual
  /// time. The elapsed fork time is NOT propagated to the base clock —
  /// the caller decides what (e.g. the max over parallel branches) to
  /// charge.
  uint64_t EndFork();

  /// True when the calling thread currently runs on a fork of this clock.
  bool ForkActive() const;

 private:
  Clock* base_;
};

/// Wall clock (microseconds since the Unix epoch); AdvanceMicros is a no-op (the
/// simulation layers must not actually sleep in-process).
class WallClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void AdvanceMicros(uint64_t micros) override;
};

/// Scoped stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock)
      : clock_(clock), start_(clock->NowMicros()) {}

  uint64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  void Reset() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  uint64_t start_;
};

/// Renders an epoch-micros timestamp as "YYYY-MM-DDTHH:MM:SSZ" (UTC).
std::string FormatTimestampMicros(uint64_t epoch_micros);

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_CLOCK_H_
