#include "common/clock.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

namespace bauplan {

namespace {

/// One active fork of a ForkableClock on this thread. A stack supports
/// nesting (a forked body that itself dispatches a wave degrades to the
/// sequential path, but bookkeeping stays well-defined either way).
struct ClockFork {
  const void* owner;
  uint64_t now;
};

thread_local std::vector<ClockFork> tls_clock_forks;

ClockFork* TopForkOf(const void* owner) {
  if (tls_clock_forks.empty()) return nullptr;
  ClockFork& top = tls_clock_forks.back();
  return top.owner == owner ? &top : nullptr;
}

}  // namespace

uint64_t ForkableClock::NowMicros() const {
  const ClockFork* fork = TopForkOf(this);
  return fork != nullptr ? fork->now : base_->NowMicros();
}

void ForkableClock::AdvanceMicros(uint64_t micros) {
  ClockFork* fork = TopForkOf(this);
  if (fork != nullptr) {
    fork->now += micros;
  } else {
    base_->AdvanceMicros(micros);
  }
}

void ForkableClock::BeginFork(uint64_t start_micros) {
  tls_clock_forks.push_back(ClockFork{this, start_micros});
}

uint64_t ForkableClock::EndFork() {
  ClockFork* fork = TopForkOf(this);
  if (fork == nullptr) return base_->NowMicros();  // unbalanced; degrade
  uint64_t end = fork->now;
  tls_clock_forks.pop_back();
  return end;
}

bool ForkableClock::ForkActive() const { return TopForkOf(this) != nullptr; }

uint64_t WallClock::NowMicros() const {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void WallClock::AdvanceMicros(uint64_t /*micros*/) {
  // Wall time advances by itself; simulated delays are tracked by the
  // latency models, not by sleeping.
}

std::string FormatTimestampMicros(uint64_t epoch_micros) {
  std::time_t secs = static_cast<std::time_t>(epoch_micros / 1000000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

}  // namespace bauplan
