#include "common/clock.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace bauplan {

uint64_t WallClock::NowMicros() const {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void WallClock::AdvanceMicros(uint64_t /*micros*/) {
  // Wall time advances by itself; simulated delays are tracked by the
  // latency models, not by sleeping.
}

std::string FormatTimestampMicros(uint64_t epoch_micros) {
  std::time_t secs = static_cast<std::time_t>(epoch_micros / 1000000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

}  // namespace bauplan
