#ifndef BAUPLAN_COMMON_THREAD_ANNOTATIONS_H_
#define BAUPLAN_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute shim (the usual abseil-style
/// macros, prefixed). Under clang with `-Wthread-safety` the compiler
/// statically checks that BAUPLAN_GUARDED_BY members are only touched
/// with their mutex held and that BAUPLAN_REQUIRES functions are only
/// called under lock; under other compilers the macros expand to nothing.

#if defined(__clang__) && defined(__has_attribute)
#define BAUPLAN_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define BAUPLAN_THREAD_ANNOTATION_IMPL(x)  // no-op
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BAUPLAN_GUARDED_BY(x) BAUPLAN_THREAD_ANNOTATION_IMPL(guarded_by(x))
#endif
#if __has_attribute(pt_guarded_by)
#define BAUPLAN_PT_GUARDED_BY(x) \
  BAUPLAN_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))
#endif
#if __has_attribute(requires_capability)
#define BAUPLAN_REQUIRES(...) \
  BAUPLAN_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#endif
#if __has_attribute(acquire_capability)
#define BAUPLAN_ACQUIRE(...) \
  BAUPLAN_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#endif
#if __has_attribute(release_capability)
#define BAUPLAN_RELEASE(...) \
  BAUPLAN_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#endif
#if __has_attribute(locks_excluded)
#define BAUPLAN_EXCLUDES(...) \
  BAUPLAN_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))
#endif
#if __has_attribute(no_thread_safety_analysis)
#define BAUPLAN_NO_THREAD_SAFETY_ANALYSIS \
  BAUPLAN_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)
#endif
#endif  // __clang__ && __has_attribute

#ifndef BAUPLAN_GUARDED_BY
#define BAUPLAN_GUARDED_BY(x)
#endif
#ifndef BAUPLAN_PT_GUARDED_BY
#define BAUPLAN_PT_GUARDED_BY(x)
#endif
#ifndef BAUPLAN_REQUIRES
#define BAUPLAN_REQUIRES(...)
#endif
#ifndef BAUPLAN_ACQUIRE
#define BAUPLAN_ACQUIRE(...)
#endif
#ifndef BAUPLAN_RELEASE
#define BAUPLAN_RELEASE(...)
#endif
#ifndef BAUPLAN_EXCLUDES
#define BAUPLAN_EXCLUDES(...)
#endif
#ifndef BAUPLAN_NO_THREAD_SAFETY_ANALYSIS
#define BAUPLAN_NO_THREAD_SAFETY_ANALYSIS
#endif

#endif  // BAUPLAN_COMMON_THREAD_ANNOTATIONS_H_
