#include "common/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "common/strings.h"

namespace bauplan {

std::string_view DiagnosticSeverityToString(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kError:
      return "error";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out =
      StrCat(DiagnosticSeverityToString(severity), "[", code, "]");
  if (!node.empty()) out = StrCat(out, " ", node);
  if (!location.empty()) out = StrCat(out, " (", location, ")");
  out = StrCat(out, ": ", message);
  if (!hint.empty()) out = StrCat(out, "\n  hint: ", hint);
  return out;
}

void DiagnosticEngine::Report(Diagnostic diagnostic) {
  if (diagnostic.severity == DiagnosticSeverity::kError) ++errors_;
  if (diagnostic.severity == DiagnosticSeverity::kWarning) ++warnings_;
  diagnostics_.push_back(std::move(diagnostic));
}

Diagnostic& DiagnosticEngine::Error(std::string code, std::string node,
                                    std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = DiagnosticSeverity::kError;
  d.node = std::move(node);
  d.message = std::move(message);
  Report(std::move(d));
  return diagnostics_.back();
}

Diagnostic& DiagnosticEngine::Warning(std::string code, std::string node,
                                      std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = DiagnosticSeverity::kWarning;
  d.node = std::move(node);
  d.message = std::move(message);
  Report(std::move(d));
  return diagnostics_.back();
}

std::string DiagnosticEngine::ToText() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  if (diagnostics_.empty()) {
    out += "check: clean\n";
  } else {
    out += StrCat("check: ", errors_, " error(s), ", warnings_,
                  " warning(s)\n");
  }
  return out;
}

std::string DiagnosticEngine::ToJson() const {
  std::string out = StrCat("{\"version\":1,\"errors\":", errors_,
                           ",\"warnings\":", warnings_,
                           ",\"diagnostics\":[");
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return std::tie(a->node, a->location, a->code,
                                     a->message) <
                            std::tie(b->node, b->location, b->code,
                                     b->message);
                   });
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Diagnostic& d = *sorted[i];
    if (i > 0) out += ",";
    out += StrCat("{\"code\":\"", EscapeJson(d.code), "\",\"severity\":\"",
                  DiagnosticSeverityToString(d.severity), "\",\"node\":\"",
                  EscapeJson(d.node), "\",\"location\":\"",
                  EscapeJson(d.location), "\",\"message\":\"",
                  EscapeJson(d.message), "\",\"hint\":\"",
                  EscapeJson(d.hint), "\"}");
  }
  out += "]}";
  return out;
}

void DiagnosticEngine::PromoteWarningsToErrors() {
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == DiagnosticSeverity::kWarning) {
      d.severity = DiagnosticSeverity::kError;
      --warnings_;
      ++errors_;
    }
  }
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  errors_ = 0;
  warnings_ = 0;
}

}  // namespace bauplan
