#include "common/diagnostic.h"

#include <cstdio>

#include "common/strings.h"

namespace bauplan {

namespace {

/// Minimal JSON string escaping (common cannot depend on the
/// observability exporter, which has its own copy for span attributes).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view DiagnosticSeverityToString(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kError:
      return "error";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out =
      StrCat(DiagnosticSeverityToString(severity), "[", code, "]");
  if (!node.empty()) out = StrCat(out, " ", node);
  if (!location.empty()) out = StrCat(out, " (", location, ")");
  out = StrCat(out, ": ", message);
  if (!hint.empty()) out = StrCat(out, "\n  hint: ", hint);
  return out;
}

void DiagnosticEngine::Report(Diagnostic diagnostic) {
  if (diagnostic.severity == DiagnosticSeverity::kError) ++errors_;
  if (diagnostic.severity == DiagnosticSeverity::kWarning) ++warnings_;
  diagnostics_.push_back(std::move(diagnostic));
}

Diagnostic& DiagnosticEngine::Error(std::string code, std::string node,
                                    std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = DiagnosticSeverity::kError;
  d.node = std::move(node);
  d.message = std::move(message);
  Report(std::move(d));
  return diagnostics_.back();
}

Diagnostic& DiagnosticEngine::Warning(std::string code, std::string node,
                                      std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = DiagnosticSeverity::kWarning;
  d.node = std::move(node);
  d.message = std::move(message);
  Report(std::move(d));
  return diagnostics_.back();
}

std::string DiagnosticEngine::ToText() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  if (diagnostics_.empty()) {
    out += "check: clean\n";
  } else {
    out += StrCat("check: ", errors_, " error(s), ", warnings_,
                  " warning(s)\n");
  }
  return out;
}

std::string DiagnosticEngine::ToJson() const {
  std::string out = StrCat("{\"version\":1,\"errors\":", errors_,
                           ",\"warnings\":", warnings_,
                           ",\"diagnostics\":[");
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += StrCat("{\"code\":\"", EscapeJson(d.code), "\",\"severity\":\"",
                  DiagnosticSeverityToString(d.severity), "\",\"node\":\"",
                  EscapeJson(d.node), "\",\"location\":\"",
                  EscapeJson(d.location), "\",\"message\":\"",
                  EscapeJson(d.message), "\",\"hint\":\"",
                  EscapeJson(d.hint), "\"}");
  }
  out += "]}";
  return out;
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  errors_ = 0;
  warnings_ = 0;
}

}  // namespace bauplan
