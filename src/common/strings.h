#ifndef BAUPLAN_COMMON_STRINGS_H_
#define BAUPLAN_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace bauplan {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Streams all arguments into one string; the lightweight stand-in for
/// absl::StrCat (gcc 12 lacks std::format).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Strict base-10 integer parse of the whole string: optional leading
/// '-', digits only, no whitespace, no trailing junk, range-checked.
/// Returns false (leaving `*out` untouched) on any violation — the
/// checked replacement for atoi/atoll, which silently return 0 or
/// overflow.
bool ParseInt64(std::string_view s, int64_t* out);

/// Strict floating-point parse of the whole string (decimal or
/// scientific notation; no whitespace or trailing junk). "inf"/"nan"
/// are rejected: every caller is a CLI flag where they are typos.
bool ParseDouble(std::string_view s, double* out);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and the common control characters get their two-char
/// escapes, every other byte below 0x20 becomes \u00XX. The single
/// shared implementation behind diagnostics, trace export, and metric
/// rendering.
std::string EscapeJson(std::string_view s);

/// Formats a byte count with a binary-scaled unit suffix ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

/// Formats a duration given in microseconds with an adaptive unit
/// ("320 us", "4.1 ms", "2.7 s").
std::string FormatDurationMicros(uint64_t micros);

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_STRINGS_H_
