#ifndef BAUPLAN_COMMON_RESULT_H_
#define BAUPLAN_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <type_traits>
#include <variant>

#include "common/status.h"

namespace bauplan {

/// Holds either a value of type T or an error Status (never both, never
/// neither). The return type of fallible APIs that produce a value:
///
///   Result<Table> ReadTable(...);
///   BAUPLAN_ASSIGN_OR_RETURN(Table t, ReadTable(...));
template <typename T>
class Result {
 public:
  /// Constructs an error result. The status must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  /// Converting constructor for anything convertible to T (e.g.
  /// shared_ptr<Derived> -> Result<shared_ptr<Base>>).
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U&&, T> &&
                !std::is_same_v<std::decay_t<U>, T> &&
                !std::is_same_v<std::decay_t<U>, Status> &&
                !std::is_same_v<std::decay_t<U>, Result<T>>>>
  Result(U&& value)  // NOLINT(google-explicit-constructor)
      : repr_(T(std::forward<U>(value))) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// The held value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  /// Dereferencing an rvalue Result returns the value BY VALUE, so
  /// `for (auto& x : *SomeCall())` binds the loop to a lifetime-extended
  /// temporary instead of dangling into the destroyed Result.
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_RESULT_H_
