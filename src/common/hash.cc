#include "common/hash.h"

#include <cstdio>

namespace bauplan {

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

std::string FingerprintHex(std::string_view content) {
  uint64_t h = Fnv1a64(content);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace bauplan
