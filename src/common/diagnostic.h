#ifndef BAUPLAN_COMMON_DIAGNOSTIC_H_
#define BAUPLAN_COMMON_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bauplan {

/// How bad a diagnostic is. Errors make an analysis fail (and `bauplan
/// check` exit 1); warnings and notes are advisory.
enum class DiagnosticSeverity {
  kError = 0,
  kWarning = 1,
  kNote = 2,
};

/// Canonical lowercase name ("error", "warning", "note").
std::string_view DiagnosticSeverityToString(DiagnosticSeverity severity);

/// One structured finding from a static analysis pass: a stable
/// machine-readable code (BP1001, BP2002, ...), a severity, the pipeline
/// node it anchors to, a source location, the human-readable message, and
/// an optional fix-it hint. Codes are part of the tool's contract — tests
/// and downstream tooling match on them, so a code's meaning never
/// changes once shipped.
struct Diagnostic {
  std::string code;
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  /// Pipeline node the diagnostic anchors to; empty = project-level.
  std::string node;
  /// Source location in the project's one-file-per-node layout
  /// ("trips.sql", "expectations.conf: trips_expectation").
  std::string location;
  std::string message;
  /// Optional fix-it hint ("did you mean 'taxi_table'?").
  std::string hint;

  /// "error[BP1001] trips (trips.sql): message" plus an indented hint
  /// line when a hint is present.
  std::string ToString() const;
};

/// Collects diagnostics emitted by analysis passes and renders them as
/// text or JSON. Insertion order is preserved (passes run in a
/// deterministic order, so output is stable and golden-testable).
class DiagnosticEngine {
 public:
  void Report(Diagnostic diagnostic);

  /// Convenience emitters; the returned reference stays valid until the
  /// next Report/Clear and lets callers attach a hint or location.
  Diagnostic& Error(std::string code, std::string node,
                    std::string message);
  Diagnostic& Warning(std::string code, std::string node,
                      std::string message);

  const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  size_t error_count() const { return errors_; }
  size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// One diagnostic per line (see Diagnostic::ToString) followed by a
  /// "check: N error(s), M warning(s)" summary line; "check: clean" when
  /// nothing was reported.
  std::string ToText() const;

  /// Deterministic JSON rendering:
  /// {"version":1,"errors":N,"warnings":M,"diagnostics":[{...},...]}.
  /// Diagnostics are rendered sorted by (node, location, code, message)
  /// so the output is byte-stable regardless of pass emission order;
  /// ToText keeps insertion order (it mirrors how the passes ran).
  std::string ToJson() const;

  /// Reclassifies every warning as an error (`check --werror`). Counts
  /// are updated; notes are untouched.
  void PromoteWarningsToErrors();

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
};

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_DIAGNOSTIC_H_
