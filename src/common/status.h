#ifndef BAUPLAN_COMMON_STATUS_H_
#define BAUPLAN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace bauplan {

/// Machine-readable category of an error carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kConflict,
  kFailedPrecondition,
  kOutOfRange,
  kNotImplemented,
  kResourceExhausted,
  kInternal,
};

/// Returns the canonical name of a status code ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// Every fallible API in this codebase returns a Status (or a Result<T>,
/// which wraps one); exceptions are not used. The idiom follows
/// arrow::Status / rocksdb::Status. An OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "<Code>: <message>" rendering for logs and error chains.
  std::string ToString() const;

  /// Prepends context to the message, keeping the code: useful when a
  /// low-level error bubbles through a higher-level operation.
  Status WithContext(std::string_view context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace bauplan

/// Propagates a non-OK Status to the caller.
#define BAUPLAN_RETURN_NOT_OK(expr)           \
  do {                                        \
    ::bauplan::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (false)

#define BAUPLAN_CONCAT_IMPL(x, y) x##y
#define BAUPLAN_CONCAT(x, y) BAUPLAN_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status to the caller.
#define BAUPLAN_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  BAUPLAN_ASSIGN_OR_RETURN_IMPL(                                  \
      BAUPLAN_CONCAT(_bauplan_result_, __LINE__), lhs, rexpr)

#define BAUPLAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#endif  // BAUPLAN_COMMON_STATUS_H_
