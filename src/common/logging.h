#ifndef BAUPLAN_COMMON_LOGGING_H_
#define BAUPLAN_COMMON_LOGGING_H_

#include <string>
#include <string_view>

namespace bauplan {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr as "[LEVEL] message" if `level` passes the
/// threshold.
void Log(LogLevel level, std::string_view message);

inline void LogDebug(std::string_view m) { Log(LogLevel::kDebug, m); }
inline void LogInfo(std::string_view m) { Log(LogLevel::kInfo, m); }
inline void LogWarning(std::string_view m) { Log(LogLevel::kWarning, m); }
inline void LogError(std::string_view m) { Log(LogLevel::kError, m); }

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_LOGGING_H_
