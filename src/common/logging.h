#ifndef BAUPLAN_COMMON_LOGGING_H_
#define BAUPLAN_COMMON_LOGGING_H_

#include <optional>
#include <string>
#include <string_view>

namespace bauplan {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warn" / "warning" / "error" (any case).
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// Applies the BAUPLAN_LOG_LEVEL environment variable if set to a valid
/// level name; returns whether it was applied. The CLI calls this on
/// startup; libraries never read the environment on their own.
bool InitLogLevelFromEnv();

/// Writes one line to stderr as "[LEVEL] message" if `level` passes the
/// threshold. The write is a single formatted buffer under a mutex, so
/// concurrent callers never interleave partial lines.
void Log(LogLevel level, std::string_view message);

inline void LogDebug(std::string_view m) { Log(LogLevel::kDebug, m); }
inline void LogInfo(std::string_view m) { Log(LogLevel::kInfo, m); }
inline void LogWarning(std::string_view m) { Log(LogLevel::kWarning, m); }
inline void LogError(std::string_view m) { Log(LogLevel::kError, m); }

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_LOGGING_H_
