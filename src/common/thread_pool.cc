#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace bauplan {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() BAUPLAN_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared claim/completion state. `done` is updated under the state
  // mutex so finished morsel outputs happen-before the caller's reads.
  struct State {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    int64_t done = 0;
  };
  auto state = std::make_shared<State>();

  auto drain = [state, n, fn]() {
    int64_t index;
    while ((index = state->next.fetch_add(1, std::memory_order_relaxed)) <
           n) {
      fn(index);
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->done == n) state->cv.notify_all();
    }
  };

  int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), n - 1);
  for (int64_t i = 0; i < helpers; ++i) Submit(drain);
  drain();  // the caller claims indices too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state, n]() BAUPLAN_REQUIRES(state->mu) {
    return state->done == n;
  });
}

}  // namespace bauplan
