#ifndef BAUPLAN_COMMON_BYTES_H_
#define BAUPLAN_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bauplan {

/// Owned byte buffer used for file payloads and object-store values.
using Bytes = std::vector<uint8_t>;

/// Appends little-endian fixed-width and length-prefixed values to a byte
/// buffer. The (de)serialization workhorse for the BPF file format, table
/// metadata, and catalog commits.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed (u32) string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Raw bytes, no prefix. A zero-size put is a no-op (an empty vector's
  /// data() may be null, and null + 0 arithmetic is undefined).
  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  size_t size() const { return buf_.size(); }
  const Bytes& buffer() const { return buf_; }
  Bytes&& TakeBuffer() { return std::move(buf_); }

 private:
  void PutFixed(const void* v, size_t n) { PutRaw(v, n); }

  Bytes buf_;
};

/// Bounds-checked reader over a byte range; every getter returns a Result so
/// corrupt files surface as IOError instead of undefined behaviour.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const Bytes& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  Result<uint8_t> GetU8() { return GetFixed<uint8_t>(); }
  Result<uint32_t> GetU32() { return GetFixed<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>(); }
  Result<int32_t> GetI32() { return GetFixed<int32_t>(); }
  Result<int64_t> GetI64() { return GetFixed<int64_t>(); }
  Result<double> GetDouble() { return GetFixed<double>(); }
  Result<bool> GetBool() {
    BAUPLAN_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }

  Result<std::string> GetString() {
    BAUPLAN_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (len > Remaining()) {
      return Status::IOError("truncated string in binary payload");
    }
    if (len == 0) return std::string();
    std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
  }

  /// Copies `n` raw bytes out. A zero-size get is a no-op (the underlying
  /// buffer may be empty with a null data pointer).
  Status GetRaw(void* out, size_t n) {
    if (n > Remaining()) {
      return Status::IOError("truncated binary payload");
    }
    if (n == 0) return Status::OK();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > Remaining()) return Status::IOError("skip past end of payload");
    pos_ += n;
    return Status::OK();
  }

  Status SeekTo(size_t pos) {
    if (pos > size_) return Status::IOError("seek past end of payload");
    pos_ = pos;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> GetFixed() {
    if (sizeof(T) > Remaining()) {
      return Status::IOError("truncated binary payload");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_BYTES_H_
