#ifndef BAUPLAN_COMMON_HASH_H_
#define BAUPLAN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bauplan {

/// FNV-1a 64-bit hash of a byte range.
uint64_t Fnv1a64(const void* data, size_t size);

/// FNV-1a 64-bit hash of a string.
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Order-dependent combination of two 64-bit hashes (boost-style mix).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Content fingerprint rendered as 16 lowercase hex chars. Used to
/// fingerprint pipeline snapshots for the run registry (code-is-data
/// reproducibility, paper section 4.4.1).
std::string FingerprintHex(std::string_view content);

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_HASH_H_
