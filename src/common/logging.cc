#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.h"

namespace bauplan {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Serializes the stderr writes so concurrent callers (parallel wavefront
/// bodies) never interleave partial lines.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

bool InitLogLevelFromEnv() {
  const char* value = std::getenv("BAUPLAN_LOG_LEVEL");
  if (value == nullptr) return false;
  auto level = ParseLogLevel(value);
  if (!level.has_value()) return false;
  SetLogLevel(*level);
  return true;
}

void Log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // One formatted buffer, one write, under one lock: concurrent callers
  // cannot interleave partial lines.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[";
  line += LevelName(level);
  line += "] ";
  line.append(message.data(), message.size());
  line += "\n";
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace bauplan
