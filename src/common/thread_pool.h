#ifndef BAUPLAN_COMMON_THREAD_POOL_H_
#define BAUPLAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace bauplan {

/// Fixed-size worker pool backing morsel-driven query execution (and any
/// other data-parallel loop). Workers block on a shared queue; the pool
/// joins them on destruction after draining outstanding tasks.
///
/// Determinism contract: ParallelFor only changes *which thread* runs each
/// index, never the index set or the caller's merge order. Callers that
/// partition work into fixed morsels and combine partial results by morsel
/// index therefore produce bit-identical output for any pool size,
/// including zero workers (fully inline execution).
class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 is valid and makes every ParallelFor
  /// run inline on the calling thread.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1), blocking until all calls return. The calling
  /// thread participates, so progress is guaranteed even when all workers
  /// are busy elsewhere. With no workers the indices run inline in order.
  /// Tasks must be independent; errors are the callback's business
  /// (collect per-index Status and inspect after the call).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ BAUPLAN_GUARDED_BY(mu_);
  bool stopping_ BAUPLAN_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_THREAD_POOL_H_
