#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace bauplan {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (std::isnan(value) || std::isinf(value)) return false;
  *out = value;
  return true;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB",
                                           "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDurationMicros(uint64_t micros) {
  char buf[64];
  if (micros < 1000) {
    std::snprintf(buf, sizeof(buf), "%llu us",
                  static_cast<unsigned long long>(micros));
  } else if (micros < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f ms",
                  static_cast<double>(micros) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s",
                  static_cast<double>(micros) / 1e6);
  }
  return buf;
}

}  // namespace bauplan
