#ifndef BAUPLAN_COMMON_RNG_H_
#define BAUPLAN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace bauplan {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All simulation in this codebase draws from Rng so that every
/// experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Standard normal via Box-Muller; then scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Pareto (type I) sample: xmin * U^(-1/alpha) with tail index alpha > 0.
  /// This is the heavy-tailed distribution the paper's Fig. 1 workloads
  /// follow (power-law with CCDF (x/xmin)^-alpha for x >= xmin).
  double Pareto(double xmin, double alpha);

  /// Log-normal with parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

 private:
  uint64_t state_[4];
};

/// Zipf(s) sampler over ranks {1..n}: P(k) proportional to k^-s.
/// Used for package-popularity simulation (SOCK-style power law in package
/// utilization, paper section 4.5). Precomputes the CDF once; sampling is a
/// binary search.
class ZipfDistribution {
 public:
  /// Builds the distribution over n ranks with exponent s > 0.
  ZipfDistribution(uint64_t n, double s);

  /// Draws a rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// The probability mass of rank k (1-based).
  double Pmf(uint64_t k) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace bauplan

#endif  // BAUPLAN_COMMON_RNG_H_
