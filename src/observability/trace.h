#ifndef BAUPLAN_OBSERVABILITY_TRACE_H_
#define BAUPLAN_OBSERVABILITY_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace bauplan::observability {

/// Span kinds used by the platform. Free-form strings are allowed; these
/// constants name the hierarchy the pipeline and query paths emit:
///   run -> wave -> node -> {scan, sql, expectation, spill}
///   query -> plan -> execute
namespace span_kind {
inline constexpr const char* kRun = "run";
inline constexpr const char* kWave = "wave";
inline constexpr const char* kNode = "node";
inline constexpr const char* kInvocation = "invocation";
inline constexpr const char* kScan = "scan";
inline constexpr const char* kSql = "sql";
inline constexpr const char* kExpectation = "expectation";
inline constexpr const char* kSpill = "spill";
inline constexpr const char* kQuery = "query";
inline constexpr const char* kPlan = "plan";
inline constexpr const char* kExecute = "execute";
/// One span per physical query operator (filter, aggregate, join, ...),
/// children of the execute span.
inline constexpr const char* kOperator = "operator";
/// One span per streaming pipeline (the streaming engine groups its
/// operator spans under the pipeline that drives them; breaker operators
/// parent the pipelines that feed them).
inline constexpr const char* kPipeline = "pipeline";
/// Static analysis: one analysis span per checked project, one pass
/// span per analyzer pass (structural, schema, expectation).
inline constexpr const char* kAnalysis = "analysis";
inline constexpr const char* kPass = "pass";
/// Differential artifact cache, children of node (or fused sql) spans:
/// probe = key lookup + fetch, materialize = handing the cached artifact
/// to downstream consumers (overlay add, or spill-store put).
inline constexpr const char* kCacheProbe = "cache.probe";
inline constexpr const char* kCacheMaterialize = "cache.materialize";
}  // namespace span_kind

/// One timed interval on the simulated clock. Parent links form the
/// hierarchy; id 0 means "no span" (roots have parent_id 0).
struct Span {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  std::string kind;
  uint64_t start_micros = 0;
  uint64_t end_micros = 0;
  /// Sorted-on-export key/value annotations (worker, start kind, bytes).
  std::vector<std::pair<std::string, std::string>> attributes;

  uint64_t DurationMicros() const {
    return end_micros > start_micros ? end_micros - start_micros : 0;
  }
};

/// A finished, self-contained span tree: the root plus every descendant,
/// ids renumbered in deterministic depth-first order (1 = root). This is
/// what RunReport embeds and what `run --trace-out` serializes.
struct Trace {
  static constexpr int kSchemaVersion = 2;

  uint64_t root_id = 0;
  std::vector<Span> spans;

  const Span* root() const { return Find(root_id); }
  const Span* Find(uint64_t id) const;
  std::vector<const Span*> ChildrenOf(uint64_t id) const;

  /// Root-span duration; the run makespan by construction.
  uint64_t TotalMicros() const;

  /// Sum of the durations of all spans with `kind` (no double counting
  /// across levels is attempted; callers pick leaf kinds).
  uint64_t SumByKind(const std::string& kind) const;

  /// Deterministic JSON rendering:
  /// {"version":2,"root_id":1,"spans":[{...},...]} with spans in the
  /// renumbered depth-first order and attributes sorted by key.
  std::string ToJson() const;
};

/// Collects spans stamped from a Clock. Thread-safe: parallel wavefront
/// bodies open scan/sql/spill spans concurrently from forked timelines,
/// so timestamps are deterministic even though arrival order is not;
/// ExtractTrace canonicalizes ordering and ids afterwards.
class Tracer {
 public:
  /// Does not own `clock`. Reads go through it (a ForkableClock yields
  /// the calling thread's forked time inside wave bodies).
  explicit Tracer(const Clock* clock) : clock_(clock) {}

  /// Opens a span stamped with the current clock time. parent 0 = root.
  uint64_t StartSpan(const std::string& name, const std::string& kind,
                     uint64_t parent_id = 0);

  /// Opens a span at an explicit start time (wavefront bookkeeping).
  uint64_t StartSpanAt(const std::string& name, const std::string& kind,
                       uint64_t parent_id, uint64_t start_micros);

  /// Closes a span at the current clock time.
  void EndSpan(uint64_t id);
  void EndSpanAt(uint64_t id, uint64_t end_micros);

  /// Rewrites a span's interval (the wavefront executor learns a member's
  /// final schedule only after the wave completes).
  void SetSpanInterval(uint64_t id, uint64_t start_micros,
                       uint64_t end_micros);

  /// Reparents a span (a wave member bounced on resources re-dispatches
  /// under a later wave's span).
  void SetSpanParent(uint64_t id, uint64_t parent_id);

  void AddAttribute(uint64_t id, const std::string& key,
                    const std::string& value);

  /// Shifts every strict descendant of `id` by `delta_micros` — used to
  /// slide fork-recorded child spans to where the member actually ran
  /// once per-worker serialization is known.
  void ShiftDescendants(uint64_t id, int64_t delta_micros);

  /// Removes the subtree rooted at `root_id` from the tracer and returns
  /// it as a canonical Trace: spans ordered depth-first with children
  /// sorted by (start, kind, name), ids renumbered from 1.
  Trace ExtractTrace(uint64_t root_id);

  /// Spans currently held (finished or not); test introspection.
  size_t span_count() const;

 private:
  const Clock* clock_;
  mutable std::mutex mu_;
  uint64_t next_id_ BAUPLAN_GUARDED_BY(mu_) = 1;
  std::vector<Span> spans_ BAUPLAN_GUARDED_BY(mu_);
};

/// RAII helper: ends the span on scope exit.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const std::string& name,
             const std::string& kind, uint64_t parent_id = 0)
      : tracer_(tracer),
        id_(tracer == nullptr ? 0
                              : tracer->StartSpan(name, kind, parent_id)) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  uint64_t id_;
};

}  // namespace bauplan::observability

#endif  // BAUPLAN_OBSERVABILITY_TRACE_H_
