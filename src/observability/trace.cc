#include "observability/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "common/strings.h"

namespace bauplan::observability {

// ----------------------------------------------------------------- Trace

const Span* Trace::Find(uint64_t id) const {
  for (const Span& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<const Span*> Trace::ChildrenOf(uint64_t id) const {
  std::vector<const Span*> children;
  for (const Span& span : spans) {
    if (span.parent_id == id && span.id != id) children.push_back(&span);
  }
  return children;
}

uint64_t Trace::TotalMicros() const {
  const Span* r = root();
  return r == nullptr ? 0 : r->DurationMicros();
}

uint64_t Trace::SumByKind(const std::string& kind) const {
  uint64_t total = 0;
  for (const Span& span : spans) {
    if (span.kind == kind) total += span.DurationMicros();
  }
  return total;
}

std::string Trace::ToJson() const {
  std::ostringstream out;
  out << "{\"version\":" << kSchemaVersion << ",\"root_id\":" << root_id
      << ",\"spans\":[";
  bool first_span = true;
  for (const Span& span : spans) {
    if (!first_span) out << ",";
    first_span = false;
    out << "{\"id\":" << span.id << ",\"parent_id\":" << span.parent_id
        << ",\"name\":\"" << EscapeJson(span.name) << "\",\"kind\":\""
        << EscapeJson(span.kind) << "\",\"start_micros\":"
        << span.start_micros << ",\"end_micros\":" << span.end_micros
        << ",\"duration_micros\":" << span.DurationMicros();
    if (!span.attributes.empty()) {
      auto sorted = span.attributes;
      std::sort(sorted.begin(), sorted.end());
      out << ",\"attributes\":{";
      bool first_attr = true;
      for (const auto& [key, value] : sorted) {
        if (!first_attr) out << ",";
        first_attr = false;
        out << "\"" << EscapeJson(key) << "\":\"" << EscapeJson(value)
            << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------- Tracer

uint64_t Tracer::StartSpan(const std::string& name, const std::string& kind,
                           uint64_t parent_id) {
  return StartSpanAt(name, kind, parent_id, clock_->NowMicros());
}

uint64_t Tracer::StartSpanAt(const std::string& name,
                             const std::string& kind, uint64_t parent_id,
                             uint64_t start_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = next_id_++;
  span.parent_id = parent_id;
  span.name = name;
  span.kind = kind;
  span.start_micros = start_micros;
  span.end_micros = start_micros;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) { EndSpanAt(id, clock_->NowMicros()); }

void Tracer::EndSpanAt(uint64_t id, uint64_t end_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& span : spans_) {
    if (span.id == id) {
      span.end_micros = end_micros;
      return;
    }
  }
}

void Tracer::SetSpanInterval(uint64_t id, uint64_t start_micros,
                             uint64_t end_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& span : spans_) {
    if (span.id == id) {
      span.start_micros = start_micros;
      span.end_micros = end_micros;
      return;
    }
  }
}

void Tracer::SetSpanParent(uint64_t id, uint64_t parent_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& span : spans_) {
    if (span.id == id) {
      span.parent_id = parent_id;
      return;
    }
  }
}

void Tracer::AddAttribute(uint64_t id, const std::string& key,
                          const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Span& span : spans_) {
    if (span.id == id) {
      span.attributes.emplace_back(key, value);
      return;
    }
  }
}

void Tracer::ShiftDescendants(uint64_t id, int64_t delta_micros) {
  if (delta_micros == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Collect the strict descendants via the parent links (the graph is a
  // forest and span counts per run are small).
  std::map<uint64_t, std::vector<Span*>> children;
  for (Span& span : spans_) children[span.parent_id].push_back(&span);
  std::vector<uint64_t> frontier{id};
  while (!frontier.empty()) {
    uint64_t current = frontier.back();
    frontier.pop_back();
    auto it = children.find(current);
    if (it == children.end()) continue;
    for (Span* child : it->second) {
      if (child->id == current) continue;
      child->start_micros = static_cast<uint64_t>(
          static_cast<int64_t>(child->start_micros) + delta_micros);
      child->end_micros = static_cast<uint64_t>(
          static_cast<int64_t>(child->end_micros) + delta_micros);
      frontier.push_back(child->id);
    }
  }
}

Trace Tracer::ExtractTrace(uint64_t root_id) {
  std::lock_guard<std::mutex> lock(mu_);

  // Collect the subtree (ids are unique, the graph is a forest).
  std::map<uint64_t, std::vector<const Span*>> children;
  const Span* root = nullptr;
  for (const Span& span : spans_) {
    if (span.id == root_id) root = &span;
    children[span.parent_id].push_back(&span);
  }
  Trace trace;
  if (root == nullptr) return trace;

  // Depth-first from the root, children in (start, kind, name) order —
  // canonical regardless of the thread arrival order during a wave.
  auto by_schedule = [](const Span* a, const Span* b) {
    return std::tie(a->start_micros, a->kind, a->name, a->id) <
           std::tie(b->start_micros, b->kind, b->name, b->id);
  };
  std::vector<std::pair<const Span*, uint64_t>> stack;  // {span, new parent}
  stack.emplace_back(root, 0);
  std::vector<uint64_t> extracted_ids;
  uint64_t next_new_id = 1;
  while (!stack.empty()) {
    auto [span, new_parent] = stack.back();
    stack.pop_back();
    Span copy = *span;
    extracted_ids.push_back(span->id);
    copy.parent_id = new_parent;
    copy.id = next_new_id++;
    uint64_t new_id = copy.id;
    trace.spans.push_back(std::move(copy));
    auto it = children.find(span->id);
    if (it != children.end()) {
      auto kids = it->second;
      std::sort(kids.begin(), kids.end(), by_schedule);
      // Reverse push so the stack pops them in sorted order.
      for (auto kid = kids.rbegin(); kid != kids.rend(); ++kid) {
        stack.emplace_back(*kid, new_id);
      }
    }
  }
  trace.root_id = 1;

  // Remove the extracted spans from the working set.
  std::sort(extracted_ids.begin(), extracted_ids.end());
  spans_.erase(std::remove_if(spans_.begin(), spans_.end(),
                              [&](const Span& span) {
                                return std::binary_search(
                                    extracted_ids.begin(),
                                    extracted_ids.end(), span.id);
                              }),
               spans_.end());
  return trace;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

}  // namespace bauplan::observability
