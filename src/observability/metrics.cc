#include "observability/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/strings.h"

#include "observability/trace.h"

namespace bauplan::observability {

// ---------------------------------------------------------- DoubleCounter

void DoubleCounter::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

double DoubleCounter::Value() const {
  return value_.load(std::memory_order_relaxed);
}

void DoubleCounter::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Gauge

void Gauge::SetMax(int64_t value) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// -------------------------------------------------------------- Histogram

namespace {
size_t BucketFor(uint64_t value) {
  size_t bucket = 0;
  while (value > 0 && bucket + 1 < Histogram::kNumBuckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

/// Atomic min via CAS (no std::atomic_fetch_min until C++26).
void UpdateMin(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void UpdateMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  UpdateMin(min_, value);
  UpdateMax(max_, value);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snapshot.min = snapshot.count == 0 ? 0 : min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------- MetricsSnapshot

namespace {
/// Integral values print without a decimal point so counter dumps stay
/// readable and goldens stable; true doubles keep 6 significant digits.
std::string FormatMetricValue(double value) {
  int64_t as_int = static_cast<int64_t>(value);
  if (static_cast<double>(as_int) == value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, as_int);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}
}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : values) {
    out << name << " " << FormatMetricValue(value) << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out << ",";
    first = false;
    out << "\"" << EscapeJson(name) << "\":" << FormatMetricValue(value);
  }
  out << "}";
  return out.str();
}

// -------------------------------------------------------- MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

DoubleCounter* MetricsRegistry::GetDoubleCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = double_counters_[name];
  if (slot == nullptr) slot = std::make_unique<DoubleCounter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, counter] : double_counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.values[name] = static_cast<double>(counter->Value());
  }
  for (const auto& [name, counter] : double_counters_) {
    snapshot.values[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.values[name] = static_cast<double>(gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot h = histogram->GetSnapshot();
    snapshot.values[name + ".count"] = static_cast<double>(h.count);
    snapshot.values[name + ".sum"] = static_cast<double>(h.sum);
    snapshot.values[name + ".min"] = static_cast<double>(h.min);
    snapshot.values[name + ".max"] = static_cast<double>(h.max);
  }
  return snapshot;
}

size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + double_counters_.size() + gauges_.size() +
         histograms_.size();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace bauplan::observability
