#ifndef BAUPLAN_OBSERVABILITY_METRICS_H_
#define BAUPLAN_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace bauplan::observability {

/// Monotonic integer counter. Increments are lock-free; safe from any
/// thread (parallel wavefront bodies hammer these).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Floating-point accumulator (cost credits). CAS loop keeps adds exact
/// under concurrency.
class DoubleCounter {
 public:
  void Add(double delta);
  double Value() const;
  void Reset();

 private:
  std::atomic<double> value_{0.0};
};

/// Last-value instrument (pool sizes, bytes in use).
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Raises the gauge to `value` if it is higher (peak tracking).
  void SetMax(int64_t value);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples (latencies in micros,
/// payload sizes in bytes). Observations are lock-free.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  // bucket i: [2^(i-1), 2^i)

  void Observe(uint64_t value);

  struct Snapshot {
    int64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
  };
  Snapshot GetSnapshot() const;
  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

/// Flat name -> value dump of a registry at one instant. Histograms
/// expand into `<name>.count/.sum/.min/.max`.
struct MetricsSnapshot {
  std::map<std::string, double> values;

  double Get(const std::string& name, double fallback = 0.0) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }

  /// Deterministic "name value" lines, sorted by name.
  std::string ToText() const;
  /// Deterministic {"name":value,...} rendering, sorted by name.
  std::string ToJson() const;
};

/// Process-wide (or per-platform) registry of named instruments. Getting
/// an instrument registers it on first use and returns the same pointer
/// for the same name afterwards, so components share counters by naming
/// convention ("scheduler.locality_hits", "store.spill.puts", ...).
/// Registration takes a lock; the returned instruments are updated
/// lock-free and stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  DoubleCounter* GetDoubleCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every registered instrument (names stay registered).
  void Reset();

  MetricsSnapshot Snapshot() const;

  size_t instrument_count() const;

  /// The process-wide default registry. Components use it only when no
  /// registry is injected; each Bauplan platform owns a private registry
  /// so that benches running several platforms do not mix counters.
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      BAUPLAN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<DoubleCounter>> double_counters_
      BAUPLAN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      BAUPLAN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      BAUPLAN_GUARDED_BY(mu_);
};

}  // namespace bauplan::observability

#endif  // BAUPLAN_OBSERVABILITY_METRICS_H_
