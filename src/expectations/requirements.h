#ifndef BAUPLAN_EXPECTATIONS_REQUIREMENTS_H_
#define BAUPLAN_EXPECTATIONS_REQUIREMENTS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace bauplan::expectations {

/// One pinned package dependency — the C++ analog of the paper's
/// `@requirements({'pandas': '2.0.0'})` decorator. Because the platform
/// controls OS, container and interpreter, packages are the only
/// reproducibility degree of freedom left to the user (section 4.4.1).
struct PackageRequirement {
  std::string name;
  std::string version;

  bool operator==(const PackageRequirement& o) const {
    return name == o.name && version == o.version;
  }
  bool operator<(const PackageRequirement& o) const {
    return name != o.name ? name < o.name : version < o.version;
  }

  std::string ToString() const { return name + "==" + version; }

  /// Parses "name==version"; InvalidArgument otherwise.
  static Result<PackageRequirement> Parse(std::string_view text);
};

/// The pinned dependency set of one pipeline node, in deterministic
/// (sorted, deduplicated) order so fingerprints are stable.
class RequirementSet {
 public:
  RequirementSet() = default;
  explicit RequirementSet(std::vector<PackageRequirement> reqs);

  void Add(PackageRequirement req);
  const std::vector<PackageRequirement>& items() const { return items_; }
  bool empty() const { return items_.empty(); }

  /// "name==ver,name==ver" canonical rendering (part of run fingerprints).
  std::string ToString() const;

  static Result<RequirementSet> Parse(std::string_view text);

 private:
  std::vector<PackageRequirement> items_;
};

}  // namespace bauplan::expectations

#endif  // BAUPLAN_EXPECTATIONS_REQUIREMENTS_H_
