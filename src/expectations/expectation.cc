#include "expectations/expectation.h"

#include <cstdio>
#include <set>

#include "common/strings.h"

namespace bauplan::expectations {

using columnar::ArrayPtr;
using columnar::Table;
using columnar::Value;

namespace {

Result<double> ColumnMean(const Table& table, const std::string& column) {
  BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, table.GetColumnByName(column));
  double sum = 0;
  int64_t n = 0;
  for (int64_t i = 0; i < col->length(); ++i) {
    if (col->IsNull(i)) continue;
    BAUPLAN_ASSIGN_OR_RETURN(double v, col->GetValue(i).AsDouble());
    sum += v;
    ++n;
  }
  if (n == 0) {
    return Status::FailedPrecondition(
        StrCat("column '", column, "' has no non-null values"));
  }
  return sum / static_cast<double>(n);
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Expectation ExpectMeanGreaterThan(const std::string& column,
                                  double threshold) {
  return Expectation(
      StrCat("mean(", column, ") > ", FormatDouble(threshold)),
      [column, threshold](const Table& t) -> Result<ExpectationOutcome> {
        BAUPLAN_ASSIGN_OR_RETURN(double mean, ColumnMean(t, column));
        ExpectationOutcome outcome;
        outcome.passed = mean > threshold;
        outcome.details = StrCat("mean(", column, ") = ",
                                 FormatDouble(mean), ", expected > ",
                                 FormatDouble(threshold));
        return outcome;
      });
}

Expectation ExpectMeanBetween(const std::string& column, double lo,
                              double hi) {
  return Expectation(
      StrCat("mean(", column, ") in [", FormatDouble(lo), ", ",
             FormatDouble(hi), "]"),
      [column, lo, hi](const Table& t) -> Result<ExpectationOutcome> {
        BAUPLAN_ASSIGN_OR_RETURN(double mean, ColumnMean(t, column));
        ExpectationOutcome outcome;
        outcome.passed = mean >= lo && mean <= hi;
        outcome.details =
            StrCat("mean(", column, ") = ", FormatDouble(mean),
                   ", expected in [", FormatDouble(lo), ", ",
                   FormatDouble(hi), "]");
        return outcome;
      });
}

Expectation ExpectNoNulls(const std::string& column) {
  return Expectation(
      StrCat("not_null(", column, ")"),
      [column](const Table& t) -> Result<ExpectationOutcome> {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, t.GetColumnByName(column));
        ExpectationOutcome outcome;
        outcome.passed = col->null_count() == 0;
        outcome.details = StrCat("column '", column, "' has ",
                                 col->null_count(), " nulls out of ",
                                 col->length(), " rows");
        return outcome;
      });
}

Expectation ExpectUnique(const std::string& column) {
  return Expectation(
      StrCat("unique(", column, ")"),
      [column](const Table& t) -> Result<ExpectationOutcome> {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, t.GetColumnByName(column));
        std::set<std::string> seen;
        int64_t duplicates = 0;
        for (int64_t i = 0; i < col->length(); ++i) {
          if (col->IsNull(i)) continue;
          if (!seen.insert(col->GetValue(i).ToString()).second) {
            ++duplicates;
          }
        }
        ExpectationOutcome outcome;
        outcome.passed = duplicates == 0;
        outcome.details = StrCat("column '", column, "' has ", duplicates,
                                 " duplicate values");
        return outcome;
      });
}

Expectation ExpectRowCountBetween(int64_t lo, int64_t hi) {
  return Expectation(
      StrCat("row_count in [", lo, ", ", hi, "]"),
      [lo, hi](const Table& t) -> Result<ExpectationOutcome> {
        ExpectationOutcome outcome;
        outcome.passed = t.num_rows() >= lo && t.num_rows() <= hi;
        outcome.details = StrCat("row count = ", t.num_rows(),
                                 ", expected in [", lo, ", ", hi, "]");
        return outcome;
      });
}

Expectation ExpectValuesBetween(const std::string& column, double lo,
                                double hi) {
  return Expectation(
      StrCat("values(", column, ") in [", FormatDouble(lo), ", ",
             FormatDouble(hi), "]"),
      [column, lo, hi](const Table& t) -> Result<ExpectationOutcome> {
        BAUPLAN_ASSIGN_OR_RETURN(ArrayPtr col, t.GetColumnByName(column));
        int64_t violations = 0;
        for (int64_t i = 0; i < col->length(); ++i) {
          if (col->IsNull(i)) continue;
          BAUPLAN_ASSIGN_OR_RETURN(double v, col->GetValue(i).AsDouble());
          if (v < lo || v > hi) ++violations;
        }
        ExpectationOutcome outcome;
        outcome.passed = violations == 0;
        outcome.details = StrCat(violations, " values of '", column,
                                 "' outside [", FormatDouble(lo), ", ",
                                 FormatDouble(hi), "]");
        return outcome;
      });
}

Result<ExpectationSpec> ParseExpectationSpec(std::string_view text) {
  std::string s(StripWhitespace(text));

  auto parse_call = [&](std::string_view fn_name,
                        std::string* arg) -> bool {
    std::string prefix = StrCat(fn_name, "(");
    if (!StartsWith(s, prefix)) return false;
    size_t close = s.find(')', prefix.size());
    if (close == std::string::npos) return false;
    *arg = std::string(
        StripWhitespace(s.substr(prefix.size(), close - prefix.size())));
    // Move the remainder into s for operator parsing.
    s = std::string(StripWhitespace(s.substr(close + 1)));
    return true;
  };

  auto parse_number = [](std::string_view v, double* out) -> bool {
    char* end = nullptr;
    std::string text_copy(v);
    *out = std::strtod(text_copy.c_str(), &end);
    return end != nullptr && *end == '\0' && !text_copy.empty();
  };

  // `a between X and Y` tail parser.
  auto parse_between = [&](double* lo, double* hi) -> bool {
    if (!StartsWith(ToLower(s), "between ")) return false;
    std::string rest = s.substr(8);
    size_t and_pos = ToLower(rest).find(" and ");
    if (and_pos == std::string::npos) return false;
    return parse_number(StripWhitespace(rest.substr(0, and_pos)), lo) &&
           parse_number(StripWhitespace(rest.substr(and_pos + 5)), hi);
  };

  ExpectationSpec spec;
  if (parse_call("mean", &spec.column)) {
    if (parse_between(&spec.lo, &spec.hi)) {
      spec.kind = ExpectationKind::kMeanBetween;
      return spec;
    }
    if (StartsWith(s, ">") &&
        parse_number(StripWhitespace(s.substr(1)), &spec.threshold)) {
      spec.kind = ExpectationKind::kMeanGreaterThan;
      return spec;
    }
    return Status::InvalidArgument(
        StrCat("cannot parse mean expectation tail: '", s, "'"));
  }
  if (parse_call("not_null", &spec.column)) {
    if (!s.empty()) {
      return Status::InvalidArgument("not_null takes no operator");
    }
    spec.kind = ExpectationKind::kNotNull;
    return spec;
  }
  if (parse_call("unique", &spec.column)) {
    if (!s.empty()) {
      return Status::InvalidArgument("unique takes no operator");
    }
    spec.kind = ExpectationKind::kUnique;
    return spec;
  }
  if (parse_call("values", &spec.column)) {
    if (parse_between(&spec.lo, &spec.hi)) {
      spec.kind = ExpectationKind::kValuesBetween;
      return spec;
    }
    return Status::InvalidArgument(
        StrCat("values(...) needs 'between X and Y', got '", s, "'"));
  }
  if (StartsWith(ToLower(s), "row_count ")) {
    s = std::string(StripWhitespace(s.substr(10)));
    if (parse_between(&spec.lo, &spec.hi)) {
      spec.kind = ExpectationKind::kRowCountBetween;
      return spec;
    }
    return Status::InvalidArgument(
        StrCat("row_count needs 'between X and Y', got '", s, "'"));
  }
  return Status::InvalidArgument(
      StrCat("cannot parse expectation '", text, "'"));
}

Expectation MakeExpectation(const ExpectationSpec& spec) {
  switch (spec.kind) {
    case ExpectationKind::kMeanGreaterThan:
      return ExpectMeanGreaterThan(spec.column, spec.threshold);
    case ExpectationKind::kMeanBetween:
      return ExpectMeanBetween(spec.column, spec.lo, spec.hi);
    case ExpectationKind::kNotNull:
      return ExpectNoNulls(spec.column);
    case ExpectationKind::kUnique:
      return ExpectUnique(spec.column);
    case ExpectationKind::kRowCountBetween:
      return ExpectRowCountBetween(static_cast<int64_t>(spec.lo),
                                   static_cast<int64_t>(spec.hi));
    case ExpectationKind::kValuesBetween:
      return ExpectValuesBetween(spec.column, spec.lo, spec.hi);
  }
  // Unreachable for valid kinds; a fail-closed check for corrupt specs.
  return Expectation("invalid", [](const Table&) -> Result<ExpectationOutcome> {
    return Status::Internal("invalid expectation spec");
  });
}

Result<Expectation> ParseExpectation(std::string_view text) {
  BAUPLAN_ASSIGN_OR_RETURN(ExpectationSpec spec, ParseExpectationSpec(text));
  return MakeExpectation(spec);
}

}  // namespace bauplan::expectations
