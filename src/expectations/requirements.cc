#include "expectations/requirements.h"

#include <algorithm>

#include "common/strings.h"

namespace bauplan::expectations {

Result<PackageRequirement> PackageRequirement::Parse(std::string_view text) {
  size_t pos = text.find("==");
  if (pos == std::string_view::npos || pos == 0 ||
      pos + 2 >= text.size()) {
    return Status::InvalidArgument(
        StrCat("requirement must be 'name==version', got '", text, "'"));
  }
  PackageRequirement req;
  req.name = std::string(StripWhitespace(text.substr(0, pos)));
  req.version = std::string(StripWhitespace(text.substr(pos + 2)));
  if (req.name.empty() || req.version.empty()) {
    return Status::InvalidArgument(
        StrCat("requirement must be 'name==version', got '", text, "'"));
  }
  return req;
}

RequirementSet::RequirementSet(std::vector<PackageRequirement> reqs) {
  for (auto& r : reqs) Add(std::move(r));
}

void RequirementSet::Add(PackageRequirement req) {
  auto it = std::lower_bound(items_.begin(), items_.end(), req);
  if (it != items_.end() && *it == req) return;
  items_.insert(it, std::move(req));
}

std::string RequirementSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ",";
    out += items_[i].ToString();
  }
  return out;
}

Result<RequirementSet> RequirementSet::Parse(std::string_view text) {
  RequirementSet set;
  if (StripWhitespace(text).empty()) return set;
  for (const auto& piece : StrSplit(std::string(text), ',')) {
    std::string_view trimmed = StripWhitespace(piece);
    if (trimmed.empty()) continue;
    BAUPLAN_ASSIGN_OR_RETURN(PackageRequirement req,
                             PackageRequirement::Parse(trimmed));
    set.Add(std::move(req));
  }
  return set;
}

}  // namespace bauplan::expectations
