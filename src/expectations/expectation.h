#ifndef BAUPLAN_EXPECTATIONS_EXPECTATION_H_
#define BAUPLAN_EXPECTATIONS_EXPECTATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/result.h"

namespace bauplan::expectations {

/// Outcome of evaluating one expectation against a table.
struct ExpectationOutcome {
  bool passed = false;
  /// Human-readable evidence ("mean(count) = 3.2, expected > 10").
  std::string details;
};

/// A statistical check over a produced artifact: the audit step of the
/// paper's transform-audit-write pattern. Expectations play the role of
/// integration tests for data (section 4.1 fn. 7): they gate whether a
/// run's ephemeral branch may merge.
class Expectation {
 public:
  using CheckFn =
      std::function<Result<ExpectationOutcome>(const columnar::Table&)>;

  Expectation(std::string name, CheckFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const { return name_; }

  Result<ExpectationOutcome> Check(const columnar::Table& table) const {
    return fn_(table);
  }

 private:
  std::string name_;
  CheckFn fn_;
};

// ----------------------------------------------------- built-in factories

/// mean(column) > threshold — the paper's appendix Step 2.
Expectation ExpectMeanGreaterThan(const std::string& column,
                                  double threshold);

/// lo <= mean(column) <= hi.
Expectation ExpectMeanBetween(const std::string& column, double lo,
                              double hi);

/// column has no null values.
Expectation ExpectNoNulls(const std::string& column);

/// column values are pairwise distinct (nulls ignored).
Expectation ExpectUnique(const std::string& column);

/// lo <= row count <= hi.
Expectation ExpectRowCountBetween(int64_t lo, int64_t hi);

/// every non-null value of column lies in [lo, hi].
Expectation ExpectValuesBetween(const std::string& column, double lo,
                                double hi);

// ------------------------------------------------------------ DSL parsing

/// Which built-in check an expectation DSL line names.
enum class ExpectationKind {
  kMeanGreaterThan,
  kMeanBetween,
  kNotNull,
  kUnique,
  kRowCountBetween,
  kValuesBetween,
};

/// The statically-parsed structure of one expectation DSL line — what
/// the code-intelligence analyzer inspects to validate the referenced
/// column and its type without building (or running) the check itself.
struct ExpectationSpec {
  ExpectationKind kind = ExpectationKind::kNotNull;
  /// The audited column; empty for row_count.
  std::string column;
  /// kMeanGreaterThan only.
  double threshold = 0;
  /// The between kinds only.
  double lo = 0;
  double hi = 0;

  /// True for checks that average or range-compare values (mean, values):
  /// the column must hold a numeric type.
  bool RequiresNumericColumn() const {
    return kind == ExpectationKind::kMeanGreaterThan ||
           kind == ExpectationKind::kMeanBetween ||
           kind == ExpectationKind::kValuesBetween;
  }
};

/// Parses the tiny expectation DSL used by pipeline manifests:
///   mean(col) > 10        | mean(col) between 1 and 5
///   not_null(col)         | unique(col)
///   row_count between 1 and 100
///   values(col) between 0 and 1
/// InvalidArgument on anything else.
Result<ExpectationSpec> ParseExpectationSpec(std::string_view text);

/// Instantiates the runtime check a spec describes.
Expectation MakeExpectation(const ExpectationSpec& spec);

/// ParseExpectationSpec + MakeExpectation in one step (the pipeline
/// runner's path).
Result<Expectation> ParseExpectation(std::string_view text);

}  // namespace bauplan::expectations

#endif  // BAUPLAN_EXPECTATIONS_EXPECTATION_H_
