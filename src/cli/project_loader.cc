#include "cli/project_loader.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace bauplan::cli {

namespace fs = std::filesystem;

namespace {

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrCat("cannot read '", path.string(), "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<pipeline::PipelineProject> LoadProjectFromDir(
    const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(StrCat("'", dir, "' is not a directory"));
  }
  pipeline::PipelineProject project(fs::path(dir).filename().string());

  // SQL nodes, in name order for determinism.
  std::vector<fs::path> sql_files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sql") {
      sql_files.push_back(entry.path());
    }
  }
  std::sort(sql_files.begin(), sql_files.end());
  for (const auto& path : sql_files) {
    BAUPLAN_ASSIGN_OR_RETURN(std::string sql, ReadFile(path));
    BAUPLAN_RETURN_NOT_OK(
        project.AddSqlNode(path.stem().string(),
                           std::string(StripWhitespace(sql))));
  }

  // Expectation nodes.
  fs::path expectations_path = fs::path(dir) / "expectations.conf";
  if (fs::exists(expectations_path, ec)) {
    BAUPLAN_ASSIGN_OR_RETURN(std::string content,
                             ReadFile(expectations_path));
    int line_number = 0;
    for (const auto& raw_line : StrSplit(content, '\n')) {
      ++line_number;
      std::string_view line = StripWhitespace(raw_line);
      if (line.empty() || line.front() == '#') continue;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument(
            StrCat("expectations.conf line ", line_number,
                   ": expected '<name>: <dsl>'"));
      }
      std::string name(StripWhitespace(line.substr(0, colon)));
      std::string rest(StripWhitespace(line.substr(colon + 1)));
      expectations::RequirementSet requirements;
      size_t pipe = rest.find('|');
      if (pipe != std::string::npos) {
        std::string req_text = rest.substr(pipe + 1);
        std::string_view req_part = StripWhitespace(req_text);
        if (!StartsWith(req_part, "requires:")) {
          return Status::InvalidArgument(
              StrCat("expectations.conf line ", line_number,
                     ": expected '| requires: ...'"));
        }
        BAUPLAN_ASSIGN_OR_RETURN(
            requirements,
            expectations::RequirementSet::Parse(req_part.substr(9)));
        rest = std::string(StripWhitespace(rest.substr(0, pipe)));
      }
      BAUPLAN_RETURN_NOT_OK(
          project.AddExpectationNode(name, rest, requirements)
              .WithContext(StrCat("expectations.conf line ",
                                  line_number)));
    }
  }

  if (project.nodes().empty()) {
    return Status::NotFound(
        StrCat("no pipeline nodes found in '", dir, "'"));
  }
  return project;
}

Status WriteDemoProject(const std::string& dir, double threshold) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError(StrCat("cannot create '", dir, "'"));
  pipeline::PipelineProject demo =
      pipeline::MakePaperTaxiPipeline(threshold);
  for (const auto& node : demo.nodes()) {
    if (node.kind == pipeline::NodeKind::kSqlModel) {
      std::ofstream out(fs::path(dir) / (node.name + ".sql"));
      if (!out) return Status::IOError("cannot write sql file");
      out << node.code << "\n";
    }
  }
  std::ofstream out(fs::path(dir) / "expectations.conf");
  if (!out) return Status::IOError("cannot write expectations.conf");
  out << "# audit nodes: <table>_expectation: <dsl> [| requires: ...]\n";
  for (const auto& node : demo.nodes()) {
    if (node.kind == pipeline::NodeKind::kExpectation) {
      out << node.name << ": " << node.code;
      if (!node.requirements.empty()) {
        out << " | requires: " << node.requirements.ToString();
      }
      out << "\n";
    }
  }
  return Status::OK();
}

}  // namespace bauplan::cli
