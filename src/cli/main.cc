// The `bauplan` CLI: the user-facing surface of the platform (paper
// section 4.6). Two primary verbs — query (synchronous) and run
// (pipelines with transform-audit-write) — plus git-for-data branch
// management and demo helpers. The lake persists under --lake as plain
// files, so sessions compose:
//
//   bauplan --lake ./lake init-demo
//   bauplan --lake ./lake query -q "SELECT COUNT(*) AS n FROM taxi_table"
//   bauplan --lake ./lake branch create feat_1
//   bauplan --lake ./lake run --project ./lake_demo_project -b feat_1
//   bauplan --lake ./lake query -q "SELECT * FROM pickups LIMIT 5" -b feat_1
//   bauplan --lake ./lake merge feat_1 main

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include <fstream>
#include <sstream>

#include "catalog/refspec.h"
#include "cli/project_loader.h"
#include "columnar/csv.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/bauplan.h"
#include "pipeline/dag.h"
#include "storage/object_store.h"
#include "table/maintenance.h"
#include "workload/taxi_gen.h"

namespace bauplan::cli {
namespace {

constexpr const char* kUsage = R"(bauplan - a serverless data lakehouse (from spare parts)

usage: bauplan --lake DIR COMMAND [ARGS]

commands:
  init-demo [--rows N] [--threshold X]
        seed the lake with a synthetic taxi_table and write the demo
        pipeline project to <lake>_demo_project
  query -q SQL [-b REF] [--explain] [--explain-metrics] [--threads N]
        [--memory-budget BYTES]
        run a synchronous SQL query at a branch/tag/commit/"ref@timestamp";
        queries execute on the streaming engine (push-based pipelines,
        morsels flow operator-to-operator without materializing);
        --explain-metrics dumps the platform metric instruments (including
        the exec.* engine counters and the exec.peak_bytes high-water
        gauge) afterwards; --threads N sets morsel parallelism (results
        are bit-identical for any N); --memory-budget BYTES caps the
        working set of joins/sorts/aggregates, spilling to the metered
        spill store beyond it (0 = unlimited; results are bit-identical
        for any budget)
  check --project DIR [-b REF] [--json] [--lineage] [--werror]
        statically analyze a pipeline project against the catalog at REF
        without running it: reference resolution, column-level schema
        propagation, expectation validation, and the BP4xxx plan linter
        (interval-domain contradiction/tautology/dead-column findings);
        exit 0 when clean, 1 when the analyzer reports errors;
        --lineage renders the cross-pipeline column lineage graph
        instead of diagnostics (text, or JSON with --json); --werror
        (or BAUPLAN_WERROR=1) promotes warnings to errors
  run --project DIR [-b BRANCH] [--naive] [--parallel N] [--explain]
      [--no-verify] [--trim] [--trace-out FILE] [--no-cache]
      [--cache-budget BYTES] [--explain-metrics]
        execute a pipeline with transform-audit-write semantics; the
        project is statically analyzed first and refused on errors
        (--no-verify skips this); --parallel N dispatches independent
        nodes of a --naive run as wavefronts with up to N bodies at a
        time; --trim drops dead columns from intermediate artifacts
        (cross-node projection trimming from the lineage graph);
        --trace-out writes the run's hierarchical span trace as JSON;
        unchanged nodes are served from the differential artifact cache
        (content-addressed, shared across branches) — --no-cache skips
        it for this run, --cache-budget BYTES (or BAUPLAN_CACHE_BUDGET)
        resizes it (0 disables), and --explain-metrics dumps the
        platform metric instruments (cache.*, query_cache.*, exec.*)
        after the report
  run --run-id N [-m NODE[+]] [--trace-out FILE]
        replay a recorded run, sandboxed
  runs  list recorded runs
  cache stats | cache clear
        show differential artifact cache contents and counters, or drop
        every cached artifact from the lake
  ctas -t TABLE -q SQL [-b BRANCH]
        create a table from a query result
  import -t TABLE --csv FILE [-b BRANCH] [--overwrite]
        load a CSV file into a table (created on first import)
  export -t TABLE --out FILE [-b REF]
        dump a table as CSV
  branch create NAME [--from REF] | branch list | branch delete NAME
  tag NAME [--at REF]
        create an immutable tag (e.g. a release of the data)
  merge FROM INTO
  log [-b REF] [-n LIMIT]
  tables [-b REF]
  audit [-n LIMIT]
        show the platform audit trail
  compact -t TABLE [-b BRANCH]
        rewrite fragmented partitions into one file each
  expire -t TABLE [-b BRANCH]
        drop historical snapshots and reclaim unreferenced files

Every REF-taking verb accepts -b or --branch interchangeably; a REF is a
branch, tag, commit id, or "name@timestamp" (epoch micros or ISO8601)
for as-of reads. BAUPLAN_LOG_LEVEL=debug|info|warn|error adjusts log
verbosity. BAUPLAN_THREADS and BAUPLAN_MEMORY_BUDGET set execution
defaults for query and run; --threads / --memory-budget override them.
Exit codes: 0 ok, 1 error, 2 usage error (or run not merged).
)";

/// One flag a verb accepts: canonical spelling, optional alias (stored
/// under the canonical key either way), and whether a value follows.
struct FlagDef {
  std::string_view canonical;
  std::string_view alias;
  bool takes_value = false;
};

constexpr FlagDef kBranchFlag{"-b", "--branch", true};

/// Per-verb flag vocabulary. Parsing rejects anything not listed here
/// (usage error, exit 2) instead of silently ignoring typos.
const std::map<std::string, std::vector<FlagDef>, std::less<>>& VerbFlags() {
  static const std::map<std::string, std::vector<FlagDef>, std::less<>>
      kVerbs = {
          {"init-demo",
           {{"--rows", "", true}, {"--threshold", "", true}, kBranchFlag}},
          {"query",
           {{"-q", "--query", true},
            {"--explain", "", false},
            {"--explain-metrics", "", false},
            {"--threads", "", true},
            {"--memory-budget", "", true},
            kBranchFlag}},
          {"check",
           {{"--project", "", true},
            {"--json", "", false},
            {"--lineage", "", false},
            {"--werror", "", false},
            kBranchFlag}},
          {"run",
           {{"--project", "", true},
            {"--naive", "", false},
            {"--parallel", "", true},
            {"--explain", "", false},
            {"--explain-metrics", "", false},
            {"--no-verify", "", false},
            {"--trim", "", false},
            {"--no-cache", "", false},
            {"--cache-budget", "", true},
            {"--run-id", "", true},
            {"-m", "", true},
            {"--trace-out", "", true},
            kBranchFlag}},
          {"runs", {kBranchFlag}},
          {"cache", {kBranchFlag}},
          {"ctas", {{"-t", "--table", true}, {"-q", "--query", true},
                    kBranchFlag}},
          {"import",
           {{"-t", "--table", true},
            {"--csv", "", true},
            {"--overwrite", "", false},
            kBranchFlag}},
          {"export",
           {{"-t", "--table", true}, {"--out", "", true}, kBranchFlag}},
          {"branch", {{"--from", "", true}, kBranchFlag}},
          {"tag", {{"--at", "", true}, kBranchFlag}},
          {"merge", {kBranchFlag}},
          {"log", {{"-n", "", true}, kBranchFlag}},
          {"tables", {kBranchFlag}},
          {"audit", {{"-n", "", true}, kBranchFlag}},
          {"compact", {{"-t", "--table", true}, kBranchFlag}},
          {"expire", {{"-t", "--table", true}, kBranchFlag}},
      };
  return kVerbs;
}

/// Spec-driven flag parser: global flags anywhere, verb flags once the
/// first positional names the verb. Unknown flags or missing values are
/// hard errors rather than silently dropped arguments.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv) {
    Args args;
    std::vector<FlagDef> spec = {{"--lake", "", true}, {"--help", "", false}};
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.size() >= 2 && arg[0] == '-') {
        const FlagDef* def = nullptr;
        for (const FlagDef& candidate : spec) {
          if (arg == candidate.canonical ||
              (!candidate.alias.empty() && arg == candidate.alias)) {
            def = &candidate;
            break;
          }
        }
        if (def == nullptr) {
          return Status::InvalidArgument(
              args.command_.empty()
                  ? StrCat("unknown flag '", arg, "'")
                  : StrCat("unknown flag '", arg, "' for '", args.command_,
                           "'"));
        }
        if (def->takes_value) {
          if (i + 1 >= argc) {
            return Status::InvalidArgument(
                StrCat("flag '", arg, "' needs a value"));
          }
          args.flags_[std::string(def->canonical)] = argv[++i];
        } else {
          args.flags_[std::string(def->canonical)] = "";
        }
        continue;
      }
      args.positional_.push_back(std::string(arg));
      if (args.command_.empty()) {
        args.command_ = std::string(arg);
        auto it = VerbFlags().find(args.command_);
        if (it == VerbFlags().end()) {
          return Status::InvalidArgument(
              StrCat("unknown command '", args.command_, "'"));
        }
        spec.insert(spec.end(), it->second.begin(), it->second.end());
      }
    }
    return args;
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& command() const { return command_; }

 private:
  Args() = default;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::string command_;
};

void PrintRunReport(const core::RunReport& report) {
  std::printf("run %lld: %s\n", static_cast<long long>(report.run_id),
              report.status.c_str());
  if (report.fused.has_value()) {
    const core::NodeExecution& fn = *report.fused;
    std::printf("  fused into one function: start=%s (%s) worker=%d\n",
                FormatDurationMicros(fn.startup_micros).c_str(),
                std::string(runtime::StartKindToString(fn.start_kind))
                    .c_str(),
                fn.worker);
  }
  for (const auto& node : report.nodes) {
    const char* kind =
        node.kind == pipeline::NodeKind::kExpectation ? "expectation"
                                                      : "sql";
    std::printf("  %-24s [%s] rows=%lld", node.name.c_str(), kind,
                static_cast<long long>(node.output_rows));
    if (node.cache_hit) {
      std::printf(" [cached]");
    } else if (!report.fused.has_value()) {
      std::printf(" start=%s (%s)",
                  FormatDurationMicros(node.startup_micros).c_str(),
                  std::string(runtime::StartKindToString(node.start_kind))
                      .c_str());
      if (node.queue_micros > 0) {
        std::printf(" queue=%s",
                    FormatDurationMicros(node.queue_micros).c_str());
      }
    }
    if (node.kind == pipeline::NodeKind::kExpectation) {
      std::printf(" -> %s (%s)", node.expectation_passed ? "PASS" : "FAIL",
                  node.details.c_str());
    }
    std::printf("\n");
  }
  std::printf("  total (simulated): %s; spill: %lld puts / %lld gets\n",
              FormatDurationMicros(report.total_micros).c_str(),
              static_cast<long long>(report.spill_metrics.puts),
              static_cast<long long>(report.spill_metrics.gets));
  size_t cached = 0;
  for (const auto& node : report.nodes) {
    if (node.cache_hit) ++cached;
  }
  if (cached > 0) {
    std::printf("  %zu of %zu node(s) served from the artifact cache\n",
                cached, report.nodes.size());
  }
  if (report.merged) {
    std::printf("  merged into branch at commit %s\n",
                report.merged_commit_id.c_str());
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(), kUsage);
  return 2;
}

/// Strict integer flag lookup: `atoi` silently mapped `--threads abc` to
/// 0 and let `--parallel 999999999999` overflow, so every numeric flag
/// funnels through ParseInt64 plus an explicit range. Errors here become
/// usage errors (exit 2).
Result<int64_t> Int64Flag(const Args& args, const std::string& flag,
                          int64_t fallback, int64_t min, int64_t max) {
  if (!args.Has(flag)) return fallback;
  const std::string text = args.Get(flag);
  int64_t value = 0;
  if (!ParseInt64(text, &value)) {
    return Status::InvalidArgument(
        StrCat("flag '", flag, "' needs an integer, got '", text, "'"));
  }
  if (value < min || value > max) {
    return Status::InvalidArgument(StrCat("flag '", flag, "' value ", text,
                                          " out of range [", min, ", ", max,
                                          "]"));
  }
  return value;
}

/// Strict floating-point flag lookup; same contract as Int64Flag.
Result<double> DoubleFlag(const Args& args, const std::string& flag,
                          double fallback) {
  if (!args.Has(flag)) return fallback;
  const std::string text = args.Get(flag);
  double value = 0.0;
  if (!ParseDouble(text, &value)) {
    return Status::InvalidArgument(
        StrCat("flag '", flag, "' needs a number, got '", text, "'"));
  }
  return value;
}

/// BAUPLAN_CACHE_BUDGET (strict, same contract as BAUPLAN_WERROR): byte
/// budget for the differential artifact cache; only a non-negative
/// integer parses, anything else is a usage error rather than silently
/// running with the default.
Result<uint64_t> CacheBudgetFromEnv(uint64_t fallback) {
  const char* v = std::getenv("BAUPLAN_CACHE_BUDGET");
  if (v == nullptr || *v == '\0') return fallback;
  int64_t value = 0;
  if (!ParseInt64(v, &value) || value < 0) {
    return Status::InvalidArgument(
        StrCat("BAUPLAN_CACHE_BUDGET must be a non-negative integer "
               "byte count, got \"", v, "\""));
  }
  return static_cast<uint64_t>(value);
}

/// Writes the run's span trace as JSON; used by `run --trace-out`.
Status WriteTrace(const std::string& path, const core::RunReport& report) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(StrCat("cannot write '", path, "'"));
  }
  out << report.trace.ToJson() << "\n";
  return Status::OK();
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  auto parsed = Args::Parse(argc, argv);
  if (!parsed.ok()) return UsageError(parsed.status().message());
  const Args& args = *parsed;
  if (args.positional().empty() || args.Has("--help")) {
    std::fputs(kUsage, stdout);
    return args.positional().empty() ? 2 : 0;
  }
  std::string lake_dir = args.Get("--lake", "./bauplan_lake");
  auto store = storage::FileSystemObjectStore::Open(lake_dir);
  if (!store.ok()) return Fail(store.status());

  // A simulated clock seeded with wall time: commits carry real-looking
  // timestamps, and runtime/storage latencies are reported from the
  // calibrated models rather than slept.
  WallClock wall;
  SimClock clock(wall.NowMicros());
  // The artifact cache is sized at Open (its index loads from the lake),
  // so budget overrides are resolved before the platform exists:
  // --cache-budget beats BAUPLAN_CACHE_BUDGET beats the default.
  core::BauplanOptions bp_options;
  auto env_budget = CacheBudgetFromEnv(bp_options.artifact_cache_bytes);
  if (!env_budget.ok()) return UsageError(env_budget.status().message());
  bp_options.artifact_cache_bytes = *env_budget;
  auto flag_budget =
      Int64Flag(args, "--cache-budget",
                static_cast<int64_t>(bp_options.artifact_cache_bytes), 0,
                std::numeric_limits<int64_t>::max());
  if (!flag_budget.ok()) return UsageError(flag_budget.status().message());
  bp_options.artifact_cache_bytes = static_cast<uint64_t>(*flag_budget);
  auto platform = core::Bauplan::Open(store->get(), &clock, bp_options);
  if (!platform.ok()) return Fail(platform.status());
  core::Bauplan& bp = **platform;

  const std::string& command = args.command();
  // Parsed once: every ref-taking verb funnels -b/--branch through the
  // same RefSpec grammar, so a malformed "-b main@20x4" fails uniformly.
  auto ref = catalog::RefSpec::Parse(args.Get("-b", "main"));
  if (!ref.ok()) return Fail(ref.status());

  if (command == "init-demo") {
    workload::TaxiGenOptions gen;
    auto rows = Int64Flag(args, "--rows", 100000, 1, 1'000'000'000);
    if (!rows.ok()) return UsageError(rows.status().message());
    gen.rows = *rows;
    auto taxi = workload::GenerateTaxiTable(gen);
    if (!taxi.ok()) return Fail(taxi.status());
    if (!bp.ListTables("main")->empty()) {
      return Fail(Status::AlreadyExists(
          "lake already initialized; use a fresh --lake directory"));
    }
    Status st = bp.CreateTable("main", "taxi_table", taxi->schema());
    if (st.ok()) st = bp.WriteTable("main", "taxi_table", *taxi);
    if (!st.ok()) return Fail(st);
    std::string project_dir = lake_dir + "_demo_project";
    auto threshold = DoubleFlag(args, "--threshold", 1.0);
    if (!threshold.ok()) return UsageError(threshold.status().message());
    st = WriteDemoProject(project_dir, *threshold);
    if (!st.ok()) return Fail(st);
    std::printf("seeded taxi_table with %lld rows on main\n",
                static_cast<long long>(taxi->num_rows()));
    std::printf("demo pipeline written to %s\n", project_dir.c_str());
    return 0;
  }

  if (command == "query") {
    if (!args.Has("-q")) {
      return UsageError("query needs -q \"SQL\"");
    }
    sql::QueryOptions options;
    options.capture_plans = args.Has("--explain");
    auto env_exec = sql::ExecOptions::FromEnv();
    if (!env_exec.ok()) return UsageError(env_exec.status().message());
    options.exec = *env_exec;
    auto threads = Int64Flag(args, "--threads", options.exec.threads, 1, 4096);
    if (!threads.ok()) return UsageError(threads.status().message());
    options.exec.threads = static_cast<int>(*threads);
    auto budget = Int64Flag(args, "--memory-budget",
                            options.exec.memory_budget_bytes, 0,
                            std::numeric_limits<int64_t>::max());
    if (!budget.ok()) return UsageError(budget.status().message());
    options.exec.memory_budget_bytes = *budget;
    auto result = bp.Query(args.Get("-q"), *ref, options);
    if (!result.ok()) return Fail(result.status());
    if (args.Has("--explain")) {
      std::printf("-- physical plan --\n%s\n",
                  result->physical_plan.c_str());
      if (!result->lints.empty()) {
        std::printf("-- lints --\n");
        for (const auto& lint : result->lints) {
          std::printf("%s\n", lint.ToString().c_str());
        }
      }
    }
    std::fputs(result->table.ToString(50).c_str(), stdout);
    std::printf("(%lld rows, %lld scanned)\n",
                static_cast<long long>(result->stats.rows_output),
                static_cast<long long>(result->stats.rows_scanned));
    if (args.Has("--explain-metrics")) {
      std::printf("-- metrics --\n%s",
                  bp.metrics_snapshot().ToText().c_str());
    }
    return 0;
  }

  if (command == "check") {
    if (!args.Has("--project")) {
      return UsageError("check needs --project DIR");
    }
    auto project = LoadProjectFromDir(args.Get("--project"));
    if (!project.ok()) return Fail(project.status());
    auto result = bp.Check(*project, *ref);
    if (!result.ok()) return Fail(result.status());
    // --werror (or BAUPLAN_WERROR=1) promotes every warning to an
    // error, so lint findings fail the check. The env var is strict:
    // only "1" (on) and "0" (off) parse.
    bool werror = args.Has("--werror");
    if (const char* v = std::getenv("BAUPLAN_WERROR");
        v != nullptr && *v != '\0') {
      std::string_view value = v;
      if (value == "1") {
        werror = true;
      } else if (value != "0") {
        return UsageError(
          StrCat("BAUPLAN_WERROR must be \"1\" or \"0\", got \"", v,
                 "\""));
      }
    }
    if (werror) result->diagnostics.PromoteWarningsToErrors();
    if (args.Has("--lineage")) {
      std::string rendered = args.Has("--json")
                                 ? result->lineage.ToJson() + "\n"
                                 : result->lineage.ToText();
      std::fputs(rendered.c_str(), stdout);
      return result->ok() ? 0 : 1;
    }
    std::string rendered = args.Has("--json")
                               ? result->diagnostics.ToJson() + "\n"
                               : result->diagnostics.ToText();
    std::fputs(rendered.c_str(), stdout);
    return result->ok() ? 0 : 1;
  }

  if (command == "run") {
    if (args.Has("--run-id")) {
      auto run_id = Int64Flag(args, "--run-id", 0, 0,
                              std::numeric_limits<int64_t>::max());
      if (!run_id.ok()) return UsageError(run_id.status().message());
      auto report = bp.ReplayRun(*run_id, args.Get("-m"));
      if (!report.ok()) return Fail(report.status());
      PrintRunReport(*report);
      // The recorded run remembers which nodes the artifact cache
      // served; surface them so "why is this replay fast" is answerable.
      if (auto record = bp.run_registry().GetRun(*run_id);
          record.ok() && !record->cached_nodes.empty()) {
        std::printf("  original run served %zu node(s) from cache:",
                    record->cached_nodes.size());
        for (const auto& name : record->cached_nodes) {
          std::printf(" %s", name.c_str());
        }
        std::printf("\n");
      }
      if (args.Has("--trace-out")) {
        Status st = WriteTrace(args.Get("--trace-out"), *report);
        if (!st.ok()) return Fail(st);
      }
      return 0;
    }
    if (!args.Has("--project")) {
      return UsageError("run needs --project DIR (or --run-id N)");
    }
    auto project = LoadProjectFromDir(args.Get("--project"));
    if (!project.ok()) return Fail(project.status());
    if (args.Has("--explain")) {
      auto tables = bp.ListTables(*ref);
      if (!tables.ok()) return Fail(tables.status());
      std::set<std::string> known(tables->begin(), tables->end());
      auto dag = pipeline::Dag::Build(*project, known);
      if (!dag.ok()) return Fail(dag.status());
      std::fputs(dag->ToString().c_str(), stdout);
      return 0;
    }
    core::PipelineRunOptions options;
    options.fused = !args.Has("--naive");
    options.verify = !args.Has("--no-verify");
    options.trim_unused_columns = args.Has("--trim");
    options.use_cache = !args.Has("--no-cache");
    auto parallelism = Int64Flag(args, "--parallel", 1, 1, 4096);
    if (!parallelism.ok()) return UsageError(parallelism.status().message());
    options.parallelism = static_cast<int>(*parallelism);
    auto env_exec = sql::ExecOptions::FromEnv();
    if (!env_exec.ok()) return UsageError(env_exec.status().message());
    options.exec = *env_exec;
    auto report = bp.Run(*project, ref->name(), options);
    if (!report.ok()) return Fail(report.status());
    PrintRunReport(*report);
    if (args.Has("--explain-metrics")) {
      std::printf("-- metrics --\n%s", report->metrics.ToText().c_str());
    }
    if (args.Has("--trace-out")) {
      Status st = WriteTrace(args.Get("--trace-out"), *report);
      if (!st.ok()) return Fail(st);
      std::printf("  trace written to %s\n",
                  args.Get("--trace-out").c_str());
    }
    return report->merged ? 0 : 2;
  }

  if (command == "cache") {
    if (args.positional().size() < 2) {
      return UsageError("cache needs stats|clear");
    }
    const std::string& sub = args.positional()[1];
    if (sub == "stats") {
      cache::ArtifactCache* artifact_cache = bp.artifact_cache();
      cache::ArtifactCache::Stats stats = bp.artifact_cache_stats();
      std::printf("artifact cache: %zu entr%s, %s of %s used\n",
                  stats.entries, stats.entries == 1 ? "y" : "ies",
                  FormatBytes(stats.bytes).c_str(),
                  FormatBytes(artifact_cache->budget_bytes()).c_str());
      std::printf(
          "  this session: %lld hits, %lld misses, %lld inserts, "
          "%lld evictions\n",
          static_cast<long long>(stats.hits),
          static_cast<long long>(stats.misses),
          static_cast<long long>(stats.inserts),
          static_cast<long long>(stats.evictions));
      return 0;
    }
    if (sub == "clear") {
      auto dropped = bp.artifact_cache()->Clear();
      if (!dropped.ok()) return Fail(dropped.status());
      std::printf("dropped %zu cached artifact(s)\n", *dropped);
      return 0;
    }
    return UsageError(StrCat("unknown cache subcommand '", sub, "'"));
  }

  if (command == "ctas") {
    if (!args.Has("-t") || !args.Has("-q")) {
      return UsageError("ctas needs -t TABLE -q SQL");
    }
    Status st = bp.CreateTableAs(*ref, args.Get("-t"), args.Get("-q"));
    if (!st.ok()) return Fail(st);
    std::printf("created %s on %s\n", args.Get("-t").c_str(),
                ref->name().c_str());
    return 0;
  }

  if (command == "import") {
    if (!args.Has("-t") || !args.Has("--csv")) {
      return UsageError("import needs -t TABLE --csv FILE");
    }
    std::ifstream in(args.Get("--csv"));
    if (!in) {
      return Fail(Status::NotFound(
          StrCat("cannot read '", args.Get("--csv"), "'")));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto table = columnar::ReadCsv(buffer.str());
    if (!table.ok()) return Fail(table.status());
    const std::string& branch = ref->name();
    std::string name = args.Get("-t");
    auto tables = bp.ListTables(branch);
    if (!tables.ok()) return Fail(tables.status());
    bool exists = std::find(tables->begin(), tables->end(), name) !=
                  tables->end();
    if (!exists) {
      Status st = bp.CreateTable(branch, name, table->schema());
      if (!st.ok()) return Fail(st);
    }
    Status st = bp.WriteTable(branch, name, *table,
                              args.Has("--overwrite"));
    if (!st.ok()) return Fail(st);
    std::printf("imported %lld rows into %s on %s%s\n",
                static_cast<long long>(table->num_rows()), name.c_str(),
                branch.c_str(), exists ? "" : " (created)");
    return 0;
  }

  if (command == "export") {
    if (!args.Has("-t") || !args.Has("--out")) {
      return UsageError("export needs -t TABLE --out FILE");
    }
    auto table = bp.ReadTable(*ref, args.Get("-t"));
    if (!table.ok()) return Fail(table.status());
    std::ofstream out(args.Get("--out"));
    if (!out) {
      return Fail(Status::IOError(
          StrCat("cannot write '", args.Get("--out"), "'")));
    }
    out << columnar::WriteCsv(*table);
    std::printf("exported %lld rows to %s\n",
                static_cast<long long>(table->num_rows()),
                args.Get("--out").c_str());
    return 0;
  }

  if (command == "runs") {
    auto ids = bp.run_registry().ListRuns();
    if (!ids.ok()) return Fail(ids.status());
    for (int64_t id : *ids) {
      auto record = bp.run_registry().GetRun(id);
      if (!record.ok()) continue;
      std::printf("run %-5lld %-12s branch=%-10s fingerprint=%s  %s\n",
                  static_cast<long long>(id), record->status.c_str(),
                  record->branch.c_str(), record->fingerprint.c_str(),
                  FormatTimestampMicros(record->started_micros).c_str());
    }
    return 0;
  }

  if (command == "branch") {
    if (args.positional().size() < 2) {
      return UsageError("branch needs create|list|delete");
    }
    const std::string& sub = args.positional()[1];
    if (sub == "list") {
      auto branches = bp.ListBranches();
      if (!branches.ok()) return Fail(branches.status());
      for (const auto& name : *branches) std::printf("%s\n", name.c_str());
      return 0;
    }
    if (args.positional().size() < 3) {
      return UsageError("branch name missing");
    }
    const std::string& name = args.positional()[2];
    Status st = sub == "create"
                    ? bp.CreateBranch(name, args.Get("--from", "main"))
                : sub == "delete"
                    ? bp.DeleteBranch(name)
                    : Status::InvalidArgument(
                          StrCat("unknown branch subcommand '", sub, "'"));
    if (!st.ok()) return Fail(st);
    std::printf("%sd branch %s\n", sub.c_str(), name.c_str());
    return 0;
  }

  if (command == "tag") {
    if (args.positional().size() < 2) {
      return UsageError("tag needs NAME");
    }
    Status st = bp.mutable_catalog()->CreateTag(args.positional()[1],
                                                args.Get("--at", "main"));
    if (!st.ok()) return Fail(st);
    std::printf("tagged %s at %s\n", args.positional()[1].c_str(),
                args.Get("--at", "main").c_str());
    return 0;
  }

  if (command == "audit") {
    auto limit = Int64Flag(args, "-n", 20, 0, 10'000'000);
    if (!limit.ok()) return UsageError(limit.status().message());
    auto entries = bp.audit_log().Tail(static_cast<size_t>(*limit));
    if (!entries.ok()) return Fail(entries.status());
    for (const auto& entry : *entries) {
      std::printf("%6lld  %s  %-14s %-10s %-6s %s\n",
                  static_cast<long long>(entry.sequence),
                  FormatTimestampMicros(entry.timestamp_micros).c_str(),
                  entry.operation.c_str(), entry.ref.c_str(),
                  entry.outcome == "ok" ? "ok" : "FAIL",
                  entry.detail.substr(0, 60).c_str());
    }
    return 0;
  }

  if (command == "compact" || command == "expire") {
    if (!args.Has("-t")) {
      return UsageError(StrCat(command, " needs -t TABLE"));
    }
    const std::string& branch = ref->name();
    std::string name = args.Get("-t");
    auto metadata_key = bp.mutable_catalog()->GetTable(branch, name);
    if (!metadata_key.ok()) return Fail(metadata_key.status());
    // Maintenance runs against the same store the platform writes to.
    table::TableOps ops(store->get(), &clock);
    table::TableMaintenance maintenance(&ops, store->get());
    std::string new_key;
    if (command == "compact") {
      auto result = maintenance.CompactFiles(*metadata_key);
      if (!result.ok()) return Fail(result.status());
      std::printf("compacted %s: %lld -> %lld files (%s rewritten)\n",
                  name.c_str(),
                  static_cast<long long>(result->files_before),
                  static_cast<long long>(result->files_after),
                  FormatBytes(static_cast<uint64_t>(
                      result->bytes_rewritten)).c_str());
      if (!result->compacted) return 0;
      new_key = result->metadata_key;
    } else {
      auto result = maintenance.ExpireSnapshots(*metadata_key);
      if (!result.ok()) return Fail(result.status());
      std::printf("expired %lld snapshots of %s: freed %s in %lld files\n",
                  static_cast<long long>(result->snapshots_removed),
                  name.c_str(),
                  FormatBytes(result->bytes_reclaimed).c_str(),
                  static_cast<long long>(result->data_files_deleted));
      if (result->snapshots_removed == 0) return 0;
      new_key = result->metadata_key;
    }
    catalog::TableChanges changes;
    changes.puts[name] = new_key;
    auto commit = bp.mutable_catalog()->CommitChanges(
        branch, StrCat(command, " ", name), "bauplan-cli", changes);
    if (!commit.ok()) return Fail(commit.status());
    return 0;
  }

  if (command == "merge") {
    if (args.positional().size() < 3) {
      return UsageError("merge needs FROM INTO");
    }
    auto merged =
        bp.MergeBranch(args.positional()[1], args.positional()[2]);
    if (!merged.ok()) return Fail(merged.status());
    std::printf("merged %s into %s at %s%s\n",
                args.positional()[1].c_str(),
                args.positional()[2].c_str(), merged->commit_id.c_str(),
                merged->fast_forward ? " (fast-forward)" : "");
    return 0;
  }

  if (command == "log") {
    auto limit = Int64Flag(args, "-n", 10, 0, 10'000'000);
    if (!limit.ok()) return UsageError(limit.status().message());
    auto log = bp.Log(args.Get("-b", "main"), static_cast<size_t>(*limit));
    if (!log.ok()) return Fail(log.status());
    for (const auto& commit : *log) {
      std::printf("%s  %s  %s (%s)\n", commit.id.c_str(),
                  FormatTimestampMicros(commit.timestamp_micros).c_str(),
                  commit.message.c_str(), commit.author.c_str());
    }
    return 0;
  }

  if (command == "tables") {
    auto tables = bp.ListTables(*ref);
    if (!tables.ok()) return Fail(tables.status());
    for (const auto& name : *tables) std::printf("%s\n", name.c_str());
    return 0;
  }

  return UsageError(StrCat("unknown command '", command, "'"));
}

}  // namespace
}  // namespace bauplan::cli

int main(int argc, char** argv) { return bauplan::cli::Main(argc, argv); }
