#ifndef BAUPLAN_CLI_PROJECT_LOADER_H_
#define BAUPLAN_CLI_PROJECT_LOADER_H_

#include <string>

#include "common/result.h"
#include "pipeline/project.h"

namespace bauplan::cli {

/// Loads a pipeline project from a directory, mirroring the paper's
/// one-file-per-node convention:
///   <node>.sql          - a SQL model node (node name = file stem)
///   expectations.conf   - one expectation node per line:
///       <table>_expectation: <dsl> [| requires: pkg==ver[,pkg==ver...]]
/// Lines starting with '#' and blank lines are ignored.
Result<pipeline::PipelineProject> LoadProjectFromDir(
    const std::string& dir);

/// Writes the paper's appendix pipeline into `dir` as project files
/// (used by `bauplan init-demo`).
Status WriteDemoProject(const std::string& dir, double threshold);

}  // namespace bauplan::cli

#endif  // BAUPLAN_CLI_PROJECT_LOADER_H_
