#ifndef BAUPLAN_RUNTIME_PACKAGE_CACHE_H_
#define BAUPLAN_RUNTIME_PACKAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "observability/metrics.h"
#include "runtime/package.h"

namespace bauplan::runtime {

/// Point-in-time counter snapshot for the package cache (the
/// Fig.-adjacent numbers of the package-cache bench), built from
/// "package_cache.*" registry instruments.
struct PackageCacheMetrics {
  int64_t hits = 0;
  int64_t misses = 0;
  uint64_t bytes_downloaded = 0;
  uint64_t bytes_evicted = 0;
  uint64_t fetch_micros_total = 0;

  double HitRate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Local disk-backed LRU cache of packages. A miss downloads from the
/// registry at `download_bytes_per_second`; a hit reads from local disk
/// at `disk_bytes_per_second` — orders of magnitude faster, which
/// combined with Zipf package popularity yields the paper's "exploit the
/// power-law in package utilization to limit overall download times"
/// (section 4.5).
///
/// Thread safety: Fetch/Contains/Clear may be called concurrently (cold
/// starts on parallel wavefronts all fetch through the shared cache).
/// Metrics reads are only meaningful when the cache is quiescent.
class PackageCache {
 public:
  struct Options {
    uint64_t capacity_bytes = 10ull * 1024 * 1024 * 1024;  // 10 GiB disk
    uint64_t download_bytes_per_second = 40ull * 1000 * 1000;  // PyPI-ish
    uint64_t download_request_micros = 80000;  // per-package RTT+TLS
    uint64_t disk_bytes_per_second = 2ull * 1000 * 1000 * 1000;
    uint64_t disk_access_micros = 100;
  };

  /// Does not own `clock` or `registry`. Counters register as
  /// "package_cache.*" instruments; with a null `registry` the cache
  /// keeps a private one.
  PackageCache(Clock* clock, Options options,
               observability::MetricsRegistry* registry = nullptr);

  /// Makes `pkg` available locally, charging the clock; returns the
  /// simulated micros this fetch took.
  uint64_t Fetch(const Package& pkg);

  bool Contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(name) > 0;
  }
  uint64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_bytes_;
  }
  /// Snapshot by value; call again for fresh numbers.
  PackageCacheMetrics metrics() const;
  void ResetMetrics();

  /// Drops everything (a fresh node with a cold disk).
  void Clear();

 private:
  void EvictUntilFits(uint64_t incoming_bytes) BAUPLAN_REQUIRES(mu_);

  Clock* clock_;
  Options options_;
  mutable std::mutex mu_;
  /// LRU list front = most recent; map holds iterators into it.
  std::list<Package> lru_ BAUPLAN_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Package>::iterator> entries_
      BAUPLAN_GUARDED_BY(mu_);
  uint64_t used_bytes_ BAUPLAN_GUARDED_BY(mu_) = 0;
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* hits_;
  observability::Counter* misses_;
  observability::Counter* bytes_downloaded_;
  observability::Counter* bytes_evicted_;
  observability::Counter* fetch_micros_total_;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_PACKAGE_CACHE_H_
