#include "runtime/package.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bauplan::runtime {

PackageRegistry::PackageRegistry(size_t n, double zipf_s, uint64_t seed)
    : popularity_(n, zipf_s) {
  Rng rng(seed);
  packages_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Package pkg;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "pkg_%05zu", i);
    pkg.name = buf;
    // Log-normal sizes: median 2 MiB, sigma 1.2 gives a numpy-sized tail.
    double mib = std::exp(rng.Normal(std::log(2.0), 1.2));
    pkg.size_bytes = static_cast<uint64_t>(
        std::max(64.0 * 1024, mib * 1024 * 1024));
    total_bytes_ += pkg.size_bytes;
    packages_.push_back(std::move(pkg));
  }
}

const Package& PackageRegistry::SampleByPopularity(Rng& rng) const {
  uint64_t rank = popularity_.Sample(rng);  // 1-based
  return packages_[static_cast<size_t>(rank - 1)];
}

std::vector<Package> PackageRegistry::SampleRequirementSet(
    Rng& rng, size_t k) const {
  std::vector<Package> out;
  k = std::min(k, packages_.size());
  size_t guard = 0;
  while (out.size() < k && guard < 100 * k + 100) {
    const Package& pkg = SampleByPopularity(rng);
    if (std::find(out.begin(), out.end(), pkg) == out.end()) {
      out.push_back(pkg);
    }
    ++guard;
  }
  // Popularity sampling can stall on tiny universes; fill deterministically.
  for (size_t i = 0; out.size() < k && i < packages_.size(); ++i) {
    if (std::find(out.begin(), out.end(), packages_[i]) == out.end()) {
      out.push_back(packages_[i]);
    }
  }
  return out;
}

}  // namespace bauplan::runtime
