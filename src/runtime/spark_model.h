#ifndef BAUPLAN_RUNTIME_SPARK_MODEL_H_
#define BAUPLAN_RUNTIME_SPARK_MODEL_H_

#include <cstdint>

#include "common/clock.h"

namespace bauplan::runtime {

/// Deterministic cost model of the Spark baseline the paper departs from
/// (section 3): a JVM cluster with long spin-up, per-job submit overhead,
/// and stateful session reuse. Used by the startup and Table-1 benches as
/// the comparator; numbers are calibrated to commonly reported EMR/
/// Dataproc figures.
class SparkSessionModel {
 public:
  struct Options {
    /// Provisioning a cluster + starting the driver/executors JVMs.
    uint64_t cluster_startup_micros = 45ull * 1000 * 1000;  // 45 s
    /// Creating a SparkSession on a running cluster.
    uint64_t session_create_micros = 8ull * 1000 * 1000;  // 8 s
    /// Submitting one job to a live session (scheduling + JVM warmup).
    uint64_t job_submit_micros = 1500 * 1000;  // 1.5 s
    /// Idle timeout after which the cluster is torn down.
    uint64_t idle_timeout_micros = 10ull * 60 * 1000 * 1000;  // 10 min
  };

  /// Does not own `clock`.
  SparkSessionModel(Clock* clock, Options options)
      : clock_(clock), options_(options) {}
  explicit SparkSessionModel(Clock* clock)
      : SparkSessionModel(clock, Options()) {}

  /// Charges the clock for submitting one job, spinning the cluster/
  /// session up first if absent or idle-expired; returns the total
  /// latency before the job's own computation starts.
  uint64_t SubmitJob() {
    uint64_t now = clock_->NowMicros();
    uint64_t micros = 0;
    if (!alive_ || now - last_used_micros_ > options_.idle_timeout_micros) {
      micros += options_.cluster_startup_micros +
                options_.session_create_micros;
      alive_ = true;
      ++cold_cluster_starts_;
    }
    micros += options_.job_submit_micros;
    clock_->AdvanceMicros(micros);
    last_used_micros_ = clock_->NowMicros();
    ++jobs_submitted_;
    return micros;
  }

  /// Tears the cluster down (scale-to-zero between pipelines).
  void Shutdown() { alive_ = false; }

  bool alive() const { return alive_; }
  int64_t jobs_submitted() const { return jobs_submitted_; }
  int64_t cold_cluster_starts() const { return cold_cluster_starts_; }

 private:
  Clock* clock_;
  Options options_;
  bool alive_ = false;
  uint64_t last_used_micros_ = 0;
  int64_t jobs_submitted_ = 0;
  int64_t cold_cluster_starts_ = 0;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_SPARK_MODEL_H_
