#include "runtime/scheduler.h"

#include <algorithm>

#include "common/strings.h"

namespace bauplan::runtime {

Scheduler::Scheduler(Clock* clock, Options options,
                     observability::MetricsRegistry* registry)
    : clock_(clock),
      options_(options),
      used_memory_(static_cast<size_t>(options.num_workers), 0),
      peak_memory_(static_cast<size_t>(options.num_workers), 0),
      busy_until_micros_(static_cast<size_t>(options.num_workers), 0) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  locality_hits_ = registry->GetCounter("scheduler.locality_hits");
  locality_misses_ = registry->GetCounter("scheduler.locality_misses");
  bytes_moved_ = registry->GetCounter("scheduler.bytes_moved");
  placements_ = registry->GetCounter("scheduler.placements");
  peak_memory_gauge_ =
      registry->GetGauge("scheduler.peak_worker_memory_bytes");
}

Result<Placement> Scheduler::Place(const std::vector<ArtifactRef>& inputs,
                                   uint64_t memory_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (memory_bytes > options_.worker_memory_bytes) {
    return Status::ResourceExhausted(
        StrCat("function needs ", FormatBytes(memory_bytes),
               " but workers have ",
               FormatBytes(options_.worker_memory_bytes)));
  }
  Placement placement;

  // Locality preference: the worker holding the most input bytes (ties
  // broken by artifact count, then lower worker id — deterministic).
  int preferred = -1;
  if (options_.locality_aware && !inputs.empty()) {
    std::map<int, std::pair<uint64_t, int>> local;  // worker -> {bytes, n}
    for (const auto& input : inputs) {
      int holder = WorkerOfLocked(input.key);
      if (holder >= 0) {
        local[holder].first += input.bytes;
        local[holder].second += 1;
      }
    }
    std::pair<uint64_t, int> best{0, 0};
    for (const auto& [worker, weight] : local) {
      if (weight > best) {
        best = weight;
        preferred = worker;
      }
    }
  }

  if (preferred >= 0 && FreeMemoryLocked(preferred) >= memory_bytes) {
    placement.worker = preferred;
    placement.locality_hit = true;
    locality_hits_->Increment();
  } else {
    // Round-robin over workers with room.
    for (int i = 0; i < options_.num_workers; ++i) {
      int candidate = (next_round_robin_ + i) % options_.num_workers;
      if (FreeMemoryLocked(candidate) >= memory_bytes) {
        placement.worker = candidate;
        next_round_robin_ = (candidate + 1) % options_.num_workers;
        break;
      }
    }
    if (placement.worker < 0) {
      return Status::ResourceExhausted(
          StrCat("no worker has ", FormatBytes(memory_bytes), " free"));
    }
    if (!inputs.empty()) locality_misses_->Increment();
  }

  // Inputs not resident on the chosen worker move across the network
  // (from a peer worker or object storage), one request per artifact. The
  // round-robin ablation ignores residency and always pays the move.
  int remote_requests = 0;
  for (const auto& input : inputs) {
    if (options_.locality_aware &&
        WorkerOfLocked(input.key) == placement.worker) {
      continue;
    }
    ++remote_requests;
    placement.bytes_moved += input.bytes;
  }
  if (remote_requests > 0) {
    placement.transfer_micros =
        static_cast<uint64_t>(remote_requests) *
            options_.network_request_micros +
        placement.bytes_moved * 1000000 /
            options_.network_bytes_per_second;
    clock_->AdvanceMicros(placement.transfer_micros);
    bytes_moved_->Increment(static_cast<int64_t>(placement.bytes_moved));
  }

  placements_->Increment();
  used_memory_[static_cast<size_t>(placement.worker)] += memory_bytes;
  peak_memory_[static_cast<size_t>(placement.worker)] =
      std::max(peak_memory_[static_cast<size_t>(placement.worker)],
               used_memory_[static_cast<size_t>(placement.worker)]);
  peak_memory_gauge_->SetMax(static_cast<int64_t>(
      peak_memory_[static_cast<size_t>(placement.worker)]));
  return placement;
}

Result<Placement> Scheduler::Place(const std::string& input_artifact,
                                   uint64_t input_bytes,
                                   uint64_t memory_bytes) {
  std::vector<ArtifactRef> inputs;
  if (!input_artifact.empty()) {
    inputs.push_back(ArtifactRef{input_artifact, input_bytes});
  }
  return Place(inputs, memory_bytes);
}

Status Scheduler::ReleaseMemory(int worker, uint64_t memory_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= options_.num_workers) {
    return Status::InvalidArgument(StrCat("no worker ", worker));
  }
  uint64_t& used = used_memory_[static_cast<size_t>(worker)];
  if (memory_bytes > used) {
    return Status::InvalidArgument(
        "releasing more memory than reserved");
  }
  used -= memory_bytes;
  return Status::OK();
}

void Scheduler::RecordArtifact(const std::string& artifact, int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  artifact_locations_[artifact] = worker;
}

int Scheduler::WorkerOf(const std::string& artifact) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WorkerOfLocked(artifact);
}

int Scheduler::WorkerOfLocked(const std::string& artifact) const {
  auto it = artifact_locations_.find(artifact);
  return it == artifact_locations_.end() ? -1 : it->second;
}

uint64_t Scheduler::WorkerBusyUntil(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= options_.num_workers) return 0;
  return busy_until_micros_[static_cast<size_t>(worker)];
}

void Scheduler::ExtendWorkerTimeline(int worker,
                                     uint64_t busy_until_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= options_.num_workers) return;
  uint64_t& busy = busy_until_micros_[static_cast<size_t>(worker)];
  busy = std::max(busy, busy_until_micros);
}

uint64_t Scheduler::used_memory(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_memory_[static_cast<size_t>(worker)];
}

uint64_t Scheduler::free_memory(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FreeMemoryLocked(worker);
}

uint64_t Scheduler::peak_memory(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_memory_[static_cast<size_t>(worker)];
}

int64_t Scheduler::locality_hits() const {
  return locality_hits_->Value();
}

int64_t Scheduler::locality_misses() const {
  return locality_misses_->Value();
}

uint64_t Scheduler::total_bytes_moved() const {
  return static_cast<uint64_t>(bytes_moved_->Value());
}

}  // namespace bauplan::runtime
