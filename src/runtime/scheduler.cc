#include "runtime/scheduler.h"

#include <algorithm>

#include "common/strings.h"

namespace bauplan::runtime {

Scheduler::Scheduler(Clock* clock, Options options)
    : clock_(clock),
      options_(options),
      used_memory_(static_cast<size_t>(options.num_workers), 0),
      peak_memory_(static_cast<size_t>(options.num_workers), 0) {}

Result<Placement> Scheduler::Place(const std::string& input_artifact,
                                   uint64_t input_bytes,
                                   uint64_t memory_bytes) {
  if (memory_bytes > options_.worker_memory_bytes) {
    return Status::ResourceExhausted(
        StrCat("function needs ", FormatBytes(memory_bytes),
               " but workers have ",
               FormatBytes(options_.worker_memory_bytes)));
  }
  Placement placement;

  // Locality preference: the worker already holding the input.
  int preferred = -1;
  if (options_.locality_aware && !input_artifact.empty()) {
    preferred = WorkerOf(input_artifact);
  }
  if (preferred >= 0 && free_memory(preferred) >= memory_bytes) {
    placement.worker = preferred;
    placement.locality_hit = true;
    ++locality_hits_;
  } else {
    // Round-robin over workers with room.
    for (int i = 0; i < options_.num_workers; ++i) {
      int candidate = (next_round_robin_ + i) % options_.num_workers;
      if (free_memory(candidate) >= memory_bytes) {
        placement.worker = candidate;
        next_round_robin_ = (candidate + 1) % options_.num_workers;
        break;
      }
    }
    if (placement.worker < 0) {
      return Status::ResourceExhausted(
          StrCat("no worker has ", FormatBytes(memory_bytes), " free"));
    }
    if (!input_artifact.empty()) {
      ++locality_misses_;
      // Input must move: from a peer worker or object storage.
      placement.bytes_moved = input_bytes;
      placement.transfer_micros =
          options_.network_request_micros +
          input_bytes * 1000000 / options_.network_bytes_per_second;
      clock_->AdvanceMicros(placement.transfer_micros);
      total_bytes_moved_ += input_bytes;
    }
  }

  used_memory_[static_cast<size_t>(placement.worker)] += memory_bytes;
  peak_memory_[static_cast<size_t>(placement.worker)] =
      std::max(peak_memory_[static_cast<size_t>(placement.worker)],
               used_memory_[static_cast<size_t>(placement.worker)]);
  return placement;
}

Status Scheduler::ReleaseMemory(int worker, uint64_t memory_bytes) {
  if (worker < 0 || worker >= options_.num_workers) {
    return Status::InvalidArgument(StrCat("no worker ", worker));
  }
  uint64_t& used = used_memory_[static_cast<size_t>(worker)];
  if (memory_bytes > used) {
    return Status::InvalidArgument(
        "releasing more memory than reserved");
  }
  used -= memory_bytes;
  return Status::OK();
}

void Scheduler::RecordArtifact(const std::string& artifact, int worker) {
  artifact_locations_[artifact] = worker;
}

int Scheduler::WorkerOf(const std::string& artifact) const {
  auto it = artifact_locations_.find(artifact);
  return it == artifact_locations_.end() ? -1 : it->second;
}

}  // namespace bauplan::runtime
