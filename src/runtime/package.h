#ifndef BAUPLAN_RUNTIME_PACKAGE_H_
#define BAUPLAN_RUNTIME_PACKAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bauplan::runtime {

/// One installable package (a Python wheel in the paper's world).
struct Package {
  std::string name;
  uint64_t size_bytes = 0;

  bool operator==(const Package& o) const { return name == o.name; }
};

/// The package universe with a Zipf popularity law — the empirical
/// observation (SOCK, paper section 4.5) that package utilization is
/// power-law distributed, which is what makes a small disk cache remove
/// most download time.
class PackageRegistry {
 public:
  /// `n` packages with popularity Zipf(s) and log-normal sizes
  /// (median ~2 MiB, heavy tail), deterministic in `seed`.
  PackageRegistry(size_t n, double zipf_s, uint64_t seed);

  size_t size() const { return packages_.size(); }
  const Package& package(size_t i) const { return packages_[i]; }

  /// Samples one package by popularity (rank 1 most popular).
  const Package& SampleByPopularity(Rng& rng) const;

  /// Samples `k` distinct packages by popularity — one node's
  /// requirement set.
  std::vector<Package> SampleRequirementSet(Rng& rng, size_t k) const;

  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<Package> packages_;
  ZipfDistribution popularity_;
  uint64_t total_bytes_ = 0;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_PACKAGE_H_
