#ifndef BAUPLAN_RUNTIME_SCHEDULER_H_
#define BAUPLAN_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "observability/metrics.h"

namespace bauplan::runtime {

/// One artifact a function reads: locality key plus payload size.
struct ArtifactRef {
  std::string key;
  uint64_t bytes = 0;
};

/// A placement decision for one function invocation.
struct Placement {
  int worker = -1;
  /// Simulated time spent moving inputs to the worker (0 when all local).
  uint64_t transfer_micros = 0;
  /// Bytes that had to move across the network / from object storage.
  uint64_t bytes_moved = 0;
  bool locality_hit = false;
};

/// Vertical-elasticity + data-locality scheduler (paper section 4.5):
/// functions get fine-grained memory reservations on a small pool of big
/// workers, and the scheduler prefers the worker already holding the
/// input artifacts — "moving data is slow and expensive, and object
/// storage should be treated as a last resort".
///
/// Thread safety: all public methods are safe to call concurrently; the
/// parallel wavefront executor places and releases from many timelines at
/// once. Each worker additionally carries a virtual timeline
/// (busy-until), which the executor uses to serialize functions that land
/// on the same worker so a run's makespan reflects the critical path, not
/// the sum of nodes.
class Scheduler {
 public:
  struct Options {
    int num_workers = 4;
    uint64_t worker_memory_bytes = 64ull * 1024 * 1024 * 1024;  // 64 GiB
    /// Cross-worker artifact transfer rate (10 Gb/s network).
    uint64_t network_bytes_per_second = 1250ull * 1000 * 1000;
    uint64_t network_request_micros = 500;
    /// When false, placement ignores artifact locations (the ablation
    /// baseline: round robin).
    bool locality_aware = true;
  };

  /// Does not own `clock` or `registry`. Locality and transfer counters
  /// register as "scheduler.*" instruments; with a null `registry` the
  /// scheduler keeps a private one.
  Scheduler(Clock* clock, Options options,
            observability::MetricsRegistry* registry = nullptr);

  /// Picks a worker for a function reading `inputs` (possibly empty),
  /// reserving `memory_bytes` on it. Prefers the worker holding the most
  /// input bytes; inputs that are not local to the chosen worker are
  /// transferred (clock charged per remote artifact). ResourceExhausted
  /// when no worker can fit the reservation.
  Result<Placement> Place(const std::vector<ArtifactRef>& inputs,
                          uint64_t memory_bytes);

  /// Single-input convenience (empty `input_artifact` = no input).
  Result<Placement> Place(const std::string& input_artifact,
                          uint64_t input_bytes, uint64_t memory_bytes);

  /// Releases a reservation made by Place.
  Status ReleaseMemory(int worker, uint64_t memory_bytes);

  /// Records that `artifact` now lives in worker-local memory/disk.
  void RecordArtifact(const std::string& artifact, int worker);

  /// Worker currently holding `artifact`, or -1.
  int WorkerOf(const std::string& artifact) const;

  // -- per-worker virtual timelines ------------------------------------

  /// The simulated time until which `worker` is running a function
  /// (0 / past values mean idle). Out-of-range workers report 0.
  uint64_t WorkerBusyUntil(int worker) const;

  /// Extends `worker`'s timeline to `busy_until_micros` (monotonic: an
  /// earlier value is ignored).
  void ExtendWorkerTimeline(int worker, uint64_t busy_until_micros);

  // -- introspection ---------------------------------------------------

  uint64_t used_memory(int worker) const;
  uint64_t free_memory(int worker) const;
  uint64_t peak_memory(int worker) const;
  int64_t locality_hits() const;
  int64_t locality_misses() const;
  uint64_t total_bytes_moved() const;

 private:
  uint64_t FreeMemoryLocked(int worker) const BAUPLAN_REQUIRES(mu_) {
    return options_.worker_memory_bytes -
           used_memory_[static_cast<size_t>(worker)];
  }
  int WorkerOfLocked(const std::string& artifact) const
      BAUPLAN_REQUIRES(mu_);

  Clock* clock_;
  Options options_;
  mutable std::mutex mu_;
  std::vector<uint64_t> used_memory_ BAUPLAN_GUARDED_BY(mu_);
  std::vector<uint64_t> peak_memory_ BAUPLAN_GUARDED_BY(mu_);
  /// Virtual time until which each worker is occupied (wavefront mode).
  std::vector<uint64_t> busy_until_micros_ BAUPLAN_GUARDED_BY(mu_);
  std::map<std::string, int> artifact_locations_ BAUPLAN_GUARDED_BY(mu_);
  int next_round_robin_ BAUPLAN_GUARDED_BY(mu_) = 0;
  /// Registry-backed counters (shared with the platform dump).
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* locality_hits_;
  observability::Counter* locality_misses_;
  observability::Counter* bytes_moved_;
  observability::Counter* placements_;
  observability::Gauge* peak_memory_gauge_;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_SCHEDULER_H_
