#ifndef BAUPLAN_RUNTIME_CONTAINER_MANAGER_H_
#define BAUPLAN_RUNTIME_CONTAINER_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "observability/metrics.h"
#include "runtime/container.h"
#include "runtime/package_cache.h"

namespace bauplan::runtime {

/// Point-in-time counter snapshot across the manager's lifetime (built
/// from "containers.*" registry instruments on each call).
struct ContainerManagerMetrics {
  int64_t cold_starts = 0;
  int64_t frozen_resumes = 0;
  int64_t warm_reuses = 0;
  int64_t evictions = 0;
  uint64_t startup_micros_total = 0;
};

/// Result of acquiring a container.
struct Acquisition {
  int64_t container_id = 0;
  StartKind kind = StartKind::kCold;
  /// Simulated startup latency charged to the clock.
  uint64_t startup_micros = 0;
};

/// The container manager of the paper's section 4.5: keeps a bounded pool
/// of per-environment containers, freezing them after use so the next
/// acquisition pays the ~300 ms resume instead of a cold start. Package
/// installs on cold starts go through the shared PackageCache, so the
/// Zipf head of the package distribution is almost always local.
///
/// Thread safety: Acquire/Release/Clear may be called concurrently (the
/// parallel wavefront executor acquires a container per in-flight
/// function). Metrics reads are only meaningful when the pool is
/// quiescent.
class ContainerManager {
 public:
  struct Options {
    ContainerCostModel cost;
    /// Max containers kept (warm+frozen) before LRU eviction.
    size_t max_containers = 64;
  };

  /// Does not own `clock`, `package_cache` or `registry`. Counters
  /// register as "containers.*" instruments; with a null `registry` the
  /// manager keeps a private one.
  ContainerManager(Clock* clock, PackageCache* package_cache,
                   Options options,
                   observability::MetricsRegistry* registry = nullptr);
  ContainerManager(Clock* clock, PackageCache* package_cache)
      : ContainerManager(clock, package_cache, Options()) {}

  /// Acquires a container satisfying `spec`, charging the clock for
  /// whatever start kind was needed. ResourceExhausted when the pool is
  /// at capacity and every container is held by a running function.
  Result<Acquisition> Acquire(const ContainerSpec& spec);

  /// Returns a container to the pool. By default it is checkpointed to
  /// the frozen state (next acquisition pays the ~300 ms resume); with
  /// `freeze` false it stays warm-idle (reusable instantly within the
  /// same DAG execution, at the cost of held memory).
  Status Release(int64_t container_id, bool freeze = true);

  /// Snapshot by value; call again for fresh numbers.
  ContainerManagerMetrics metrics() const;
  void ResetMetrics();

  size_t pool_size() const;

  /// Drops the whole pool (a fresh host).
  void Clear();

 private:
  uint64_t ColdStartMicros(const ContainerSpec& spec) BAUPLAN_REQUIRES(mu_);
  /// Evicts the least-recently-used frozen container; false when none.
  bool EvictOneFrozen() BAUPLAN_REQUIRES(mu_);

  Clock* clock_;
  PackageCache* package_cache_;
  Options options_;
  mutable std::mutex mu_;
  std::map<int64_t, Container> containers_ BAUPLAN_GUARDED_BY(mu_);
  int64_t next_id_ BAUPLAN_GUARDED_BY(mu_) = 1;
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* cold_starts_;
  observability::Counter* frozen_resumes_;
  observability::Counter* warm_reuses_;
  observability::Counter* evictions_;
  observability::Counter* startup_micros_total_;
  observability::Histogram* startup_micros_;
  observability::Gauge* pool_size_gauge_;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_CONTAINER_MANAGER_H_
