#include "runtime/container_manager.h"

#include "common/strings.h"

namespace bauplan::runtime {

ContainerManager::ContainerManager(Clock* clock,
                                   PackageCache* package_cache,
                                   Options options,
                                   observability::MetricsRegistry* registry)
    : clock_(clock), package_cache_(package_cache), options_(options) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  cold_starts_ = registry->GetCounter("containers.cold_starts");
  frozen_resumes_ = registry->GetCounter("containers.frozen_resumes");
  warm_reuses_ = registry->GetCounter("containers.warm_reuses");
  evictions_ = registry->GetCounter("containers.evictions");
  startup_micros_total_ =
      registry->GetCounter("containers.startup_micros_total");
  startup_micros_ = registry->GetHistogram("containers.startup_micros");
  pool_size_gauge_ = registry->GetGauge("containers.pool_size");
}

ContainerManagerMetrics ContainerManager::metrics() const {
  ContainerManagerMetrics snapshot;
  snapshot.cold_starts = cold_starts_->Value();
  snapshot.frozen_resumes = frozen_resumes_->Value();
  snapshot.warm_reuses = warm_reuses_->Value();
  snapshot.evictions = evictions_->Value();
  snapshot.startup_micros_total =
      static_cast<uint64_t>(startup_micros_total_->Value());
  return snapshot;
}

void ContainerManager::ResetMetrics() {
  cold_starts_->Reset();
  frozen_resumes_->Reset();
  warm_reuses_->Reset();
  evictions_->Reset();
  startup_micros_total_->Reset();
  startup_micros_->Reset();
}

uint64_t ContainerManager::ColdStartMicros(const ContainerSpec& spec) {
  const ContainerCostModel& cost = options_.cost;
  uint64_t micros = cost.base_boot_micros + cost.interpreter_boot_micros;
  clock_->AdvanceMicros(cost.base_boot_micros +
                        cost.interpreter_boot_micros);
  for (const auto& pkg : spec.packages) {
    // Fetch charges the clock itself (download or local disk).
    micros += package_cache_->Fetch(pkg);
    uint64_t install =
        cost.install_per_package_micros +
        pkg.size_bytes * 1000000 / cost.install_bytes_per_second;
    clock_->AdvanceMicros(install);
    micros += install;
  }
  return micros;
}

Result<Acquisition> ContainerManager::Acquire(const ContainerSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = spec.Key();
  // Prefer a warm container, then a frozen one.
  Container* warm = nullptr;
  Container* frozen = nullptr;
  for (auto& [id, c] : containers_) {
    if (c.spec_key != key || c.in_use) continue;
    if (c.state == Container::State::kWarm && warm == nullptr) warm = &c;
    if (c.state == Container::State::kFrozen && frozen == nullptr) {
      frozen = &c;
    }
  }

  Acquisition acq;
  if (warm != nullptr) {
    acq.kind = StartKind::kWarmReuse;
    acq.startup_micros = options_.cost.warm_dispatch_micros;
    clock_->AdvanceMicros(acq.startup_micros);
    acq.container_id = warm->id;
    warm->in_use = true;
    warm->last_used_micros = clock_->NowMicros();
    warm_reuses_->Increment();
  } else if (frozen != nullptr) {
    acq.kind = StartKind::kFrozenResume;
    acq.startup_micros = options_.cost.resume_micros;
    clock_->AdvanceMicros(acq.startup_micros);
    frozen->state = Container::State::kWarm;
    frozen->in_use = true;
    frozen->last_used_micros = clock_->NowMicros();
    acq.container_id = frozen->id;
    frozen_resumes_->Increment();
  } else {
    // Make room before booting a new container; refuse when every slot
    // is held by a running function (the caller unwinds its memory
    // reservation and either queues the function or fails the run).
    while (containers_.size() >= options_.max_containers) {
      if (!EvictOneFrozen()) {
        return Status::ResourceExhausted(
            StrCat("container pool exhausted: all ",
                   options_.max_containers, " containers in use"));
      }
    }
    acq.kind = StartKind::kCold;
    acq.startup_micros = ColdStartMicros(spec);
    Container c;
    c.id = next_id_++;
    c.spec_key = key;
    c.state = Container::State::kWarm;
    c.in_use = true;
    c.last_used_micros = clock_->NowMicros();
    acq.container_id = c.id;
    containers_.emplace(c.id, std::move(c));
    cold_starts_->Increment();
  }
  startup_micros_total_->Increment(
      static_cast<int64_t>(acq.startup_micros));
  startup_micros_->Observe(acq.startup_micros);
  pool_size_gauge_->Set(static_cast<int64_t>(containers_.size()));
  return acq;
}

Status ContainerManager::Release(int64_t container_id, bool freeze) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    return Status::NotFound(
        StrCat("no container with id ", container_id));
  }
  if (!it->second.in_use) {
    return Status::FailedPrecondition(
        StrCat("container ", container_id, " is not held"));
  }
  it->second.in_use = false;
  if (freeze) {
    clock_->AdvanceMicros(options_.cost.freeze_micros);
    it->second.state = Container::State::kFrozen;
  }
  it->second.last_used_micros = clock_->NowMicros();
  return Status::OK();
}

bool ContainerManager::EvictOneFrozen() {
  // Evict the least recently used frozen container.
  auto victim = containers_.end();
  for (auto it = containers_.begin(); it != containers_.end(); ++it) {
    if (it->second.state != Container::State::kFrozen) continue;
    if (victim == containers_.end() ||
        it->second.last_used_micros < victim->second.last_used_micros) {
      victim = it;
    }
  }
  if (victim == containers_.end()) return false;  // everything is in use
  containers_.erase(victim);
  evictions_->Increment();
  return true;
}

size_t ContainerManager::pool_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return containers_.size();
}

void ContainerManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  containers_.clear();
}

}  // namespace bauplan::runtime
