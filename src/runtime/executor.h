#ifndef BAUPLAN_RUNTIME_EXECUTOR_H_
#define BAUPLAN_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "runtime/container_manager.h"
#include "runtime/scheduler.h"

namespace bauplan::runtime {

/// One function to run on the serverless substrate.
struct FunctionRequest {
  std::string name;
  ContainerSpec spec;
  /// Vertical elasticity: the memory this function needs, sized to its
  /// artifacts ("the same logic should run with 10 GB or 20 GB of memory
  /// depending on the underlying artifacts", section 4.5).
  uint64_t memory_bytes = 1ull << 30;
  /// The artifacts the function reads (locality keys + sizes). Multi-
  /// upstream DAG nodes list every upstream here so placement and
  /// transfer accounting see all of them.
  std::vector<ArtifactRef> inputs;
  /// Single-input convenience, folded into `inputs`; empty = none.
  std::string input_artifact;
  uint64_t input_bytes = 0;
  /// Artifact the function produces (registered at its worker on
  /// success; a failed body registers nothing).
  std::string output_artifact;
  uint64_t output_bytes = 0;
  /// Keep the container warm-idle after this invocation instead of
  /// freezing it. The platform's runtime uses this inside a development
  /// feedback loop (paper: "freezing a container after initialization
  /// would make startup time negligible"); plain stateless functions
  /// leave it false.
  bool keep_warm = false;
  /// Caller-provided correlation id, echoed in the InvocationReport
  /// (Submit/Drain fill it with the queue ticket).
  int64_t ticket = 0;
  /// The actual work. Runs in-process; simulated time for data movement
  /// and startup is charged by the executor, while the body may charge
  /// additional compute time itself. May be empty for pure simulations.
  std::function<Status()> body;
};

/// Timing breakdown of one invocation on the simulated clock.
struct InvocationReport {
  std::string name;
  StartKind start_kind = StartKind::kCold;
  int worker = -1;
  uint64_t queue_micros = 0;
  uint64_t startup_micros = 0;
  uint64_t transfer_micros = 0;
  uint64_t body_micros = 0;
  uint64_t total_micros = 0;
  bool locality_hit = false;
  /// Echo of FunctionRequest::ticket.
  int64_t ticket = 0;
};

/// Result of dispatching one wavefront of ready functions.
struct WaveReport {
  /// One report per function that ran, in request order.
  std::vector<InvocationReport> reports;
  /// Functions bounced by resource exhaustion (no worker memory or
  /// container slot free while the rest of the wave held them). They
  /// stay runnable: re-dispatch them in the next wave.
  std::vector<FunctionRequest> deferred;
};

/// Synchronous + asynchronous function execution over the container
/// manager and locality scheduler — Table 1's two interaction modes.
/// Sync = caller blocks on the result (the fast feedback loop of QW and
/// dev-mode TD); async = requests queue and a later Drain() runs them
/// (prod-mode TD driven by an orchestrator).
///
/// InvokeWave adds the wavefront mode: a set of functions whose inputs
/// are all ready runs concurrently on a thread pool, each on its own
/// forked virtual timeline, and the global clock advances by the wave's
/// makespan (max over members) instead of the sum. Functions placed on
/// the same worker serialize through the scheduler's per-worker
/// busy-until timeline, so the makespan reflects the critical path under
/// real worker contention.
class ServerlessExecutor {
 public:
  /// Does not own its collaborators.
  ServerlessExecutor(Clock* clock, ContainerManager* containers,
                     Scheduler* scheduler)
      : clock_(clock), containers_(containers), scheduler_(scheduler) {}

  /// Runs one function to completion, charging the clock for startup,
  /// transfer and the body.
  Result<InvocationReport> Invoke(const FunctionRequest& request);

  /// Runs a wave of functions, up to `parallelism` bodies at a time.
  /// Timing: all members start from the same wave clock; the global
  /// clock advances by max over member end times. Requires the executor
  /// clock to be a ForkableClock; otherwise (or when `parallelism` <= 1,
  /// or when already running inside a fork — a nested dispatch) the wave
  /// degrades to sequential Invoke calls.
  Result<WaveReport> InvokeWave(std::vector<FunctionRequest> requests,
                                int parallelism);

  /// Enqueues a function for later execution; returns a ticket.
  int64_t Submit(FunctionRequest request);

  /// Runs all queued functions, returning their reports (each includes
  /// the time spent waiting in the queue). With `parallelism` <= 1 they
  /// run sequentially in submit order; otherwise they dispatch as one
  /// wave (plus follow-up waves for deferred members).
  Result<std::vector<InvocationReport>> Drain(int parallelism = 1);

  size_t pending() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return queue_.size();
  }

 private:
  struct Pending {
    int64_t ticket;
    uint64_t submitted_micros;
    FunctionRequest request;
  };

  Clock* clock_;
  ContainerManager* containers_;
  Scheduler* scheduler_;
  mutable std::mutex queue_mu_;
  std::vector<Pending> queue_;
  int64_t next_ticket_ = 1;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_EXECUTOR_H_
