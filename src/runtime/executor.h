#ifndef BAUPLAN_RUNTIME_EXECUTOR_H_
#define BAUPLAN_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "runtime/container_manager.h"
#include "runtime/scheduler.h"

namespace bauplan::runtime {

/// One function to run on the serverless substrate.
struct FunctionRequest {
  std::string name;
  ContainerSpec spec;
  /// Vertical elasticity: the memory this function needs, sized to its
  /// artifacts ("the same logic should run with 10 GB or 20 GB of memory
  /// depending on the underlying artifacts", section 4.5).
  uint64_t memory_bytes = 1ull << 30;
  /// The artifact the function reads (locality key); empty = none.
  std::string input_artifact;
  uint64_t input_bytes = 0;
  /// Artifact the function produces (registered at its worker).
  std::string output_artifact;
  uint64_t output_bytes = 0;
  /// Keep the container warm-idle after this invocation instead of
  /// freezing it. The platform's runtime uses this inside a development
  /// feedback loop (paper: "freezing a container after initialization
  /// would make startup time negligible"); plain stateless functions
  /// leave it false.
  bool keep_warm = false;
  /// The actual work. Runs in-process; simulated time for data movement
  /// and startup is charged by the executor, while the body may charge
  /// additional compute time itself. May be empty for pure simulations.
  std::function<Status()> body;
};

/// Timing breakdown of one invocation on the simulated clock.
struct InvocationReport {
  std::string name;
  StartKind start_kind = StartKind::kCold;
  int worker = -1;
  uint64_t queue_micros = 0;
  uint64_t startup_micros = 0;
  uint64_t transfer_micros = 0;
  uint64_t body_micros = 0;
  uint64_t total_micros = 0;
  bool locality_hit = false;
};

/// Synchronous + asynchronous function execution over the container
/// manager and locality scheduler — Table 1's two interaction modes.
/// Sync = caller blocks on the result (the fast feedback loop of QW and
/// dev-mode TD); async = requests queue and a later Drain() runs them
/// (prod-mode TD driven by an orchestrator).
class ServerlessExecutor {
 public:
  /// Does not own its collaborators.
  ServerlessExecutor(Clock* clock, ContainerManager* containers,
                     Scheduler* scheduler)
      : clock_(clock), containers_(containers), scheduler_(scheduler) {}

  /// Runs one function to completion, charging the clock for startup,
  /// transfer and the body.
  Result<InvocationReport> Invoke(const FunctionRequest& request);

  /// Enqueues a function for later execution; returns a ticket.
  int64_t Submit(FunctionRequest request);

  /// Runs all queued functions in submit order, returning their reports
  /// (each includes the time spent waiting in the queue).
  Result<std::vector<InvocationReport>> Drain();

  size_t pending() const { return queue_.size(); }

 private:
  struct Pending {
    int64_t ticket;
    uint64_t submitted_micros;
    FunctionRequest request;
  };

  Clock* clock_;
  ContainerManager* containers_;
  Scheduler* scheduler_;
  std::vector<Pending> queue_;
  int64_t next_ticket_ = 1;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_EXECUTOR_H_
