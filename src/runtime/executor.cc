#include "runtime/executor.h"

namespace bauplan::runtime {

Result<InvocationReport> ServerlessExecutor::Invoke(
    const FunctionRequest& request) {
  InvocationReport report;
  report.name = request.name;
  uint64_t start = clock_->NowMicros();

  // Place for memory + locality (charges transfer time).
  BAUPLAN_ASSIGN_OR_RETURN(
      Placement placement,
      scheduler_->Place(request.input_artifact, request.input_bytes,
                        request.memory_bytes));
  report.worker = placement.worker;
  report.transfer_micros = placement.transfer_micros;
  report.locality_hit = placement.locality_hit;

  // Start (or resume) the sandbox.
  BAUPLAN_ASSIGN_OR_RETURN(Acquisition acq,
                           containers_->Acquire(request.spec));
  report.start_kind = acq.kind;
  report.startup_micros = acq.startup_micros;

  // Run the body; it may charge more simulated time itself.
  uint64_t body_start = clock_->NowMicros();
  Status body_status = Status::OK();
  if (request.body) body_status = request.body();
  report.body_micros = clock_->NowMicros() - body_start;

  // Latency visible to the caller excludes the freeze/teardown below.
  report.total_micros = clock_->NowMicros() - start;

  // Wind down regardless of body outcome.
  if (!request.output_artifact.empty()) {
    scheduler_->RecordArtifact(request.output_artifact, placement.worker);
  }
  BAUPLAN_RETURN_NOT_OK(
      scheduler_->ReleaseMemory(placement.worker, request.memory_bytes));
  BAUPLAN_RETURN_NOT_OK(containers_->Release(acq.container_id,
                                             !request.keep_warm));

  if (!body_status.ok()) {
    return body_status.WithContext(
        std::string("function '") + request.name + "' failed");
  }
  return report;
}

int64_t ServerlessExecutor::Submit(FunctionRequest request) {
  Pending pending;
  pending.ticket = next_ticket_++;
  pending.submitted_micros = clock_->NowMicros();
  pending.request = std::move(request);
  queue_.push_back(std::move(pending));
  return queue_.back().ticket;
}

Result<std::vector<InvocationReport>> ServerlessExecutor::Drain() {
  std::vector<InvocationReport> reports;
  reports.reserve(queue_.size());
  std::vector<Pending> batch;
  batch.swap(queue_);
  for (auto& pending : batch) {
    uint64_t queued = clock_->NowMicros() - pending.submitted_micros;
    BAUPLAN_ASSIGN_OR_RETURN(InvocationReport report,
                             Invoke(pending.request));
    report.queue_micros = queued;
    report.total_micros += queued;
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace bauplan::runtime
