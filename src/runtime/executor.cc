#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>

namespace bauplan::runtime {

namespace {

/// Releases a worker memory reservation made by Scheduler::Place unless
/// explicitly handed back first. Guards the window between Place and the
/// end of the invocation so an Acquire failure (or any early return)
/// cannot leak the reservation.
class ScopedReservation {
 public:
  ScopedReservation(Scheduler* scheduler, int worker, uint64_t bytes)
      : scheduler_(scheduler), worker_(worker), bytes_(bytes) {}

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  ~ScopedReservation() {
    if (scheduler_ != nullptr) {
      scheduler_->ReleaseMemory(worker_, bytes_);  // best effort
    }
  }

  /// Releases now, propagating the scheduler's verdict.
  Status Release() {
    Scheduler* scheduler = scheduler_;
    scheduler_ = nullptr;
    return scheduler->ReleaseMemory(worker_, bytes_);
  }

 private:
  Scheduler* scheduler_;
  int worker_;
  uint64_t bytes_;
};

/// The full input set of a request: `inputs` plus the single-input
/// convenience fields.
std::vector<ArtifactRef> EffectiveInputs(const FunctionRequest& request) {
  std::vector<ArtifactRef> inputs = request.inputs;
  if (!request.input_artifact.empty()) {
    inputs.push_back(ArtifactRef{request.input_artifact,
                                 request.input_bytes});
  }
  return inputs;
}

Status FailureOf(const Status& body_status, const std::string& name) {
  return body_status.WithContext(
      std::string("function '") + name + "' failed");
}

/// One wave member's state across the dispatch phases.
struct WaveMember {
  FunctionRequest request;
  Placement placement;
  Acquisition acq;
  /// Simulated transfer + startup time, charged on the member's fork.
  uint64_t prelude_micros = 0;
  uint64_t body_micros = 0;
  Status body_status;
};

}  // namespace

Result<InvocationReport> ServerlessExecutor::Invoke(
    const FunctionRequest& request) {
  InvocationReport report;
  report.name = request.name;
  report.ticket = request.ticket;
  uint64_t start = clock_->NowMicros();

  // Place for memory + locality (charges transfer time).
  BAUPLAN_ASSIGN_OR_RETURN(
      Placement placement,
      scheduler_->Place(EffectiveInputs(request), request.memory_bytes));
  ScopedReservation reservation(scheduler_, placement.worker,
                                request.memory_bytes);
  report.worker = placement.worker;
  report.transfer_micros = placement.transfer_micros;
  report.locality_hit = placement.locality_hit;

  // Start (or resume) the sandbox. The reservation guard unwinds the
  // Place above if no container slot is free.
  BAUPLAN_ASSIGN_OR_RETURN(Acquisition acq,
                           containers_->Acquire(request.spec));
  report.start_kind = acq.kind;
  report.startup_micros = acq.startup_micros;

  // Run the body; it may charge more simulated time itself.
  uint64_t body_start = clock_->NowMicros();
  Status body_status = Status::OK();
  if (request.body) body_status = request.body();
  report.body_micros = clock_->NowMicros() - body_start;

  // Latency visible to the caller excludes the freeze/teardown below.
  report.total_micros = clock_->NowMicros() - start;

  // Wind down regardless of body outcome — but only a successful body
  // leaves its output artifact behind for locality decisions; a failed
  // function produced nothing.
  if (body_status.ok() && !request.output_artifact.empty()) {
    scheduler_->RecordArtifact(request.output_artifact, placement.worker);
  }
  BAUPLAN_RETURN_NOT_OK(reservation.Release());
  BAUPLAN_RETURN_NOT_OK(containers_->Release(acq.container_id,
                                             !request.keep_warm));

  if (!body_status.ok()) return FailureOf(body_status, request.name);
  return report;
}

Result<WaveReport> ServerlessExecutor::InvokeWave(
    std::vector<FunctionRequest> requests, int parallelism) {
  WaveReport wave;
  if (requests.empty()) return wave;

  auto* fork_clock = dynamic_cast<ForkableClock*>(clock_);
  bool can_fork = fork_clock != nullptr && !fork_clock->ForkActive();
  if (!can_fork || parallelism <= 1 || requests.size() == 1) {
    // Degraded path: plain sequential invocations (also taken by nested
    // dispatches — a function body that itself drains an executor).
    for (const auto& request : requests) {
      BAUPLAN_ASSIGN_OR_RETURN(InvocationReport report, Invoke(request));
      wave.reports.push_back(std::move(report));
    }
    return wave;
  }

  const uint64_t wave_start = fork_clock->NowMicros();
  std::vector<WaveMember> members;
  members.reserve(requests.size());

  // Phase A (coordinator, deterministic request order): place memory,
  // move inputs, acquire containers. Each member's prelude runs on its
  // own fork starting at the wave clock, so members do not see each
  // other's transfer/startup latency. Resource exhaustion defers the
  // member to a later wave once at least one member holds resources;
  // any other error unwinds the whole wave.
  auto unwind = [&](Status error) -> Status {
    for (WaveMember& member : members) {
      scheduler_->ReleaseMemory(member.placement.worker,
                                member.request.memory_bytes);
      containers_->Release(member.acq.container_id,
                           !member.request.keep_warm);
    }
    return error;
  };

  for (auto& request : requests) {
    fork_clock->BeginFork(wave_start);
    WaveMember member;
    member.request = std::move(request);

    Result<Placement> placed = scheduler_->Place(
        EffectiveInputs(member.request), member.request.memory_bytes);
    if (!placed.ok()) {
      fork_clock->EndFork();
      if (placed.status().IsResourceExhausted() && !members.empty()) {
        wave.deferred.push_back(std::move(member.request));
        continue;
      }
      return unwind(placed.status().WithContext(
          std::string("placing function '") + member.request.name + "'"));
    }
    member.placement = *placed;

    Result<Acquisition> acquired = containers_->Acquire(member.request.spec);
    if (!acquired.ok()) {
      fork_clock->EndFork();
      scheduler_->ReleaseMemory(member.placement.worker,
                                member.request.memory_bytes);
      if (acquired.status().IsResourceExhausted() && !members.empty()) {
        wave.deferred.push_back(std::move(member.request));
        continue;
      }
      return unwind(acquired.status().WithContext(
          std::string("acquiring container for '") + member.request.name +
          "'"));
    }
    member.acq = *acquired;
    member.prelude_micros = fork_clock->EndFork() - wave_start;
    members.push_back(std::move(member));
  }

  // Phase B (thread pool): run the bodies physically concurrent, each on
  // a fork resuming where its prelude left off. Bodies only make
  // duration-relative charges (store latency, compute), so the final
  // schedule does not depend on OS thread interleaving.
  size_t pool_size = std::min<size_t>(static_cast<size_t>(parallelism),
                                      members.size());
  std::atomic<size_t> next_member{0};
  auto run_bodies = [&]() {
    for (;;) {
      size_t i = next_member.fetch_add(1);
      if (i >= members.size()) break;
      WaveMember& member = members[i];
      fork_clock->BeginFork(wave_start + member.prelude_micros);
      Status body_status = Status::OK();
      if (member.request.body) body_status = member.request.body();
      member.body_micros =
          fork_clock->EndFork() - (wave_start + member.prelude_micros);
      member.body_status = std::move(body_status);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (size_t t = 0; t < pool_size; ++t) pool.emplace_back(run_bodies);
  for (std::thread& thread : pool) thread.join();

  // Phase C (coordinator, request order): lay the members onto the
  // per-worker timelines. Two members on the same worker serialize; the
  // wave's makespan is the max end time, and that is what the global
  // clock advances by.
  uint64_t wave_end = wave_start;
  Status first_failure;
  for (WaveMember& member : members) {
    uint64_t duration = member.prelude_micros + member.body_micros;
    uint64_t begin = std::max(
        wave_start, scheduler_->WorkerBusyUntil(member.placement.worker));
    uint64_t end = begin + duration;

    InvocationReport report;
    report.name = member.request.name;
    report.ticket = member.request.ticket;
    report.start_kind = member.acq.kind;
    report.worker = member.placement.worker;
    report.queue_micros = begin - wave_start;
    report.startup_micros = member.acq.startup_micros;
    report.transfer_micros = member.placement.transfer_micros;
    report.body_micros = member.body_micros;
    report.total_micros = end - wave_start;
    report.locality_hit = member.placement.locality_hit;
    wave_end = std::max(wave_end, end);

    if (member.body_status.ok()) {
      if (!member.request.output_artifact.empty()) {
        scheduler_->RecordArtifact(member.request.output_artifact,
                                   member.placement.worker);
      }
    } else if (first_failure.ok()) {
      first_failure = FailureOf(member.body_status, member.request.name);
    }

    BAUPLAN_RETURN_NOT_OK(scheduler_->ReleaseMemory(
        member.placement.worker, member.request.memory_bytes));
    // Freeze/teardown happens off the caller-visible wave latency but
    // does occupy the worker: extend its timeline past the freeze.
    fork_clock->BeginFork(end);
    Status released = containers_->Release(member.acq.container_id,
                                           !member.request.keep_warm);
    scheduler_->ExtendWorkerTimeline(member.placement.worker,
                                     fork_clock->EndFork());
    BAUPLAN_RETURN_NOT_OK(released);

    wave.reports.push_back(std::move(report));
  }

  clock_->AdvanceMicros(wave_end - wave_start);
  if (!first_failure.ok()) return first_failure;
  return wave;
}

int64_t ServerlessExecutor::Submit(FunctionRequest request) {
  std::lock_guard<std::mutex> lock(queue_mu_);
  Pending pending;
  pending.ticket = next_ticket_++;
  pending.submitted_micros = clock_->NowMicros();
  pending.request = std::move(request);
  queue_.push_back(std::move(pending));
  return queue_.back().ticket;
}

Result<std::vector<InvocationReport>> ServerlessExecutor::Drain(
    int parallelism) {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    batch.swap(queue_);
  }

  std::vector<InvocationReport> reports;
  reports.reserve(batch.size());

  if (parallelism <= 1) {
    // Sequential drain: submit order, queue time measured up to each
    // function's own dispatch (it includes its predecessors' runtime).
    for (Pending& pending : batch) {
      uint64_t queued = clock_->NowMicros() - pending.submitted_micros;
      pending.request.ticket = pending.ticket;
      BAUPLAN_ASSIGN_OR_RETURN(InvocationReport report,
                               Invoke(pending.request));
      report.queue_micros += queued;
      report.total_micros += queued;
      reports.push_back(std::move(report));
    }
    return reports;
  }

  // Wavefront drain: the whole batch dispatches together; members that
  // bounce on resources retry in follow-up waves.
  std::map<int64_t, uint64_t> submitted_micros;
  std::vector<FunctionRequest> remaining;
  remaining.reserve(batch.size());
  for (Pending& pending : batch) {
    submitted_micros[pending.ticket] = pending.submitted_micros;
    pending.request.ticket = pending.ticket;
    remaining.push_back(std::move(pending.request));
  }

  while (!remaining.empty()) {
    uint64_t dispatch_micros = clock_->NowMicros();
    BAUPLAN_ASSIGN_OR_RETURN(
        WaveReport wave, InvokeWave(std::move(remaining), parallelism));
    remaining = std::move(wave.deferred);
    if (wave.reports.empty() && !remaining.empty()) {
      return Status::Internal(
          "executor made no progress draining the queue");
    }
    for (InvocationReport& report : wave.reports) {
      auto it = submitted_micros.find(report.ticket);
      uint64_t queued = it == submitted_micros.end()
                            ? 0
                            : dispatch_micros - it->second;
      report.queue_micros += queued;
      report.total_micros += queued;
      reports.push_back(std::move(report));
    }
  }
  return reports;
}

}  // namespace bauplan::runtime
