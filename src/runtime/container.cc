#include "runtime/container.h"

#include <algorithm>

namespace bauplan::runtime {

std::string ContainerSpec::Key() const {
  std::vector<std::string> names;
  names.reserve(packages.size());
  for (const auto& p : packages) names.push_back(p.name);
  std::sort(names.begin(), names.end());
  std::string key = interpreter;
  for (const auto& n : names) {
    key += '|';
    key += n;
  }
  return key;
}

std::string_view StartKindToString(StartKind kind) {
  switch (kind) {
    case StartKind::kCold:
      return "cold";
    case StartKind::kFrozenResume:
      return "frozen-resume";
    case StartKind::kWarmReuse:
      return "warm";
  }
  return "?";
}

}  // namespace bauplan::runtime
