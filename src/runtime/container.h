#ifndef BAUPLAN_RUNTIME_CONTAINER_H_
#define BAUPLAN_RUNTIME_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/package.h"

namespace bauplan::runtime {

/// What a function needs from its sandbox: interpreter + pinned packages.
/// Two requests with the same key can share a frozen container.
struct ContainerSpec {
  std::string interpreter = "python3.11";
  std::vector<Package> packages;

  /// Canonical identity of this environment (interpreter + sorted
  /// package names).
  std::string Key() const;

  uint64_t PackageBytes() const {
    uint64_t total = 0;
    for (const auto& p : packages) total += p.size_bytes;
    return total;
  }
};

/// How a container start was satisfied.
enum class StartKind {
  /// Full cold start: base image boot + package fetch/install +
  /// interpreter boot.
  kCold,
  /// Resume of a frozen (checkpointed) container — the paper's 300 ms.
  kFrozenResume,
  /// Container was already running warm (same DAG execution).
  kWarmReuse,
};

std::string_view StartKindToString(StartKind kind);

/// Deterministic cost model of the container lifecycle. Defaults are
/// calibrated to the paper's claims: frozen resume = 300 ms, cold starts
/// in the seconds (dominated by package install), warm dispatch in the
/// low milliseconds.
struct ContainerCostModel {
  /// Pulling + booting the (pre-baked) base image.
  uint64_t base_boot_micros = 900000;
  /// Starting the interpreter inside the container.
  uint64_t interpreter_boot_micros = 250000;
  /// Installing one fetched package: unpack + link, per byte.
  uint64_t install_bytes_per_second = 200ull * 1000 * 1000;
  /// Fixed per-package install overhead.
  uint64_t install_per_package_micros = 30000;
  /// Checkpointing a warm container to a frozen image.
  uint64_t freeze_micros = 40000;
  /// Restoring a frozen container: the paper's headline 300 ms.
  uint64_t resume_micros = 300000;
  /// Dispatching onto an already-warm container.
  uint64_t warm_dispatch_micros = 3000;
};

/// One sandbox tracked by the ContainerManager.
struct Container {
  enum class State { kWarm, kFrozen };

  int64_t id = 0;
  std::string spec_key;
  State state = State::kWarm;
  /// Held by a running function; a warm container is only reusable when
  /// idle.
  bool in_use = false;
  uint64_t last_used_micros = 0;
};

}  // namespace bauplan::runtime

#endif  // BAUPLAN_RUNTIME_CONTAINER_H_
