#include "runtime/package_cache.h"

namespace bauplan::runtime {

PackageCache::PackageCache(Clock* clock, Options options,
                           observability::MetricsRegistry* registry)
    : clock_(clock), options_(options) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("package_cache.hits");
  misses_ = registry->GetCounter("package_cache.misses");
  bytes_downloaded_ = registry->GetCounter("package_cache.bytes_downloaded");
  bytes_evicted_ = registry->GetCounter("package_cache.bytes_evicted");
  fetch_micros_total_ =
      registry->GetCounter("package_cache.fetch_micros_total");
}

PackageCacheMetrics PackageCache::metrics() const {
  PackageCacheMetrics snapshot;
  snapshot.hits = hits_->Value();
  snapshot.misses = misses_->Value();
  snapshot.bytes_downloaded =
      static_cast<uint64_t>(bytes_downloaded_->Value());
  snapshot.bytes_evicted = static_cast<uint64_t>(bytes_evicted_->Value());
  snapshot.fetch_micros_total =
      static_cast<uint64_t>(fetch_micros_total_->Value());
  return snapshot;
}

void PackageCache::ResetMetrics() {
  hits_->Reset();
  misses_->Reset();
  bytes_downloaded_->Reset();
  bytes_evicted_->Reset();
  fetch_micros_total_->Reset();
}

uint64_t PackageCache::Fetch(const Package& pkg) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t micros = 0;
  auto it = entries_.find(pkg.name);
  if (it != entries_.end()) {
    // Hit: read from local disk, refresh recency.
    hits_->Increment();
    micros = options_.disk_access_micros +
             pkg.size_bytes * 1000000 / options_.disk_bytes_per_second;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    // Miss: download, then insert (evicting LRU entries as needed).
    misses_->Increment();
    micros = options_.download_request_micros +
             pkg.size_bytes * 1000000 /
                 options_.download_bytes_per_second;
    bytes_downloaded_->Increment(static_cast<int64_t>(pkg.size_bytes));
    if (pkg.size_bytes <= options_.capacity_bytes) {
      EvictUntilFits(pkg.size_bytes);
      lru_.push_front(pkg);
      entries_[pkg.name] = lru_.begin();
      used_bytes_ += pkg.size_bytes;
    }
  }
  clock_->AdvanceMicros(micros);
  fetch_micros_total_->Increment(static_cast<int64_t>(micros));
  return micros;
}

void PackageCache::EvictUntilFits(uint64_t incoming_bytes) {
  while (!lru_.empty() &&
         used_bytes_ + incoming_bytes > options_.capacity_bytes) {
    const Package& victim = lru_.back();
    used_bytes_ -= victim.size_bytes;
    bytes_evicted_->Increment(static_cast<int64_t>(victim.size_bytes));
    entries_.erase(victim.name);
    lru_.pop_back();
  }
}

void PackageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

}  // namespace bauplan::runtime
