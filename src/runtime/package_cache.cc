#include "runtime/package_cache.h"

namespace bauplan::runtime {

uint64_t PackageCache::Fetch(const Package& pkg) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t micros = 0;
  auto it = entries_.find(pkg.name);
  if (it != entries_.end()) {
    // Hit: read from local disk, refresh recency.
    ++metrics_.hits;
    micros = options_.disk_access_micros +
             pkg.size_bytes * 1000000 / options_.disk_bytes_per_second;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    // Miss: download, then insert (evicting LRU entries as needed).
    ++metrics_.misses;
    micros = options_.download_request_micros +
             pkg.size_bytes * 1000000 /
                 options_.download_bytes_per_second;
    metrics_.bytes_downloaded += pkg.size_bytes;
    if (pkg.size_bytes <= options_.capacity_bytes) {
      EvictUntilFits(pkg.size_bytes);
      lru_.push_front(pkg);
      entries_[pkg.name] = lru_.begin();
      used_bytes_ += pkg.size_bytes;
    }
  }
  clock_->AdvanceMicros(micros);
  metrics_.fetch_micros_total += micros;
  return micros;
}

void PackageCache::EvictUntilFits(uint64_t incoming_bytes) {
  while (!lru_.empty() &&
         used_bytes_ + incoming_bytes > options_.capacity_bytes) {
    const Package& victim = lru_.back();
    used_bytes_ -= victim.size_bytes;
    metrics_.bytes_evicted += victim.size_bytes;
    entries_.erase(victim.name);
    lru_.pop_back();
  }
}

void PackageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

}  // namespace bauplan::runtime
