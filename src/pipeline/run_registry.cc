#include "pipeline/run_registry.h"

#include <cstdio>

#include "common/strings.h"

namespace bauplan::pipeline {

Bytes RunRecord::Serialize() const {
  BinaryWriter w;
  w.PutI64(run_id);
  w.PutString(project_name);
  w.PutString(fingerprint);
  w.PutString(data_commit_id);
  w.PutString(result_commit_id);
  w.PutString(branch);
  w.PutU64(started_micros);
  w.PutString(status);
  w.PutU32(static_cast<uint32_t>(project_snapshot.size()));
  w.PutRaw(project_snapshot.data(), project_snapshot.size());
  // Appended after v1's fields so records written before the artifact
  // cache existed still deserialize (the reader stops at end-of-buffer).
  w.PutU32(static_cast<uint32_t>(cached_nodes.size()));
  for (const auto& name : cached_nodes) w.PutString(name);
  return w.TakeBuffer();
}

Result<RunRecord> RunRecord::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  RunRecord record;
  BAUPLAN_ASSIGN_OR_RETURN(record.run_id, r.GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(record.project_name, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(record.fingerprint, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(record.data_commit_id, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(record.result_commit_id, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(record.branch, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(record.started_micros, r.GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(record.status, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t snapshot_size, r.GetU32());
  record.project_snapshot.resize(snapshot_size);
  BAUPLAN_RETURN_NOT_OK(
      r.GetRaw(record.project_snapshot.data(), snapshot_size));
  if (!r.AtEnd()) {  // cached_nodes tail (absent in pre-cache records)
    BAUPLAN_ASSIGN_OR_RETURN(uint32_t cached_count, r.GetU32());
    record.cached_nodes.reserve(cached_count);
    for (uint32_t i = 0; i < cached_count; ++i) {
      BAUPLAN_ASSIGN_OR_RETURN(std::string name, r.GetString());
      record.cached_nodes.push_back(std::move(name));
    }
  }
  return record;
}

RunRegistry::RunRegistry(storage::ObjectStore* store, Clock* clock,
                         std::string prefix)
    : store_(store), clock_(clock), prefix_(std::move(prefix)) {}

std::string RunRegistry::RunKey(int64_t run_id) const {
  // Zero-padded so listing sorts numerically.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld",
                static_cast<long long>(run_id));
  return StrCat(prefix_, "/run-", buf);
}

Result<int64_t> RunRegistry::NextRunId() {
  BAUPLAN_ASSIGN_OR_RETURN(auto runs, ListRuns());
  return runs.empty() ? 1 : runs.back() + 1;
}

Result<RunRecord> RunRegistry::RegisterRun(
    const PipelineProject& project, const std::string& branch,
    const std::string& data_commit_id) {
  // Registration is a read-modify-write (list ids, take max+1, put the
  // record); the lock keeps concurrent registrations from colliding.
  std::lock_guard<std::mutex> lock(mu_);
  BAUPLAN_ASSIGN_OR_RETURN(int64_t run_id, NextRunId());
  RunRecord record;
  record.run_id = run_id;
  record.project_name = project.name();
  record.fingerprint = project.Fingerprint();
  record.data_commit_id = data_commit_id;
  record.branch = branch;
  record.started_micros = clock_->NowMicros();
  record.status = "running";
  record.project_snapshot = project.Snapshot();
  BAUPLAN_RETURN_NOT_OK(store_->Put(RunKey(run_id), record.Serialize()));
  return record;
}

Status RunRegistry::FinishRun(int64_t run_id, const std::string& status,
                              const std::string& result_commit_id,
                              const std::vector<std::string>& cached_nodes) {
  BAUPLAN_ASSIGN_OR_RETURN(RunRecord record, GetRun(run_id));
  record.status = status;
  if (!result_commit_id.empty()) {
    record.result_commit_id = result_commit_id;
  }
  if (!cached_nodes.empty()) {
    record.cached_nodes = cached_nodes;
  }
  return store_->Put(RunKey(run_id), record.Serialize());
}

Result<RunRecord> RunRegistry::GetRun(int64_t run_id) const {
  auto data = store_->Get(RunKey(run_id));
  if (!data.ok()) {
    return Status::NotFound(StrCat("no run with id ", run_id));
  }
  return RunRecord::Deserialize(*data);
}

Result<PipelineProject> RunRegistry::GetRunProject(int64_t run_id) const {
  BAUPLAN_ASSIGN_OR_RETURN(RunRecord record, GetRun(run_id));
  return PipelineProject::FromSnapshot(record.project_snapshot);
}

Result<std::vector<int64_t>> RunRegistry::ListRuns() const {
  BAUPLAN_ASSIGN_OR_RETURN(auto objects,
                           store_->List(StrCat(prefix_, "/run-")));
  std::vector<int64_t> ids;
  ids.reserve(objects.size());
  for (const auto& obj : objects) {
    size_t dash = obj.key.rfind('-');
    if (dash == std::string::npos) continue;
    ids.push_back(std::atoll(obj.key.c_str() + dash + 1));
  }
  return ids;
}

Result<ReplaySelector> ReplaySelector::Parse(std::string_view text) {
  std::string_view trimmed = StripWhitespace(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty replay selector");
  }
  ReplaySelector selector;
  if (trimmed.back() == '+') {
    selector.include_descendants = true;
    trimmed.remove_suffix(1);
  }
  if (trimmed.empty()) {
    return Status::InvalidArgument("replay selector needs a node name");
  }
  selector.node = std::string(trimmed);
  return selector;
}

}  // namespace bauplan::pipeline
