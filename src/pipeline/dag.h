#ifndef BAUPLAN_PIPELINE_DAG_H_
#define BAUPLAN_PIPELINE_DAG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "pipeline/project.h"

namespace bauplan::pipeline {

/// One node of the extracted DAG with its resolved dependencies.
struct DagNode {
  const PipelineNode* node = nullptr;
  /// Upstream pipeline nodes (by name).
  std::vector<std::string> upstream_nodes;
  /// Source tables read from the lakehouse catalog.
  std::vector<std::string> source_tables;
};

/// The logical DAG extracted from a project: who reads whom, in a valid
/// execution order. This is the "logical plan" layer of the paper's
/// Fig. 3 — built purely from parsing and naming conventions, with no
/// imperative DAG construction.
class Dag {
 public:
  /// Extracts dependencies: SQL nodes depend on every FROM/JOIN reference
  /// (a pipeline node if one has that name, a source table otherwise);
  /// expectation nodes depend on their target via the naming convention.
  /// `known_tables` are the tables available in the catalog; a reference
  /// to neither a node nor a known table is NotFound. A cycle is
  /// InvalidArgument.
  static Result<Dag> Build(const PipelineProject& project,
                           const std::set<std::string>& known_tables);

  /// Node names in a topological order (parents first); deterministic.
  const std::vector<std::string>& execution_order() const {
    return order_;
  }

  const DagNode& GetNode(const std::string& name) const {
    return nodes_.at(name);
  }
  bool HasNode(const std::string& name) const {
    return nodes_.count(name) > 0;
  }

  /// Every source table any node reads.
  std::set<std::string> AllSourceTables() const;

  /// Downstream closure of `root` (root itself plus all transitive
  /// consumers), in execution order — the `-m pickups+` replay selector.
  Result<std::vector<std::string>> DescendantsOf(
      const std::string& root) const;

  /// Multi-line text rendering of the DAG (for `bauplan run --explain`).
  std::string ToString() const;

 private:
  std::map<std::string, DagNode> nodes_;
  std::vector<std::string> order_;
};

}  // namespace bauplan::pipeline

#endif  // BAUPLAN_PIPELINE_DAG_H_
