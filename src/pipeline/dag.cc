#include "pipeline/dag.h"

#include <deque>

#include "common/strings.h"
#include "sql/parser.h"

namespace bauplan::pipeline {

Result<Dag> Dag::Build(const PipelineProject& project,
                       const std::set<std::string>& known_tables) {
  Dag dag;
  // Resolve references.
  for (const auto& node : project.nodes()) {
    DagNode entry;
    entry.node = &node;
    std::vector<std::string> refs;
    if (node.kind == NodeKind::kSqlModel) {
      BAUPLAN_ASSIGN_OR_RETURN(refs,
                               sql::ExtractTableReferences(node.code));
    } else {
      BAUPLAN_ASSIGN_OR_RETURN(std::string target,
                               node.ExpectationTarget());
      refs.push_back(std::move(target));
    }
    for (const auto& ref : refs) {
      if (ref == node.name) {
        return Status::InvalidArgument(
            StrCat("node '", node.name, "' references itself"));
      }
      if (project.FindNode(ref) != nullptr) {
        entry.upstream_nodes.push_back(ref);
      } else if (known_tables.count(ref) > 0) {
        entry.source_tables.push_back(ref);
      } else {
        return Status::NotFound(
            StrCat("node '", node.name, "' references '", ref,
                   "', which is neither a pipeline node nor a table in ",
                   "the catalog"));
      }
    }
    dag.nodes_.emplace(node.name, std::move(entry));
  }

  // Kahn's algorithm over project order for deterministic output.
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const auto& node : project.nodes()) {
    in_degree[node.name] =
        static_cast<int>(dag.nodes_.at(node.name).upstream_nodes.size());
    for (const auto& up : dag.nodes_.at(node.name).upstream_nodes) {
      downstream[up].push_back(node.name);
    }
  }
  // A deque keeps the FIFO pop O(1); erasing the front of a vector is
  // O(n) per node, quadratic over wide DAGs.
  std::deque<std::string> ready;
  for (const auto& node : project.nodes()) {
    if (in_degree[node.name] == 0) ready.push_back(node.name);
  }
  while (!ready.empty()) {
    std::string current = std::move(ready.front());
    ready.pop_front();
    dag.order_.push_back(current);
    for (const auto& next : downstream[current]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (dag.order_.size() != dag.nodes_.size()) {
    std::string cyclic;
    for (const auto& [name, degree] : in_degree) {
      if (degree > 0) {
        if (!cyclic.empty()) cyclic += ", ";
        cyclic += name;
      }
    }
    return Status::InvalidArgument(
        StrCat("pipeline has a dependency cycle involving: ", cyclic));
  }
  return dag;
}

std::set<std::string> Dag::AllSourceTables() const {
  std::set<std::string> out;
  for (const auto& [name, node] : nodes_) {
    out.insert(node.source_tables.begin(), node.source_tables.end());
  }
  return out;
}

Result<std::vector<std::string>> Dag::DescendantsOf(
    const std::string& root) const {
  if (nodes_.count(root) == 0) {
    return Status::NotFound(StrCat("no node named '", root, "'"));
  }
  std::set<std::string> selected = {root};
  // order_ is topological, so one forward pass closes the set.
  for (const auto& name : order_) {
    const DagNode& node = nodes_.at(name);
    for (const auto& up : node.upstream_nodes) {
      if (selected.count(up) > 0) {
        selected.insert(name);
        break;
      }
    }
  }
  std::vector<std::string> out;
  for (const auto& name : order_) {
    if (selected.count(name) > 0) out.push_back(name);
  }
  return out;
}

std::string Dag::ToString() const {
  std::string out;
  for (const auto& name : order_) {
    const DagNode& node = nodes_.at(name);
    out += name;
    out += node.node->kind == NodeKind::kExpectation ? " [expectation]"
                                                     : " [sql]";
    std::vector<std::string> inputs = node.source_tables;
    for (const auto& up : node.upstream_nodes) {
      inputs.push_back(up);
    }
    if (!inputs.empty()) {
      out += StrCat(" <- ", StrJoin(inputs, ", "));
    }
    out += "\n";
  }
  return out;
}

}  // namespace bauplan::pipeline
