#ifndef BAUPLAN_PIPELINE_PROJECT_H_
#define BAUPLAN_PIPELINE_PROJECT_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "expectations/requirements.h"

namespace bauplan::pipeline {

/// What a pipeline node does.
enum class NodeKind {
  /// Produces a table artifact from a SQL query (one-query-one-artifact).
  kSqlModel,
  /// Audits an existing artifact with an expectation (DSL text); the
  /// `<table>_expectation` naming convention binds it to its target.
  kExpectation,
};

/// One node of a pipeline project: a file in the user's repo. DAG edges
/// are never declared — they are extracted from the SQL's FROM clauses and
/// the expectation naming convention (paper section 4.4.1: "functions are
/// all you need").
struct PipelineNode {
  std::string name;
  NodeKind kind = NodeKind::kSqlModel;
  /// kSqlModel: the SELECT text. kExpectation: the expectation DSL text.
  std::string code;
  /// Pinned packages (@requirements analog); drives the runtime's
  /// package cache.
  expectations::RequirementSet requirements;

  /// For expectations named "<table>_expectation", the audited table.
  Result<std::string> ExpectationTarget() const;
};

/// A user's pipeline: a named, ordered collection of nodes. The paper's
/// appendix example is exactly three nodes (trips, trips_expectation,
/// pickups).
class PipelineProject {
 public:
  explicit PipelineProject(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<PipelineNode>& nodes() const { return nodes_; }

  /// Adds a SQL model node.
  Status AddSqlNode(
      const std::string& name, const std::string& sql,
      const expectations::RequirementSet& requirements = {});

  /// Adds an expectation node; `name` must follow the
  /// `<table>_expectation` convention.
  Status AddExpectationNode(
      const std::string& name, const std::string& dsl,
      const expectations::RequirementSet& requirements = {});

  const PipelineNode* FindNode(const std::string& name) const;

  /// Deterministic serialization of the whole project — the snapshot
  /// stored by the run registry.
  Bytes Snapshot() const;
  static Result<PipelineProject> FromSnapshot(const Bytes& bytes);

  /// Content fingerprint of the snapshot (code-is-data: same fingerprint
  /// on the same data version means identical results).
  std::string Fingerprint() const;

 private:
  Status AddNode(PipelineNode node);

  std::string name_;
  std::vector<PipelineNode> nodes_;
};

/// The paper's appendix pipeline, parameterized by the audit threshold:
/// trips (SQL over taxi_table), trips_expectation (mean(count) >
/// threshold), pickups (SQL over trips).
PipelineProject MakePaperTaxiPipeline(double expectation_threshold = 10.0);

/// A wide DAG exercising the wavefront scheduler: a diamond (base ->
/// short_trips/long_trips -> trip_balance) plus `fan_out` independent
/// per-dimension rollups of taxi_table and an expectation on base. With
/// `fan_out` >= 4 the DAG has at least four mutually independent nodes,
/// so a parallel run's makespan is bounded by the critical path while the
/// sequential walk pays the sum.
PipelineProject MakeWideTaxiPipeline(int fan_out = 4);

}  // namespace bauplan::pipeline

#endif  // BAUPLAN_PIPELINE_PROJECT_H_
