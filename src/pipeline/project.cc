#include "pipeline/project.h"

#include "common/hash.h"
#include "common/strings.h"

namespace bauplan::pipeline {

namespace {
constexpr std::string_view kExpectationSuffix = "_expectation";
}  // namespace

Result<std::string> PipelineNode::ExpectationTarget() const {
  if (kind != NodeKind::kExpectation) {
    return Status::FailedPrecondition(
        StrCat("node '", name, "' is not an expectation"));
  }
  if (!EndsWith(name, kExpectationSuffix) ||
      name.size() == kExpectationSuffix.size()) {
    return Status::InvalidArgument(
        StrCat("expectation node '", name,
               "' must be named '<table>_expectation'"));
  }
  return name.substr(0, name.size() - kExpectationSuffix.size());
}

Status PipelineProject::AddNode(PipelineNode node) {
  if (node.name.empty()) {
    return Status::InvalidArgument("node name must not be empty");
  }
  if (FindNode(node.name) != nullptr) {
    return Status::AlreadyExists(
        StrCat("node '", node.name, "' already in project"));
  }
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status PipelineProject::AddSqlNode(
    const std::string& name, const std::string& sql,
    const expectations::RequirementSet& requirements) {
  PipelineNode node;
  node.name = name;
  node.kind = NodeKind::kSqlModel;
  node.code = sql;
  node.requirements = requirements;
  return AddNode(std::move(node));
}

Status PipelineProject::AddExpectationNode(
    const std::string& name, const std::string& dsl,
    const expectations::RequirementSet& requirements) {
  PipelineNode node;
  node.name = name;
  node.kind = NodeKind::kExpectation;
  node.code = dsl;
  node.requirements = requirements;
  BAUPLAN_RETURN_NOT_OK(node.ExpectationTarget().status());
  return AddNode(std::move(node));
}

const PipelineNode* PipelineProject::FindNode(
    const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

Bytes PipelineProject::Snapshot() const {
  BinaryWriter w;
  w.PutString(name_);
  w.PutU32(static_cast<uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    w.PutString(node.name);
    w.PutU8(static_cast<uint8_t>(node.kind));
    w.PutString(node.code);
    w.PutString(node.requirements.ToString());
  }
  return w.TakeBuffer();
}

Result<PipelineProject> PipelineProject::FromSnapshot(const Bytes& bytes) {
  BinaryReader r(bytes);
  BAUPLAN_ASSIGN_OR_RETURN(std::string name, r.GetString());
  PipelineProject project(std::move(name));
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    PipelineNode node;
    BAUPLAN_ASSIGN_OR_RETURN(node.name, r.GetString());
    BAUPLAN_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (kind > static_cast<uint8_t>(NodeKind::kExpectation)) {
      return Status::IOError("invalid node kind in snapshot");
    }
    node.kind = static_cast<NodeKind>(kind);
    BAUPLAN_ASSIGN_OR_RETURN(node.code, r.GetString());
    BAUPLAN_ASSIGN_OR_RETURN(std::string reqs, r.GetString());
    BAUPLAN_ASSIGN_OR_RETURN(node.requirements,
                             expectations::RequirementSet::Parse(reqs));
    BAUPLAN_RETURN_NOT_OK(project.AddNode(std::move(node)));
  }
  return project;
}

std::string PipelineProject::Fingerprint() const {
  Bytes snapshot = Snapshot();
  return FingerprintHex(std::string_view(
      reinterpret_cast<const char*>(snapshot.data()), snapshot.size()));
}

PipelineProject MakePaperTaxiPipeline(double expectation_threshold) {
  PipelineProject project("nyc_taxi");
  // Step 1 (trips): extract columns for the target window.
  Status st = project.AddSqlNode(
      "trips",
      "SELECT pickup_location_id, passenger_count AS count, "
      "dropoff_location_id FROM taxi_table "
      "WHERE pickup_at >= '2019-04-01'");
  // Step 2 (trips_expectation): audit the artifact.
  if (st.ok()) {
    auto reqs =
        expectations::RequirementSet::Parse("pandas==2.0.0").ValueOrDie();
    char dsl[64];
    std::snprintf(dsl, sizeof(dsl), "mean(count) > %g",
                  expectation_threshold);
    st = project.AddExpectationNode("trips_expectation", dsl, reqs);
  }
  // Step 3 (pickups): aggregate and sort.
  if (st.ok()) {
    st = project.AddSqlNode(
        "pickups",
        "SELECT pickup_location_id, dropoff_location_id, COUNT(*) AS "
        "counts FROM trips GROUP BY pickup_location_id, "
        "dropoff_location_id ORDER BY counts DESC");
  }
  // The fixed pipeline above cannot fail to assemble.
  (void)st;
  return project;
}

PipelineProject MakeWideTaxiPipeline(int fan_out) {
  PipelineProject project("nyc_taxi_wide");
  // Diamond: base feeds two disjoint slices that re-join downstream.
  Status st = project.AddSqlNode(
      "base",
      "SELECT pickup_location_id, dropoff_location_id, "
      "passenger_count AS count, trip_distance, fare FROM taxi_table "
      "WHERE pickup_at >= '2019-01-01'");
  if (st.ok()) {
    auto reqs =
        expectations::RequirementSet::Parse("pandas==2.0.0").ValueOrDie();
    st = project.AddExpectationNode("base_expectation", "mean(count) > 0",
                                    reqs);
  }
  if (st.ok()) {
    st = project.AddSqlNode(
        "short_trips",
        "SELECT pickup_location_id, COUNT(*) AS rides, SUM(fare) AS "
        "revenue FROM base WHERE trip_distance < 2.5 "
        "GROUP BY pickup_location_id");
  }
  if (st.ok()) {
    st = project.AddSqlNode(
        "long_trips",
        "SELECT pickup_location_id, COUNT(*) AS rides, SUM(fare) AS "
        "revenue FROM base WHERE trip_distance >= 2.5 "
        "GROUP BY pickup_location_id");
  }
  if (st.ok()) {
    st = project.AddSqlNode(
        "trip_balance",
        "SELECT short_trips.pickup_location_id, "
        "short_trips.rides AS short_rides, "
        "long_trips.rides AS long_rides FROM short_trips "
        "JOIN long_trips ON short_trips.pickup_location_id = "
        "long_trips.pickup_location_id "
        "ORDER BY short_trips.pickup_location_id");
  }
  // Fan-out: mutually independent rollups straight off the source table
  // (no edges between them, so a wavefront runs them all at once).
  for (int i = 1; st.ok() && i <= fan_out; ++i) {
    st = project.AddSqlNode(
        StrCat("fan_", i),
        StrCat("SELECT dropoff_location_id, COUNT(*) AS rides_", i,
               " FROM taxi_table WHERE passenger_count >= ", i,
               " GROUP BY dropoff_location_id ORDER BY "
               "dropoff_location_id"));
  }
  // The fixed pipeline above cannot fail to assemble.
  (void)st;
  return project;
}

}  // namespace bauplan::pipeline
