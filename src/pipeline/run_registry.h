#ifndef BAUPLAN_PIPELINE_RUN_REGISTRY_H_
#define BAUPLAN_PIPELINE_RUN_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "pipeline/project.h"
#include "storage/object_store.h"

namespace bauplan::pipeline {

/// Everything needed to reproduce one pipeline run: the full project
/// snapshot, its fingerprint, and the exact catalog commit the run read
/// from. Same snapshot + same commit => identical results (the paper's
/// code-is-data principle, section 4.4.1, mirroring Metaflow).
struct RunRecord {
  int64_t run_id = 0;
  std::string project_name;
  std::string fingerprint;
  /// Catalog commit id the run's data was read at.
  std::string data_commit_id;
  /// Commit the target branch ended at after the merge; empty until the
  /// run succeeds. Replays with a node selector read upstream artifacts
  /// here ("same code over the same data", section 4.6).
  std::string result_commit_id;
  /// Branch the run targeted.
  std::string branch;
  uint64_t started_micros = 0;
  /// "succeeded", "failed: <why>".
  std::string status;
  /// Serialized PipelineProject.
  Bytes project_snapshot;
  /// Nodes served from the differential artifact cache instead of
  /// executing (empty for fully-fresh or pre-cache records). `bauplan
  /// run --run-id N` reports these as skipped work.
  std::vector<std::string> cached_nodes;

  Bytes Serialize() const;
  static Result<RunRecord> Deserialize(const Bytes& bytes);
};

/// Durable, append-only index of runs in object storage. Run ids are
/// dense integers so `bauplan run --run-id 12` reads naturally.
class RunRegistry {
 public:
  /// Does not own `store` or `clock`.
  RunRegistry(storage::ObjectStore* store, Clock* clock,
              std::string prefix = "runs");

  /// Allocates the next run id and records the (not yet finished) run.
  Result<RunRecord> RegisterRun(const PipelineProject& project,
                                const std::string& branch,
                                const std::string& data_commit_id);

  /// Updates the stored record's status (and, for successful runs, the
  /// commit the merge produced and the nodes the artifact cache served).
  Status FinishRun(int64_t run_id, const std::string& status,
                   const std::string& result_commit_id = "",
                   const std::vector<std::string>& cached_nodes = {});

  Result<RunRecord> GetRun(int64_t run_id) const;

  /// Reconstructs the project exactly as it was snapshotted.
  Result<PipelineProject> GetRunProject(int64_t run_id) const;

  /// All run ids, ascending.
  Result<std::vector<int64_t>> ListRuns() const;

 private:
  std::string RunKey(int64_t run_id) const;
  /// List-and-increment over the stored runs; callers must hold `mu_` so
  /// two concurrent registrations cannot allocate the same id.
  Result<int64_t> NextRunId() BAUPLAN_REQUIRES(mu_);

  storage::ObjectStore* store_;
  Clock* clock_;
  std::string prefix_;
  /// Serializes the id-allocate + record-put pair in RegisterRun.
  std::mutex mu_;
};

/// Parses a replay selector: "node" (just that node) or "node+" (the node
/// and all downstream consumers), as in `bauplan run --run-id 12 -m
/// pickups+`.
struct ReplaySelector {
  std::string node;
  bool include_descendants = false;

  static Result<ReplaySelector> Parse(std::string_view text);
};

}  // namespace bauplan::pipeline

#endif  // BAUPLAN_PIPELINE_RUN_REGISTRY_H_
