#include "storage/object_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace bauplan::storage {

namespace fs = std::filesystem;

// ------------------------------------------------------ MemoryObjectStore

Status MemoryObjectStore::Put(const std::string& key, Bytes data) {
  if (key.empty()) return Status::InvalidArgument("empty object key");
  std::lock_guard<std::mutex> lock(mu_);
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<Bytes> MemoryObjectStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound(StrCat("no object with key '", key, "'"));
  }
  return it->second;
}

Result<uint64_t> MemoryObjectStore::Head(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound(StrCat("no object with key '", key, "'"));
  }
  return static_cast<uint64_t>(it->second.size());
}

Status MemoryObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound(StrCat("no object with key '", key, "'"));
  }
  objects_.erase(it);
  return Status::OK();
}

Result<std::vector<ObjectMeta>> MemoryObjectStore::List(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectMeta> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back({it->first, static_cast<uint64_t>(it->second.size())});
  }
  return out;
}

size_t MemoryObjectStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

uint64_t MemoryObjectStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, data] : objects_) total += data.size();
  return total;
}

// -------------------------------------------------- FileSystemObjectStore

Result<std::unique_ptr<FileSystemObjectStore>> FileSystemObjectStore::Open(
    const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IOError(
        StrCat("cannot create store root '", root, "': ", ec.message()));
  }
  return std::unique_ptr<FileSystemObjectStore>(
      new FileSystemObjectStore(root));
}

Result<std::string> FileSystemObjectStore::PathFor(
    const std::string& key) const {
  if (key.empty()) return Status::InvalidArgument("empty object key");
  // Reject traversal outside the root.
  for (const auto& part : StrSplit(key, '/')) {
    if (part == "..") {
      return Status::InvalidArgument(
          StrCat("object key must not contain '..': ", key));
    }
  }
  return StrCat(root_, "/", key);
}

Status FileSystemObjectStore::Put(const std::string& key, Bytes data) {
  BAUPLAN_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::IOError(StrCat("mkdir failed for '", key, "'"));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError(StrCat("cannot open '", path, "'"));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError(StrCat("write failed for '", path, "'"));
  return Status::OK();
}

Result<Bytes> FileSystemObjectStore::Get(const std::string& key) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound(StrCat("no object with key '", key, "'"));
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Status::IOError(StrCat("read failed for '", path, "'"));
  return data;
}

Result<uint64_t> FileSystemObjectStore::Head(const std::string& key) const {
  BAUPLAN_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound(StrCat("no object with key '", key, "'"));
  return static_cast<uint64_t>(size);
}

Status FileSystemObjectStore::Delete(const std::string& key) {
  BAUPLAN_ASSIGN_OR_RETURN(std::string path, PathFor(key));
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::NotFound(StrCat("no object with key '", key, "'"));
  }
  return Status::OK();
}

Result<std::vector<ObjectMeta>> FileSystemObjectStore::List(
    const std::string& prefix) const {
  std::vector<ObjectMeta> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return Status::IOError(StrCat("list failed: ", ec.message()));
    if (!it->is_regular_file()) continue;
    std::string rel =
        fs::relative(it->path(), root_, ec).generic_string();
    if (ec || !StartsWith(rel, prefix)) continue;
    out.push_back({rel, static_cast<uint64_t>(it->file_size())});
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectMeta& a, const ObjectMeta& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace bauplan::storage
