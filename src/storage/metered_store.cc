#include "storage/metered_store.h"

namespace bauplan::storage {

void MeteredObjectStore::Charge(StoreOp op, uint64_t nbytes) const {
  uint64_t micros = latency_.MicrosFor(op, nbytes);
  clock_->AdvanceMicros(micros);
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.simulated_micros += micros;
  switch (op) {
    case StoreOp::kGet:
      ++metrics_.gets;
      metrics_.bytes_read += static_cast<int64_t>(nbytes);
      metrics_.credits += cost_.CreditsFor(nbytes);
      break;
    case StoreOp::kPut:
      ++metrics_.puts;
      metrics_.bytes_written += static_cast<int64_t>(nbytes);
      metrics_.credits += cost_.CreditsFor(nbytes);
      break;
    case StoreOp::kHead:
      ++metrics_.heads;
      metrics_.credits += cost_.CreditsFor(0);
      break;
    case StoreOp::kList:
      ++metrics_.lists;
      metrics_.credits += cost_.CreditsFor(0);
      break;
    case StoreOp::kDelete:
      ++metrics_.deletes;
      break;
  }
}

Status MeteredObjectStore::Put(const std::string& key, Bytes data) {
  Charge(StoreOp::kPut, data.size());
  return base_->Put(key, std::move(data));
}

Result<Bytes> MeteredObjectStore::Get(const std::string& key) const {
  Result<Bytes> result = base_->Get(key);
  Charge(StoreOp::kGet, result.ok() ? result->size() : 0);
  return result;
}

Result<uint64_t> MeteredObjectStore::Head(const std::string& key) const {
  Charge(StoreOp::kHead, 0);
  return base_->Head(key);
}

Status MeteredObjectStore::Delete(const std::string& key) {
  Charge(StoreOp::kDelete, 0);
  return base_->Delete(key);
}

Result<std::vector<ObjectMeta>> MeteredObjectStore::List(
    const std::string& prefix) const {
  Charge(StoreOp::kList, 0);
  return base_->List(prefix);
}

}  // namespace bauplan::storage
