#include "storage/metered_store.h"

namespace bauplan::storage {

MeteredObjectStore::MeteredObjectStore(
    ObjectStore* base, Clock* clock, LatencyModel latency, CostModel cost,
    std::string metric_prefix, observability::MetricsRegistry* registry)
    : base_(base),
      clock_(clock),
      latency_(latency),
      cost_(cost),
      metric_prefix_(std::move(metric_prefix)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<observability::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  gets_ = registry->GetCounter(metric_prefix_ + ".gets");
  puts_ = registry->GetCounter(metric_prefix_ + ".puts");
  heads_ = registry->GetCounter(metric_prefix_ + ".heads");
  lists_ = registry->GetCounter(metric_prefix_ + ".lists");
  deletes_ = registry->GetCounter(metric_prefix_ + ".deletes");
  bytes_read_ = registry->GetCounter(metric_prefix_ + ".bytes_read");
  bytes_written_ = registry->GetCounter(metric_prefix_ + ".bytes_written");
  simulated_micros_ =
      registry->GetCounter(metric_prefix_ + ".simulated_micros");
  credits_ = registry->GetDoubleCounter(metric_prefix_ + ".credits");
}

StoreMetrics MeteredObjectStore::metrics() const {
  StoreMetrics snapshot;
  snapshot.gets = gets_->Value();
  snapshot.puts = puts_->Value();
  snapshot.heads = heads_->Value();
  snapshot.lists = lists_->Value();
  snapshot.deletes = deletes_->Value();
  snapshot.bytes_read = bytes_read_->Value();
  snapshot.bytes_written = bytes_written_->Value();
  snapshot.simulated_micros =
      static_cast<uint64_t>(simulated_micros_->Value());
  snapshot.credits = credits_->Value();
  return snapshot;
}

void MeteredObjectStore::ResetMetrics() {
  gets_->Reset();
  puts_->Reset();
  heads_->Reset();
  lists_->Reset();
  deletes_->Reset();
  bytes_read_->Reset();
  bytes_written_->Reset();
  simulated_micros_->Reset();
  credits_->Reset();
}

void MeteredObjectStore::Charge(StoreOp op, uint64_t nbytes) const {
  uint64_t micros = latency_.MicrosFor(op, nbytes);
  clock_->AdvanceMicros(micros);
  simulated_micros_->Increment(static_cast<int64_t>(micros));
  switch (op) {
    case StoreOp::kGet:
      gets_->Increment();
      bytes_read_->Increment(static_cast<int64_t>(nbytes));
      credits_->Add(cost_.CreditsFor(nbytes));
      break;
    case StoreOp::kPut:
      puts_->Increment();
      bytes_written_->Increment(static_cast<int64_t>(nbytes));
      credits_->Add(cost_.CreditsFor(nbytes));
      break;
    case StoreOp::kHead:
      heads_->Increment();
      credits_->Add(cost_.CreditsFor(0));
      break;
    case StoreOp::kList:
      lists_->Increment();
      credits_->Add(cost_.CreditsFor(0));
      break;
    case StoreOp::kDelete:
      deletes_->Increment();
      break;
  }
}

Status MeteredObjectStore::Put(const std::string& key, Bytes data) {
  Charge(StoreOp::kPut, data.size());
  return base_->Put(key, std::move(data));
}

Result<Bytes> MeteredObjectStore::Get(const std::string& key) const {
  Result<Bytes> result = base_->Get(key);
  Charge(StoreOp::kGet, result.ok() ? result->size() : 0);
  return result;
}

Result<uint64_t> MeteredObjectStore::Head(const std::string& key) const {
  Charge(StoreOp::kHead, 0);
  return base_->Head(key);
}

Status MeteredObjectStore::Delete(const std::string& key) {
  Charge(StoreOp::kDelete, 0);
  return base_->Delete(key);
}

Result<std::vector<ObjectMeta>> MeteredObjectStore::List(
    const std::string& prefix) const {
  Charge(StoreOp::kList, 0);
  return base_->List(prefix);
}

}  // namespace bauplan::storage
