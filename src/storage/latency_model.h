#ifndef BAUPLAN_STORAGE_LATENCY_MODEL_H_
#define BAUPLAN_STORAGE_LATENCY_MODEL_H_

#include <cstdint>

namespace bauplan::storage {

/// Kind of store operation being modeled.
enum class StoreOp { kGet, kPut, kHead, kList, kDelete };

/// Deterministic latency model of a cloud object store (S3-class service).
/// latency = first_byte + payload / throughput. Defaults are calibrated to
/// published S3 characteristics: ~15-30 ms first byte, ~90 MB/s per
/// connection.
struct LatencyModel {
  uint64_t get_first_byte_micros = 15000;
  uint64_t put_first_byte_micros = 30000;
  uint64_t head_micros = 8000;
  uint64_t list_micros = 25000;
  uint64_t delete_micros = 10000;
  /// Streaming throughput for both directions.
  uint64_t bytes_per_second = 90ull * 1000 * 1000;

  /// Modeled duration of `op` moving `nbytes` of payload.
  uint64_t MicrosFor(StoreOp op, uint64_t nbytes) const {
    uint64_t transfer =
        bytes_per_second == 0 ? 0 : nbytes * 1000000 / bytes_per_second;
    switch (op) {
      case StoreOp::kGet:
        return get_first_byte_micros + transfer;
      case StoreOp::kPut:
        return put_first_byte_micros + transfer;
      case StoreOp::kHead:
        return head_micros;
      case StoreOp::kList:
        return list_micros;
      case StoreOp::kDelete:
        return delete_micros;
    }
    return 0;
  }

  /// An instant model (all zeros) for tests that do not exercise latency.
  static LatencyModel Instant() { return {0, 0, 0, 0, 0, 0}; }

  /// A model of local NVMe disk, used for the container package cache:
  /// ~100 us access, ~2 GB/s.
  static LatencyModel LocalDisk() {
    return {100, 150, 20, 50, 50, 2ull * 1000 * 1000 * 1000};
  }
};

/// Credit-based cost model in the style of warehouse billing: queries pay
/// per byte scanned plus a per-request fee. Values are "credits"
/// (dimensionless); the Fig. 1 (right) bench reports relative shares, which
/// are unit-free.
struct CostModel {
  /// Credits per byte moved out of storage (scan cost).
  double credits_per_byte = 5.0 / (1ull << 40);  // "5 credits per TiB"
  double credits_per_request = 4e-7;

  double CreditsFor(uint64_t nbytes) const {
    return credits_per_request +
           credits_per_byte * static_cast<double>(nbytes);
  }
};

}  // namespace bauplan::storage

#endif  // BAUPLAN_STORAGE_LATENCY_MODEL_H_
