#ifndef BAUPLAN_STORAGE_FAULT_INJECTION_STORE_H_
#define BAUPLAN_STORAGE_FAULT_INJECTION_STORE_H_

#include <mutex>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace bauplan::storage {

/// Wraps a store and fails requests on demand — the failure-injection
/// harness the test suite uses to verify that catalog transactions,
/// table writes and pipeline runs degrade cleanly when the object store
/// misbehaves (every distributed-lakehouse failure mode starts here).
class FaultInjectionStore : public ObjectStore {
 public:
  /// Does not own `base`.
  explicit FaultInjectionStore(ObjectStore* base) : base_(base) {}

  /// Every operation fails with IOError after `n` more successful
  /// operations (n=0 fails the next one). Negative disables.
  void FailAfter(int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_after_ = n;
  }

  /// Fails only operations whose key starts with `prefix` (empty =
  /// any key). Applies to the FailAfter countdown.
  void FailOnlyPrefix(std::string prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_prefix_ = std::move(prefix);
  }

  /// Clears all injected behaviour.
  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_after_ = -1;
    fail_prefix_.clear();
  }

  int64_t operations_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return operations_seen_;
  }

  Status Put(const std::string& key, Bytes data) override {
    BAUPLAN_RETURN_NOT_OK(MaybeFail(key, "PUT"));
    return base_->Put(key, std::move(data));
  }
  Result<Bytes> Get(const std::string& key) const override {
    BAUPLAN_RETURN_NOT_OK(MaybeFail(key, "GET"));
    return base_->Get(key);
  }
  Result<uint64_t> Head(const std::string& key) const override {
    BAUPLAN_RETURN_NOT_OK(MaybeFail(key, "HEAD"));
    return base_->Head(key);
  }
  Status Delete(const std::string& key) override {
    BAUPLAN_RETURN_NOT_OK(MaybeFail(key, "DELETE"));
    return base_->Delete(key);
  }
  Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const override {
    BAUPLAN_RETURN_NOT_OK(MaybeFail(prefix, "LIST"));
    return base_->List(prefix);
  }

 private:
  // Parallel runs drive this wrapper from concurrent node bodies, so
  // the countdown and counters need the lock the real store's own
  // request path would have anyway.
  Status MaybeFail(const std::string& key, const char* op) const {
    std::lock_guard<std::mutex> lock(mu_);
    ++operations_seen_;
    if (fail_after_ < 0) return Status::OK();
    if (!fail_prefix_.empty() &&
        key.compare(0, fail_prefix_.size(), fail_prefix_) != 0) {
      return Status::OK();
    }
    if (fail_after_ > 0) {
      --fail_after_;
      return Status::OK();
    }
    return Status::IOError(std::string("injected fault on ") + op +
                           " '" + key + "'");
  }

  ObjectStore* base_;
  mutable std::mutex mu_;
  mutable int64_t fail_after_ = -1;
  std::string fail_prefix_;
  mutable int64_t operations_seen_ = 0;
};

}  // namespace bauplan::storage

#endif  // BAUPLAN_STORAGE_FAULT_INJECTION_STORE_H_
