#ifndef BAUPLAN_STORAGE_METERED_STORE_H_
#define BAUPLAN_STORAGE_METERED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "observability/metrics.h"
#include "storage/latency_model.h"
#include "storage/object_store.h"

namespace bauplan::storage {

/// Point-in-time totals of everything a metered store did. The fusion
/// benchmark (paper section 4.4.2) compares exactly these counters
/// between the naive spill-through-storage execution and the fused
/// in-memory one. Built on demand from the store's registry instruments
/// — this is a snapshot value, not a live reference.
struct StoreMetrics {
  int64_t gets = 0;
  int64_t puts = 0;
  int64_t heads = 0;
  int64_t lists = 0;
  int64_t deletes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  /// Total modeled latency charged to the clock, microseconds.
  uint64_t simulated_micros = 0;
  /// Accumulated scan credits (cost model).
  double credits = 0.0;

  int64_t TotalRequests() const {
    return gets + puts + heads + lists + deletes;
  }
};

/// Decorates any ObjectStore with a latency model (charged to a Clock) and
/// a cost model (accumulated as credits). This is how the repo simulates
/// "object storage is slow and should be a last resort" (paper section 4.5)
/// without a real cloud: backends stay instant, and all timing claims are
/// read off the simulated clock.
///
/// Counters live as instruments named "<prefix>.gets", "<prefix>.puts",
/// ... in a MetricsRegistry, so a platform-wide metrics dump sees every
/// store alongside the runtime components.
///
/// Thread safety: operations may be called concurrently (instrument
/// updates are atomic; the backing store provides its own per-key
/// atomicity). metrics() reads are only meaningful when quiescent.
class MeteredObjectStore : public ObjectStore {
 public:
  /// Does not take ownership of `base`, `clock` or `registry`; all must
  /// outlive this. Instruments register under `metric_prefix`; with a
  /// null `registry` the store keeps a private one.
  MeteredObjectStore(ObjectStore* base, Clock* clock, LatencyModel latency,
                     CostModel cost = {},
                     std::string metric_prefix = "store",
                     observability::MetricsRegistry* registry = nullptr);

  Status Put(const std::string& key, Bytes data) override;
  Result<Bytes> Get(const std::string& key) const override;
  Result<uint64_t> Head(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const override;

  /// Snapshot of this store's counters (by value; call again for fresh
  /// numbers).
  StoreMetrics metrics() const;

  /// Zeroes this store's instruments (other registry members untouched).
  void ResetMetrics();

  const std::string& metric_prefix() const { return metric_prefix_; }

 private:
  void Charge(StoreOp op, uint64_t nbytes) const;

  ObjectStore* base_;
  Clock* clock_;
  LatencyModel latency_;
  CostModel cost_;
  std::string metric_prefix_;
  std::unique_ptr<observability::MetricsRegistry> owned_registry_;
  observability::Counter* gets_;
  observability::Counter* puts_;
  observability::Counter* heads_;
  observability::Counter* lists_;
  observability::Counter* deletes_;
  observability::Counter* bytes_read_;
  observability::Counter* bytes_written_;
  observability::Counter* simulated_micros_;
  observability::DoubleCounter* credits_;
};

}  // namespace bauplan::storage

#endif  // BAUPLAN_STORAGE_METERED_STORE_H_
