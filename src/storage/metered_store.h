#ifndef BAUPLAN_STORAGE_METERED_STORE_H_
#define BAUPLAN_STORAGE_METERED_STORE_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/latency_model.h"
#include "storage/object_store.h"

namespace bauplan::storage {

/// Running totals of everything a metered store did. The fusion benchmark
/// (paper section 4.4.2) compares exactly these counters between the naive
/// spill-through-storage execution and the fused in-memory one.
struct StoreMetrics {
  int64_t gets = 0;
  int64_t puts = 0;
  int64_t heads = 0;
  int64_t lists = 0;
  int64_t deletes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  /// Total modeled latency charged to the clock, microseconds.
  uint64_t simulated_micros = 0;
  /// Accumulated scan credits (cost model).
  double credits = 0.0;

  int64_t TotalRequests() const {
    return gets + puts + heads + lists + deletes;
  }
};

/// Decorates any ObjectStore with a latency model (charged to a Clock) and
/// a cost model (accumulated as credits). This is how the repo simulates
/// "object storage is slow and should be a last resort" (paper section 4.5)
/// without a real cloud: backends stay instant, and all timing claims are
/// read off the simulated clock.
///
/// Thread safety: operations may be called concurrently (metric updates
/// are serialized internally; the backing store provides its own per-key
/// atomicity). metrics() reads are only meaningful when quiescent.
class MeteredObjectStore : public ObjectStore {
 public:
  /// Does not take ownership of `base` or `clock`; both must outlive this.
  MeteredObjectStore(ObjectStore* base, Clock* clock, LatencyModel latency,
                     CostModel cost = {})
      : base_(base), clock_(clock), latency_(latency), cost_(cost) {}

  Status Put(const std::string& key, Bytes data) override;
  Result<Bytes> Get(const std::string& key) const override;
  Result<uint64_t> Head(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const override;

  const StoreMetrics& metrics() const { return metrics_; }
  void ResetMetrics() {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = StoreMetrics();
  }

 private:
  void Charge(StoreOp op, uint64_t nbytes) const;

  ObjectStore* base_;
  Clock* clock_;
  LatencyModel latency_;
  CostModel cost_;
  mutable std::mutex mu_;
  mutable StoreMetrics metrics_;
};

}  // namespace bauplan::storage

#endif  // BAUPLAN_STORAGE_METERED_STORE_H_
