#ifndef BAUPLAN_STORAGE_OBJECT_STORE_H_
#define BAUPLAN_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace bauplan::storage {

/// Key and size of one stored object.
struct ObjectMeta {
  std::string key;
  uint64_t size = 0;
};

/// S3-style flat key/value blob store: the data lake's storage layer.
/// Keys are opaque strings ('/' is only a listing convention). All
/// operations are atomic per key; Put overwrites.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual Status Put(const std::string& key, Bytes data) = 0;
  virtual Result<Bytes> Get(const std::string& key) const = 0;
  /// Size of the object without fetching it (S3 HEAD).
  virtual Result<uint64_t> Head(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  /// All objects whose key starts with `prefix`, sorted by key.
  virtual Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const = 0;

  bool Exists(const std::string& key) const { return Head(key).ok(); }
};

/// In-process hash-map store; the default substrate for tests and
/// simulation (latency is modeled by MeteredObjectStore, not here).
/// Thread-safe: per-key atomicity holds under concurrent callers (the
/// parallel wavefront executor spills from many function bodies at once).
class MemoryObjectStore : public ObjectStore {
 public:
  MemoryObjectStore() = default;

  Status Put(const std::string& key, Bytes data) override;
  Result<Bytes> Get(const std::string& key) const override;
  Result<uint64_t> Head(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const override;

  size_t object_count() const;
  uint64_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes> objects_;
};

/// Durable store mapping keys to files under a root directory. Used by the
/// CLI so lakes survive process restarts.
class FileSystemObjectStore : public ObjectStore {
 public:
  /// Creates the root directory if needed; IOError when that fails.
  static Result<std::unique_ptr<FileSystemObjectStore>> Open(
      const std::string& root);

  Status Put(const std::string& key, Bytes data) override;
  Result<Bytes> Get(const std::string& key) const override;
  Result<uint64_t> Head(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  Result<std::vector<ObjectMeta>> List(
      const std::string& prefix) const override;

 private:
  explicit FileSystemObjectStore(std::string root) : root_(std::move(root)) {}

  Result<std::string> PathFor(const std::string& key) const;

  std::string root_;
};

}  // namespace bauplan::storage

#endif  // BAUPLAN_STORAGE_OBJECT_STORE_H_
