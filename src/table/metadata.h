#ifndef BAUPLAN_TABLE_METADATA_H_
#define BAUPLAN_TABLE_METADATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/compute.h"
#include "columnar/type.h"
#include "columnar/value.h"
#include "common/bytes.h"
#include "common/result.h"
#include "table/partition.h"

namespace bauplan::table {

/// One immutable data file (a BPF file in object storage) tracked by a
/// manifest: its partition tuple and per-column statistics let the scan
/// planner prune it without opening it.
struct DataFile {
  /// Object-store key of the BPF payload.
  std::string path;
  int64_t record_count = 0;
  uint64_t file_size_bytes = 0;
  /// Partition tuple, ordered as the table's PartitionSpec fields.
  std::vector<columnar::Value> partition;
  /// Per-column stats ordered as the schema fields at write time; columns
  /// appended later (schema evolution) are simply absent.
  std::vector<columnar::ColumnStats> column_stats;

  void Serialize(BinaryWriter* writer) const;
  static Result<DataFile> Deserialize(BinaryReader* reader);
};

/// A manifest: the list of data files added by one snapshot. Stored as its
/// own object so unrelated snapshots share nothing.
struct Manifest {
  std::vector<DataFile> files;

  Bytes Serialize() const;
  static Result<Manifest> Deserialize(const Bytes& bytes);
};

/// One version of the table's contents. A snapshot owns a list of manifest
/// keys; the live data of the table at this snapshot is the union of their
/// files. Overwrites start a fresh manifest list; appends extend the
/// parent's.
struct Snapshot {
  int64_t snapshot_id = 0;
  int64_t parent_snapshot_id = -1;
  uint64_t timestamp_micros = 0;
  /// "append" or "overwrite".
  std::string operation;
  /// Object-store keys of all manifests live at this snapshot.
  std::vector<std::string> manifest_keys;
  int64_t total_records = 0;

  void Serialize(BinaryWriter* writer) const;
  static Result<Snapshot> Deserialize(BinaryReader* reader);
};

/// Root of the table's metadata tree (the Iceberg "table metadata file").
/// Immutable: every commit writes a new metadata object and the catalog
/// repoints the table name at it — which is what makes Nessie-style
/// catalog versioning and time travel compose.
struct TableMetadata {
  std::string table_name;
  /// Current schema; schema_version increments on evolution.
  columnar::Schema schema;
  int32_t schema_version = 0;
  PartitionSpec spec;
  /// All snapshots, oldest first.
  std::vector<Snapshot> snapshots;
  int64_t current_snapshot_id = -1;
  uint64_t last_updated_micros = 0;

  /// The current snapshot; NotFound for a table with no data yet.
  Result<Snapshot> CurrentSnapshot() const;

  /// Snapshot by id.
  Result<Snapshot> SnapshotById(int64_t snapshot_id) const;

  /// The newest snapshot whose timestamp is <= `micros` (time travel).
  Result<Snapshot> SnapshotAsOf(uint64_t micros) const;

  Bytes Serialize() const;
  static Result<TableMetadata> Deserialize(const Bytes& bytes);
};

}  // namespace bauplan::table

#endif  // BAUPLAN_TABLE_METADATA_H_
