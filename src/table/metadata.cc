#include "table/metadata.h"

#include "common/clock.h"
#include "common/strings.h"

namespace bauplan::table {

namespace {

constexpr uint32_t kManifestMagic = 0x464E414D;  // "MANF"
constexpr uint32_t kMetadataMagic = 0x4154454D;  // "META"

void SerializeStats(const columnar::ColumnStats& stats, BinaryWriter* w) {
  stats.min.Serialize(w);
  stats.max.Serialize(w);
  w->PutI64(stats.null_count);
  w->PutI64(stats.value_count);
}

Result<columnar::ColumnStats> DeserializeStats(BinaryReader* r) {
  columnar::ColumnStats stats;
  BAUPLAN_ASSIGN_OR_RETURN(stats.min, columnar::Value::Deserialize(r));
  BAUPLAN_ASSIGN_OR_RETURN(stats.max, columnar::Value::Deserialize(r));
  BAUPLAN_ASSIGN_OR_RETURN(stats.null_count, r->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(stats.value_count, r->GetI64());
  return stats;
}

}  // namespace

void DataFile::Serialize(BinaryWriter* writer) const {
  writer->PutString(path);
  writer->PutI64(record_count);
  writer->PutU64(file_size_bytes);
  writer->PutU32(static_cast<uint32_t>(partition.size()));
  for (const auto& v : partition) v.Serialize(writer);
  writer->PutU32(static_cast<uint32_t>(column_stats.size()));
  for (const auto& s : column_stats) SerializeStats(s, writer);
}

Result<DataFile> DataFile::Deserialize(BinaryReader* reader) {
  DataFile file;
  BAUPLAN_ASSIGN_OR_RETURN(file.path, reader->GetString());
  BAUPLAN_ASSIGN_OR_RETURN(file.record_count, reader->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(file.file_size_bytes, reader->GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t nparts, reader->GetU32());
  if (nparts > reader->Remaining()) {
    return Status::IOError("implausible partition arity");
  }
  file.partition.reserve(nparts);
  for (uint32_t i = 0; i < nparts; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Value v,
                             columnar::Value::Deserialize(reader));
    file.partition.push_back(std::move(v));
  }
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t nstats, reader->GetU32());
  if (nstats > reader->Remaining()) {
    return Status::IOError("implausible stats count");
  }
  file.column_stats.reserve(nstats);
  for (uint32_t i = 0; i < nstats; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(columnar::ColumnStats s,
                             DeserializeStats(reader));
    file.column_stats.push_back(std::move(s));
  }
  return file;
}

Bytes Manifest::Serialize() const {
  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(static_cast<uint32_t>(files.size()));
  for (const auto& f : files) f.Serialize(&w);
  return w.TakeBuffer();
}

Result<Manifest> Manifest::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kManifestMagic) {
    return Status::IOError("bad magic in manifest");
  }
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > r.Remaining()) {
    return Status::IOError("implausible file count in manifest");
  }
  Manifest m;
  m.files.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(DataFile f, DataFile::Deserialize(&r));
    m.files.push_back(std::move(f));
  }
  return m;
}

void Snapshot::Serialize(BinaryWriter* writer) const {
  writer->PutI64(snapshot_id);
  writer->PutI64(parent_snapshot_id);
  writer->PutU64(timestamp_micros);
  writer->PutString(operation);
  writer->PutU32(static_cast<uint32_t>(manifest_keys.size()));
  for (const auto& k : manifest_keys) writer->PutString(k);
  writer->PutI64(total_records);
}

Result<Snapshot> Snapshot::Deserialize(BinaryReader* reader) {
  Snapshot s;
  BAUPLAN_ASSIGN_OR_RETURN(s.snapshot_id, reader->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(s.parent_snapshot_id, reader->GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(s.timestamp_micros, reader->GetU64());
  BAUPLAN_ASSIGN_OR_RETURN(s.operation, reader->GetString());
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t n, reader->GetU32());
  if (n > reader->Remaining()) {
    return Status::IOError("implausible manifest count in snapshot");
  }
  s.manifest_keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(std::string k, reader->GetString());
    s.manifest_keys.push_back(std::move(k));
  }
  BAUPLAN_ASSIGN_OR_RETURN(s.total_records, reader->GetI64());
  return s;
}

Result<Snapshot> TableMetadata::CurrentSnapshot() const {
  if (current_snapshot_id < 0) {
    return Status::NotFound(
        StrCat("table '", table_name, "' has no snapshots yet"));
  }
  return SnapshotById(current_snapshot_id);
}

Result<Snapshot> TableMetadata::SnapshotById(int64_t snapshot_id) const {
  for (const auto& s : snapshots) {
    if (s.snapshot_id == snapshot_id) return s;
  }
  return Status::NotFound(StrCat("table '", table_name,
                                 "' has no snapshot with id ", snapshot_id));
}

Result<Snapshot> TableMetadata::SnapshotAsOf(uint64_t micros) const {
  const Snapshot* best = nullptr;
  for (const auto& s : snapshots) {
    if (s.timestamp_micros <= micros &&
        (best == nullptr || s.timestamp_micros > best->timestamp_micros ||
         (s.timestamp_micros == best->timestamp_micros &&
          s.snapshot_id > best->snapshot_id))) {
      best = &s;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        StrCat("table '", table_name, "' has no snapshot at or before ",
               FormatTimestampMicros(micros)));
  }
  return *best;
}

Bytes TableMetadata::Serialize() const {
  BinaryWriter w;
  w.PutU32(kMetadataMagic);
  w.PutString(table_name);
  schema.Serialize(&w);
  w.PutI32(schema_version);
  spec.Serialize(&w);
  w.PutU32(static_cast<uint32_t>(snapshots.size()));
  for (const auto& s : snapshots) s.Serialize(&w);
  w.PutI64(current_snapshot_id);
  w.PutU64(last_updated_micros);
  return w.TakeBuffer();
}

Result<TableMetadata> TableMetadata::Deserialize(const Bytes& bytes) {
  BinaryReader r(bytes);
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMetadataMagic) {
    return Status::IOError("bad magic in table metadata");
  }
  TableMetadata m;
  BAUPLAN_ASSIGN_OR_RETURN(m.table_name, r.GetString());
  BAUPLAN_ASSIGN_OR_RETURN(m.schema, columnar::Schema::Deserialize(&r));
  BAUPLAN_ASSIGN_OR_RETURN(m.schema_version, r.GetI32());
  BAUPLAN_ASSIGN_OR_RETURN(m.spec, PartitionSpec::Deserialize(&r));
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > r.Remaining()) {
    return Status::IOError("implausible snapshot count");
  }
  m.snapshots.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BAUPLAN_ASSIGN_OR_RETURN(Snapshot s, Snapshot::Deserialize(&r));
    m.snapshots.push_back(std::move(s));
  }
  BAUPLAN_ASSIGN_OR_RETURN(m.current_snapshot_id, r.GetI64());
  BAUPLAN_ASSIGN_OR_RETURN(m.last_updated_micros, r.GetU64());
  return m;
}

}  // namespace bauplan::table
