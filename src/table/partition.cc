#include "table/partition.h"

#include <ctime>

#include "common/strings.h"

namespace bauplan::table {

using columnar::Value;
using format::ColumnPredicate;
using format::CompareOp;

std::string_view TransformToString(Transform t) {
  switch (t) {
    case Transform::kIdentity:
      return "identity";
    case Transform::kBucket:
      return "bucket";
    case Transform::kMonth:
      return "month";
    case Transform::kDay:
      return "day";
  }
  return "?";
}

namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t MonthsSinceEpoch(int64_t micros) {
  std::time_t secs = static_cast<std::time_t>(FloorDiv(micros, 1000000));
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  return static_cast<int64_t>(tm_utc.tm_year - 70) * 12 + tm_utc.tm_mon;
}

int64_t DaysSinceEpoch(int64_t micros) {
  return FloorDiv(micros, 86400ll * 1000000);
}

}  // namespace

std::string PartitionField::PartitionName() const {
  switch (transform) {
    case Transform::kIdentity:
      return source_column;
    case Transform::kBucket:
      return StrCat(source_column, "_bucket");
    case Transform::kMonth:
      return StrCat(source_column, "_month");
    case Transform::kDay:
      return StrCat(source_column, "_day");
  }
  return source_column;
}

Result<Value> PartitionField::Apply(const Value& value) const {
  if (value.is_null()) return Value::Null();
  switch (transform) {
    case Transform::kIdentity:
      return value;
    case Transform::kBucket: {
      if (bucket_count == 0) {
        return Status::InvalidArgument("bucket transform needs a count");
      }
      return Value::Int64(
          static_cast<int64_t>(value.Hash() % bucket_count));
    }
    case Transform::kMonth: {
      if (value.type() != columnar::TypeId::kTimestamp) {
        return Status::InvalidArgument(
            StrCat("month transform needs a timestamp, got ",
                   columnar::TypeIdToString(value.type())));
      }
      return Value::Int64(MonthsSinceEpoch(value.int64_value()));
    }
    case Transform::kDay: {
      if (value.type() != columnar::TypeId::kTimestamp) {
        return Status::InvalidArgument(
            StrCat("day transform needs a timestamp, got ",
                   columnar::TypeIdToString(value.type())));
      }
      return Value::Int64(DaysSinceEpoch(value.int64_value()));
    }
  }
  return Status::Internal("unhandled transform");
}

Status PartitionSpec::Validate(const columnar::Schema& schema) const {
  for (const auto& field : fields_) {
    int idx = schema.GetFieldIndex(field.source_column);
    if (idx < 0) {
      return Status::InvalidArgument(
          StrCat("partition source column '", field.source_column,
                 "' not in schema"));
    }
    if ((field.transform == Transform::kMonth ||
         field.transform == Transform::kDay) &&
        schema.field(idx).type != columnar::TypeId::kTimestamp) {
      return Status::InvalidArgument(
          StrCat("transform ", TransformToString(field.transform),
                 " on '", field.source_column, "' needs a timestamp column"));
    }
    if (field.transform == Transform::kBucket && field.bucket_count == 0) {
      return Status::InvalidArgument("bucket transform needs a count > 0");
    }
  }
  return Status::OK();
}

Result<std::vector<Value>> PartitionSpec::PartitionOf(
    const columnar::Table& data, int64_t row) const {
  std::vector<Value> out;
  out.reserve(fields_.size());
  for (const auto& field : fields_) {
    BAUPLAN_ASSIGN_OR_RETURN(columnar::ArrayPtr col,
                             data.GetColumnByName(field.source_column));
    BAUPLAN_ASSIGN_OR_RETURN(Value v, field.Apply(col->GetValue(row)));
    out.push_back(std::move(v));
  }
  return out;
}

std::string PartitionSpec::ToString() const {
  if (fields_.empty()) return "unpartitioned";
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(TransformToString(fields_[i].transform), "(",
                  fields_[i].source_column, ")");
    if (fields_[i].transform == Transform::kBucket) {
      out += StrCat("[", fields_[i].bucket_count, "]");
    }
  }
  return out;
}

void PartitionSpec::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(fields_.size()));
  for (const auto& f : fields_) {
    writer->PutString(f.source_column);
    writer->PutU8(static_cast<uint8_t>(f.transform));
    writer->PutU32(f.bucket_count);
  }
}

Result<PartitionSpec> PartitionSpec::Deserialize(BinaryReader* reader) {
  BAUPLAN_ASSIGN_OR_RETURN(uint32_t n, reader->GetU32());
  std::vector<PartitionField> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PartitionField f;
    BAUPLAN_ASSIGN_OR_RETURN(f.source_column, reader->GetString());
    BAUPLAN_ASSIGN_OR_RETURN(uint8_t t, reader->GetU8());
    if (t > static_cast<uint8_t>(Transform::kDay)) {
      return Status::IOError("invalid transform tag");
    }
    f.transform = static_cast<Transform>(t);
    BAUPLAN_ASSIGN_OR_RETURN(f.bucket_count, reader->GetU32());
    fields.push_back(std::move(f));
  }
  return PartitionSpec(std::move(fields));
}

bool PartitionMightMatch(const PartitionSpec& spec,
                         const std::vector<Value>& partition,
                         const std::vector<ColumnPredicate>& preds) {
  const auto& fields = spec.fields();
  if (partition.size() != fields.size()) return true;  // malformed: keep
  for (size_t i = 0; i < fields.size(); ++i) {
    const PartitionField& field = fields[i];
    const Value& part_value = partition[i];
    if (part_value.is_null()) continue;  // null partitions are never pruned
    for (const auto& pred : preds) {
      if (pred.column != field.source_column) continue;
      if (pred.value.is_null()) return false;  // NULL literal matches nothing
      auto transformed = field.Apply(pred.value);
      if (!transformed.ok()) continue;  // incompatible literal: keep file
      {
        columnar::TypeId a = part_value.type();
        columnar::TypeId b = transformed->type();
        bool comparable =
            a == b || (columnar::IsNumeric(a) && columnar::IsNumeric(b));
        if (!comparable) continue;  // never prune on mixed types
      }
      int cmp = part_value.Compare(*transformed);
      switch (field.transform) {
        case Transform::kBucket:
          // Hash transform: only equality predicates prune.
          if (pred.op == CompareOp::kEq && cmp != 0) return false;
          break;
        case Transform::kIdentity:
        case Transform::kMonth:
        case Transform::kDay: {
          // Monotonic transforms: a file whose transformed value is out of
          // the (transformed) predicate range cannot contain matches. The
          // bounds are inclusive because a transform bucket (e.g. a month)
          // contains a range of source values.
          bool possible = true;
          switch (pred.op) {
            case CompareOp::kEq:
              possible = cmp == 0;
              break;
            case CompareOp::kNe:
              // Identity files hold exactly one source value, so != prunes
              // exactly; month/day buckets hold ranges and cannot prune.
              possible =
                  field.transform != Transform::kIdentity || cmp != 0;
              break;
            case CompareOp::kLt:
              // Strict bound is exact for identity (single source value per
              // file); range buckets keep the boundary bucket.
              possible = field.transform == Transform::kIdentity ? cmp < 0
                                                                 : cmp <= 0;
              break;
            case CompareOp::kLe:
              possible = cmp <= 0;
              break;
            case CompareOp::kGt:
              possible = field.transform == Transform::kIdentity ? cmp > 0
                                                                 : cmp >= 0;
              break;
            case CompareOp::kGe:
              possible = cmp >= 0;
              break;
          }
          if (!possible) return false;
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace bauplan::table
