#include "table/maintenance.h"

#include <map>
#include <set>

#include "columnar/compute.h"
#include "common/strings.h"
#include "format/reader.h"

namespace bauplan::table {

using columnar::Value;

namespace {

/// Lexicographic order for partition tuples (same as the writer's).
struct TupleLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Result<CompactionResult> TableMaintenance::CompactFiles(
    const std::string& metadata_key, int max_files_per_partition) {
  if (max_files_per_partition < 1) {
    return Status::InvalidArgument(
        "max_files_per_partition must be >= 1");
  }
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           ops_->LoadMetadata(metadata_key));
  CompactionResult result;
  result.metadata_key = metadata_key;
  if (metadata.current_snapshot_id < 0) return result;  // empty table

  BAUPLAN_ASSIGN_OR_RETURN(ScanPlan plan,
                           ops_->PlanScan(metadata, ScanOptions()));
  result.files_before = static_cast<int64_t>(plan.files.size());

  std::map<std::vector<Value>, std::vector<DataFile>, TupleLess> groups;
  for (auto& file : plan.files) {
    groups[file.partition].push_back(std::move(file));
  }

  std::vector<DataFile> new_files;
  int compact_index = 0;
  int64_t next_snapshot_hint =
      metadata.snapshots.empty()
          ? 1
          : metadata.snapshots.back().snapshot_id + 1;
  for (auto& [partition, files] : groups) {
    if (static_cast<int>(files.size()) <= max_files_per_partition) {
      for (auto& f : files) new_files.push_back(std::move(f));
      continue;
    }
    // Rewrite this partition: read every fragment, concatenate, write one.
    std::vector<columnar::Table> pieces;
    for (const auto& file : files) {
      BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes, store_->Get(file.path));
      BAUPLAN_ASSIGN_OR_RETURN(format::BpfReader reader,
                               format::BpfReader::Open(std::move(bytes)));
      BAUPLAN_ASSIGN_OR_RETURN(columnar::Table piece, reader.ReadTable());
      result.bytes_rewritten += static_cast<int64_t>(file.file_size_bytes);
      pieces.push_back(std::move(piece));
    }
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Table merged,
                             columnar::ConcatTables(pieces));
    BAUPLAN_ASSIGN_OR_RETURN(
        DataFile compacted,
        ops_->WriteDataFile(metadata, merged, partition,
                            StrCat("compact-", next_snapshot_hint, "-",
                                   compact_index++)));
    new_files.push_back(std::move(compacted));
    result.compacted = true;
  }

  result.files_after = static_cast<int64_t>(new_files.size());
  if (!result.compacted) return result;  // nothing fragmented

  BAUPLAN_ASSIGN_OR_RETURN(
      result.metadata_key,
      ops_->CommitFileSet(std::move(metadata), std::move(new_files),
                          "replace"));
  return result;
}

Result<ExpireResult> TableMaintenance::ExpireSnapshots(
    const std::string& metadata_key, uint64_t keep_after_micros) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           ops_->LoadMetadata(metadata_key));
  ExpireResult result;
  result.metadata_key = metadata_key;

  std::vector<Snapshot> survivors;
  std::vector<Snapshot> expired;
  for (const auto& snapshot : metadata.snapshots) {
    bool keep = snapshot.snapshot_id == metadata.current_snapshot_id ||
                (keep_after_micros > 0 &&
                 snapshot.timestamp_micros >= keep_after_micros);
    (keep ? survivors : expired).push_back(snapshot);
  }
  if (expired.empty()) return result;

  // Objects still referenced by survivors.
  std::set<std::string> live_manifests;
  std::set<std::string> live_files;
  for (const auto& snapshot : survivors) {
    for (const auto& key : snapshot.manifest_keys) {
      live_manifests.insert(key);
      BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes, store_->Get(key));
      BAUPLAN_ASSIGN_OR_RETURN(Manifest manifest,
                               Manifest::Deserialize(bytes));
      for (const auto& file : manifest.files) live_files.insert(file.path);
    }
  }

  // Delete everything only the expired snapshots reference.
  std::set<std::string> doomed_manifests;
  for (const auto& snapshot : expired) {
    for (const auto& key : snapshot.manifest_keys) {
      if (live_manifests.count(key) == 0) doomed_manifests.insert(key);
    }
  }
  for (const auto& key : doomed_manifests) {
    BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes, store_->Get(key));
    BAUPLAN_ASSIGN_OR_RETURN(Manifest manifest,
                             Manifest::Deserialize(bytes));
    for (const auto& file : manifest.files) {
      if (live_files.count(file.path) > 0) continue;
      Status st = store_->Delete(file.path);
      if (st.ok()) {
        ++result.data_files_deleted;
        result.bytes_reclaimed += file.file_size_bytes;
        live_files.insert(file.path);  // avoid double-deleting shares
      } else if (!st.IsNotFound()) {
        return st;
      }
    }
    BAUPLAN_RETURN_NOT_OK(store_->Delete(key));
    ++result.manifests_deleted;
  }

  result.snapshots_removed = static_cast<int64_t>(expired.size());
  metadata.snapshots = std::move(survivors);
  BAUPLAN_ASSIGN_OR_RETURN(result.metadata_key,
                           ops_->RewriteMetadata(std::move(metadata)));
  return result;
}

}  // namespace bauplan::table
