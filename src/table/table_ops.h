#ifndef BAUPLAN_TABLE_TABLE_OPS_H_
#define BAUPLAN_TABLE_TABLE_OPS_H_

#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/clock.h"
#include "common/result.h"
#include "format/predicate.h"
#include "storage/object_store.h"
#include "table/metadata.h"
#include "table/partition.h"

namespace bauplan::table {

/// What a scan should see and return.
struct ScanOptions {
  /// Read a specific snapshot (time travel by id); -1 = current.
  int64_t snapshot_id = -1;
  /// Read the newest snapshot at or before this instant (time travel by
  /// timestamp); 0 = disabled. Mutually exclusive with snapshot_id.
  uint64_t as_of_micros = 0;
  /// Columns to materialize; empty = all (current schema order).
  std::vector<std::string> columns;
  /// Conjunctive predicates for file/row-group pruning. Pruning is
  /// conservative; callers re-apply filters exactly.
  std::vector<format::ColumnPredicate> predicates;
  /// Decode data files on this many threads (the paper's section 5 lists
  /// "parallelizing SQL execution" as future work; file decode is the
  /// engine's dominant CPU cost at Reasonable Scale). Fetch stays serial
  /// so the simulated-latency accounting is unchanged; 1 = sequential.
  int decode_threads = 1;
};

/// Pruning decisions for one scan; the scan-planning bench reports these.
struct ScanPlan {
  /// Files that must be read.
  std::vector<DataFile> files;
  int64_t files_total = 0;
  int64_t files_pruned_by_partition = 0;
  int64_t files_pruned_by_stats = 0;
  int64_t bytes_to_read = 0;
  int64_t bytes_pruned = 0;
};

/// All table-level operations of the Iceberg stand-in. Metadata objects are
/// immutable: every write produces a new metadata key, which the caller
/// commits to the catalog (giving snapshot isolation for free).
class TableOps {
 public:
  /// Does not own `store` or `clock`. `data_prefix` roots all keys this
  /// instance writes ("lake" -> "lake/<table>/data/...").
  TableOps(storage::ObjectStore* store, Clock* clock,
           std::string data_prefix = "lake");

  // -- lifecycle ------------------------------------------------------

  /// Creates an empty table; returns its metadata key.
  Result<std::string> CreateTable(const std::string& name,
                                  const columnar::Schema& schema,
                                  const PartitionSpec& spec = {});

  Result<TableMetadata> LoadMetadata(const std::string& metadata_key) const;

  // -- writes ---------------------------------------------------------

  /// Appends `data` (whose schema must match the table schema) as new
  /// data files split by partition; returns the new metadata key.
  Result<std::string> Append(const std::string& metadata_key,
                             const columnar::Table& data);

  /// Replaces the table's contents with `data`.
  Result<std::string> Overwrite(const std::string& metadata_key,
                                const columnar::Table& data);

  /// Schema evolution: appends a nullable column. Existing files stay
  /// untouched; scans fill the column with nulls for old files.
  Result<std::string> AddColumn(const std::string& metadata_key,
                                const columnar::Field& field);

  /// Schema evolution: removes a column from the current schema. Data
  /// files keep the bytes (older snapshots still see them); new scans
  /// simply never project the column. Partition source columns cannot be
  /// dropped.
  Result<std::string> DropColumn(const std::string& metadata_key,
                                 const std::string& name);

  /// Schema evolution: renames a column in the current schema only.
  /// NOTE: like Iceberg-by-name (and unlike Iceberg's field ids), data
  /// files written before the rename carry the old name, so scans
  /// surface the renamed column as nulls for pre-rename files. Partition
  /// source columns cannot be renamed.
  Result<std::string> RenameColumn(const std::string& metadata_key,
                                   const std::string& from,
                                   const std::string& to);

  // -- low-level (maintenance) ----------------------------------------

  /// Writes `data` as one data file of the table, tagged with the given
  /// partition tuple, and returns its manifest entry. Does not create a
  /// snapshot; pair with CommitFileSet. `label` disambiguates the object
  /// key (e.g. "compact-3-0").
  Result<DataFile> WriteDataFile(const TableMetadata& metadata,
                                 const columnar::Table& data,
                                 std::vector<columnar::Value> partition,
                                 const std::string& label);

  /// Creates a new snapshot whose live contents are exactly `files`
  /// (all already in storage), with the given operation tag, and writes
  /// new metadata. Used by compaction ("replace" snapshots).
  Result<std::string> CommitFileSet(TableMetadata metadata,
                                    std::vector<DataFile> files,
                                    const std::string& operation);

  /// Rewrites the metadata object with `metadata` as-is (snapshot-expiry
  /// uses this after trimming the snapshot list).
  Result<std::string> RewriteMetadata(TableMetadata metadata);

  // -- reads ----------------------------------------------------------

  /// Chooses the files a scan must read, pruning by partition values and
  /// column statistics without touching data objects.
  Result<ScanPlan> PlanScan(const TableMetadata& metadata,
                            const ScanOptions& options) const;

  /// Executes a planned scan: fetches surviving files, applies row-group
  /// skipping inside each, projects, fills evolved columns with nulls, and
  /// concatenates. Row-level filtering is the engine's job.
  Result<columnar::Table> ReadScan(const TableMetadata& metadata,
                                   const ScanPlan& plan,
                                   const ScanOptions& options) const;

  /// PlanScan + ReadScan convenience; `plan_out` receives the plan when
  /// non-null.
  Result<columnar::Table> ScanTable(const std::string& metadata_key,
                                    const ScanOptions& options = {},
                                    ScanPlan* plan_out = nullptr) const;

 private:
  Result<std::string> WriteMetadata(const TableMetadata& metadata);
  Result<std::string> WriteSnapshot(TableMetadata metadata,
                                    const columnar::Table& data,
                                    const std::string& operation);

  storage::ObjectStore* store_;
  Clock* clock_;
  std::string data_prefix_;
};

}  // namespace bauplan::table

#endif  // BAUPLAN_TABLE_TABLE_OPS_H_
