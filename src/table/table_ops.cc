#include "table/table_ops.h"

#include <atomic>
#include <map>
#include <optional>
#include <thread>

#include "columnar/builder.h"
#include "columnar/compute.h"
#include "common/hash.h"
#include "common/strings.h"
#include "format/reader.h"
#include "format/writer.h"

namespace bauplan::table {

using columnar::Value;

TableOps::TableOps(storage::ObjectStore* store, Clock* clock,
                   std::string data_prefix)
    : store_(store), clock_(clock), data_prefix_(std::move(data_prefix)) {}

Result<std::string> TableOps::WriteMetadata(const TableMetadata& metadata) {
  Bytes image = metadata.Serialize();
  std::string fingerprint = FingerprintHex(
      std::string_view(reinterpret_cast<const char*>(image.data()),
                       image.size()));
  std::string key = StrCat(data_prefix_, "/", metadata.table_name,
                           "/metadata/", fingerprint, ".meta");
  BAUPLAN_RETURN_NOT_OK(store_->Put(key, std::move(image)));
  return key;
}

Result<std::string> TableOps::CreateTable(const std::string& name,
                                          const columnar::Schema& schema,
                                          const PartitionSpec& spec) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("table schema must have columns");
  }
  BAUPLAN_RETURN_NOT_OK(spec.Validate(schema));
  TableMetadata metadata;
  metadata.table_name = name;
  metadata.schema = schema;
  metadata.spec = spec;
  metadata.last_updated_micros = clock_->NowMicros();
  return WriteMetadata(metadata);
}

Result<TableMetadata> TableOps::LoadMetadata(
    const std::string& metadata_key) const {
  BAUPLAN_ASSIGN_OR_RETURN(Bytes image, store_->Get(metadata_key));
  return TableMetadata::Deserialize(image);
}

namespace {

/// Groups row indices by partition tuple; tuple order is the map key's
/// lexicographic Value order.
struct TupleLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Result<std::string> TableOps::WriteSnapshot(TableMetadata metadata,
                                            const columnar::Table& data,
                                            const std::string& operation) {
  if (!(data.schema() == metadata.schema)) {
    return Status::InvalidArgument(
        StrCat("data schema ", data.schema().ToString(),
               " does not match table schema ",
               metadata.schema.ToString()));
  }

  // Split rows into partitions.
  std::map<std::vector<Value>, std::vector<int64_t>, TupleLess> groups;
  if (metadata.spec.IsUnpartitioned()) {
    std::vector<int64_t> all(static_cast<size_t>(data.num_rows()));
    for (int64_t i = 0; i < data.num_rows(); ++i) {
      all[static_cast<size_t>(i)] = i;
    }
    groups.emplace(std::vector<Value>{}, std::move(all));
  } else {
    for (int64_t i = 0; i < data.num_rows(); ++i) {
      BAUPLAN_ASSIGN_OR_RETURN(std::vector<Value> tuple,
                               metadata.spec.PartitionOf(data, i));
      groups[tuple].push_back(i);
    }
  }

  int64_t next_snapshot_id =
      metadata.snapshots.empty()
          ? 1
          : metadata.snapshots.back().snapshot_id + 1;

  // Write one BPF file per non-empty partition.
  Manifest manifest;
  int file_index = 0;
  for (const auto& [tuple, indices] : groups) {
    if (indices.empty()) continue;
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Table part,
                             columnar::TakeTable(data, indices));
    BAUPLAN_ASSIGN_OR_RETURN(Bytes file_bytes, format::WriteBpfFile(part));
    DataFile file;
    file.path = StrCat(data_prefix_, "/", metadata.table_name, "/data/snap-",
                       next_snapshot_id, "-", file_index++, ".bpf");
    file.record_count = part.num_rows();
    file.file_size_bytes = file_bytes.size();
    file.partition = tuple;
    for (int c = 0; c < part.num_columns(); ++c) {
      file.column_stats.push_back(columnar::ComputeStats(*part.column(c)));
    }
    BAUPLAN_RETURN_NOT_OK(store_->Put(file.path, std::move(file_bytes)));
    manifest.files.push_back(std::move(file));
  }

  std::string manifest_key =
      StrCat(data_prefix_, "/", metadata.table_name, "/metadata/manifest-",
             next_snapshot_id, ".manifest");
  BAUPLAN_RETURN_NOT_OK(store_->Put(manifest_key, manifest.Serialize()));

  Snapshot snapshot;
  snapshot.snapshot_id = next_snapshot_id;
  snapshot.parent_snapshot_id = metadata.current_snapshot_id;
  snapshot.timestamp_micros = clock_->NowMicros();
  snapshot.operation = operation;
  snapshot.total_records = data.num_rows();
  if (operation == "append" && metadata.current_snapshot_id >= 0) {
    BAUPLAN_ASSIGN_OR_RETURN(Snapshot parent, metadata.CurrentSnapshot());
    snapshot.manifest_keys = parent.manifest_keys;
    snapshot.total_records += parent.total_records;
  }
  snapshot.manifest_keys.push_back(manifest_key);

  metadata.snapshots.push_back(snapshot);
  metadata.current_snapshot_id = snapshot.snapshot_id;
  metadata.last_updated_micros = snapshot.timestamp_micros;
  return WriteMetadata(metadata);
}

Result<DataFile> TableOps::WriteDataFile(
    const TableMetadata& metadata, const columnar::Table& data,
    std::vector<Value> partition, const std::string& label) {
  if (!(data.schema() == metadata.schema)) {
    return Status::InvalidArgument(
        "data schema does not match table schema");
  }
  BAUPLAN_ASSIGN_OR_RETURN(Bytes file_bytes, format::WriteBpfFile(data));
  DataFile file;
  file.path = StrCat(data_prefix_, "/", metadata.table_name, "/data/",
                     label, ".bpf");
  file.record_count = data.num_rows();
  file.file_size_bytes = file_bytes.size();
  file.partition = std::move(partition);
  for (int c = 0; c < data.num_columns(); ++c) {
    file.column_stats.push_back(columnar::ComputeStats(*data.column(c)));
  }
  BAUPLAN_RETURN_NOT_OK(store_->Put(file.path, std::move(file_bytes)));
  return file;
}

Result<std::string> TableOps::CommitFileSet(TableMetadata metadata,
                                            std::vector<DataFile> files,
                                            const std::string& operation) {
  int64_t next_snapshot_id =
      metadata.snapshots.empty()
          ? 1
          : metadata.snapshots.back().snapshot_id + 1;
  Manifest manifest;
  int64_t total_records = 0;
  for (auto& file : files) {
    total_records += file.record_count;
    manifest.files.push_back(std::move(file));
  }
  std::string manifest_key =
      StrCat(data_prefix_, "/", metadata.table_name, "/metadata/manifest-",
             next_snapshot_id, ".manifest");
  BAUPLAN_RETURN_NOT_OK(store_->Put(manifest_key, manifest.Serialize()));

  Snapshot snapshot;
  snapshot.snapshot_id = next_snapshot_id;
  snapshot.parent_snapshot_id = metadata.current_snapshot_id;
  snapshot.timestamp_micros = clock_->NowMicros();
  snapshot.operation = operation;
  snapshot.total_records = total_records;
  snapshot.manifest_keys = {manifest_key};
  metadata.snapshots.push_back(snapshot);
  metadata.current_snapshot_id = snapshot.snapshot_id;
  metadata.last_updated_micros = snapshot.timestamp_micros;
  return WriteMetadata(metadata);
}

Result<std::string> TableOps::RewriteMetadata(TableMetadata metadata) {
  metadata.last_updated_micros = clock_->NowMicros();
  return WriteMetadata(metadata);
}

Result<std::string> TableOps::Append(const std::string& metadata_key,
                                     const columnar::Table& data) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  return WriteSnapshot(std::move(metadata), data, "append");
}

Result<std::string> TableOps::Overwrite(const std::string& metadata_key,
                                        const columnar::Table& data) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  return WriteSnapshot(std::move(metadata), data, "overwrite");
}

Result<std::string> TableOps::AddColumn(const std::string& metadata_key,
                                        const columnar::Field& field) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  if (!field.nullable) {
    return Status::InvalidArgument(
        "evolved columns must be nullable (existing files have no values)");
  }
  BAUPLAN_ASSIGN_OR_RETURN(metadata.schema,
                           metadata.schema.AddField(field));
  metadata.schema_version += 1;
  metadata.last_updated_micros = clock_->NowMicros();
  return WriteMetadata(metadata);
}

namespace {

Status CheckNotPartitionSource(const TableMetadata& metadata,
                               const std::string& column,
                               const char* verb) {
  for (const auto& field : metadata.spec.fields()) {
    if (field.source_column == column) {
      return Status::FailedPrecondition(
          StrCat("cannot ", verb, " '", column,
                 "': it is a partition source column"));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> TableOps::DropColumn(const std::string& metadata_key,
                                         const std::string& name) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  BAUPLAN_RETURN_NOT_OK(CheckNotPartitionSource(metadata, name, "drop"));
  if (metadata.schema.num_fields() <= 1) {
    return Status::FailedPrecondition(
        "cannot drop the last column of a table");
  }
  BAUPLAN_ASSIGN_OR_RETURN(metadata.schema,
                           metadata.schema.RemoveField(name));
  metadata.schema_version += 1;
  metadata.last_updated_micros = clock_->NowMicros();
  return WriteMetadata(metadata);
}

Result<std::string> TableOps::RenameColumn(const std::string& metadata_key,
                                           const std::string& from,
                                           const std::string& to) {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  BAUPLAN_RETURN_NOT_OK(CheckNotPartitionSource(metadata, from, "rename"));
  int idx = metadata.schema.GetFieldIndex(from);
  if (idx < 0) {
    return Status::NotFound(StrCat("no column named '", from, "'"));
  }
  if (metadata.schema.HasField(to)) {
    return Status::AlreadyExists(StrCat("column '", to,
                                        "' already exists"));
  }
  std::vector<columnar::Field> fields = metadata.schema.fields();
  fields[static_cast<size_t>(idx)].name = to;
  metadata.schema = columnar::Schema(std::move(fields));
  metadata.schema_version += 1;
  metadata.last_updated_micros = clock_->NowMicros();
  return WriteMetadata(metadata);
}

Result<ScanPlan> TableOps::PlanScan(const TableMetadata& metadata,
                                    const ScanOptions& options) const {
  if (options.snapshot_id >= 0 && options.as_of_micros > 0) {
    return Status::InvalidArgument(
        "snapshot_id and as_of_micros are mutually exclusive");
  }
  // Validate requested columns against the current schema.
  for (const auto& name : options.columns) {
    if (!metadata.schema.HasField(name)) {
      return Status::NotFound(StrCat("no column named '", name,
                                     "' in table '", metadata.table_name,
                                     "'"));
    }
  }
  for (const auto& pred : options.predicates) {
    if (!metadata.schema.HasField(pred.column)) {
      return Status::NotFound(StrCat("predicate column '", pred.column,
                                     "' not in table '",
                                     metadata.table_name, "'"));
    }
  }

  ScanPlan plan;
  if (metadata.current_snapshot_id < 0) return plan;  // empty table

  Snapshot snapshot;
  if (options.snapshot_id >= 0) {
    BAUPLAN_ASSIGN_OR_RETURN(snapshot,
                             metadata.SnapshotById(options.snapshot_id));
  } else if (options.as_of_micros > 0) {
    BAUPLAN_ASSIGN_OR_RETURN(snapshot,
                             metadata.SnapshotAsOf(options.as_of_micros));
  } else {
    BAUPLAN_ASSIGN_OR_RETURN(snapshot, metadata.CurrentSnapshot());
  }

  for (const auto& manifest_key : snapshot.manifest_keys) {
    BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes, store_->Get(manifest_key));
    BAUPLAN_ASSIGN_OR_RETURN(Manifest manifest,
                             Manifest::Deserialize(bytes));
    for (auto& file : manifest.files) {
      ++plan.files_total;
      // 1. Partition pruning: no data object touched.
      if (!PartitionMightMatch(metadata.spec, file.partition,
                               options.predicates)) {
        ++plan.files_pruned_by_partition;
        plan.bytes_pruned += static_cast<int64_t>(file.file_size_bytes);
        continue;
      }
      // 2. Column-stats pruning from the manifest entry. Stats are indexed
      // by the schema at write time; evolved columns have no stats (and a
      // predicate on a column absent from the file can never match, since
      // the file reads as all-null there).
      bool keep = true;
      for (const auto& pred : options.predicates) {
        int idx = metadata.schema.GetFieldIndex(pred.column);
        if (idx >= static_cast<int>(file.column_stats.size())) {
          keep = false;  // column postdates this file: all null
          break;
        }
        if (!pred.MightMatch(
                file.column_stats[static_cast<size_t>(idx)])) {
          keep = false;
          break;
        }
      }
      if (!keep) {
        ++plan.files_pruned_by_stats;
        plan.bytes_pruned += static_cast<int64_t>(file.file_size_bytes);
        continue;
      }
      plan.bytes_to_read += static_cast<int64_t>(file.file_size_bytes);
      plan.files.push_back(std::move(file));
    }
  }
  return plan;
}

Result<columnar::Table> TableOps::ReadScan(const TableMetadata& metadata,
                                           const ScanPlan& plan,
                                           const ScanOptions& options) const {
  std::vector<std::string> out_columns = options.columns;
  if (out_columns.empty()) {
    for (const auto& f : metadata.schema.fields()) {
      out_columns.push_back(f.name);
    }
  }
  BAUPLAN_ASSIGN_OR_RETURN(columnar::Schema out_schema,
                           metadata.schema.Select(out_columns));

  // Phase 1: fetch payloads serially, so the metered store's latency
  // accounting stays well-defined on the (single-threaded) sim clock.
  std::vector<Bytes> payloads;
  payloads.reserve(plan.files.size());
  for (const auto& file : plan.files) {
    BAUPLAN_ASSIGN_OR_RETURN(Bytes bytes, store_->Get(file.path));
    payloads.push_back(std::move(bytes));
  }

  // Decoding one payload is pure CPU and touches no shared state, so it
  // parallelizes freely (section 5's "parallelizing SQL execution").
  auto decode = [&](Bytes bytes) -> Result<columnar::Table> {
    BAUPLAN_ASSIGN_OR_RETURN(format::BpfReader reader,
                             format::BpfReader::Open(std::move(bytes)));
    // Project only the columns present in this file; evolved columns are
    // synthesized as nulls below.
    format::ReadOptions ropts;
    for (const auto& name : out_columns) {
      if (reader.schema().HasField(name)) ropts.columns.push_back(name);
    }
    for (const auto& pred : options.predicates) {
      if (reader.schema().HasField(pred.column)) {
        ropts.predicates.push_back(pred);
      }
    }
    BAUPLAN_ASSIGN_OR_RETURN(columnar::Table piece,
                             reader.ReadTable(ropts));
    // Assemble the full projection, filling missing columns with nulls.
    std::vector<columnar::ArrayPtr> columns;
    for (size_t i = 0; i < out_columns.size(); ++i) {
      const std::string& name = out_columns[i];
      if (piece.schema().HasField(name)) {
        BAUPLAN_ASSIGN_OR_RETURN(columnar::ArrayPtr col,
                                 piece.GetColumnByName(name));
        columns.push_back(std::move(col));
      } else {
        auto builder = columnar::MakeBuilder(out_schema.field(
            static_cast<int>(i)).type);
        for (int64_t r = 0; r < piece.num_rows(); ++r) {
          builder->AppendNull();
        }
        columns.push_back(builder->Finish());
      }
    }
    return columnar::Table::Make(out_schema, std::move(columns));
  };

  // Phase 2: decode, optionally on a thread pool. Results keep file
  // order, so parallel and sequential scans are bit-identical.
  std::vector<std::optional<Result<columnar::Table>>> decoded(
      payloads.size());
  int threads = std::min<int>(options.decode_threads,
                              static_cast<int>(payloads.size()));
  if (threads <= 1) {
    for (size_t i = 0; i < payloads.size(); ++i) {
      decoded[i] = decode(std::move(payloads[i]));
    }
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          size_t i = next.fetch_add(1);
          if (i >= payloads.size()) return;
          decoded[i] = decode(std::move(payloads[i]));
        }
      });
    }
    for (auto& worker : pool) worker.join();
  }

  std::vector<columnar::Table> pieces;
  pieces.reserve(decoded.size());
  for (auto& result : decoded) {
    BAUPLAN_RETURN_NOT_OK(result->status());
    pieces.push_back(std::move(*result).ValueOrDie());
  }

  if (pieces.empty()) {
    std::vector<columnar::ArrayPtr> empties;
    for (const auto& f : out_schema.fields()) {
      empties.push_back(columnar::MakeBuilder(f.type)->Finish());
    }
    return columnar::Table::Make(out_schema, std::move(empties));
  }
  if (pieces.size() == 1) return pieces[0];
  return columnar::ConcatTables(pieces);
}

Result<columnar::Table> TableOps::ScanTable(const std::string& metadata_key,
                                            const ScanOptions& options,
                                            ScanPlan* plan_out) const {
  BAUPLAN_ASSIGN_OR_RETURN(TableMetadata metadata,
                           LoadMetadata(metadata_key));
  BAUPLAN_ASSIGN_OR_RETURN(ScanPlan plan, PlanScan(metadata, options));
  BAUPLAN_ASSIGN_OR_RETURN(columnar::Table result,
                           ReadScan(metadata, plan, options));
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return result;
}

}  // namespace bauplan::table
