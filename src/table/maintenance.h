#ifndef BAUPLAN_TABLE_MAINTENANCE_H_
#define BAUPLAN_TABLE_MAINTENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/object_store.h"
#include "table/table_ops.h"

namespace bauplan::table {

/// Outcome of a compaction pass.
struct CompactionResult {
  /// New metadata key (unchanged when nothing was compacted).
  std::string metadata_key;
  int64_t files_before = 0;
  int64_t files_after = 0;
  int64_t bytes_rewritten = 0;
  bool compacted = false;
};

/// Outcome of a snapshot-expiry pass.
struct ExpireResult {
  std::string metadata_key;
  int64_t snapshots_removed = 0;
  int64_t data_files_deleted = 0;
  int64_t manifests_deleted = 0;
  uint64_t bytes_reclaimed = 0;
};

/// Background table maintenance, the operational half of an Iceberg-style
/// format that the paper's platform runs "behind the scenes": streaming
/// appends accumulate small files (one per partition per run), and old
/// snapshots pin dead data objects forever unless expired.
class TableMaintenance {
 public:
  /// Does not own `ops` or `store` (the same store the ops write to).
  TableMaintenance(TableOps* ops, storage::ObjectStore* store)
      : ops_(ops), store_(store) {}

  /// Rewrites partitions whose live data is fragmented into more than
  /// `max_files_per_partition` files into one file each, producing a new
  /// "replace" snapshot with identical logical contents. Old files stay
  /// referenced by old snapshots (time travel keeps working) until
  /// ExpireSnapshots reclaims them.
  Result<CompactionResult> CompactFiles(const std::string& metadata_key,
                                        int max_files_per_partition = 1);

  /// Drops all snapshots except the current one (plus, when
  /// `keep_after_micros` > 0, any snapshot at or after that instant),
  /// then deletes every data file and manifest no surviving snapshot
  /// references. This is the only operation in the repo that deletes
  /// data objects.
  Result<ExpireResult> ExpireSnapshots(const std::string& metadata_key,
                                       uint64_t keep_after_micros = 0);

 private:
  TableOps* ops_;
  storage::ObjectStore* store_;
};

}  // namespace bauplan::table

#endif  // BAUPLAN_TABLE_MAINTENANCE_H_
