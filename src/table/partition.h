#ifndef BAUPLAN_TABLE_PARTITION_H_
#define BAUPLAN_TABLE_PARTITION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "columnar/type.h"
#include "columnar/value.h"
#include "common/bytes.h"
#include "common/result.h"
#include "format/predicate.h"

namespace bauplan::table {

/// Iceberg-style partition transform applied to a source column.
enum class Transform : uint8_t {
  /// The value itself.
  kIdentity = 0,
  /// hash(value) % N, for spreading writes.
  kBucket = 1,
  /// Months since the Unix epoch, for timestamp columns.
  kMonth = 2,
  /// Days since the Unix epoch, for timestamp columns.
  kDay = 3,
};

std::string_view TransformToString(Transform t);

/// One dimension of a partition spec.
struct PartitionField {
  std::string source_column;
  Transform transform = Transform::kIdentity;
  /// Bucket count; only meaningful for kBucket.
  uint32_t bucket_count = 0;

  /// Output name of the partition value ("ts_month", "id_bucket", ...).
  std::string PartitionName() const;

  /// Applies the transform to one source value (null stays null).
  Result<columnar::Value> Apply(const columnar::Value& value) const;

  bool operator==(const PartitionField& o) const {
    return source_column == o.source_column && transform == o.transform &&
           bucket_count == o.bucket_count;
  }
};

/// How a table's rows map to files. Empty spec = unpartitioned.
class PartitionSpec {
 public:
  PartitionSpec() = default;
  explicit PartitionSpec(std::vector<PartitionField> fields)
      : fields_(std::move(fields)) {}

  const std::vector<PartitionField>& fields() const { return fields_; }
  bool IsUnpartitioned() const { return fields_.empty(); }

  /// Checks every source column exists in `schema`.
  Status Validate(const columnar::Schema& schema) const;

  /// Partition tuple of row `row` of `data`.
  Result<std::vector<columnar::Value>> PartitionOf(
      const columnar::Table& data, int64_t row) const;

  bool operator==(const PartitionSpec& o) const {
    return fields_ == o.fields_;
  }

  std::string ToString() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<PartitionSpec> Deserialize(BinaryReader* reader);

 private:
  std::vector<PartitionField> fields_;
};

/// True when a file with partition tuple `partition` (ordered as
/// spec.fields()) might contain rows matching all `predicates`.
/// Identity transforms prune exactly; month/day prune by range
/// containment; bucket prunes equality predicates only.
bool PartitionMightMatch(const PartitionSpec& spec,
                         const std::vector<columnar::Value>& partition,
                         const std::vector<format::ColumnPredicate>& preds);

}  // namespace bauplan::table

#endif  // BAUPLAN_TABLE_PARTITION_H_
