#ifndef BAUPLAN_COLUMNAR_BUILDER_H_
#define BAUPLAN_COLUMNAR_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/array.h"
#include "columnar/type.h"
#include "columnar/value.h"
#include "common/result.h"

namespace bauplan::columnar {

/// Incrementally constructs an Array of a given type; Finish() seals the
/// buffer into an immutable array and resets the builder.
class ArrayBuilder {
 public:
  virtual ~ArrayBuilder() = default;

  virtual TypeId type() const = 0;
  virtual int64_t length() const = 0;
  virtual void AppendNull() = 0;

  /// Appends a boxed value; InvalidArgument if the value's type does not
  /// match the builder (nulls always succeed).
  virtual Status AppendValue(const Value& value) = 0;

  virtual ArrayPtr Finish() = 0;
};

/// Creates a builder for `type`.
std::unique_ptr<ArrayBuilder> MakeBuilder(TypeId type);

/// Builder for int64 / timestamp columns.
class Int64Builder : public ArrayBuilder {
 public:
  explicit Int64Builder(TypeId type = TypeId::kInt64) : type_(type) {}

  void Append(int64_t v) {
    values_.push_back(v);
    if (has_nulls_) validity_.push_back(1);
  }
  void AppendNull() override;
  Status AppendValue(const Value& value) override;
  void Reserve(size_t n) { values_.reserve(n); }

  TypeId type() const override { return type_; }
  int64_t length() const override {
    return static_cast<int64_t>(values_.size());
  }
  ArrayPtr Finish() override;

 private:
  TypeId type_;
  std::vector<int64_t> values_;
  std::vector<uint8_t> validity_;
  bool has_nulls_ = false;
  int64_t null_count_ = 0;
};

/// Builder for double columns.
class DoubleBuilder : public ArrayBuilder {
 public:
  void Append(double v) {
    values_.push_back(v);
    if (has_nulls_) validity_.push_back(1);
  }
  void AppendNull() override;
  Status AppendValue(const Value& value) override;
  void Reserve(size_t n) { values_.reserve(n); }

  TypeId type() const override { return TypeId::kDouble; }
  int64_t length() const override {
    return static_cast<int64_t>(values_.size());
  }
  ArrayPtr Finish() override;

 private:
  std::vector<double> values_;
  std::vector<uint8_t> validity_;
  bool has_nulls_ = false;
  int64_t null_count_ = 0;
};

/// Builder for boolean columns.
class BoolBuilder : public ArrayBuilder {
 public:
  void Append(bool v) {
    values_.push_back(v ? 1 : 0);
    if (has_nulls_) validity_.push_back(1);
  }
  void AppendNull() override;
  Status AppendValue(const Value& value) override;

  TypeId type() const override { return TypeId::kBool; }
  int64_t length() const override {
    return static_cast<int64_t>(values_.size());
  }
  ArrayPtr Finish() override;

 private:
  std::vector<uint8_t> values_;
  std::vector<uint8_t> validity_;
  bool has_nulls_ = false;
  int64_t null_count_ = 0;
};

/// Builder for string columns.
class StringBuilder : public ArrayBuilder {
 public:
  StringBuilder() { offsets_.push_back(0); }

  void Append(std::string_view v) {
    data_.append(v);
    offsets_.push_back(static_cast<uint32_t>(data_.size()));
    if (has_nulls_) validity_.push_back(1);
  }
  void AppendNull() override;
  Status AppendValue(const Value& value) override;
  void Reserve(size_t rows, size_t data_bytes) {
    offsets_.reserve(offsets_.size() + rows);
    data_.reserve(data_.size() + data_bytes);
  }

  TypeId type() const override { return TypeId::kString; }
  int64_t length() const override {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  ArrayPtr Finish() override;

 private:
  std::string data_;
  std::vector<uint32_t> offsets_;
  std::vector<uint8_t> validity_;
  bool has_nulls_ = false;
  int64_t null_count_ = 0;
};

}  // namespace bauplan::columnar

#endif  // BAUPLAN_COLUMNAR_BUILDER_H_
